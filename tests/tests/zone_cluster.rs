//! Zone-sharded cluster integration: determinism across worker counts
//! and the relay's flat-in-membership wide-area cost (DESIGN.md §11).

use cm_bench::city_zone::run_city_cluster;
use cm_testkit::{CityConfig, MediaMix};

/// The tentpole determinism claim, end to end: the same seeded workload
/// run on 1 worker thread and on 4 produces byte-identical merged
/// telemetry and the same final simulated time. The logical partition
/// (`cfg.zones = 4`) is part of the workload; only the thread count
/// changes.
#[test]
fn one_worker_and_four_workers_merge_to_identical_bytes() {
    let cfg = CityConfig {
        rooms: 16,
        arrival_window_ms: 10_000,
        ..CityConfig::smoke(42)
    };
    let one = run_city_cluster(&cfg, 1, Some(1 << 16));
    let four = run_city_cluster(&cfg, 4, Some(1 << 16));
    assert_eq!(one.workers, 1);
    assert_eq!(four.workers, 4);
    assert_eq!(one.agg.sim_ms, four.agg.sim_ms, "final sim time");
    assert_eq!(one.agg.events_executed, four.agg.events_executed);
    assert_eq!(one.agg.osdus_delivered, four.agg.osdus_delivered);
    assert_eq!(one.wan_msgs, four.wan_msgs);
    let a = one.merged_jsonl.expect("telemetry enabled");
    let b = four.merged_jsonl.expect("telemetry enabled");
    assert!(!a.is_empty());
    assert_eq!(a, b, "merged telemetry must be byte-identical");
    // And the cross-zone machinery actually ran (the claim is not
    // vacuous): mirrors opened and media crossed the wide area.
    assert!(four.wan_bytes > 0, "wide-area media flowed");
    assert!(
        four.per_zone.iter().any(|z| z.mirrors_opened > 0),
        "guest zones opened mirrors"
    );
}

/// Inter-zone byte count for a cross-zone room is flat in membership:
/// the relay sends one envelope per guest *zone* per OSDU, and the
/// mirror fans out locally. Tripling or quintupling the room's members
/// must not change what crosses the wide area.
#[test]
fn cross_zone_bytes_are_flat_in_membership() {
    let run = |members: u32| {
        let cfg = CityConfig {
            rooms: 1,
            nodes: 16,
            members_min: members,
            members_max: members,
            lifetime_min_ms: 10_000,
            lifetime_max_ms: 10_000,
            churn_percent: 0,
            writes_per_stream: 8,
            // Audio only, so the OSDU size cannot vary between configs.
            mix: MediaMix {
                audio: 1,
                text: 0,
                video: 0,
            },
            zones: 3,
            cross_zone_percent: 100,
            ..CityConfig::smoke(11)
        };
        let c = run_city_cluster(&cfg, 3, None);
        assert_eq!(c.agg.joins_denied, 0);
        assert!(c.wan_bytes > 0, "the room must actually span zones");
        (c.wan_msgs, c.wan_bytes)
    };
    let small = run(3);
    let medium = run(9);
    let large = run(15);
    assert_eq!(small, medium, "3 vs 9 members changed wide-area traffic");
    assert_eq!(small, large, "3 vs 15 members changed wide-area traffic");
}
