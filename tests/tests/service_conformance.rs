//! Service-interface conformance: the primitives of tables 1–3 occur in
//! the sequences the paper's time-sequence diagrams prescribe, with the
//! prescribed parameters. (The orchestration primitives of tables 4–6 are
//! pinned by `cm-orchestration`'s end-to-end suite; figure 3's ordering is
//! asserted here.)

use cm_core::address::{AddressTriple, TransportAddr, Tsap, VcId};
use cm_core::error::DisconnectReason;
use cm_core::media::MediaProfile;
use cm_core::qos::{QosParams, QosRequirement, QosTolerance};
use cm_core::service_class::ServiceClass;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use cm_transport::{QosReport, TransportService, TransportUser};
use netsim::{Engine, LinkParams, Network, NodeClock};
use std::cell::RefCell;
use std::rc::Rc;

/// Global arrival-ordered `(time, site, primitive)` records.
type EventLog = Rc<RefCell<Vec<(SimTime, &'static str, &'static str)>>>;

/// Records `(site, primitive)` in global arrival order.
struct Recorder {
    site: &'static str,
    log: EventLog,
}

impl Recorder {
    fn ev(&self, svc: &TransportService, what: &'static str) {
        self.log.borrow_mut().push((svc.now(), self.site, what));
    }
}

impl TransportUser for Recorder {
    fn t_connect_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        _triple: AddressTriple,
        _class: ServiceClass,
        _qos: QosRequirement,
    ) {
        self.ev(svc, "T-Connect.indication");
        svc.t_connect_response(vc, true).expect("respond");
        self.ev(svc, "T-Connect.response");
    }

    fn t_connect_confirm(
        &self,
        svc: &TransportService,
        _vc: VcId,
        result: Result<QosParams, DisconnectReason>,
    ) {
        assert!(result.is_ok(), "conformance connect must succeed");
        self.ev(svc, "T-Connect.confirm");
    }

    fn t_disconnect_indication(
        &self,
        svc: &TransportService,
        _vc: VcId,
        _reason: DisconnectReason,
    ) {
        self.ev(svc, "T-Disconnect.indication");
    }

    fn t_qos_indication(&self, svc: &TransportService, report: QosReport) {
        // Table 2: the indication carries the contract, the measurement,
        // the sample period, and the violated-parameter numbers.
        assert!(!report.violations.is_empty());
        assert!(!report.sample_period.is_zero());
        self.ev(svc, "T-QoS.indication");
    }

    fn t_renegotiate_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        new_tolerance: QosTolerance,
    ) {
        assert!(new_tolerance.is_well_formed());
        self.ev(svc, "T-Renegotiate.indication");
        svc.t_renegotiate_response(vc, true).expect("respond");
        self.ev(svc, "T-Renegotiate.response");
    }

    fn t_renegotiate_confirm(&self, svc: &TransportService, _vc: VcId, _qos: QosParams) {
        self.ev(svc, "T-Renegotiate.confirm");
    }
}

fn three_hosts() -> (Network, [TransportService; 3], EventLog) {
    let net = Network::new(Engine::new());
    let mut rng = cm_core::rng::DetRng::from_seed(33);
    let h: Vec<_> = (0..3).map(|_| net.add_node(NodeClock::perfect())).collect();
    let params = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
    net.add_duplex(h[0], h[1], params.clone(), &mut rng);
    net.add_duplex(h[1], h[2], params.clone(), &mut rng);
    net.add_duplex(h[0], h[2], params, &mut rng);
    let log = Rc::new(RefCell::new(Vec::new()));
    let mk = |node, site| {
        let svc = TransportService::install(&net, node, Default::default());
        svc.bind(
            Tsap(1),
            Rc::new(Recorder {
                site,
                log: log.clone(),
            }),
        )
        .expect("bind");
        svc
    };
    let s0 = mk(h[0], "source");
    let s1 = mk(h[1], "destination");
    let s2 = mk(h[2], "initiator");
    (net, [s0, s1, s2], log)
}

#[test]
fn figure_3_sequence_holds() {
    let (net, [s0, s1, s2], log) = three_hosts();
    let triple = AddressTriple::remote(
        TransportAddr {
            node: s2.node(),
            tsap: Tsap(1),
        },
        TransportAddr {
            node: s0.node(),
            tsap: Tsap(1),
        },
        TransportAddr {
            node: s1.node(),
            tsap: Tsap(1),
        },
    );
    s2.t_connect_request(
        triple,
        ServiceClass::cm_default(),
        MediaProfile::audio_telephone().requirement(),
    )
    .expect("request");
    net.engine().run_for(SimDuration::from_millis(100));
    let seq: Vec<(&str, &str)> = log.borrow().iter().map(|&(_, s, p)| (s, p)).collect();
    assert_eq!(
        seq,
        vec![
            ("source", "T-Connect.indication"),
            ("source", "T-Connect.response"),
            ("destination", "T-Connect.indication"),
            ("destination", "T-Connect.response"),
            ("source", "T-Connect.confirm"),
            ("initiator", "T-Connect.confirm"),
        ],
        "figure 3's time sequence must hold"
    );
    // And times strictly advance across hops.
    let times: Vec<SimTime> = log.borrow().iter().map(|&(t, _, _)| t).collect();
    for w in times.windows(2) {
        assert!(w[1] >= w[0]);
    }
}

#[test]
fn table_1_2_3_primitive_exchanges() {
    let (net, [s0, s1, _s2], log) = three_hosts();
    let triple = AddressTriple::conventional(
        TransportAddr {
            node: s0.node(),
            tsap: Tsap(1),
        },
        TransportAddr {
            node: s1.node(),
            tsap: Tsap(1),
        },
    );
    let vc = s0
        .t_connect_request(
            triple,
            ServiceClass::cm_default(),
            MediaProfile::audio_telephone().requirement(),
        )
        .expect("request");
    net.engine().run_for(SimDuration::from_millis(100));
    assert!(s0.is_open(vc));

    // T2: write briefly, then go silent — the throughput floor is violated
    // over the next full sample period at the sink and reported to both
    // ends.
    for i in 0..50u64 {
        let _ = s0.write_osdu(vc, cm_core::osdu::Payload::synthetic(i, 80), None);
    }
    net.engine().run_for(SimDuration::from_secs(3));

    // T3: renegotiate upward; peer accepts; confirm delivered.
    s0.t_renegotiate_request(vc, MediaProfile::audio_cd().tolerance(50))
        .expect("renegotiate");
    net.engine().run_for(SimDuration::from_millis(100));

    // T1: release; peer gets the indication.
    s0.t_disconnect_request(vc).expect("disconnect");
    net.engine().run_for(SimDuration::from_millis(100));

    let seq: Vec<(&str, &str)> = log.borrow().iter().map(|&(_, s, p)| (s, p)).collect();
    let count =
        |site: &str, prim: &str| seq.iter().filter(|&&(s, p)| s == site && p == prim).count();
    // Table 1.
    assert_eq!(count("destination", "T-Connect.indication"), 1);
    assert_eq!(count("destination", "T-Connect.response"), 1);
    assert_eq!(count("source", "T-Connect.confirm"), 1);
    assert_eq!(count("destination", "T-Disconnect.indication"), 1);
    // Table 2 — degradations reported at both ends.
    assert!(count("destination", "T-QoS.indication") >= 1, "{seq:?}");
    assert!(count("source", "T-QoS.indication") >= 1);
    // Table 3.
    assert_eq!(count("destination", "T-Renegotiate.indication"), 1);
    assert_eq!(count("destination", "T-Renegotiate.response"), 1);
    assert_eq!(count("source", "T-Renegotiate.confirm"), 1);
}

#[test]
fn remote_release_reaches_source_as_indication() {
    // §4.1.1: a remote T-Disconnect.request arrives at the source as an
    // indication; the attached application performs the actual release.
    let (net, [s0, s1, s2], log) = three_hosts();
    let triple = AddressTriple::remote(
        TransportAddr {
            node: s2.node(),
            tsap: Tsap(1),
        },
        TransportAddr {
            node: s0.node(),
            tsap: Tsap(1),
        },
        TransportAddr {
            node: s1.node(),
            tsap: Tsap(1),
        },
    );
    let vc = s2
        .t_connect_request(
            triple,
            ServiceClass::cm_default(),
            MediaProfile::audio_telephone().requirement(),
        )
        .expect("request");
    net.engine().run_for(SimDuration::from_millis(100));
    assert!(s0.is_open(vc));
    log.borrow_mut().clear();
    s2.t_disconnect_request(vc).expect("remote release");
    net.engine().run_for(SimDuration::from_millis(100));
    let seq: Vec<(&str, &str)> = log.borrow().iter().map(|&(_, s, p)| (s, p)).collect();
    assert!(
        seq.contains(&("source", "T-Disconnect.indication")),
        "the source user must see the remote release request: {seq:?}"
    );
    // The VC itself is *not* torn down until the source acts (§4.1.1).
    assert!(s0.is_open(vc));
    s0.t_disconnect_request(vc).expect("actual release");
    net.engine().run_for(SimDuration::from_millis(100));
    assert!(!s0.is_open(vc));
    assert!(!s1.is_open(vc));
}
