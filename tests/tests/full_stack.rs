//! Whole-stack integration: the paper's application scenarios running
//! end-to-end through the platform API, long-haul stability, and
//! bit-exact determinism of the entire stack.

use cm_core::media::MediaProfile;
use cm_core::time::{SimDuration, SimTime};
use cm_media::{SkewMeter, StoredClip};
use cm_orchestration::OrchestrationPolicy;
use cm_platform::{MonitorDevice, Platform, StorageServer};
use cm_testkit::{FilmScenario, StackConfig};
use netsim::{Engine, TestbedConfig};
use std::cell::Cell;
use std::rc::Rc;

fn film_platform(
    skews: Vec<i32>,
) -> (
    Platform,
    Vec<cm_core::address::NetAddr>,
    Vec<cm_core::address::NetAddr>,
) {
    let tb = TestbedConfig {
        workstations: 1,
        servers: 2,
        clock_skews_ppm: skews,
        ..TestbedConfig::default()
    }
    .build(Engine::new());
    let platform = Platform::new(tb.net.clone());
    for &n in tb.workstations.iter().chain(tb.servers.iter()) {
        platform.install_node(n);
    }
    (platform, tb.workstations, tb.servers)
}

#[test]
fn quickstart_scenario_holds_lip_sync() {
    let (platform, ws, servers) = film_platform(vec![0, 3000, -3000]);
    let audio_p = MediaProfile::audio_telephone();
    let video_p = MediaProfile::video_mono();
    let audio_server = StorageServer::new(&platform, servers[0]);
    audio_server.store("a", StoredClip::cbr_for(&audio_p, 90));
    let video_server = StorageServer::new(&platform, servers[1]);
    video_server.store("v", StoredClip::cbr_for(&video_p, 90));
    let audio = platform.create_stream(servers[0], &[ws[0]], audio_p.clone());
    let video = platform.create_stream(servers[1], &[ws[0]], video_p.clone());
    audio.await_open(SimDuration::from_millis(500));
    video.await_open(SimDuration::from_millis(500));
    let _as = audio_server.play("a", &audio);
    let _vs = video_server.play("v", &video);
    let monitor = MonitorDevice::new(&platform, ws[0]);
    let speaker = monitor.attach(&audio, &audio_p);
    let screen = monitor.attach(&video, &video_p);
    let started = Rc::new(Cell::new(false));
    let s2 = started.clone();
    let _agent = platform
        .orchestrate_streams(
            &[&audio, &video],
            OrchestrationPolicy::lip_sync(),
            move |r| {
                r.expect("start");
                s2.set(true);
            },
        )
        .expect("orchestrate");
    platform.engine().run_for(SimDuration::from_secs(60));
    assert!(started.get());
    let meter = SkewMeter::new(vec![
        (audio_p.osdu_rate, speaker.log.borrow().clone()),
        (video_p.osdu_rate, screen.log.borrow().clone()),
    ]);
    for t in [15u64, 30, 45, 55] {
        let skew = meter.skew_at(SimTime::from_secs(t)).expect("skew");
        assert!(
            skew <= SimDuration::from_millis(80),
            "lip-sync broken at {t}s: {skew}"
        );
    }
}

#[test]
fn long_haul_session_stays_stable() {
    // 30 simulated minutes of drifting film: skew stays bounded, drops
    // stay proportionate, nothing wedges.
    let f = FilmScenario::build((1000, -1000), 1900, StackConfig::default());
    let started = Rc::new(Cell::new(false));
    let s2 = started.clone();
    let agent = f
        .stack
        .hlo
        .orchestrate_and_start(
            &[f.audio.vc, f.video.vc],
            OrchestrationPolicy::lip_sync(),
            move |r| {
                r.expect("start");
                s2.set(true);
            },
        )
        .expect("orchestrate");
    f.stack.run_for(SimDuration::from_secs(1800));
    assert!(started.get());
    let meter = f.skew_meter();
    for t in [300u64, 900, 1500, 1790] {
        let skew = meter.skew_at(SimTime::from_secs(t)).expect("skew");
        assert!(
            skew <= SimDuration::from_millis(80),
            "skew {skew} at {t}s of a 30-minute session"
        );
    }
    // The regulation loop ran the whole time.
    let records = agent.history().len();
    assert!(records > 7000, "only {records} interval records in 30 min");
    // Audio kept flowing: ~50/s for 30 min.
    let presented = f.audio.sink.log.borrow().len();
    assert!(presented > 88_000, "audio presented only {presented}");
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || -> (usize, usize, u64, Vec<(u64, u64)>) {
        let f = FilmScenario::build((2000, -2000), 40, StackConfig::default());
        let _agent = f
            .stack
            .hlo
            .orchestrate_and_start(
                &[f.audio.vc, f.video.vc],
                OrchestrationPolicy::lip_sync(),
                |r| r.expect("start"),
            )
            .expect("orchestrate");
        f.stack.run_for(SimDuration::from_secs(30));
        let audio: Vec<(u64, u64)> = f
            .audio
            .sink
            .log
            .borrow()
            .iter()
            .map(|p| (p.at.as_micros(), p.seq))
            .collect();
        let counts = (
            f.audio.sink.log.borrow().len(),
            f.video.sink.log.borrow().len(),
            f.stack.engine().executed(),
        );
        (counts.0, counts.1, counts.2, audio)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "event counts must match exactly");
    assert_eq!(
        a.3, b.3,
        "presentation timelines must match to the microsecond"
    );
}

#[test]
fn quality_change_mid_film_keeps_playing() {
    // §3.3's dynamic QoS: upgrade the video stream mono → colour while the
    // film plays; the stream never stops.
    let (platform, ws, servers) = film_platform(vec![0, 0, 0]);
    let video_p = MediaProfile::video_mono();
    let server = StorageServer::new(&platform, servers[0]);
    server.store("v", StoredClip::cbr_for(&video_p, 60));
    let video = platform.create_stream(servers[0], &[ws[0]], video_p.clone());
    video.await_open(SimDuration::from_millis(500));
    let src = server.play("v", &video);
    src.start_producing();
    let screen = MonitorDevice::new(&platform, ws[0]).attach(&video, &video_p);
    screen.play();
    platform.engine().run_for(SimDuration::from_secs(10));
    let before = screen.log.borrow().len();
    video.set_quality(MediaProfile::video_colour());
    platform.engine().run_for(SimDuration::from_secs(10));
    let after = screen.log.borrow().len();
    // ~25 f/s throughout: no stall around the upgrade.
    assert!(
        after - before > 240,
        "only {} frames across the upgrade",
        after - before
    );
    let contract = platform
        .service(servers[0])
        .contract(video.vc())
        .expect("contract");
    assert!(contract.throughput >= MediaProfile::video_colour().nominal_throughput());
}
