//! Flight-recorder integration: a fixed-seed lesson scenario traced end to
//! end. Two independent runs must export byte-identical JSONL (the trace
//! is part of the deterministic surface), and the trace must carry events
//! from all four instrumented layers.

use cm_core::address::{NetAddr, VcId};
use cm_core::media::MediaProfile;
use cm_core::osdu::{Osdu, Payload};
use cm_core::rng::DetRng;
use cm_core::service_class::ServiceClass;
use cm_core::time::{Bandwidth, SimDuration};
use cm_platform::Platform;
use cm_session::{PeerId, RoomCtl, RoomMember, Session};
use cm_telemetry::{Layer, Telemetry};
use cm_transport::TransportService;
use netsim::{Engine, LinkParams, Network, NodeClock};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

struct Quiet {
    heard: Cell<u64>,
}

impl RoomMember for Quiet {
    fn on_peer_joined(&self, _room: &str, _peer: PeerId, _name: &str) {}
    fn on_peer_left(&self, _room: &str, _peer: PeerId, _name: &str) {}
    fn on_media(&self, _room: &str, _stream: &str, _osdu: Osdu) {
        self.heard.set(self.heard.get() + 1);
    }
    fn on_ctl(&self, _room: &str, _stream: &str, _ctl: RoomCtl) {}
}

fn drive_writer(svc: TransportService, vc: VcId, total: u64) {
    let written = Rc::new(Cell::new(0u64));
    fn step(svc: TransportService, vc: VcId, total: u64, written: Rc<Cell<u64>>) {
        loop {
            if written.get() >= total {
                return;
            }
            match svc.write_osdu(vc, Payload::synthetic(written.get(), 80), None) {
                Ok(true) => written.set(written.get() + 1),
                Ok(false) => {
                    let buf = svc.send_handle(vc).expect("send handle");
                    let now = svc.now();
                    let svc2 = svc.clone();
                    let engine = svc.network().engine().clone();
                    buf.park_producer(now, move || {
                        let w = written.clone();
                        engine.schedule_in(SimDuration::ZERO, move |_| step(svc2, vc, total, w));
                    });
                    return;
                }
                Err(_) => return,
            }
        }
    }
    step(svc, vc, total, written);
}

/// One fixed-seed lesson: a 2-student room over a star topology with the
/// recorder on, driven through join → publish → clock-sync → prime/start/
/// stop. Returns the engine's telemetry handle after the run.
fn traced_lesson() -> Telemetry {
    let net = Network::new(Engine::new());
    let tel = net.engine().telemetry().clone();
    tel.enable(cm_telemetry::DEFAULT_CAPACITY);

    let mut rng = DetRng::from_seed(92);
    let clean = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
    let nodes: Vec<NetAddr> = (0..4).map(|_| net.add_node(NodeClock::perfect())).collect();
    net.add_duplex(nodes[0], nodes[1], clean.clone(), &mut rng);
    net.add_duplex(nodes[1], nodes[2], clean.clone(), &mut rng);
    net.add_duplex(nodes[1], nodes[3], clean, &mut rng);
    let platform = Platform::new(net.clone());
    for &n in &nodes {
        platform.install_node(n);
    }

    let session = Session::new(&platform);
    let room = session.create_room("lesson", nodes[0], 8);
    let run = |ms: u64| net.engine().run_for(SimDuration::from_millis(ms));

    let teacher_id = Rc::new(RefCell::new(None));
    let tid = teacher_id.clone();
    room.join(
        nodes[0],
        "teacher",
        Rc::new(Quiet {
            heard: Cell::new(0),
        }),
        move |r| {
            *tid.borrow_mut() = Some(r.expect("teacher joins"));
        },
    );
    run(10);
    for i in 0..2 {
        room.join(
            nodes[2 + i],
            &format!("s{i}"),
            Rc::new(Quiet {
                heard: Cell::new(0),
            }),
            |r| {
                r.expect("student joins");
            },
        );
        run(10);
    }

    let vc = room
        .publish(
            teacher_id.borrow().expect("teacher admitted"),
            "audio",
            ServiceClass::cm_default(),
            MediaProfile::audio_telephone().requirement(),
        )
        .expect("publish");
    run(50);

    cm_orchestration::ClockSync::install(platform.service(nodes[0]));
    let cs = cm_orchestration::ClockSync::install(platform.service(nodes[2]));
    cs.calibrate(nodes[0], 2, |_| {});
    run(50);

    let svc = room.stream_service("audio").expect("svc");
    let orch = room.orchestrator("audio").expect("orchestrator");
    orch.prime().expect("prime");
    drive_writer(svc, vc, 50);
    run(300);
    orch.start().expect("start");
    run(2_000);
    orch.stop().expect("stop");
    run(50);
    tel
}

#[test]
fn trace_covers_all_four_layers() {
    let tel = traced_lesson();
    let events = tel.events();
    for layer in [
        Layer::Netsim,
        Layer::Transport,
        Layer::Orchestration,
        Layer::Session,
    ] {
        assert!(
            events.iter().any(|e| e.layer == layer),
            "no events from {:?}",
            layer
        );
    }
    assert_eq!(tel.overflow(), 0, "ring must not overflow in this scenario");
    // The headline counters moved.
    assert!(tel.counter("net.pkt.delivered") > 0);
    assert!(tel.histogram("room.ctl.fanout_us").is_some());
}

#[test]
fn same_seed_runs_export_identical_jsonl() {
    let a = traced_lesson();
    let b = traced_lesson();
    let ja = a.export_jsonl();
    let jb = b.export_jsonl();
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "same-seed traces must be byte-identical");

    // The Chrome export is deterministic too, and structurally a JSON
    // array with one object per line-item.
    let ca = a.export_chrome_trace();
    assert_eq!(ca, b.export_chrome_trace());
    assert!(ca.trim_start().starts_with('['));
    assert!(ca.trim_end().ends_with(']'));
}
