//! Causal-tracing attribution report: determinism across worker counts
//! and correct blame assignment under faults (DESIGN.md §12).

use cm_bench::city_zone::run_city_cluster;
use cm_chaos::ChaosScheduler;
use cm_core::address::{AddressTriple, TransportAddr, Tsap, VcId};
use cm_core::media::MediaProfile;
use cm_core::osdu::Payload;
use cm_core::service_class::ServiceClass;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use cm_obs::{render_report, Obs, ObsZoneReport, SegClass};
use cm_testkit::{AutoAcceptUser, CityConfig, FaultPlan};
use cm_transport::{EntityConfig, TransportService};
use netsim::{Engine, LinkParams, Network, NodeClock};

fn rendered_report(c: &cm_bench::city_zone::ClusterCityStats) -> String {
    let zones: Vec<ObsZoneReport> = c
        .per_zone
        .iter()
        .filter_map(|z| z.obs_report.clone())
        .collect();
    assert!(!zones.is_empty(), "tracing must ride with telemetry");
    render_report(&zones)
}

/// The attribution report is a function of the workload, not of the
/// thread count: the same seeded city run on 1 worker and on 4 renders
/// byte-identical JSON. Extends the telemetry differential in
/// `zone_cluster.rs` to the cm-obs artefact.
#[test]
fn attribution_report_identical_across_worker_counts() {
    let cfg = CityConfig {
        rooms: 16,
        arrival_window_ms: 10_000,
        ..CityConfig::smoke(42)
    };
    let one = run_city_cluster(&cfg, 1, Some(1 << 16));
    let four = run_city_cluster(&cfg, 4, Some(1 << 16));
    let a = rendered_report(&one);
    let b = rendered_report(&four);
    assert_eq!(a, b, "attribution report must be byte-identical");
    // Non-vacuous: spans closed, and the cross-zone machinery left
    // mirror-relay segments behind.
    assert!(a.contains("\"schema\": \"cm-obs/v1\""));
    assert!(a.contains("\"mirror_relay\""));
    let spans: u64 = one
        .per_zone
        .iter()
        .filter_map(|z| z.obs_report.as_ref())
        .map(|r| r.spans)
        .sum();
    assert!(spans > 0, "no spans closed — tracing is not wired");
}

/// Square world with two disjoint 2-hop paths a -> c (via b, via d), a
/// shared trace registry on every entity, and a reliable telephone VC.
struct Square {
    net: Network,
    obs: Obs,
    svcs: Vec<TransportService>,
    nodes: [cm_core::address::NetAddr; 4],
    vc: VcId,
}

fn square(seed: u64) -> Square {
    let net = Network::new(Engine::new());
    let mut rng = cm_core::rng::DetRng::from_seed(seed);
    // 40 ms of propagation per hop: at the telephone pacing rate (one
    // OSDU per 20 ms) the a->b wire always has packets riding it, so a
    // link cut deterministically kills some in flight.
    let p = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(40));
    let a = net.add_node(NodeClock::perfect());
    let b = net.add_node(NodeClock::perfect());
    let c = net.add_node(NodeClock::perfect());
    let d = net.add_node(NodeClock::perfect());
    net.add_duplex(a, b, p.clone(), &mut rng);
    net.add_duplex(b, c, p.clone(), &mut rng);
    net.add_duplex(a, d, p.clone(), &mut rng);
    net.add_duplex(d, c, p, &mut rng);
    let obs = Obs::disabled();
    obs.enable();
    let cfg = EntityConfig {
        obs: obs.clone(),
        ..EntityConfig::default()
    };
    let svcs: Vec<_> = [a, b, c, d]
        .iter()
        .map(|&n| {
            let svc = TransportService::install(&net, n, cfg.clone());
            svc.bind(Tsap(1), AutoAcceptUser::new()).expect("bind");
            svc
        })
        .collect();
    let triple = AddressTriple::conventional(
        TransportAddr {
            node: a,
            tsap: Tsap(1),
        },
        TransportAddr {
            node: c,
            tsap: Tsap(1),
        },
    );
    let vc = svcs[0]
        .t_connect_request(
            triple,
            ServiceClass::reliable_cm(),
            MediaProfile::audio_telephone().requirement(),
        )
        .expect("connect");
    net.engine().run_for(SimDuration::from_millis(500));
    assert!(svcs[0].is_open(vc), "square VC must open");
    Square {
        net,
        obs,
        svcs,
        nodes: [a, b, c, d],
        vc,
    }
}

/// Writes `total` telephone OSDUs as fast as the send buffer allows.
fn drive_writer(svc: TransportService, vc: VcId, total: u64) {
    fn step(svc: TransportService, vc: VcId, written: u64, total: u64) {
        let mut written = written;
        while written < total {
            match svc.write_osdu(vc, Payload::synthetic(written, 80), None) {
                Ok(true) => written += 1,
                Ok(false) => {
                    let Ok(buf) = svc.send_handle(vc) else { return };
                    let now = svc.now();
                    let svc2 = svc.clone();
                    let engine = svc.network().engine().clone();
                    buf.park_producer(now, move || {
                        engine.schedule_in(SimDuration::ZERO, move |_| {
                            step(svc2, vc, written, total)
                        });
                    });
                    return;
                }
                Err(_) => return,
            }
        }
    }
    step(svc, vc, 0, total);
}

/// Eagerly reads OSDUs (closing their spans) until the VC dies.
fn drive_reader(svc: TransportService, vc: VcId) {
    fn step(svc: TransportService, vc: VcId) {
        loop {
            match svc.read_osdu(vc) {
                Ok(Some(_)) => {}
                Ok(None) => {
                    let Ok(buf) = svc.recv_handle(vc) else { return };
                    let now = svc.now();
                    let svc2 = svc.clone();
                    let engine = svc.network().engine().clone();
                    buf.park_consumer(now, move || {
                        engine.schedule_in(SimDuration::ZERO, move |_| step(svc2, vc));
                    });
                    return;
                }
                Err(_) => return,
            }
        }
    }
    step(svc, vc);
}

fn repair_sum(sq: &Square) -> (u64, u64) {
    let now = sq.net.engine().now().as_micros();
    let rep = sq.obs.finish_report(0, now, 0);
    let s = rep
        .streams
        .iter()
        .find(|s| s.stream == sq.vc.0)
        .expect("traced stream in report");
    assert!(s.spans > 0, "spans must have closed");
    (s.segs[SegClass::Repair as usize].sum_us, s.spans)
}

/// A chaos link cut mid-stream forces a reroute onto the detour path;
/// the packets that died on the downed link come back via NACK
/// retransmission, and that extra latency must land in the `repair`
/// segment — not be smeared over propagation or queueing.
#[test]
fn chaos_reroute_attributes_extra_latency_to_repair() {
    // Baseline: same world, no fault — repair stays exactly zero.
    let clean = square(7);
    drive_writer(clean.svcs[0].clone(), clean.vc, 400);
    drive_reader(clean.svcs[2].clone(), clean.vc);
    clean.net.engine().run_until(SimTime::from_secs(10));
    let (clean_repair, _) = repair_sum(&clean);
    assert_eq!(
        clean_repair, 0,
        "clean run must attribute nothing to repair"
    );

    // Fault run: cut the a <-> b leg of the reserved path for 500 ms
    // while the stream is in full flight. Routing heals onto a-d-c;
    // the in-flight losses are repaired by retransmission.
    let sq = square(7);
    let chaos = ChaosScheduler::new(&sq.net);
    FaultPlan::new()
        .at_ms(2_000)
        .link_down(sq.nodes[0], sq.nodes[1])
        .for_ms(500)
        .schedule(&chaos);
    drive_writer(sq.svcs[0].clone(), sq.vc, 400);
    drive_reader(sq.svcs[2].clone(), sq.vc);
    sq.net.engine().run_until(SimTime::from_secs(10));
    let (fault_repair, spans) = repair_sum(&sq);
    assert!(
        fault_repair > 0,
        "reroute retransmissions must be charged to repair (spans {spans})"
    );
}
