//! Extension coverage: 1:N stream fan-out carrying data (§3.8's CM
//! multicast shape), dynamic Orch.Add joining a regulated session, and
//! multi-hop resource reservation.

use cm_core::media::MediaProfile;
use cm_core::qos::QosTolerance;
use cm_core::service_class::ServiceClass;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use cm_media::{PlayoutSink, SinkDriver, StoredClip};
use cm_orchestration::OrchestrationPolicy;
use cm_platform::{MonitorDevice, Platform, StorageServer};
use cm_testkit::scenario::MediaStream;
use cm_testkit::{FilmScenario, StackConfig};
use netsim::{line, Engine, LinkParams, TestbedConfig};
use std::cell::Cell;
use std::rc::Rc;

#[test]
fn stream_fan_out_delivers_to_every_sink() {
    // One audio track to three student workstations via one Stream (§3.8:
    // "in a CM based multicast session a simple 1:N topology is usually
    // all that is required").
    let tb = TestbedConfig {
        workstations: 3,
        servers: 1,
        ..TestbedConfig::default()
    }
    .build(Engine::new());
    let platform = Platform::new(tb.net.clone());
    for &n in tb.workstations.iter().chain(tb.servers.iter()) {
        platform.install_node(n);
    }
    let profile = MediaProfile::audio_telephone();
    let server = StorageServer::new(&platform, tb.servers[0]);
    server.store("track", StoredClip::cbr_for(&profile, 30));
    let stream = platform.create_stream(tb.servers[0], &tb.workstations, profile.clone());
    stream.await_open(SimDuration::from_millis(500));
    assert_eq!(stream.vcs().len(), 3);

    // One source actor per branch (the storage server replicates at the
    // source — §3.8 leaves multicast to the subnetwork; source replication
    // is the 1:N shape over unicast links).
    let sources: Vec<_> = stream
        .branches
        .iter()
        .map(|b| {
            let src = cm_media::StoredSource::new(
                platform.service(tb.servers[0]),
                b.vc,
                StoredClip::cbr_for(&profile, 30).reader(),
            );
            src.start_producing();
            src
        })
        .collect();
    let sinks: Vec<Rc<PlayoutSink>> = tb
        .workstations
        .iter()
        .map(|&ws| {
            let s = MonitorDevice::new(&platform, ws).attach(&stream, &profile);
            s.play();
            s
        })
        .collect();
    platform.engine().run_for(SimDuration::from_secs(10));
    for (i, s) in sinks.iter().enumerate() {
        let n = s.log.borrow().len();
        assert!((480..=505).contains(&n), "sink {i} presented {n}");
    }
    drop(sources);
}

#[test]
fn orch_add_brings_a_late_stream_under_regulation() {
    // Start a film; 5 s in, add a captions VC to the live session: it gets
    // regulated (interval records appear for it).
    let f = FilmScenario::build((0, 0), 60, StackConfig::default());
    let started = Rc::new(Cell::new(false));
    let s2 = started.clone();
    let agent = f
        .stack
        .hlo
        .orchestrate_and_start(
            &[f.audio.vc, f.video.vc],
            OrchestrationPolicy::default(),
            move |r| {
                r.expect("start");
                s2.set(true);
            },
        )
        .expect("orchestrate");
    f.stack.run_for(SimDuration::from_secs(5));
    assert!(started.get());

    let caption_profile = MediaProfile::text_captions();
    let captions = MediaStream::build(
        &f.stack,
        f.stack.tb.servers[0],
        f.workstation,
        &caption_profile,
        &StoredClip::cbr_for(&caption_profile, 60),
    );
    captions.source.start_producing();
    captions.sink.play();
    let added = Rc::new(Cell::new(false));
    let a2 = added.clone();
    agent.llo().add_vc(agent.session(), captions.vc, move |r| {
        r.expect("add");
        a2.set(true);
    });
    f.stack.run_for(SimDuration::from_secs(10));
    assert!(added.get(), "Orch.Add must confirm");
    // Note: the agent regulates VCs from its setup list; the added VC is
    // part of the LLO session (taps, group ops). Removing it detaches
    // cleanly while data keeps flowing (table 5).
    let presented_before = captions.sink.log.borrow().len();
    agent.llo().remove_vc(agent.session(), captions.vc);
    f.stack.run_for(SimDuration::from_secs(5));
    let presented_after = captions.sink.log.borrow().len();
    assert!(
        presented_after > presented_before,
        "removed VC must keep flowing (§6.2.4)"
    );
}

#[test]
fn multi_hop_reservation_and_renegotiation() {
    // A 5-node line: reservations are charged on every hop; admission
    // fails end-to-end when any hop is full; renegotiation adjusts all.
    let (net, nodes) = line(
        Engine::new(),
        5,
        LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1)),
        17,
    );
    use cm_core::address::VcId;
    let (a, e) = (nodes[0], nodes[4]);
    // 6 Mb/s over the full line.
    net.reserve_path(VcId(1), a, e, Bandwidth::mbps(6))
        .expect("route")
        .expect("admit");
    // A crossing 6 Mb/s flow over the middle hop must be refused...
    let r = net
        .reserve_path(VcId(2), nodes[1], nodes[3], Bandwidth::mbps(6))
        .expect("route");
    assert!(r.is_err(), "middle hops are charged");
    // ...but fits after the first VC renegotiates down to 3 Mb/s.
    net.renegotiate_reservation(VcId(1), Bandwidth::mbps(3))
        .expect("renegotiate");
    net.reserve_path(VcId(2), nodes[1], nodes[3], Bandwidth::mbps(6))
        .expect("route")
        .expect("admit after renegotiation");
    // Available bandwidth reflects both reservations on the middle hop.
    let avail = net.available_bandwidth(nodes[1], nodes[3]).expect("route");
    assert_eq!(avail, Bandwidth::mbps(1));
    // Releases restore capacity.
    net.release_reservation(VcId(1));
    net.release_reservation(VcId(2));
    assert_eq!(
        net.available_bandwidth(a, e).expect("route"),
        Bandwidth::mbps(10)
    );
}

#[test]
fn hard_guarantee_monitoring_still_reports() {
    // A hard-guarantee VC is monitored too: if the provider fails (here:
    // the source simply stops, violating the throughput floor), the
    // indication still fires — the "at least an indication should be
    // provided" clause of §3.2.
    let mut cfg = StackConfig::default();
    cfg.testbed.workstations = 1;
    cfg.testbed.servers = 1;
    let stack = cm_testkit::Stack::build(cfg);
    let mut req = MediaProfile::audio_telephone().requirement();
    req.guarantee = cm_core::qos::GuaranteeMode::Hard;
    let vc = stack.connect(
        stack.tb.servers[0],
        stack.tb.workstations[0],
        ServiceClass::cm_default(),
        req,
    );
    // 1 s of data, then silence.
    let clip = StoredClip::cbr_for(&MediaProfile::audio_telephone(), 1);
    let src = cm_media::StoredSource::new(
        stack.node(stack.tb.servers[0]).svc.clone(),
        vc,
        clip.reader(),
    );
    src.start_producing();
    let sink = PlayoutSink::new(
        stack.node(stack.tb.workstations[0]).svc.clone(),
        vc,
        MediaProfile::audio_telephone().osdu_rate,
    );
    SinkDriver::register(&stack.node(stack.tb.workstations[0]).llo, vc, &sink);
    sink.play();
    stack.run_for(SimDuration::from_secs(4));
    let reports = stack
        .node(stack.tb.workstations[0])
        .user
        .qos_reports
        .borrow()
        .len();
    assert!(reports >= 1, "hard-guarantee violations must be indicated");
}

#[test]
fn renegotiation_during_active_orchestration_survives() {
    // Upgrade the video contract while the orchestrated film plays: the
    // session keeps regulating, playout never stops, skew stays bounded.
    let f = FilmScenario::build((1000, -1000), 60, StackConfig::default());
    let started = Rc::new(Cell::new(false));
    let s2 = started.clone();
    let agent = f
        .stack
        .hlo
        .orchestrate_and_start(
            &[f.audio.vc, f.video.vc],
            OrchestrationPolicy::lip_sync(),
            move |r| {
                r.expect("start");
                s2.set(true);
            },
        )
        .expect("orchestrate");
    f.stack.run_for(SimDuration::from_secs(10));
    assert!(started.get());
    // Ask for more headroom on the video VC.
    let tol: QosTolerance = MediaProfile::video_colour().tolerance(75);
    f.stack
        .node(f.stack.tb.servers[1])
        .svc
        .t_renegotiate_request(f.video.vc, tol)
        .expect("renegotiate");
    f.stack.run_for(SimDuration::from_secs(20));
    let meter = f.skew_meter();
    let skew = meter.skew_at(SimTime::from_secs(28)).expect("skew");
    assert!(
        skew <= SimDuration::from_millis(80),
        "skew {skew} after mid-session renegotiation"
    );
    assert!(!agent.history().is_empty());
}
