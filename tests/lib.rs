//! Cross-crate integration tests (see `tests/` alongside this file).
//!
//! The per-crate suites cover each layer in isolation; the tests here
//! exercise the full stack the way the paper's applications did and pin
//! the service-interface conformance artefacts (tables 1–6, figure 3).
