//! The Low Level Orchestrator (paper §6).
//!
//! One [`Llo`] instance runs on every node that holds an end of an
//! orchestrated VC (fig. 5). The instance at the *orchestrating node* (the
//! common node) exposes the table-4/5/6 primitives to the HLO agent; the
//! instances at the other ends execute OPDU commands arriving on the
//! orchestration TSAP. The LLO is pure *mechanism*, best-effort (§5): it
//! primes, starts, stops, regulates and reports; all policy (targets,
//! escalation) belongs to the HLO agent above.
//!
//! Mapping of the paper's machinery onto the transport hooks:
//!
//! | paper                                   | here                                  |
//! |-----------------------------------------|---------------------------------------|
//! | prime: fill buffers, hold delivery §6.2.1 | `set_recv_gate(true)` + full-watch  |
//! | start: unblock receive buffers §6.2.2   | `set_recv_gate(false)` + resume       |
//! | stop: freeze via flow control §6.2.3    | `pause_source` + gate                 |
//! | behind: drop at source pointer §6.3.1.1 | `source_drop_one`, spread over interval |
//! | ahead: block via rate adaptation §6.3.1.1 | `set_rate_factor` (paced, no bursts) |
//! | blocking-time statistics §6.3.1.2       | `take_end_stats` per end              |
//! | event matching §6.3.4                   | `VcTap::on_osdu_arrived` vs patterns  |

use crate::msg::{IntervalId, OrchMsg, ORCH_TSAP};
use cm_core::address::{NetAddr, OrchSessionId, TransportAddr, VcId};
use cm_core::error::OrchDenyReason;
use cm_core::osdu::Opdu;
use cm_core::time::{SimDuration, SimTime};
use cm_telemetry::{Layer, Telemetry};
use cm_transport::{EndStats, TransportService, TransportUser, VcRole, VcTap};
use netsim::{EventId, PeriodicTimer};
use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Application-thread callbacks (the `Orch.*.indication`s delivered to the
/// source/sink application threads, §6.2.1, fig. 7).
#[allow(unused_variables)]
pub trait OrchAppHandler {
    /// `Orch.Prime.indication`: start generating data (source) or prepare
    /// to accept it (sink). Return `false` to deny (`Orch.Deny`, §6.2.1).
    fn orch_prime_indication(&self, session: OrchSessionId, vc: VcId) -> bool {
        true
    }

    /// `Orch.Start.indication` (§6.2.2). Primed threads need no special
    /// action — they are already set up and blocked by the protocol.
    fn orch_start_indication(&self, session: OrchSessionId, vc: VcId) {}

    /// `Orch.Stop.indication` (§6.2.3).
    fn orch_stop_indication(&self, session: OrchSessionId, vc: VcId) {}

    /// `Orch.Delayed.indication` (§6.3.3): this thread is producing/
    /// consuming too slowly. Return `false` to give up (`Orch.Deny`).
    fn orch_delayed_indication(&self, session: OrchSessionId, vc: VcId, osdus_behind: u64) -> bool {
        true
    }
}

/// Observer of orchestration outcomes at the orchestrating node — the HLO
/// agent implements this.
#[allow(unused_variables)]
pub trait OrchObserver {
    /// `Orch.Regulate.indication` (table 6): both ends' statistics for a
    /// completed interval.
    fn regulate_indication(&self, session: OrchSessionId, ind: &RegulateIndication) {}

    /// `Orch.Event.indication` (§6.3.4).
    fn event_indication(&self, session: OrchSessionId, vc: VcId, pattern: u64, seq: u64) {}

    /// Response to a prior `Orch.Delayed` (§6.3.3): `gave_up` means the
    /// application denied.
    fn delayed_response(&self, session: OrchSessionId, vc: VcId, gave_up: bool) {}
}

/// The assembled `Orch.Regulate.indication` (table 6).
#[derive(Debug, Clone)]
pub struct RegulateIndication {
    /// The VC reported on.
    pub vc: VcId,
    /// The interval this covers.
    pub interval: IntervalId,
    /// The target that was set.
    pub target_osdu: u64,
    /// Source-end statistics (charged seq, drops, blocking times).
    pub source: EndStats,
    /// Sink-end statistics (delivered seq, losses, blocking times).
    pub sink: EndStats,
}

/// Group operations whose fan-out acks are being collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GroupOpKind {
    Prime,
    Start,
    Stop,
}

/// One-shot verdict callback for a session-establishment fan-out.
type SetupDone = Box<dyn FnOnce(Result<(), OrchDenyReason>)>;

struct PendingGroupOp {
    kind: GroupOpKind,
    /// (vc, end-role) acks still outstanding.
    waiting: Vec<(VcId, VcRole)>,
    /// First denial, if any.
    denial: Option<OrchDenyReason>,
    done: Option<SetupDone>,
}

struct PendingInterval {
    target_osdu: u64,
    source: Option<EndStats>,
    sink: Option<EndStats>,
}

/// Where the ends of an orchestrated VC live relative to this node.
#[derive(Debug, Clone, Copy)]
enum VcEnds {
    /// One end is local (the common-node case, §5).
    Local { role: VcRole, peer: NetAddr },
    /// Both ends are elsewhere — the §7 no-common-node extension. Only
    /// the orchestrating node holds such entries; every command and
    /// every statistic travels as OPDUs to/from both ends.
    Remote { source: NetAddr, sink: NetAddr },
}

impl VcEnds {
    /// Every far node holding an end of the VC (one or two).
    fn far_nodes(&self) -> impl Iterator<Item = NetAddr> {
        let (a, b) = match *self {
            VcEnds::Local { peer, .. } => (peer, None),
            VcEnds::Remote { source, sink } => (source, Some(sink)),
        };
        std::iter::once(a).chain(b)
    }
}

/// Endpoint facts for a VC orchestrated with no local end (§7): supplied
/// by whoever elected this node (the HLO or a supervisor), since the
/// local transport entity cannot resolve the VC itself.
#[derive(Debug, Clone, Copy)]
pub struct RemoteVc {
    /// Node holding the source end.
    pub source: NetAddr,
    /// Node holding the sink end.
    pub sink: NetAddr,
}

struct VcOrchState {
    ends: VcEnds,
    /// Event patterns registered at this (sink) end.
    patterns: Vec<u64>,
    /// Scheduled spread-drop events for the current interval.
    drop_events: Vec<EventId>,
    /// Scheduled release-limit bumps for the current interval (sink end).
    release_events: Vec<EventId>,
    /// End-of-interval harvest timer (one slab slot for the VC's life).
    harvest_timer: PeriodicTimer,
    /// Interval the armed harvest will report on, read at fire time.
    harvest_interval: Option<IntervalId>,
    /// Waiting to send a prime ack once the sink buffer fills.
    priming: bool,
}

struct Session {
    /// Where acks/reports go (`None` at the orchestrating node itself).
    orchestrator: Option<TransportAddr>,
    vcs: BTreeMap<VcId, VcOrchState>,
    /// Orchestrating-node-only group state.
    pending_op: Option<PendingGroupOp>,
    pending_intervals: BTreeMap<(VcId, IntervalId), PendingInterval>,
    observer: Option<Rc<dyn OrchObserver>>,
    /// Callback for a pending session-establishment fan-out.
    pending_setup: Option<(usize, SetupDone)>,
}

struct LloState {
    max_sessions: usize,
    sessions: BTreeMap<OrchSessionId, Session>,
    apps: BTreeMap<VcId, Rc<dyn OrchAppHandler>>,
}

struct LloInner {
    svc: TransportService,
    /// Cached clone of the engine-wide flight recorder.
    tel: Telemetry,
    state: RefCell<LloState>,
}

/// Per-node LLO handle (clones share the instance).
#[derive(Clone)]
pub struct Llo {
    inner: Rc<LloInner>,
}

/// Adapter: OPDU datagrams arriving at the orchestration TSAP.
struct LloUser(Llo);

impl TransportUser for LloUser {
    fn t_datagram_indication(
        &self,
        _svc: &TransportService,
        from: TransportAddr,
        payload: Rc<dyn Any>,
    ) {
        if let Some(msg) = payload.downcast_ref::<OrchMsg>() {
            self.0.on_opdu(from, msg.clone());
        }
    }
}

/// Adapter: per-VC transport tap for event matching (§6.3.4).
struct LloTap {
    llo: Llo,
    session: OrchSessionId,
}

impl VcTap for LloTap {
    fn on_osdu_arrived(&self, vc: VcId, opdu: Opdu) {
        self.llo.on_osdu_arrived(self.session, vc, opdu);
    }
}

impl Llo {
    /// Install an LLO on the node served by `svc`; binds the orchestration
    /// TSAP. `max_sessions` is the table space of §6.1 (rejections with
    /// `NoTableSpace` beyond it).
    pub fn install(svc: TransportService, max_sessions: usize) -> Llo {
        let llo = Llo {
            inner: Rc::new(LloInner {
                tel: svc.network().engine().telemetry().clone(),
                svc: svc.clone(),
                state: RefCell::new(LloState {
                    max_sessions,
                    sessions: BTreeMap::new(),
                    apps: BTreeMap::new(),
                }),
            }),
        };
        svc.bind(ORCH_TSAP, Rc::new(LloUser(llo.clone())))
            .expect("orchestration TSAP already bound");
        llo
    }

    /// The transport service this LLO drives.
    pub fn service(&self) -> &TransportService {
        &self.inner.svc
    }

    /// This node's address.
    pub fn node(&self) -> NetAddr {
        self.inner.svc.node()
    }

    /// This node's local clock reading (the master/datum clock when this
    /// is the orchestrating node, §5 footnote).
    pub fn local_now(&self) -> SimTime {
        self.inner.svc.network().local_time(self.node())
    }

    /// Register the application handler for one VC end at this node.
    pub fn register_app(&self, vc: VcId, handler: Rc<dyn OrchAppHandler>) {
        self.inner.state.borrow_mut().apps.insert(vc, handler);
    }

    fn send_opdu(&self, to_node: NetAddr, msg: OrchMsg) {
        self.inner.svc.send_datagram(
            ORCH_TSAP,
            TransportAddr {
                node: to_node,
                tsap: ORCH_TSAP,
            },
            Rc::new(msg),
            64,
        );
    }

    /// Schedule `f` after a duration measured on this node's local clock.
    fn schedule_local_in(&self, local: SimDuration, f: impl FnOnce() + 'static) -> EventId {
        let clock = self.inner.svc.network().clock(self.node());
        let global = clock.global_duration(local);
        self.inner
            .svc
            .network()
            .engine()
            .schedule_in(global, move |_| f())
    }

    // ==================================================================
    // Orchestrating-node primitives (called by the HLO agent)
    // ==================================================================

    /// `Orch.request` (table 4): create a session over `vcs`. Under the
    /// common-node restriction (§5) every VC has one end at this node;
    /// a VC without a local end is accepted when `remote` supplies its
    /// endpoint facts (the §7 no-common-node extension). The outcome
    /// arrives through `done` (`Orch.confirm` /
    /// `Orch.Release.indication`).
    pub fn orch_request(
        &self,
        session: OrchSessionId,
        vcs: &[VcId],
        remote: &BTreeMap<VcId, RemoteVc>,
        observer: Rc<dyn OrchObserver>,
        done: impl FnOnce(Result<(), OrchDenyReason>) + 'static,
    ) {
        if vcs.is_empty() {
            done(Err(OrchDenyReason::NoSuchVc));
            return;
        }
        // Validate locally first; a VC with no local end must come with
        // endpoint facts (§7 extension), else it is unresolvable here.
        let mut ends = Vec::new();
        for &vc in vcs {
            match (self.inner.svc.role(vc), self.inner.svc.triple(vc)) {
                (Ok(role), Ok(triple)) => {
                    let peer = match role {
                        VcRole::Source => triple.destination.node,
                        VcRole::Sink => triple.source.node,
                    };
                    ends.push((vc, VcEnds::Local { role, peer }));
                }
                _ => match remote.get(&vc) {
                    Some(r) => ends.push((
                        vc,
                        VcEnds::Remote {
                            source: r.source,
                            sink: r.sink,
                        },
                    )),
                    None => {
                        done(Err(OrchDenyReason::NoSuchVc));
                        return;
                    }
                },
            }
        }
        // One ack per far end: local VCs have one, remote VCs have two.
        let acks: usize = ends
            .iter()
            .map(|(_, e)| match e {
                VcEnds::Local { .. } => 1,
                VcEnds::Remote { .. } => 2,
            })
            .sum();
        {
            let mut st = self.inner.state.borrow_mut();
            if st.sessions.len() >= st.max_sessions {
                done(Err(OrchDenyReason::NoTableSpace));
                return;
            }
            let mut vcs_map = BTreeMap::new();
            for &(vc, e) in &ends {
                vcs_map.insert(
                    vc,
                    VcOrchState {
                        ends: e,
                        patterns: Vec::new(),
                        drop_events: Vec::new(),
                        release_events: Vec::new(),
                        harvest_timer: self.make_harvest_timer(session, vc),
                        harvest_interval: None,
                        priming: false,
                    },
                );
            }
            st.sessions.insert(
                session,
                Session {
                    orchestrator: None,
                    vcs: vcs_map,
                    pending_op: None,
                    pending_intervals: BTreeMap::new(),
                    observer: Some(observer),
                    pending_setup: Some((acks, Box::new(done))),
                },
            );
        }
        // Tap local ends and fan out session requests to the far ends.
        let me = TransportAddr {
            node: self.node(),
            tsap: ORCH_TSAP,
        };
        for (vc, e) in ends {
            match e {
                VcEnds::Local { peer, .. } => {
                    let _ = self.inner.svc.register_tap(
                        vc,
                        Rc::new(LloTap {
                            llo: self.clone(),
                            session,
                        }),
                    );
                    self.send_opdu(
                        peer,
                        OrchMsg::SessionReq {
                            session,
                            vc,
                            orchestrator: me,
                        },
                    );
                }
                VcEnds::Remote { source, sink } => {
                    for node in [source, sink] {
                        self.send_opdu(
                            node,
                            OrchMsg::SessionReq {
                                session,
                                vc,
                                orchestrator: me,
                            },
                        );
                    }
                }
            }
        }
    }

    /// `Orch.Release.request` (table 4).
    pub fn orch_release(&self, session: OrchSessionId, reason: OrchDenyReason) {
        let peers: Vec<NetAddr> = {
            let mut st = self.inner.state.borrow_mut();
            match st.sessions.remove(&session) {
                Some(s) => {
                    let engine = self.inner.svc.network().engine().clone();
                    for (vc, vs) in &s.vcs {
                        self.inner.svc.clear_tap(*vc);
                        let _ = self.inner.svc.set_release_limit(*vc, None);
                        for ev in vs.drop_events.iter().chain(&vs.release_events) {
                            engine.cancel(*ev);
                        }
                    }
                    s.vcs.values().flat_map(|v| v.ends.far_nodes()).collect()
                }
                None => return,
            }
        };
        for peer in peers {
            self.send_opdu(peer, OrchMsg::Release { session, reason });
        }
    }

    fn begin_group_op(
        &self,
        session: OrchSessionId,
        kind: GroupOpKind,
        done: impl FnOnce(Result<(), OrchDenyReason>) + 'static,
    ) -> Option<Vec<(VcId, VcEnds)>> {
        let mut st = self.inner.state.borrow_mut();
        let s = match st.sessions.get_mut(&session) {
            Some(s) => s,
            None => {
                drop(st);
                done(Err(OrchDenyReason::NoSuchVc));
                return None;
            }
        };
        // One group op at a time (the HLO serialises).
        assert!(
            s.pending_op.is_none(),
            "overlapping group operations on {session}"
        );
        let ends: Vec<(VcId, VcEnds)> = s.vcs.iter().map(|(&vc, v)| (vc, v.ends)).collect();
        // Each VC contributes two acks, one per end (local or not).
        let mut waiting = Vec::new();
        for &(vc, _) in &ends {
            waiting.push((vc, VcRole::Source));
            waiting.push((vc, VcRole::Sink));
        }
        s.pending_op = Some(PendingGroupOp {
            kind,
            waiting,
            denial: None,
            done: Some(Box::new(done)),
        });
        Some(ends)
    }

    /// `Orch.Prime.request` (table 5, fig. 7): fill the pipelines of every
    /// VC in the session without releasing data to the sink applications.
    /// Completes when every sink buffer is full and every source
    /// application is generating.
    pub fn prime(
        &self,
        session: OrchSessionId,
        done: impl FnOnce(Result<(), OrchDenyReason>) + 'static,
    ) {
        let Some(ends) = self.begin_group_op(session, GroupOpKind::Prime, done) else {
            return;
        };
        for (vc, e) in ends {
            if let VcEnds::Local { role, .. } = e {
                self.prime_local_end(session, vc, role);
            }
            for node in e.far_nodes() {
                self.send_opdu(node, OrchMsg::Prime { session, vc });
            }
        }
    }

    /// `Orch.Start.request` (table 5): atomically release the primed
    /// flows.
    pub fn start(
        &self,
        session: OrchSessionId,
        done: impl FnOnce(Result<(), OrchDenyReason>) + 'static,
    ) {
        let Some(ends) = self.begin_group_op(session, GroupOpKind::Start, done) else {
            return;
        };
        for (vc, e) in ends {
            if let VcEnds::Local { role, .. } = e {
                self.start_local_end(session, vc, role);
            }
            for node in e.far_nodes() {
                self.send_opdu(node, OrchMsg::Start { session, vc });
            }
        }
    }

    /// `Orch.Stop.request` (table 5): freeze the flows; buffered data is
    /// retained for a subsequent primed start (§6.2.3).
    pub fn stop(
        &self,
        session: OrchSessionId,
        done: impl FnOnce(Result<(), OrchDenyReason>) + 'static,
    ) {
        let Some(ends) = self.begin_group_op(session, GroupOpKind::Stop, done) else {
            return;
        };
        for (vc, e) in ends {
            if let VcEnds::Local { role, .. } = e {
                self.stop_local_end(session, vc, role);
            }
            for node in e.far_nodes() {
                self.send_opdu(node, OrchMsg::Stop { session, vc });
            }
        }
    }

    /// `Orch.Add.request` (table 5): join another VC (one end must be
    /// local) to a live session.
    pub fn add_vc(
        &self,
        session: OrchSessionId,
        vc: VcId,
        done: impl FnOnce(Result<(), OrchDenyReason>) + 'static,
    ) {
        let (role, peer) = match (self.inner.svc.role(vc), self.inner.svc.triple(vc)) {
            (Ok(role), Ok(triple)) => (
                role,
                match role {
                    VcRole::Source => triple.destination.node,
                    VcRole::Sink => triple.source.node,
                },
            ),
            _ => {
                done(Err(OrchDenyReason::NoSuchVc));
                return;
            }
        };
        {
            let mut st = self.inner.state.borrow_mut();
            let s = match st.sessions.get_mut(&session) {
                Some(s) => s,
                None => {
                    drop(st);
                    done(Err(OrchDenyReason::NoSuchVc));
                    return;
                }
            };
            s.vcs.insert(
                vc,
                VcOrchState {
                    ends: VcEnds::Local { role, peer },
                    patterns: Vec::new(),
                    drop_events: Vec::new(),
                    release_events: Vec::new(),
                    harvest_timer: self.make_harvest_timer(session, vc),
                    harvest_interval: None,
                    priming: false,
                },
            );
            s.pending_setup = Some((1, Box::new(done)));
        }
        let _ = self.inner.svc.register_tap(
            vc,
            Rc::new(LloTap {
                llo: self.clone(),
                session,
            }),
        );
        self.send_opdu(
            peer,
            OrchMsg::SessionReq {
                session,
                vc,
                orchestrator: TransportAddr {
                    node: self.node(),
                    tsap: ORCH_TSAP,
                },
            },
        );
    }

    /// `Orch.Remove.request` (table 5): detach a VC from the session.
    /// Data may keep flowing — the VC is simply no longer co-ordinated.
    pub fn remove_vc(&self, session: OrchSessionId, vc: VcId) {
        let far: Vec<NetAddr> = {
            let mut st = self.inner.state.borrow_mut();
            let Some(s) = st.sessions.get_mut(&session) else {
                return;
            };
            match s.vcs.remove(&vc) {
                Some(vs) => {
                    let engine = self.inner.svc.network().engine().clone();
                    let _ = self.inner.svc.set_release_limit(vc, None);
                    for ev in vs.drop_events.iter().chain(&vs.release_events) {
                        engine.cancel(*ev);
                    }
                    vs.ends.far_nodes().collect()
                }
                None => Vec::new(),
            }
        };
        self.inner.svc.clear_tap(vc);
        for peer in far {
            self.send_opdu(
                peer,
                OrchMsg::Release {
                    session,
                    reason: OrchDenyReason::UserRelease,
                },
            );
        }
    }

    /// `Orch.Regulate.request` (table 6): set the flow-rate targets for
    /// one VC over the coming interval — `source_target` for the charge
    /// point at the source (compensation acts there: rate retune + drops),
    /// `sink_target` for the paced release of OSDUs to the sink
    /// application (§5). The indication (both ends' statistics) arrives at
    /// the session observer.
    #[allow(clippy::too_many_arguments)]
    pub fn regulate(
        &self,
        session: OrchSessionId,
        vc: VcId,
        interval: IntervalId,
        source_target: u64,
        sink_target: u64,
        max_drop: u64,
        max_rate_ppt: u64,
        spread_drops: bool,
        interval_len: SimDuration,
    ) {
        let ends = {
            let mut st = self.inner.state.borrow_mut();
            let Some(s) = st.sessions.get_mut(&session) else {
                return;
            };
            let Some(vs) = s.vcs.get(&vc) else { return };
            s.pending_intervals.insert(
                (vc, interval),
                PendingInterval {
                    target_osdu: sink_target,
                    source: None,
                    sink: None,
                },
            );
            vs.ends
        };
        match ends {
            VcEnds::Local {
                role: VcRole::Source,
                peer,
            } => {
                // Compensation + source stats locally; release pacing and
                // sink stats at the remote sink.
                self.apply_compensation(
                    session,
                    vc,
                    source_target,
                    max_drop,
                    max_rate_ppt,
                    spread_drops,
                    interval_len,
                );
                self.schedule_harvest(session, vc, interval, interval_len);
                self.send_opdu(
                    peer,
                    OrchMsg::StatRequest {
                        session,
                        vc,
                        interval,
                        target_osdu: sink_target,
                        interval_len,
                    },
                );
            }
            VcEnds::Local {
                role: VcRole::Sink,
                peer,
            } => {
                // Source side is remote: ship the compensation there; pace
                // release locally.
                self.pace_release(session, vc, sink_target, interval_len);
                self.schedule_harvest(session, vc, interval, interval_len);
                self.send_opdu(
                    peer,
                    OrchMsg::Regulate {
                        session,
                        vc,
                        interval,
                        target_osdu: source_target,
                        max_drop,
                        max_rate_ppt,
                        spread_drops,
                        interval_len,
                    },
                );
            }
            VcEnds::Remote { source, sink } => {
                // §7: both ends are elsewhere — ship the compensation to
                // the source and the pacing to the sink; both halves of
                // the statistics come back as IntervalReports.
                self.send_opdu(
                    source,
                    OrchMsg::Regulate {
                        session,
                        vc,
                        interval,
                        target_osdu: source_target,
                        max_drop,
                        max_rate_ppt,
                        spread_drops,
                        interval_len,
                    },
                );
                self.send_opdu(
                    sink,
                    OrchMsg::StatRequest {
                        session,
                        vc,
                        interval,
                        target_osdu: sink_target,
                        interval_len,
                    },
                );
            }
        }
    }

    /// Pace the release of buffered OSDUs at this (sink) end: raise the
    /// release cap in unit steps spread across the interval so that
    /// exactly `target` units are releasable by its end (§5).
    fn pace_release(
        &self,
        session: OrchSessionId,
        vc: VcId,
        target: u64,
        interval_len: SimDuration,
    ) {
        let Ok(buf) = self.inner.svc.recv_handle(vc) else {
            return;
        };
        let from = buf
            .release_limit()
            .unwrap_or_else(|| self.inner.svc.sink_delivery_point(vc).unwrap_or(0));
        let engine = self.inner.svc.network().engine().clone();
        {
            let mut st = self.inner.state.borrow_mut();
            if let Some(vs) = st
                .sessions
                .get_mut(&session)
                .and_then(|s| s.vcs.get_mut(&vc))
            {
                for ev in vs.release_events.drain(..) {
                    engine.cancel(ev);
                }
            }
        }
        let steps = target.saturating_sub(from);
        if steps == 0 {
            // Already at (or past) the target: hold the line.
            let _ = self.inner.svc.set_release_limit(vc, Some(target.max(from)));
            return;
        }
        let mut events = Vec::with_capacity(steps as usize);
        for i in 1..=steps {
            let at = interval_len.mul_ratio(i, steps);
            let svc = self.inner.svc.clone();
            let ev = self.schedule_local_in(at, move || {
                let _ = svc.set_release_limit(vc, Some(from + i));
            });
            events.push(ev);
        }
        let mut st = self.inner.state.borrow_mut();
        if let Some(vs) = st
            .sessions
            .get_mut(&session)
            .and_then(|s| s.vcs.get_mut(&vc))
        {
            vs.release_events = events;
        }
    }

    /// `Orch.Delayed.request` (table 6, §6.3.3): tell the application
    /// thread at `end` of `vc` that it is `osdus_behind` too slow.
    pub fn delayed(&self, session: OrchSessionId, vc: VcId, end: VcRole, osdus_behind: u64) {
        let ends = {
            let st = self.inner.state.borrow();
            let Some(s) = st.sessions.get(&session) else {
                return;
            };
            let Some(vs) = s.vcs.get(&vc) else { return };
            vs.ends
        };
        let remote_node = match ends {
            VcEnds::Local { role, .. } if role == end => {
                // Local application thread.
                let ok = self.indicate_delayed(session, vc, osdus_behind);
                self.notify_delayed_response(session, vc, !ok);
                return;
            }
            VcEnds::Local { peer, .. } => peer,
            VcEnds::Remote { source, sink } => match end {
                VcRole::Source => source,
                VcRole::Sink => sink,
            },
        };
        self.send_opdu(
            remote_node,
            OrchMsg::Delayed {
                session,
                vc,
                osdus_behind,
            },
        );
    }

    /// `Orch.Event.request` (table 6, §6.3.4): match `pattern` against the
    /// event fields of OSDUs arriving at `vc`'s sink.
    pub fn register_event(&self, session: OrchSessionId, vc: VcId, pattern: u64) {
        let sink_node = {
            let mut st = self.inner.state.borrow_mut();
            let Some(s) = st.sessions.get_mut(&session) else {
                return;
            };
            let Some(vs) = s.vcs.get_mut(&vc) else { return };
            match vs.ends {
                VcEnds::Local {
                    role: VcRole::Sink, ..
                } => {
                    vs.patterns.push(pattern);
                    return;
                }
                VcEnds::Local {
                    role: VcRole::Source,
                    peer,
                } => peer,
                VcEnds::Remote { sink, .. } => sink,
            }
        };
        self.send_opdu(
            sink_node,
            OrchMsg::EventReg {
                session,
                vc,
                pattern,
            },
        );
    }

    /// Flush both ends of a VC (stop + seek support, §6.2.1).
    pub fn flush_vc(&self, session: OrchSessionId, vc: VcId) {
        let far: Vec<NetAddr> = {
            let st = self.inner.state.borrow();
            let Some(s) = st.sessions.get(&session) else {
                return;
            };
            let Some(vs) = s.vcs.get(&vc) else { return };
            vs.ends.far_nodes().collect()
        };
        let _ = self.inner.svc.flush_local(vc);
        for node in far {
            self.send_opdu(node, OrchMsg::Flush { session, vc });
        }
    }

    // ==================================================================
    // Local end mechanics
    // ==================================================================

    fn app_for(&self, vc: VcId) -> Option<Rc<dyn OrchAppHandler>> {
        self.inner.state.borrow().apps.get(&vc).cloned()
    }

    /// Prime this node's end of `vc`; acks flow to the orchestrator (which
    /// may be ourselves).
    fn prime_local_end(&self, session: OrchSessionId, vc: VcId, role: VcRole) {
        match role {
            VcRole::Source => {
                // A stopped source's protocol is paused; priming must let
                // transmission refill the pipeline (delivery stays gated at
                // the sink, fig. 7).
                let _ = self.inner.svc.resume_source(vc);
                let ready = self
                    .app_for(vc)
                    .map(|h| h.orch_prime_indication(session, vc))
                    .unwrap_or(true);
                let result = if ready {
                    Ok(())
                } else {
                    Err(OrchDenyReason::ApplicationNotReady)
                };
                self.deliver_ack(session, vc, VcRole::Source, GroupOpKind::Prime, result);
            }
            VcRole::Sink => {
                let now = self.inner.svc.now();
                let _ = self.inner.svc.set_recv_gate(vc, true);
                let ready = self
                    .app_for(vc)
                    .map(|h| h.orch_prime_indication(session, vc))
                    .unwrap_or(true);
                if !ready {
                    self.deliver_ack(
                        session,
                        vc,
                        VcRole::Sink,
                        GroupOpKind::Prime,
                        Err(OrchDenyReason::ApplicationNotReady),
                    );
                    return;
                }
                let buf = match self.inner.svc.recv_handle(vc) {
                    Ok(b) => b,
                    Err(_) => {
                        self.deliver_ack(
                            session,
                            vc,
                            VcRole::Sink,
                            GroupOpKind::Prime,
                            Err(OrchDenyReason::NoSuchVc),
                        );
                        return;
                    }
                };
                if buf.is_full() {
                    self.deliver_ack(session, vc, VcRole::Sink, GroupOpKind::Prime, Ok(()));
                    return;
                }
                // Mark priming and wait for the buffer to fill (§6.2.1:
                // "when the receive buffers are eventually full, each sink
                // LLO notifies the [orchestrating] LLO").
                {
                    let mut st = self.inner.state.borrow_mut();
                    if let Some(s) = st.sessions.get_mut(&session) {
                        if let Some(vs) = s.vcs.get_mut(&vc) {
                            vs.priming = true;
                        }
                    }
                }
                let llo = self.clone();
                let engine = self.inner.svc.network().engine().clone();
                buf.set_full_watch(move || {
                    // Trampoline out of the buffer's borrow context.
                    let llo2 = llo.clone();
                    engine.schedule_in(SimDuration::ZERO, move |_| {
                        llo2.on_sink_buffer_full(session, vc);
                    });
                });
                let _ = now;
            }
        }
    }

    fn on_sink_buffer_full(&self, session: OrchSessionId, vc: VcId) {
        let was_priming = {
            let mut st = self.inner.state.borrow_mut();
            match st
                .sessions
                .get_mut(&session)
                .and_then(|s| s.vcs.get_mut(&vc))
            {
                Some(vs) if vs.priming => {
                    vs.priming = false;
                    true
                }
                _ => false,
            }
        };
        if was_priming {
            if let Ok(buf) = self.inner.svc.recv_handle(vc) {
                buf.clear_full_watch();
            }
            self.deliver_ack(session, vc, VcRole::Sink, GroupOpKind::Prime, Ok(()));
        }
    }

    fn start_local_end(&self, session: OrchSessionId, vc: VcId, role: VcRole) {
        match role {
            VcRole::Source => {
                let _ = self.inner.svc.resume_source(vc);
            }
            VcRole::Sink => {
                let _ = self.inner.svc.set_recv_gate(vc, false);
            }
        }
        if let Some(h) = self.app_for(vc) {
            h.orch_start_indication(session, vc);
        }
        self.deliver_ack(session, vc, role, GroupOpKind::Start, Ok(()));
    }

    fn stop_local_end(&self, session: OrchSessionId, vc: VcId, role: VcRole) {
        match role {
            VcRole::Source => {
                let _ = self.inner.svc.pause_source(vc);
            }
            VcRole::Sink => {
                // Make the buffers unavailable *before* they drain (§6.2.3).
                let _ = self.inner.svc.set_recv_gate(vc, true);
            }
        }
        if let Some(h) = self.app_for(vc) {
            h.orch_stop_indication(session, vc);
        }
        self.deliver_ack(session, vc, role, GroupOpKind::Stop, Ok(()));
    }

    /// Route a (possibly local) ack toward the orchestrating node's group
    /// op.
    fn deliver_ack(
        &self,
        session: OrchSessionId,
        vc: VcId,
        end: VcRole,
        kind: GroupOpKind,
        result: Result<(), OrchDenyReason>,
    ) {
        let orchestrator = {
            let st = self.inner.state.borrow();
            st.sessions.get(&session).and_then(|s| s.orchestrator)
        };
        match orchestrator {
            None => self.collect_ack(session, vc, end, kind, result),
            Some(addr) => {
                let msg = match kind {
                    GroupOpKind::Prime => OrchMsg::PrimeAck {
                        session,
                        vc,
                        result,
                    },
                    GroupOpKind::Start => OrchMsg::StartAck { session, vc },
                    GroupOpKind::Stop => OrchMsg::StopAck { session, vc },
                };
                self.send_opdu(addr.node, msg);
            }
        }
    }

    /// Orchestrating node: account one ack; fire the op callback when all
    /// are in.
    fn collect_ack(
        &self,
        session: OrchSessionId,
        vc: VcId,
        end: VcRole,
        kind: GroupOpKind,
        result: Result<(), OrchDenyReason>,
    ) {
        let finished = {
            let mut st = self.inner.state.borrow_mut();
            let Some(s) = st.sessions.get_mut(&session) else {
                return;
            };
            let Some(op) = s.pending_op.as_mut() else {
                return;
            };
            if op.kind != kind {
                return; // stale ack from a previous op
            }
            if let Some(pos) = op.waiting.iter().position(|&(v, e)| v == vc && e == end) {
                op.waiting.swap_remove(pos);
            }
            if let Err(r) = result {
                op.denial.get_or_insert(r);
            }
            if op.waiting.is_empty() {
                let mut op = s.pending_op.take().expect("pending op present");
                Some((op.done.take().expect("callback present"), op.denial))
            } else {
                None
            }
        };
        if let Some((done, denial)) = finished {
            match denial {
                Some(r) => done(Err(r)),
                None => done(Ok(())),
            }
        }
    }

    // ==================================================================
    // Regulation mechanics (§6.3.1)
    // ==================================================================

    /// Source-side compensation toward `target_osdu` by the end of the
    /// interval: retune the pacing rate (bounded), and spread up to
    /// `max_drop` source drops across the interval (§6.3.1.1).
    #[allow(clippy::too_many_arguments)]
    fn apply_compensation(
        &self,
        session: OrchSessionId,
        vc: VcId,
        target_osdu: u64,
        max_drop: u64,
        max_rate_ppt: u64,
        spread_drops: bool,
        interval_len: SimDuration,
    ) {
        let Ok((charged, _dropped, _next)) = self.inner.svc.source_progress(vc) else {
            return;
        };
        let Ok(rate) = self.inner.svc.osdu_rate(vc) else {
            return;
        };
        let needed = target_osdu.saturating_sub(charged);

        // All arithmetic in milli-units (×1000) so that intervals holding
        // a fractional number of units (e.g. 12.5 video frames per 500 ms)
        // do not read as deficits and trigger spurious drops.
        let per_us = rate.per.as_micros().max(1) as u128;
        let base_x1000 =
            ((interval_len.as_micros() as u128 * rate.units as u128 * 1000) / per_us).max(1) as u64;
        let needed_x1000 = needed.saturating_mul(1000);
        let reachable_x1000 = base_x1000.saturating_mul(max_rate_ppt.max(1000)) / 1000;

        // Fine-grained correction: retune the pacing rate within the
        // policy bound (speed-up capped at `max_rate_ppt`; slow-down floor
        // 1/2). The paper's "ahead → block" maps to a factor < 1 — a paced
        // slow-down avoids the jitter a hard block would create, §6.3.1.1.
        let num = needed_x1000.clamp(base_x1000 / 2, reachable_x1000).max(1);
        let _ = self.inner.svc.set_rate_factor(vc, num, base_x1000);

        // Drops cover what pacing alone cannot reach (§6.3.1.1: "if a
        // connection is behind, its sole compensatory strategy is to drop
        // OSDUs").
        let drops = (needed_x1000.saturating_sub(reachable_x1000) / 1000).min(max_drop);

        // Cancel any unexecuted drops from the previous interval, then
        // spread the new ones evenly to avoid jitter bunching (§6.3.1.1).
        let engine = self.inner.svc.network().engine().clone();
        {
            let mut st = self.inner.state.borrow_mut();
            if let Some(vs) = st
                .sessions
                .get_mut(&session)
                .and_then(|s| s.vcs.get_mut(&vc))
            {
                for ev in vs.drop_events.drain(..) {
                    engine.cancel(ev);
                }
            }
        }
        if drops == 0 {
            return;
        }
        let mut events = Vec::new();
        for i in 0..drops {
            // Spread evenly across the interval (§6.3.1.1), or bunch at
            // the start for the A1 ablation.
            let frac = if spread_drops {
                interval_len.mul_ratio(i + 1, drops + 1)
            } else {
                SimDuration::from_micros(i + 1)
            };
            let svc = self.inner.svc.clone();
            let ev = self.schedule_local_in(frac, move || {
                // Re-check at fire time: if the source caught up in the
                // meantime, dropping would overshoot the target.
                let still_behind = svc
                    .source_progress(vc)
                    .map(|(charged, _, _)| charged < target_osdu)
                    .unwrap_or(false);
                if still_behind {
                    let _ = svc.source_drop_one(vc);
                }
            });
            events.push(ev);
        }
        let mut st = self.inner.state.borrow_mut();
        if let Some(vs) = st
            .sessions
            .get_mut(&session)
            .and_then(|s| s.vcs.get_mut(&vc))
        {
            vs.drop_events = events;
        }
    }

    /// Build the harvest timer for one VC's orchestration state. The weak
    /// upgrade makes a firing after LLO teardown a silent no-op, and keeps
    /// the engine-owned closure from pinning the LLO alive.
    fn make_harvest_timer(&self, session: OrchSessionId, vc: VcId) -> PeriodicTimer {
        let weak = Rc::downgrade(&self.inner);
        PeriodicTimer::new(self.inner.svc.network().engine(), move |_| {
            if let Some(inner) = weak.upgrade() {
                Llo { inner }.harvest_fire(session, vc);
            }
        })
    }

    /// Schedule an end-of-interval stats harvest for this node's end.
    ///
    /// Normally the VC's harvest timer carries this; but clock skew can
    /// stretch a local interval past the master's, so the next interval's
    /// harvest can be requested while the previous one is still pending.
    /// Both must fire (each reports its own interval), so the overlap case
    /// falls back to a one-shot event, exactly as every harvest was
    /// scheduled before the timer existed.
    fn schedule_harvest(
        &self,
        session: OrchSessionId,
        vc: VcId,
        interval: IntervalId,
        interval_len: SimDuration,
    ) {
        let timer_busy = {
            let st = self.inner.state.borrow();
            match st.sessions.get(&session).and_then(|s| s.vcs.get(&vc)) {
                Some(vs) => vs.harvest_interval.is_some(),
                None => return,
            }
        };
        if timer_busy {
            let llo = self.clone();
            self.schedule_local_in(interval_len, move || {
                llo.harvest_now(session, vc, interval);
            });
            return;
        }
        let clock = self.inner.svc.network().clock(self.node());
        let global = clock.global_duration(interval_len);
        let mut st = self.inner.state.borrow_mut();
        if let Some(vs) = st
            .sessions
            .get_mut(&session)
            .and_then(|s| s.vcs.get_mut(&vc))
        {
            vs.harvest_interval = Some(interval);
            vs.harvest_timer.arm_in(global);
        }
    }

    fn harvest_fire(&self, session: OrchSessionId, vc: VcId) {
        let interval = {
            let mut st = self.inner.state.borrow_mut();
            st.sessions
                .get_mut(&session)
                .and_then(|s| s.vcs.get_mut(&vc))
                .and_then(|vs| vs.harvest_interval.take())
        };
        if let Some(interval) = interval {
            self.harvest_now(session, vc, interval);
        }
    }

    fn harvest_now(&self, session: OrchSessionId, vc: VcId, interval: IntervalId) {
        let Ok(stats) = self.inner.svc.take_end_stats(vc) else {
            return;
        };
        let role = match self.inner.svc.role(vc) {
            Ok(r) => r,
            Err(_) => return,
        };
        let orchestrator = {
            let st = self.inner.state.borrow();
            st.sessions.get(&session).and_then(|s| s.orchestrator)
        };
        match orchestrator {
            None => self.accept_interval_stats(session, vc, interval, role, stats),
            Some(addr) => self.send_opdu(
                addr.node,
                OrchMsg::IntervalReport {
                    session,
                    vc,
                    interval,
                    stats,
                },
            ),
        }
    }

    /// Orchestrating node: fold one end's stats into the pending interval;
    /// emit `Orch.Regulate.indication` when both halves are present.
    fn accept_interval_stats(
        &self,
        session: OrchSessionId,
        vc: VcId,
        interval: IntervalId,
        end: VcRole,
        stats: EndStats,
    ) {
        let ready = {
            let mut st = self.inner.state.borrow_mut();
            let Some(s) = st.sessions.get_mut(&session) else {
                return;
            };
            let Some(p) = s.pending_intervals.get_mut(&(vc, interval)) else {
                return;
            };
            match end {
                VcRole::Source => p.source = Some(stats),
                VcRole::Sink => p.sink = Some(stats),
            }
            if p.source.is_some() && p.sink.is_some() {
                let p = s
                    .pending_intervals
                    .remove(&(vc, interval))
                    .expect("pending interval present");
                let observer = s.observer.clone();
                Some((
                    observer,
                    RegulateIndication {
                        vc,
                        interval,
                        target_osdu: p.target_osdu,
                        source: p.source.expect("source half"),
                        sink: p.sink.expect("sink half"),
                    },
                ))
            } else {
                None
            }
        };
        if let Some((observer, ind)) = ready {
            if self.inner.tel.enabled() {
                let at = self.inner.svc.network().engine().now();
                self.inner
                    .tel
                    .instant(at, Layer::Orchestration, "llo.harvest", |e| {
                        e.u64("vc", ind.vc.0)
                            .u64("interval", ind.interval.0)
                            .u64("target", ind.target_osdu)
                            .u64("source_seq", ind.source.seq_progress)
                            .u64("sink_seq", ind.sink.seq_progress)
                            .u64("dropped", ind.source.dropped)
                            .u64("lost", ind.sink.lost);
                    });
            }
            if let Some(o) = observer {
                o.regulate_indication(session, &ind);
            }
        }
    }

    fn indicate_delayed(&self, session: OrchSessionId, vc: VcId, behind: u64) -> bool {
        self.app_for(vc)
            .map(|h| h.orch_delayed_indication(session, vc, behind))
            .unwrap_or(true)
    }

    fn notify_delayed_response(&self, session: OrchSessionId, vc: VcId, gave_up: bool) {
        let observer = {
            let st = self.inner.state.borrow();
            st.sessions.get(&session).and_then(|s| s.observer.clone())
        };
        if let Some(o) = observer {
            o.delayed_response(session, vc, gave_up);
        }
    }

    // ==================================================================
    // OPDU dispatch (remote-LLO side + ack collection)
    // ==================================================================

    /// The role of the far end that sent an ack/report for `vc` — derived
    /// from our stored end layout (and, for §7 remote VCs, the sender's
    /// address, since we hold no end ourselves).
    fn sender_end(&self, session: OrchSessionId, vc: VcId, from: NetAddr) -> Option<VcRole> {
        let st = self.inner.state.borrow();
        let vs = st.sessions.get(&session)?.vcs.get(&vc)?;
        match vs.ends {
            VcEnds::Local { role, .. } => Some(match role {
                VcRole::Source => VcRole::Sink,
                VcRole::Sink => VcRole::Source,
            }),
            VcEnds::Remote { source, sink } => {
                if from == source {
                    Some(VcRole::Source)
                } else if from == sink {
                    Some(VcRole::Sink)
                } else {
                    None
                }
            }
        }
    }

    fn on_opdu(&self, from: TransportAddr, msg: OrchMsg) {
        match msg {
            OrchMsg::SessionReq {
                session,
                vc,
                orchestrator,
            } => {
                let verdict = self.accept_session_req(session, vc, orchestrator);
                self.send_opdu(
                    from.node,
                    OrchMsg::SessionAck {
                        session,
                        vc,
                        reject: verdict.err(),
                    },
                );
            }
            OrchMsg::SessionAck {
                session,
                vc,
                reject,
            } => self.on_session_ack(session, vc, reject),
            OrchMsg::Release { session, .. } => {
                let mut st = self.inner.state.borrow_mut();
                if let Some(s) = st.sessions.remove(&session) {
                    for vc in s.vcs.keys() {
                        self.inner.svc.clear_tap(*vc);
                    }
                }
            }
            OrchMsg::Prime { session, vc } => {
                if let Ok(role) = self.inner.svc.role(vc) {
                    self.prime_local_end(session, vc, role);
                }
            }
            OrchMsg::PrimeAck {
                session,
                vc,
                result,
            } => {
                if let Some(end) = self.sender_end(session, vc, from.node) {
                    self.collect_ack(session, vc, end, GroupOpKind::Prime, result);
                }
            }
            OrchMsg::Start { session, vc } => {
                if let Ok(role) = self.inner.svc.role(vc) {
                    self.start_local_end(session, vc, role);
                }
            }
            OrchMsg::StartAck { session, vc } => {
                if let Some(end) = self.sender_end(session, vc, from.node) {
                    self.collect_ack(session, vc, end, GroupOpKind::Start, Ok(()));
                }
            }
            OrchMsg::Stop { session, vc } => {
                if let Ok(role) = self.inner.svc.role(vc) {
                    self.stop_local_end(session, vc, role);
                }
            }
            OrchMsg::StopAck { session, vc } => {
                if let Some(end) = self.sender_end(session, vc, from.node) {
                    self.collect_ack(session, vc, end, GroupOpKind::Stop, Ok(()));
                }
            }
            OrchMsg::Regulate {
                session,
                vc,
                interval,
                target_osdu,
                max_drop,
                max_rate_ppt,
                spread_drops,
                interval_len,
            } => {
                self.apply_compensation(
                    session,
                    vc,
                    target_osdu,
                    max_drop,
                    max_rate_ppt,
                    spread_drops,
                    interval_len,
                );
                self.schedule_harvest(session, vc, interval, interval_len);
            }
            OrchMsg::StatRequest {
                session,
                vc,
                interval,
                target_osdu,
                interval_len,
            } => {
                self.pace_release(session, vc, target_osdu, interval_len);
                self.schedule_harvest(session, vc, interval, interval_len);
            }
            OrchMsg::IntervalReport {
                session,
                vc,
                interval,
                stats,
            } => {
                // Arriving at the orchestrating node: attribute the half
                // to whichever far end sent it.
                if let Some(end) = self.sender_end(session, vc, from.node) {
                    self.accept_interval_stats(session, vc, interval, end, stats);
                }
            }
            OrchMsg::Delayed {
                session,
                vc,
                osdus_behind,
            } => {
                let ok = self.indicate_delayed(session, vc, osdus_behind);
                self.send_opdu(
                    from.node,
                    OrchMsg::DelayedAck {
                        session,
                        vc,
                        result: if ok {
                            Ok(())
                        } else {
                            Err(OrchDenyReason::ApplicationGaveUp)
                        },
                    },
                );
            }
            OrchMsg::DelayedAck {
                session,
                vc,
                result,
            } => {
                self.notify_delayed_response(session, vc, result.is_err());
            }
            OrchMsg::EventReg {
                session,
                vc,
                pattern,
            } => {
                let mut st = self.inner.state.borrow_mut();
                if let Some(vs) = st
                    .sessions
                    .get_mut(&session)
                    .and_then(|s| s.vcs.get_mut(&vc))
                {
                    vs.patterns.push(pattern);
                }
            }
            OrchMsg::EventInd {
                session,
                vc,
                pattern,
                seq,
            } => {
                let observer = {
                    let st = self.inner.state.borrow();
                    st.sessions.get(&session).and_then(|s| s.observer.clone())
                };
                if let Some(o) = observer {
                    o.event_indication(session, vc, pattern, seq);
                }
            }
            OrchMsg::Flush { session: _, vc } => {
                let _ = self.inner.svc.flush_local(vc);
            }
        }
    }

    fn accept_session_req(
        &self,
        session: OrchSessionId,
        vc: VcId,
        orchestrator: TransportAddr,
    ) -> Result<(), OrchDenyReason> {
        let (role, peer) = match (self.inner.svc.role(vc), self.inner.svc.triple(vc)) {
            (Ok(role), Ok(triple)) => (
                role,
                match role {
                    VcRole::Source => triple.destination.node,
                    VcRole::Sink => triple.source.node,
                },
            ),
            _ => return Err(OrchDenyReason::NoSuchVc),
        };
        {
            let mut st = self.inner.state.borrow_mut();
            let is_new = !st.sessions.contains_key(&session);
            if is_new && st.sessions.len() >= st.max_sessions {
                return Err(OrchDenyReason::NoTableSpace);
            }
            let s = st.sessions.entry(session).or_insert_with(|| Session {
                orchestrator: Some(orchestrator),
                vcs: BTreeMap::new(),
                pending_op: None,
                pending_intervals: BTreeMap::new(),
                observer: None,
                pending_setup: None,
            });
            s.vcs.insert(
                vc,
                VcOrchState {
                    ends: VcEnds::Local { role, peer },
                    patterns: Vec::new(),
                    drop_events: Vec::new(),
                    release_events: Vec::new(),
                    harvest_timer: self.make_harvest_timer(session, vc),
                    harvest_interval: None,
                    priming: false,
                },
            );
        }
        let _ = self.inner.svc.register_tap(
            vc,
            Rc::new(LloTap {
                llo: self.clone(),
                session,
            }),
        );
        Ok(())
    }

    fn on_session_ack(&self, session: OrchSessionId, _vc: VcId, reject: Option<OrchDenyReason>) {
        let finished = {
            let mut st = self.inner.state.borrow_mut();
            let Some(s) = st.sessions.get_mut(&session) else {
                return;
            };
            let Some((remaining, _)) = s.pending_setup.as_mut() else {
                return;
            };
            *remaining -= 1;
            if let Some(r) = reject {
                let (_, done) = s.pending_setup.take().expect("setup pending");
                st.sessions.remove(&session);
                Some((done, Some(r)))
            } else if *remaining == 0 {
                let (_, done) = s.pending_setup.take().expect("setup pending");
                Some((done, None))
            } else {
                None
            }
        };
        if let Some((done, reject)) = finished {
            match reject {
                Some(r) => {
                    // Tell the accepted peers to forget the session.
                    self.orch_release(session, r);
                    done(Err(r));
                }
                None => done(Ok(())),
            }
        }
    }

    /// Tap callback: an OSDU reached `vc`'s receive buffer at this node.
    fn on_osdu_arrived(&self, session: OrchSessionId, vc: VcId, opdu: Opdu) {
        let Some(event) = opdu.event else { return };
        let (matched, orchestrator) = {
            let st = self.inner.state.borrow();
            let Some(s) = st.sessions.get(&session) else {
                return;
            };
            let Some(vs) = s.vcs.get(&vc) else { return };
            (vs.patterns.contains(&event), s.orchestrator)
        };
        if !matched {
            return;
        }
        match orchestrator {
            None => {
                let observer = {
                    let st = self.inner.state.borrow();
                    st.sessions.get(&session).and_then(|s| s.observer.clone())
                };
                if let Some(o) = observer {
                    o.event_indication(session, vc, event, opdu.seq);
                }
            }
            Some(addr) => self.send_opdu(
                addr.node,
                OrchMsg::EventInd {
                    session,
                    vc,
                    pattern: event,
                    seq: opdu.seq,
                },
            ),
        }
    }
}
