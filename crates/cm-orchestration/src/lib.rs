//! # cm-orchestration — multi-stream orchestration (paper §5–6)
//!
//! The three-level orchestration architecture of *"A Continuous Media
//! Transport and Orchestration Service"*:
//!
//! - [`hlo::Hlo`] — the platform-facing High Level Orchestrator: finds the
//!   endpoints of the connections to be co-ordinated, picks the
//!   orchestrating node (the common node, fig. 5) and instantiates agents;
//! - [`agent::HloAgent`] — per-session feedback controller (fig. 6):
//!   interval targets, drift compensation, bottleneck diagnosis from
//!   blocking times, policy escalation;
//! - [`llo::Llo`] — per-node Low Level Orchestrator: the table-4/5/6
//!   primitive mechanisms (prime / start / stop / add / remove, regulate /
//!   delayed / event) over the transport's orchestration hooks.
//!
//! [`clock_sync::ClockSync`] adds the NTP-style offset estimation the
//! paper leaves as future work, enabling sessions with no common node.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agent;
pub mod clock_sync;
pub mod hlo;
pub mod llo;
pub mod msg;
pub mod policy;
pub mod supervise;

pub use agent::{AgentAction, Bottleneck, HloAgent, IntervalRecord};
pub use clock_sync::{ClockSync, OffsetSample};
pub use hlo::Hlo;
pub use llo::{Llo, OrchAppHandler, OrchObserver, RegulateIndication, RemoteVc};
pub use msg::{IntervalId, OrchMsg, ORCH_TSAP};
pub use policy::{FailureAction, OrchestrationPolicy};
pub use supervise::{Supervisor, SupervisorConfig};
