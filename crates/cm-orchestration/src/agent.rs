//! The HLO agent — the policy half of orchestration (paper §5, fig. 6).
//!
//! One agent runs at the orchestrating node per session. It drives the LLO
//! group primitives (prime / start / stop), and runs the continuous
//! feedback loop of fig. 6: at every interval boundary it computes a
//! per-VC `target-OSDU#` from the master clock (the orchestrating node's
//! own clock — the datum of the common-node scheme), issues
//! `Orch.Regulate.request`s, reads the end-of-interval indications, and
//! compensates relative drift. When a VC persistently misses targets the
//! agent diagnoses the bottleneck from the blocking-time statistics
//! (§6.3.1.2): application threads blocked → protocol throughput too low →
//! renegotiate QoS; protocol threads blocked → application too slow →
//! `Orch.Delayed`.

use crate::clock_sync::ClockSync;
use crate::llo::{Llo, OrchObserver, RegulateIndication, RemoteVc};
use crate::msg::IntervalId;
use crate::policy::{FailureAction, OrchestrationPolicy};
use cm_core::address::{OrchSessionId, VcId};
use cm_core::error::OrchDenyReason;
use cm_core::qos::QosTolerance;
use cm_core::time::{Rate, SimDuration, SimTime};
use cm_telemetry::{Layer, Telemetry};
use cm_transport::VcRole;
use netsim::PeriodicTimer;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// The bottleneck diagnosis derived from interval blocking times
/// (§6.3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bottleneck {
    /// Everything on target.
    None,
    /// Application threads blocked → protocol throughput too low.
    ProtocolStarved,
    /// Source protocol blocked on an empty buffer → source application
    /// producing too slowly.
    SourceAppSlow,
    /// Receive buffer full → sink application consuming too slowly.
    SinkAppSlow,
}

impl Bottleneck {
    /// Stable lower-case slug (telemetry fields).
    pub fn name(self) -> &'static str {
        match self {
            Bottleneck::None => "none",
            Bottleneck::ProtocolStarved => "protocol_starved",
            Bottleneck::SourceAppSlow => "source_app_slow",
            Bottleneck::SinkAppSlow => "sink_app_slow",
        }
    }
}

/// One interval's outcome for one VC, kept for experiments and the
/// session's observers.
#[derive(Debug, Clone)]
pub struct IntervalRecord {
    /// The interval.
    pub interval: IntervalId,
    /// The VC.
    pub vc: VcId,
    /// The target that was set (table 6 `target-OSDU#`).
    pub target: u64,
    /// Source progress achieved (charged seq).
    pub source_seq: u64,
    /// Sink progress achieved (in-order delivery point).
    pub sink_seq: u64,
    /// Source drops this interval.
    pub dropped: u64,
    /// Sink losses this interval.
    pub lost: u64,
    /// The diagnosis for this interval.
    pub bottleneck: Bottleneck,
    /// Master-clock time the indication was folded in.
    pub at_master: SimTime,
}

/// Escalations the agent performed (visible to tests/experiments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentAction {
    /// Reported a persistent miss without intervening.
    Reported(VcId, Bottleneck),
    /// Requested a QoS upgrade on the VC (protocol-starved).
    RenegotiatedQos(VcId),
    /// Sent `Orch.Delayed` to the slow application end.
    Delayed(VcId, VcRole),
    /// Stopped the session after an application gave up.
    StoppedSession,
}

/// Hook invoked on `(vc, seq, mark)` event-mark arrivals.
type EventHook = Box<dyn Fn(VcId, u64, u64)>;

struct VcCtl {
    rate: Rate,
    /// Latest known source charged seq (from indications).
    last_charged: u64,
    /// Latest known sink in-order seq.
    last_sink: u64,
    /// Consecutive intervals missing the target.
    misses: u32,
    /// Pipeline-occupancy setpoint (units between source charge point and
    /// sink delivery point), captured at the first regulate after start:
    /// the primed backlog that regulation must preserve, not drain.
    pipeline_setpoint: Option<u64>,
}

struct AgentState {
    vcs: BTreeMap<VcId, VcCtl>,
    running: bool,
    master_start: Option<SimTime>,
    paused_at: Option<SimTime>,
    total_paused: SimDuration,
    next_interval: u64,
    /// Regulation-interval timer; created on first start, re-armed each
    /// interval, disarmed (but kept) across stop/start cycles.
    interval_timer: Option<PeriodicTimer>,
    history: Vec<IntervalRecord>,
    actions: Vec<AgentAction>,
    on_event: Option<EventHook>,
    /// Optional external time reference: the master clock becomes the
    /// *reference node's* clock, read through the NTP-style offset
    /// estimate (the §7 no-common-node extension).
    time_ref: Option<(ClockSync, cm_core::address::NetAddr)>,
    /// Optional common epoch on the reference timeline (lets independent
    /// agents align their ideal-position timelines).
    epoch: Option<SimTime>,
    /// Endpoint facts for VCs with no end at this node (§7 extension):
    /// layout and rate for the LLO and target computation, plus the
    /// pipeline backlog to preserve. Supplied by the elector.
    remote: BTreeMap<VcId, (RemoteVc, Rate, u64)>,
}

struct AgentInner {
    llo: Llo,
    session: OrchSessionId,
    policy: OrchestrationPolicy,
    /// Cached clone of the engine-wide flight recorder.
    tel: Telemetry,
    state: RefCell<AgentState>,
}

/// HLO agent handle (clones share the agent).
#[derive(Clone)]
pub struct HloAgent {
    inner: Rc<AgentInner>,
}

struct AgentObserver(Rc<AgentInner>);

impl OrchObserver for AgentObserver {
    fn regulate_indication(&self, _session: OrchSessionId, ind: &RegulateIndication) {
        HloAgent {
            inner: self.0.clone(),
        }
        .on_indication(ind);
    }

    fn event_indication(&self, _session: OrchSessionId, vc: VcId, pattern: u64, seq: u64) {
        let st = self.0.state.borrow();
        if let Some(f) = &st.on_event {
            f(vc, pattern, seq);
        }
    }

    fn delayed_response(&self, _session: OrchSessionId, _vc: VcId, gave_up: bool) {
        if gave_up {
            let agent = HloAgent {
                inner: self.0.clone(),
            };
            agent
                .inner
                .state
                .borrow_mut()
                .actions
                .push(AgentAction::StoppedSession);
            agent.stop(|_| {});
        }
    }
}

impl HloAgent {
    /// Create an agent for `session` at the orchestrating node's LLO.
    pub fn new(llo: Llo, session: OrchSessionId, policy: OrchestrationPolicy) -> HloAgent {
        HloAgent {
            inner: Rc::new(AgentInner {
                tel: llo.service().network().engine().telemetry().clone(),
                llo,
                session,
                policy,
                state: RefCell::new(AgentState {
                    vcs: BTreeMap::new(),
                    running: false,
                    master_start: None,
                    paused_at: None,
                    total_paused: SimDuration::ZERO,
                    next_interval: 0,
                    interval_timer: None,
                    history: Vec::new(),
                    actions: Vec::new(),
                    on_event: None,
                    time_ref: None,
                    epoch: None,
                    remote: BTreeMap::new(),
                }),
            }),
        }
    }

    /// The session this agent controls.
    pub fn session(&self) -> OrchSessionId {
        self.inner.session
    }

    /// The LLO this agent drives.
    pub fn llo(&self) -> &Llo {
        &self.inner.llo
    }

    /// The policy this agent runs.
    pub fn policy(&self) -> &OrchestrationPolicy {
        &self.inner.policy
    }

    /// Whether the regulation loop is currently running.
    pub fn is_running(&self) -> bool {
        self.inner.state.borrow().running
    }

    /// The session's effective media epoch on the master timeline: the
    /// start instant advanced past every pause. A supervisor checkpoints
    /// this so a re-elected agent continues the ideal-position timeline
    /// instead of restarting it from zero (DESIGN.md §9).
    pub fn effective_epoch(&self) -> Option<SimTime> {
        let st = self.inner.state.borrow();
        st.master_start.map(|s| s + st.total_paused)
    }

    /// Use `reference` node's clock (read through `cs`'s offset estimate)
    /// as the master clock instead of this node's own — the §7
    /// "no common node" extension. Recalibrate `cs` periodically to bound
    /// the residual rate error.
    pub fn set_time_reference(&self, cs: ClockSync, reference: cm_core::address::NetAddr) {
        self.inner.state.borrow_mut().time_ref = Some((cs, reference));
    }

    /// Pin the session's media epoch to an instant on the master timeline
    /// (independent agents sharing a reference can align their ideals).
    pub fn set_master_epoch(&self, epoch: SimTime) {
        self.inner.state.borrow_mut().epoch = Some(epoch);
    }

    /// Read the master clock: this node's local clock, or the reference
    /// node's clock via the offset estimate.
    pub fn master_now(&self) -> SimTime {
        let local = self.inner.llo.local_now();
        let st = self.inner.state.borrow();
        match &st.time_ref {
            Some((cs, peer)) => {
                let off = cs.offset_to(*peer).map(|s| s.offset_us).unwrap_or(0);
                let t = local.as_micros() as i64 + off;
                SimTime::from_micros(t.max(0) as u64)
            }
            None => local,
        }
    }

    /// Supply endpoint facts for a VC with no end at this node (§7): its
    /// layout and rate (the local transport cannot resolve it) and the
    /// current pipeline backlog, so regulation preserves rather than
    /// drains the in-flight data. Call before [`HloAgent::setup`].
    pub fn hint_remote(&self, vc: VcId, ends: RemoteVc, rate: Rate, pipeline_setpoint: u64) {
        self.inner
            .state
            .borrow_mut()
            .remote
            .insert(vc, (ends, rate, pipeline_setpoint));
    }

    /// Establish the orchestration session over `vcs` (table 4). Each VC
    /// must have one end at this node, or endpoint facts supplied via
    /// [`HloAgent::hint_remote`] (§7 extension).
    pub fn setup(&self, vcs: &[VcId], done: impl FnOnce(Result<(), OrchDenyReason>) + 'static) {
        let remote_ends = {
            let mut st = self.inner.state.borrow_mut();
            for &vc in vcs {
                let hint = st.remote.get(&vc).copied();
                let rate = self
                    .inner
                    .llo
                    .service()
                    .osdu_rate(vc)
                    .ok()
                    .or(hint.map(|(_, r, _)| r))
                    .unwrap_or(Rate::per_second(1));
                st.vcs.insert(
                    vc,
                    VcCtl {
                        rate,
                        last_charged: 0,
                        last_sink: 0,
                        misses: 0,
                        pipeline_setpoint: hint.map(|(_, _, sp)| sp),
                    },
                );
            }
            st.remote
                .iter()
                .map(|(&vc, &(ends, _, _))| (vc, ends))
                .collect::<BTreeMap<_, _>>()
        };
        let observer = Rc::new(AgentObserver(self.inner.clone()));
        self.inner
            .llo
            .orch_request(self.inner.session, vcs, &remote_ends, observer, done);
    }

    /// `Orch.Prime` the whole group (fig. 7).
    pub fn prime(&self, done: impl FnOnce(Result<(), OrchDenyReason>) + 'static) {
        self.inner.llo.prime(self.inner.session, done);
    }

    /// `Orch.Start` the group and begin the regulation loop (fig. 6).
    pub fn start(&self, done: impl FnOnce(Result<(), OrchDenyReason>) + 'static) {
        let me = self.clone();
        self.inner.llo.start(self.inner.session, move |r| {
            if r.is_ok() {
                me.on_started();
            }
            done(r);
        });
    }

    /// `Orch.Stop` the group; regulation pauses and the media positions
    /// are retained for a subsequent start (§6.2.3).
    pub fn stop(&self, done: impl FnOnce(Result<(), OrchDenyReason>) + 'static) {
        {
            let now = self.master_now();
            let mut st = self.inner.state.borrow_mut();
            st.running = false;
            st.paused_at = Some(now);
            if let Some(t) = &st.interval_timer {
                t.disarm();
            }
        }
        self.inner.llo.stop(self.inner.session, done);
    }

    /// Flush every VC's buffers (stop + seek, §6.2.1). Only meaningful
    /// while stopped.
    pub fn flush_all(&self) {
        let vcs: Vec<VcId> = self.inner.state.borrow().vcs.keys().copied().collect();
        for vc in vcs {
            self.inner.llo.flush_vc(self.inner.session, vc);
        }
    }

    /// Release the session (table 4).
    pub fn release(&self) {
        {
            let mut st = self.inner.state.borrow_mut();
            st.running = false;
            if let Some(t) = &st.interval_timer {
                t.disarm();
            }
        }
        self.inner
            .llo
            .orch_release(self.inner.session, OrchDenyReason::UserRelease);
    }

    /// Register an `Orch.Event` pattern on a VC (§6.3.4); indications
    /// arrive at the callback installed with [`HloAgent::on_event`].
    pub fn register_event(&self, vc: VcId, pattern: u64) {
        self.inner
            .llo
            .register_event(self.inner.session, vc, pattern);
    }

    /// Install the event-indication callback `(vc, pattern, seq)`.
    pub fn on_event(&self, f: impl Fn(VcId, u64, u64) + 'static) {
        self.inner.state.borrow_mut().on_event = Some(Box::new(f));
    }

    /// The per-interval history (experiments read this).
    pub fn history(&self) -> Vec<IntervalRecord> {
        self.inner.state.borrow().history.clone()
    }

    /// Escalation actions taken so far.
    pub fn actions(&self) -> Vec<AgentAction> {
        self.inner.state.borrow().actions.clone()
    }

    /// Current inter-stream skew in media time: the spread of the media
    /// positions of all VCs at the latest indications.
    pub fn current_skew(&self) -> SimDuration {
        let st = self.inner.state.borrow();
        let mut lo: Option<SimTime> = None;
        let mut hi: Option<SimTime> = None;
        for ctl in st.vcs.values() {
            let pos = ctl.rate.due_time(SimTime::ZERO, ctl.last_sink);
            lo = Some(lo.map_or(pos, |l| l.min(pos)));
            hi = Some(hi.map_or(pos, |h| h.max(pos)));
        }
        match (lo, hi) {
            (Some(l), Some(h)) => h.saturating_since(l),
            _ => SimDuration::ZERO,
        }
    }

    // ------------------------------------------------------------------

    fn on_started(&self) {
        {
            let now = self.master_now();
            let mut st = self.inner.state.borrow_mut();
            st.running = true;
            if st.master_start.is_none() {
                st.master_start = Some(st.epoch.unwrap_or(now));
            } else if let Some(p) = st.paused_at.take() {
                st.total_paused += now.saturating_since(p);
            }
        }
        self.schedule_interval();
    }

    fn schedule_interval(&self) {
        let interval = self.inner.policy.interval;
        // Regulate *now* for the interval ending one interval ahead, then
        // reschedule.
        self.issue_regulates();
        let clock = self
            .inner
            .llo
            .service()
            .network()
            .clock(self.inner.llo.node());
        let global = clock.global_duration(interval);
        let mut st = self.inner.state.borrow_mut();
        if st.interval_timer.is_none() {
            let weak = Rc::downgrade(&self.inner);
            st.interval_timer = Some(PeriodicTimer::new(
                self.inner.llo.service().network().engine(),
                move |_| {
                    if let Some(inner) = weak.upgrade() {
                        let me = HloAgent { inner };
                        if me.inner.state.borrow().running {
                            me.schedule_interval();
                        }
                    }
                },
            ));
        }
        st.interval_timer.as_ref().unwrap().arm_in(global);
    }

    /// Fig. 6: set each VC's target for the interval ending one interval
    /// from now, derived from the master clock and clamped to the policy's
    /// correction limit.
    fn issue_regulates(&self) {
        let now = self.master_now();
        let interval = self.inner.policy.interval;
        let plan: Vec<(VcId, IntervalId, u64, u64, u64)> = {
            let mut st = self.inner.state.borrow_mut();
            let Some(start) = st.master_start else {
                return;
            };
            let elapsed_at_end =
                now.saturating_since(start).saturating_sub(st.total_paused) + interval;
            let iid = IntervalId(st.next_interval);
            st.next_interval += 1;
            let policy = &self.inner.policy;
            let svc = self.inner.llo.service().clone();
            st.vcs
                .iter_mut()
                .map(|(&vc, ctl)| {
                    // Table 6: target-OSDU# is the sequence that "should
                    // ideally be delivered to the sink application at
                    // precisely the end of the interval" — derived from the
                    // master clock. Compensation acts at the *source*, so
                    // the wire target adds the pipeline-occupancy setpoint
                    // (the primed backlog): aiming the charge point at the
                    // sink ideal would silently drain the jitter buffer.
                    let ideal = ctl.rate.units_in(elapsed_at_end);
                    let setpoint = *ctl.pipeline_setpoint.get_or_insert_with(|| {
                        // Seed from whichever end is local.
                        if let Ok((charged, _, _)) = svc.source_progress(vc) {
                            charged.saturating_sub(ctl.last_sink)
                        } else if let Ok(buf) = svc.recv_handle(vc) {
                            buf.len() as u64
                        } else {
                            0
                        }
                    });
                    (
                        vc,
                        iid,
                        ideal + setpoint,
                        ideal,
                        policy.max_drop_per_interval,
                    )
                })
                .collect()
        };
        let max_rate_ppt = 1000 + self.inner.policy.rate_nudge_limit_ppt;
        if self.inner.tel.enabled() {
            let at = self.inner.llo.service().network().engine().now();
            for &(vc, iid, source_target, sink_target, _) in &plan {
                self.inner
                    .tel
                    .instant(at, Layer::Orchestration, "hlo.regulate", |e| {
                        e.u64("vc", vc.0)
                            .u64("interval", iid.0)
                            .u64("source_target", source_target)
                            .u64("sink_target", sink_target);
                    });
            }
        }
        for (vc, iid, source_target, sink_target, max_drop) in plan {
            self.inner.llo.regulate(
                self.inner.session,
                vc,
                iid,
                source_target,
                sink_target,
                max_drop,
                max_rate_ppt,
                self.inner.policy.spread_drops,
                interval,
            );
        }
    }

    fn on_indication(&self, ind: &RegulateIndication) {
        let now = self.master_now();
        let diagnosis = self.diagnose(ind);
        let escalate = {
            let mut st = self.inner.state.borrow_mut();
            let Some(ctl) = st.vcs.get_mut(&ind.vc) else {
                return;
            };
            ctl.last_charged = ind.source.seq_progress;
            ctl.last_sink = ind.sink.seq_progress;
            let tolerance_units = ctl.rate.units_in(self.inner.policy.sync_tolerance).max(1);
            let missed = ind.sink.seq_progress + tolerance_units < ind.target_osdu;
            if missed {
                ctl.misses += 1;
            } else {
                ctl.misses = 0;
            }
            let escalate = missed && ctl.misses >= self.inner.policy.failure_patience;
            if escalate {
                ctl.misses = 0;
            }
            st.history.push(IntervalRecord {
                interval: ind.interval,
                vc: ind.vc,
                target: ind.target_osdu,
                source_seq: ind.source.seq_progress,
                sink_seq: ind.sink.seq_progress,
                dropped: ind.source.dropped,
                lost: ind.sink.lost,
                bottleneck: diagnosis,
                at_master: now,
            });
            if self.inner.tel.enabled() {
                let at = self.inner.llo.service().network().engine().now();
                if missed {
                    self.inner.tel.count("hlo.miss", 1);
                }
                self.inner
                    .tel
                    .instant(at, Layer::Orchestration, "hlo.indication", |e| {
                        e.u64("vc", ind.vc.0)
                            .u64("interval", ind.interval.0)
                            .u64("target", ind.target_osdu)
                            .u64("source_seq", ind.source.seq_progress)
                            .u64("sink_seq", ind.sink.seq_progress)
                            .bool("missed", missed)
                            .str("bottleneck", diagnosis.name());
                    });
            }
            escalate
        };
        if escalate {
            if self.inner.tel.enabled() {
                let at = self.inner.llo.service().network().engine().now();
                self.inner.tel.count("hlo.escalate", 1);
                self.inner
                    .tel
                    .instant(at, Layer::Orchestration, "hlo.escalate", |e| {
                        e.u64("vc", ind.vc.0).str("bottleneck", diagnosis.name());
                    });
            }
            self.escalate(ind.vc, diagnosis, ind);
        }
    }

    /// §6.3.1.2: read the blocking times. Application blocked → protocol
    /// too slow; protocol blocked → application too slow.
    fn diagnose(&self, ind: &RegulateIndication) -> Bottleneck {
        let half = self.inner.policy.interval.mul_ratio(1, 2);
        if ind.sink.proto_blocked > half {
            Bottleneck::SinkAppSlow
        } else if ind.source.proto_blocked > half {
            Bottleneck::SourceAppSlow
        } else if ind.source.app_blocked > half || ind.sink.app_blocked > half {
            Bottleneck::ProtocolStarved
        } else {
            Bottleneck::None
        }
    }

    fn escalate(&self, vc: VcId, diagnosis: Bottleneck, ind: &RegulateIndication) {
        let behind = ind.target_osdu.saturating_sub(ind.sink.seq_progress);
        match (self.inner.policy.on_failure, diagnosis) {
            (FailureAction::Report, _) | (_, Bottleneck::None) => {
                self.inner
                    .state
                    .borrow_mut()
                    .actions
                    .push(AgentAction::Reported(vc, diagnosis));
            }
            (FailureAction::RenegotiateQos, Bottleneck::ProtocolStarved)
            | (FailureAction::RenegotiateQos, Bottleneck::SinkAppSlow)
            | (FailureAction::RenegotiateQos, Bottleneck::SourceAppSlow) => {
                if diagnosis == Bottleneck::ProtocolStarved {
                    // Upgrade throughput 25% (§3.3's dynamic QoS control).
                    if let Ok(contract) = self.inner.llo.service().contract(vc) {
                        let mut pref = contract;
                        pref.throughput =
                            cm_core::time::Bandwidth::bps(contract.throughput.as_bps() * 5 / 4);
                        let tol = QosTolerance {
                            preferred: pref,
                            worst: contract,
                        };
                        let _ = self.inner.llo.service().t_renegotiate_request(vc, tol);
                        self.inner
                            .state
                            .borrow_mut()
                            .actions
                            .push(AgentAction::RenegotiatedQos(vc));
                    }
                } else {
                    let end = if diagnosis == Bottleneck::SinkAppSlow {
                        VcRole::Sink
                    } else {
                        VcRole::Source
                    };
                    self.inner.llo.delayed(self.inner.session, vc, end, behind);
                    self.inner
                        .state
                        .borrow_mut()
                        .actions
                        .push(AgentAction::Delayed(vc, end));
                }
            }
            (FailureAction::DelayThenStop, d) => {
                let end = if d == Bottleneck::SinkAppSlow {
                    VcRole::Sink
                } else {
                    VcRole::Source
                };
                self.inner.llo.delayed(self.inner.session, vc, end, behind);
                self.inner
                    .state
                    .borrow_mut()
                    .actions
                    .push(AgentAction::Delayed(vc, end));
            }
        }
    }
}
