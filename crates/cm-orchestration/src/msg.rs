//! Orchestrator PDUs (OPDUs) exchanged between LLO instances (§5).
//!
//! Session management and group primitives travel as datagrams to each
//! node's well-known orchestration TSAP; per-interval regulation and event
//! notifications do too. All orchestration traffic rides the network's
//! control class — the paper's out-of-band connections "with guaranteed
//! bandwidth" (§5).

use cm_core::address::{OrchSessionId, TransportAddr, VcId};
use cm_core::error::OrchDenyReason;
use cm_core::time::{SimDuration, SimTime};
use cm_transport::EndStats;

/// The well-known TSAP every LLO instance binds for orchestration OPDUs.
pub const ORCH_TSAP: cm_core::address::Tsap = cm_core::address::Tsap(0xFFFE);

/// Identifies one regulation interval within a session (table 6
/// `interval-id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntervalId(pub u64);

/// OPDUs between LLO instances.
#[derive(Debug, Clone)]
pub enum OrchMsg {
    /// Orchestrating LLO → peer LLO: join `vc` to the session (table 4,
    /// `Orch.request` leg).
    SessionReq {
        /// Session id allocated by the HLO (§6.1).
        session: OrchSessionId,
        /// The VC whose far end lives at the receiving node.
        vc: VcId,
        /// Where acks and reports go.
        orchestrator: TransportAddr,
    },
    /// Peer LLO → orchestrating LLO: verdict on `SessionReq`.
    SessionAck {
        /// Session id.
        session: OrchSessionId,
        /// The VC covered.
        vc: VcId,
        /// Rejection reason, if refused (no table space, unknown VC…).
        reject: Option<OrchDenyReason>,
    },
    /// Orchestrating LLO → peer LLO: the session (or one VC of it) is
    /// released (table 4).
    Release {
        /// Session id.
        session: OrchSessionId,
        /// Why.
        reason: OrchDenyReason,
    },
    /// Prime one VC (table 5, fig. 7): the receiving LLO gates its sink
    /// buffer and/or tells its application thread to start producing.
    Prime {
        /// Session id.
        session: OrchSessionId,
        /// The VC to prime at this node.
        vc: VcId,
    },
    /// Peer → orchestrator: prime progress for `vc` at this end.
    PrimeAck {
        /// Session id.
        session: OrchSessionId,
        /// The VC.
        vc: VcId,
        /// `Ok(())` when this end is ready (source producing / sink buffer
        /// full); `Err` if the application denied (§6.2.1 `Orch.Deny`).
        result: Result<(), OrchDenyReason>,
    },
    /// Start the flow on one VC at this node (table 5): open the sink gate
    /// and/or resume the source.
    Start {
        /// Session id.
        session: OrchSessionId,
        /// The VC.
        vc: VcId,
    },
    /// Peer → orchestrator: start executed.
    StartAck {
        /// Session id.
        session: OrchSessionId,
        /// The VC.
        vc: VcId,
    },
    /// Freeze the flow on one VC at this node (table 5): pause the source
    /// and/or close the sink gate before it drains (§6.2.3).
    Stop {
        /// Session id.
        session: OrchSessionId,
        /// The VC.
        vc: VcId,
    },
    /// Peer → orchestrator: stop executed.
    StopAck {
        /// Session id.
        session: OrchSessionId,
        /// The VC.
        vc: VcId,
    },
    /// Orchestrator → source-end LLO: flow-rate target for the coming
    /// interval (table 6, `Orch.Regulate.request`).
    Regulate {
        /// Session id.
        session: OrchSessionId,
        /// The VC to regulate.
        vc: VcId,
        /// Matches the eventual report (table 6 `interval-id`).
        interval: IntervalId,
        /// OSDU sequence number that should ideally be charged at the
        /// source by the end of the interval (table 6 `target-OSDU#`).
        target_osdu: u64,
        /// Maximum OSDUs the source may discard to catch up (table 6
        /// `max-drop#`).
        max_drop: u64,
        /// Upper bound on the pacing-rate factor, in parts per thousand
        /// (policy: fine-grained corrections stay within the contracted
        /// QoS; anything beyond is covered by drops, §6.3.1.1).
        max_rate_ppt: u64,
        /// Spread drops across the interval (§6.3.1.1) or execute them
        /// back-to-back (ablation A1).
        spread_drops: bool,
        /// Interval length (table 6 `interval-length`).
        interval_len: SimDuration,
    },
    /// Either-end LLO → orchestrator: the end's statistics for a completed
    /// interval (feeds `Orch.Regulate.indication`).
    IntervalReport {
        /// Session id.
        session: OrchSessionId,
        /// The VC.
        vc: VcId,
        /// Which interval.
        interval: IntervalId,
        /// Blocking times and progress harvested at this end (§6.3.1.2).
        stats: EndStats,
    },
    /// Orchestrator → sink-end LLO: pace the release of buffered OSDUs to
    /// the application toward `target_osdu` by interval end (§5: quanta
    /// are released "at times determined by the HLO initiated targets"),
    /// and harvest this end's stats at interval end.
    StatRequest {
        /// Session id.
        session: OrchSessionId,
        /// The VC.
        vc: VcId,
        /// Which interval.
        interval: IntervalId,
        /// Release target: total OSDUs releasable by interval end.
        target_osdu: u64,
        /// Interval length.
        interval_len: SimDuration,
    },
    /// Orchestrator → application-end LLO: the application thread is too
    /// slow (table 6, `Orch.Delayed`).
    Delayed {
        /// Session id.
        session: OrchSessionId,
        /// The VC.
        vc: VcId,
        /// How many OSDUs behind the target (table 6 `OSDUs-behind`).
        osdus_behind: u64,
    },
    /// Application-end LLO → orchestrator: the application's answer to
    /// `Delayed` (`Err` = it gave up, `Orch.Deny`).
    DelayedAck {
        /// Session id.
        session: OrchSessionId,
        /// The VC.
        vc: VcId,
        /// Acknowledgement or denial.
        result: Result<(), OrchDenyReason>,
    },
    /// Orchestrator → sink-end LLO: register interest in an event pattern
    /// (table 6, `Orch.Event.request`, §6.3.4).
    EventReg {
        /// Session id.
        session: OrchSessionId,
        /// The VC whose OSDUs are matched.
        vc: VcId,
        /// The opaque pattern, matched verbatim against OPDU event fields.
        pattern: u64,
    },
    /// Sink-end LLO → orchestrator: an OSDU matched a registered pattern
    /// (`Orch.Event.indication`).
    EventInd {
        /// Session id.
        session: OrchSessionId,
        /// The VC.
        vc: VcId,
        /// The matched pattern.
        pattern: u64,
        /// The sequence number of the matching OSDU.
        seq: u64,
    },
    /// Orchestrator → peer LLO: flush this end's buffered OSDUs (stop +
    /// seek, §6.2.1: stale media must not play after a reposition).
    Flush {
        /// Session id.
        session: OrchSessionId,
        /// The VC to flush at this node.
        vc: VcId,
    },
}

/// Clock-synchronisation messages (the §7 "no common node" extension) —
/// exchanged on the dedicated clock-sync TSAP, NTP-style (\[Mills,89\]).
#[derive(Debug, Clone, Copy)]
pub enum ClockMsg {
    /// Probe: requester's local send time.
    Probe {
        /// Correlates the echo.
        nonce: u64,
        /// Requester's local clock at transmission.
        t1_local: SimTime,
    },
    /// Echo: remote receive/transmit times on the remote clock.
    Echo {
        /// Correlates with the probe.
        nonce: u64,
        /// Echoed requester send time.
        t1_local: SimTime,
        /// Remote clock at probe receipt.
        t2_remote: SimTime,
        /// Remote clock at echo transmission.
        t3_remote: SimTime,
    },
}

/// The well-known TSAP for clock-sync probes.
pub const CLOCK_TSAP: cm_core::address::Tsap = cm_core::address::Tsap(0xFFFD);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opdu_is_cloneable_and_carries_ids() {
        let m = OrchMsg::Regulate {
            session: OrchSessionId(1),
            vc: VcId(2),
            interval: IntervalId(3),
            target_osdu: 100,
            max_drop: 2,
            max_rate_ppt: 1100,
            spread_drops: true,
            interval_len: SimDuration::from_millis(500),
        };
        let m2 = m.clone();
        match m2 {
            OrchMsg::Regulate {
                session,
                vc,
                interval,
                target_osdu,
                max_drop,
                max_rate_ppt,
                spread_drops,
                interval_len,
            } => {
                assert_eq!(session, OrchSessionId(1));
                assert!(spread_drops);
                assert_eq!(vc, VcId(2));
                assert_eq!(interval, IntervalId(3));
                assert_eq!(target_osdu, 100);
                assert_eq!(max_drop, 2);
                assert_eq!(max_rate_ppt, 1100);
                assert_eq!(interval_len, SimDuration::from_millis(500));
            }
            _ => panic!("wrong variant"),
        }
    }
}
