//! Orchestration policy (§5: applications specify "constraints on how
//! 'strict' the continuous synchronisation should be and actions to take
//! on failure"; the HLO turns policy into LLO mechanism).

use cm_core::time::SimDuration;

/// What the HLO agent does when a VC persistently misses its targets
/// despite LLO-level compensation (§5, §6.3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureAction {
    /// Only report through the session's observer.
    Report,
    /// Renegotiate the failing VC's QoS upward (protocol-starved case).
    RenegotiateQos,
    /// Tell the slow application thread to speed up (`Orch.Delayed`);
    /// stop the whole session if it gives up.
    DelayThenStop,
}

/// Per-session orchestration policy.
#[derive(Debug, Clone)]
pub struct OrchestrationPolicy {
    /// Regulation interval length (fig. 6). Shorter = tighter sync, more
    /// control traffic — the F6 ablation sweeps this.
    pub interval: SimDuration,
    /// Maximum OSDUs a VC may discard per interval to catch up (table 6
    /// `max-drop#`). Zero for no-loss media such as voice (§6.3.1.1).
    pub max_drop_per_interval: u64,
    /// Bound on the LLO's rate-factor compensation, in parts per thousand
    /// around unity (e.g. 100 = factors within [0.9, 1.1]).
    pub rate_nudge_limit_ppt: u64,
    /// Inter-stream skew (in media time) the application tolerates before
    /// the failure action is taken.
    pub sync_tolerance: SimDuration,
    /// How many consecutive intervals a VC may miss its target before the
    /// failure action fires.
    pub failure_patience: u32,
    /// What to do then.
    pub on_failure: FailureAction,
    /// Spread compensation drops evenly across the interval (§6.3.1.1:
    /// "the LLO must take responsibility for attempting to spread
    /// compensatory actions over the length of the target interval to
    /// avoid unnecessary jitter"). `false` executes them back-to-back at
    /// the interval start — kept only for the A1 ablation.
    pub spread_drops: bool,
}

impl Default for OrchestrationPolicy {
    fn default() -> Self {
        OrchestrationPolicy {
            interval: SimDuration::from_millis(500),
            max_drop_per_interval: 2,
            rate_nudge_limit_ppt: 100,
            sync_tolerance: SimDuration::from_millis(80),
            failure_patience: 4,
            on_failure: FailureAction::Report,
            spread_drops: true,
        }
    }
}

impl OrchestrationPolicy {
    /// Lip-sync strictness: ±80 ms detectability threshold, small drop
    /// budget on the video, 500 ms intervals.
    pub fn lip_sync() -> OrchestrationPolicy {
        OrchestrationPolicy::default()
    }

    /// No-loss policy for voice-grade media: compensation by rate nudging
    /// only (§6.3.1.1: "a max-drop# of zero will often be chosen where a
    /// no-loss medium such as voice is involved").
    pub fn no_loss() -> OrchestrationPolicy {
        OrchestrationPolicy {
            max_drop_per_interval: 0,
            ..OrchestrationPolicy::default()
        }
    }

    /// Clamp a proposed rational rate factor `num/den` to the policy's
    /// nudge limit, returning the clamped `(num, den)`.
    pub fn clamp_factor(&self, num: u64, den: u64) -> (u64, u64) {
        if den == 0 {
            return (1, 1);
        }
        let lo_num = 1000 - self.rate_nudge_limit_ppt.min(500);
        let hi_num = 1000 + self.rate_nudge_limit_ppt;
        // Compare num/den against lo_num/1000 and hi_num/1000.
        if num * 1000 < lo_num * den {
            (lo_num, 1000)
        } else if num * 1000 > hi_num * den {
            (hi_num, 1000)
        } else {
            (num, den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_factor_bounds() {
        let p = OrchestrationPolicy::default(); // ±10%
        assert_eq!(p.clamp_factor(1, 1), (1, 1));
        assert_eq!(p.clamp_factor(105, 100), (105, 100));
        assert_eq!(p.clamp_factor(2, 1), (1100, 1000));
        assert_eq!(p.clamp_factor(1, 2), (900, 1000));
        assert_eq!(p.clamp_factor(1, 0), (1, 1));
    }

    #[test]
    fn no_loss_has_zero_drop_budget() {
        assert_eq!(OrchestrationPolicy::no_loss().max_drop_per_interval, 0);
    }
}
