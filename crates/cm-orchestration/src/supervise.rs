//! Orchestrator supervision: dead-node detection and re-election
//! (DESIGN.md §9).
//!
//! The orchestrating node is a single point of failure: every regulation
//! target and every end-of-interval indication flows through it (fig. 6).
//! A [`Supervisor`] watches a session from outside the orchestrating
//! node and restores regulation when that node dies:
//!
//! - **Detection signal** — regulation indications normally complete
//!   every policy interval (both stat halves folded). The supervisor
//!   samples the watched agent's indication count each interval; after
//!   [`SupervisorConfig::patience`] intervals with no growth while the
//!   session is running, the orchestrating node is suspect.
//! - **Evidence gate** — as in the transport healer, the triggering
//!   signal alone is ambiguous (a congested network also stalls
//!   indications). The supervisor confirms against the infrastructure:
//!   it re-elects only when the orchestrating node is actually down;
//!   otherwise the stall counter resets and regulation is left to the
//!   agent's own escalation machinery.
//! - **Repair** — re-run the fig.-5 election over the surviving LLOs
//!   (the dead node excluded, VCs with a dead endpoint dropped), create
//!   a fresh agent there under a new session id, seed it with the
//!   checkpointed media epoch so the ideal-position timeline continues
//!   rather than restarting, and start it. Telemetry: `hlo.reelect`.
//! - **Bounded give-up** — after [`SupervisorConfig::max_reelections`]
//!   re-elections, or when no eligible candidate survives, supervision
//!   stops and `hlo.reelect.giveup` is recorded.

use crate::agent::HloAgent;
use crate::hlo::{elect_node, remote_hints, vc_endpoints, Hlo};
use crate::llo::Llo;
use crate::policy::OrchestrationPolicy;
use cm_core::address::{NetAddr, OrchSessionId, VcId};
use cm_core::time::SimTime;
use cm_telemetry::{Layer, Telemetry};
use netsim::PeriodicTimer;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Supervision tuning.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Regulation intervals with no new indication before the
    /// orchestrating node is suspected dead.
    pub patience: u32,
    /// Re-elections performed before supervision gives up.
    pub max_reelections: u32,
    /// Allow the re-elected node to touch only some surviving VCs (the
    /// §7 no-common-node extension; the original session must have been
    /// created with the same relaxation).
    pub allow_no_common_node: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            patience: 3,
            max_reelections: 4,
            allow_no_common_node: false,
        }
    }
}

/// Callback invoked with the replacement agent after a re-election.
type ReelectHook = Box<dyn Fn(&HloAgent)>;

struct SupState {
    agent: HloAgent,
    vcs: Vec<VcId>,
    /// Indication count at the last healthy sample.
    last_count: usize,
    stalls: u32,
    reelections: u32,
    /// Checkpointed media epoch (refreshed while the agent is healthy).
    epoch: Option<SimTime>,
    next_session: u64,
    timer: Option<PeriodicTimer>,
    on_reelect: Option<ReelectHook>,
    stopped: bool,
}

struct SupInner {
    llos: BTreeMap<NetAddr, Llo>,
    policy: OrchestrationPolicy,
    cfg: SupervisorConfig,
    tel: Telemetry,
    state: RefCell<SupState>,
}

/// Watches one orchestration session and re-elects the orchestrating
/// node when it dies. Clones share the supervisor.
#[derive(Clone)]
pub struct Supervisor {
    inner: Rc<SupInner>,
}

impl Hlo {
    /// Supervise `agent`'s session: detect a dead orchestrating node by
    /// missed regulation indications and re-elect among this HLO's
    /// surviving LLOs. The supervisor snapshots the LLO registry — nodes
    /// added to the HLO later are not election candidates.
    pub fn supervise(&self, agent: &HloAgent, vcs: &[VcId], cfg: SupervisorConfig) -> Supervisor {
        Supervisor::watch(self.llos(), agent, vcs, cfg)
    }
}

impl Supervisor {
    /// Watch `agent` over the given candidate LLOs.
    pub fn watch(
        llos: impl IntoIterator<Item = Llo>,
        agent: &HloAgent,
        vcs: &[VcId],
        cfg: SupervisorConfig,
    ) -> Supervisor {
        let llos: BTreeMap<NetAddr, Llo> = llos.into_iter().map(|l| (l.node(), l)).collect();
        let policy = agent.policy().clone();
        let tel = agent.llo().service().network().engine().telemetry().clone();
        let sup = Supervisor {
            inner: Rc::new(SupInner {
                llos,
                policy,
                cfg,
                tel,
                state: RefCell::new(SupState {
                    agent: agent.clone(),
                    vcs: vcs.to_vec(),
                    last_count: 0,
                    stalls: 0,
                    reelections: 0,
                    epoch: None,
                    next_session: agent.session().0 + 1_000,
                    timer: None,
                    on_reelect: None,
                    stopped: false,
                }),
            }),
        };
        sup.arm();
        sup
    }

    /// Install a callback fired with each re-elected agent (the
    /// application swaps its control handle here).
    pub fn on_reelect(&self, f: impl Fn(&HloAgent) + 'static) {
        self.inner.state.borrow_mut().on_reelect = Some(Box::new(f));
    }

    /// The agent currently carrying the session.
    pub fn current(&self) -> HloAgent {
        self.inner.state.borrow().agent.clone()
    }

    /// Re-elections performed so far.
    pub fn reelections(&self) -> u32 {
        self.inner.state.borrow().reelections
    }

    /// Whether supervision has stopped (gave up or [`Supervisor::stop`]).
    pub fn is_stopped(&self) -> bool {
        self.inner.state.borrow().stopped
    }

    /// Stop supervising (the session itself is left alone).
    pub fn stop(&self) {
        let mut st = self.inner.state.borrow_mut();
        st.stopped = true;
        if let Some(t) = &st.timer {
            t.disarm();
        }
    }

    fn engine(&self) -> netsim::Engine {
        self.inner
            .llos
            .values()
            .next()
            .expect("supervisor needs at least one LLO")
            .service()
            .network()
            .engine()
            .clone()
    }

    fn network(&self) -> netsim::Network {
        self.inner
            .llos
            .values()
            .next()
            .expect("supervisor needs at least one LLO")
            .service()
            .network()
            .clone()
    }

    fn arm(&self) {
        let engine = self.engine();
        let mut st = self.inner.state.borrow_mut();
        if st.timer.is_none() {
            let weak = Rc::downgrade(&self.inner);
            st.timer = Some(PeriodicTimer::new(&engine, move |_| {
                if let Some(inner) = weak.upgrade() {
                    Supervisor { inner }.tick();
                }
            }));
        }
        st.timer
            .as_ref()
            .unwrap()
            .arm_in(self.inner.policy.interval);
    }

    fn tick(&self) {
        let (agent, suspect) = {
            let mut st = self.inner.state.borrow_mut();
            if st.stopped {
                return;
            }
            let agent = st.agent.clone();
            let count = agent.history().len();
            let suspect = if !agent.is_running() {
                // Deliberately stopped sessions produce no indications.
                st.stalls = 0;
                false
            } else if count > st.last_count {
                st.last_count = count;
                st.stalls = 0;
                if let Some(e) = agent.effective_epoch() {
                    st.epoch = Some(e);
                }
                false
            } else {
                st.stalls += 1;
                st.stalls >= self.inner.cfg.patience
            };
            (agent, suspect)
        };
        if suspect {
            let dead = agent.llo().node();
            if self.network().is_node_up(dead) {
                // Signal without infrastructure evidence: the node is
                // alive, the stall has some other cause (congestion, a
                // wedged stream). Not the supervisor's failure class.
                self.inner.state.borrow_mut().stalls = 0;
            } else {
                self.reelect(dead);
            }
        }
        if !self.inner.state.borrow().stopped {
            self.arm();
        }
    }

    fn reelect(&self, dead: NetAddr) {
        let net = self.network();
        let now = self.engine().now();
        // Drop VCs with an endpoint on a dead node — the transport layer
        // owns their fate; regulation continues over the survivors.
        let (survivors, epoch, give_up) = {
            let st = self.inner.state.borrow();
            let survivors: Vec<VcId> = st
                .vcs
                .iter()
                .copied()
                .filter(|&vc| {
                    vc_endpoints(&self.inner.llos, vc)
                        .map(|(s, d)| net.is_node_up(s) && net.is_node_up(d))
                        .unwrap_or(false)
                })
                .collect();
            let give_up = st.reelections >= self.inner.cfg.max_reelections;
            (survivors, st.epoch, give_up)
        };
        let candidate = if give_up || survivors.is_empty() {
            None
        } else {
            elect_node(
                &self.inner.llos,
                &survivors,
                &[dead],
                self.inner.cfg.allow_no_common_node,
            )
            .ok()
            .filter(|&n| net.is_node_up(n))
        };
        let Some(node) = candidate else {
            if self.inner.tel.enabled() {
                self.inner.tel.count("hlo.reelect.giveup", 1);
                self.inner
                    .tel
                    .instant(now, Layer::Orchestration, "hlo.reelect.giveup", |e| {
                        e.u64("dead_node", dead.0 as u64)
                            .u64("survivors", survivors.len() as u64);
                    });
            }
            self.stop();
            return;
        };
        let (old_session, session, agent) = {
            let mut st = self.inner.state.borrow_mut();
            let old = st.agent.clone();
            let old_session = old.session();
            // Quiesce the dead agent's local timers; its release
            // messages die with the node.
            old.release();
            let session = OrchSessionId(st.next_session);
            st.next_session += 1;
            let llo = self.inner.llos[&node].clone();
            let agent = HloAgent::new(llo, session, self.inner.policy.clone());
            if let Some(e) = epoch {
                agent.set_master_epoch(e);
            }
            // VCs the new node does not touch need §7 endpoint facts.
            for (vc, ends, rate, setpoint) in remote_hints(&self.inner.llos, node, &survivors) {
                agent.hint_remote(vc, ends, rate, setpoint);
            }
            st.agent = agent.clone();
            st.vcs = survivors.clone();
            st.last_count = 0;
            st.stalls = 0;
            st.reelections += 1;
            (old_session, session, agent)
        };
        if self.inner.tel.enabled() {
            self.inner.tel.count("hlo.reelect", 1);
            self.inner
                .tel
                .instant(now, Layer::Orchestration, "hlo.reelect", |e| {
                    e.u64("old_session", old_session.0)
                        .u64("session", session.0)
                        .u64("dead_node", dead.0 as u64)
                        .u64("node", node.0 as u64)
                        .u64("vcs", survivors.len() as u64);
                });
        }
        // Streams are mid-flight: set up the session and start the
        // regulation loop; no re-prime (the pipelines are full).
        let a_start = agent.clone();
        let me = self.clone();
        agent.setup(&survivors, move |r| {
            if r.is_ok() {
                a_start.start(|_| {});
                let st = me.inner.state.borrow();
                if let Some(f) = &st.on_reelect {
                    f(&st.agent);
                }
            }
        });
    }
}
