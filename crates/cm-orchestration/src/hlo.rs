//! The High Level Orchestrator (paper §5).
//!
//! The HLO is the platform-facing, location-independent service:
//! applications hand it the connections underlying their Streams plus a
//! policy; it finds the physical endpoints, chooses the *orchestrating
//! node* ("that common to the greatest number of VCs", fig. 5), creates an
//! HLO agent there, and returns a control interface through which the
//! application drives the on-going session.

use crate::agent::HloAgent;
use crate::llo::{Llo, RemoteVc};
use crate::policy::OrchestrationPolicy;
use cm_core::address::{NetAddr, OrchSessionId, VcId};
use cm_core::error::OrchDenyReason;
use cm_core::time::Rate;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Locate the endpoints of `vc` by asking the registered LLOs.
pub(crate) fn vc_endpoints(llos: &BTreeMap<NetAddr, Llo>, vc: VcId) -> Option<(NetAddr, NetAddr)> {
    for llo in llos.values() {
        if let Ok(triple) = llo.service().triple(vc) {
            return Some((triple.source.node, triple.destination.node));
        }
    }
    None
}

/// The fig.-5 election over an LLO registry: the node common to the
/// greatest number of VCs, skipping `exclude`d (e.g. dead) candidates.
/// With the common-node restriction in force the winner must touch every
/// VC.
pub(crate) fn elect_node(
    llos: &BTreeMap<NetAddr, Llo>,
    vcs: &[VcId],
    exclude: &[NetAddr],
    allow_no_common_node: bool,
) -> Result<NetAddr, OrchDenyReason> {
    let mut counts: BTreeMap<NetAddr, usize> = BTreeMap::new();
    for &vc in vcs {
        let (src, dst) = vc_endpoints(llos, vc).ok_or(OrchDenyReason::NoSuchVc)?;
        *counts.entry(src).or_default() += 1;
        if dst != src {
            *counts.entry(dst).or_default() += 1;
        }
    }
    let (&node, &count) = counts
        .iter()
        .filter(|&(n, _)| !exclude.contains(n) && llos.contains_key(n))
        .max_by_key(|&(n, c)| (*c, std::cmp::Reverse(n.0)))
        .ok_or(OrchDenyReason::NoSuchVc)?;
    if count < vcs.len() && !allow_no_common_node {
        return Err(OrchDenyReason::NoCommonNode);
    }
    Ok(node)
}

/// Gather §7 endpoint facts for every VC in `vcs` that has no end at
/// `node`: layout and rate from an endpoint's transport entity, plus the
/// current pipeline backlog (source charge point minus sink delivery
/// point) so regulation preserves in-flight data. Feed the results to
/// [`HloAgent::hint_remote`] before `setup`.
pub(crate) fn remote_hints(
    llos: &BTreeMap<NetAddr, Llo>,
    node: NetAddr,
    vcs: &[VcId],
) -> Vec<(VcId, RemoteVc, Rate, u64)> {
    let mut out = Vec::new();
    for &vc in vcs {
        if llos
            .get(&node)
            .is_some_and(|l| l.service().role(vc).is_ok())
        {
            continue; // local end: the LLO resolves it itself
        }
        let Some((src, dst)) = vc_endpoints(llos, vc) else {
            continue;
        };
        let src_svc = llos.get(&src).map(|l| l.service());
        let rate = src_svc
            .and_then(|s| s.osdu_rate(vc).ok())
            .unwrap_or(Rate::per_second(1));
        let charged = src_svc
            .and_then(|s| s.source_progress(vc).ok())
            .map(|(charged, _, _)| charged)
            .unwrap_or(0);
        let delivered = llos
            .get(&dst)
            .and_then(|l| l.service().sink_delivery_point(vc).ok())
            .unwrap_or(charged);
        out.push((
            vc,
            RemoteVc {
                source: src,
                sink: dst,
            },
            rate,
            charged.saturating_sub(delivered),
        ));
    }
    out
}

/// Domain-wide HLO: knows every node's LLO instance.
pub struct Hlo {
    llos: BTreeMap<NetAddr, Llo>,
    next_session: Cell<u64>,
    /// When set, groups without a common node are accepted (the §7
    /// future-work extension; requires clock sync for faithful targets —
    /// see `clock_sync`).
    allow_no_common_node: Cell<bool>,
}

impl Hlo {
    /// An HLO over the given per-node LLO instances.
    pub fn new(llos: impl IntoIterator<Item = Llo>) -> Hlo {
        Hlo {
            llos: llos.into_iter().map(|l| (l.node(), l)).collect(),
            next_session: Cell::new(1),
            allow_no_common_node: Cell::new(false),
        }
    }

    /// Enable orchestration of groups with no common node (§7 extension).
    pub fn allow_no_common_node(&self) {
        self.allow_no_common_node.set(true);
    }

    /// The LLO at `node`, if registered.
    pub fn llo(&self, node: NetAddr) -> Option<&Llo> {
        self.llos.get(&node)
    }

    /// Every registered LLO (supervision snapshots these).
    pub fn llos(&self) -> Vec<Llo> {
        self.llos.values().cloned().collect()
    }

    /// Choose the orchestrating node: the node common to the greatest
    /// number of VCs (fig. 5). With the common-node restriction in force
    /// (§5 footnote) the chosen node must touch *every* VC.
    pub fn pick_orchestrating_node(&self, vcs: &[VcId]) -> Result<NetAddr, OrchDenyReason> {
        elect_node(&self.llos, vcs, &[], self.allow_no_common_node.get())
    }

    /// Create an orchestration session over `vcs` with `policy`: pick the
    /// orchestrating node, instantiate the agent, and run table-4 session
    /// establishment. The returned agent is the application's control
    /// interface (the ADT interface of §5).
    pub fn orchestrate(
        &self,
        vcs: &[VcId],
        policy: OrchestrationPolicy,
        done: impl FnOnce(Result<(), OrchDenyReason>) + 'static,
    ) -> Result<HloAgent, OrchDenyReason> {
        let node = self.pick_orchestrating_node(vcs)?;
        let llo = self
            .llos
            .get(&node)
            .ok_or(OrchDenyReason::NoSuchVc)?
            .clone();
        let session = OrchSessionId(self.next_session.get());
        self.next_session.set(session.0 + 1);
        let agent = HloAgent::new(llo, session, policy);
        for (vc, ends, rate, setpoint) in remote_hints(&self.llos, node, vcs) {
            agent.hint_remote(vc, ends, rate, setpoint);
        }
        agent.setup(vcs, done);
        Ok(agent)
    }

    /// Convenience wrapper: orchestrate and, when established, prime and
    /// start in sequence. `started` fires once every stream is released.
    pub fn orchestrate_and_start(
        &self,
        vcs: &[VcId],
        policy: OrchestrationPolicy,
        started: impl FnOnce(Result<(), OrchDenyReason>) + 'static,
    ) -> Result<HloAgent, OrchDenyReason> {
        let node = self.pick_orchestrating_node(vcs)?;
        let llo = self
            .llos
            .get(&node)
            .ok_or(OrchDenyReason::NoSuchVc)?
            .clone();
        let session = OrchSessionId(self.next_session.get());
        self.next_session.set(session.0 + 1);
        let agent = HloAgent::new(llo, session, policy);
        for (vc, ends, rate, setpoint) in remote_hints(&self.llos, node, vcs) {
            agent.hint_remote(vc, ends, rate, setpoint);
        }
        let started = Rc::new(std::cell::RefCell::new(Some(
            Box::new(started) as Box<dyn FnOnce(Result<(), OrchDenyReason>)>
        )));
        let finish = move |r: Result<(), OrchDenyReason>| {
            if let Some(f) = started.borrow_mut().take() {
                f(r);
            }
        };
        let a_prime = agent.clone();
        agent.setup(vcs, move |r| match r {
            Err(e) => finish(Err(e)),
            Ok(()) => {
                let a_start = a_prime.clone();
                let finish2 = finish;
                a_prime.prime(move |r| match r {
                    Err(e) => finish2(Err(e)),
                    Ok(()) => a_start.start(finish2),
                });
            }
        });
        Ok(agent)
    }
}
