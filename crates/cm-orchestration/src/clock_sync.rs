//! Clock-offset estimation between nodes — the generalisation the paper
//! leaves as future work (§5 footnote, §7: "the orchestration of VCs with
//! no common node").
//!
//! With a common node, the orchestrating node's own clock is the datum and
//! no synchronisation is needed. Without one, the agent must convert
//! remote-clock readings to its own clock. [`ClockSync`] implements the
//! classic NTP-style two-way exchange (\[Mills,89\], cited by the paper):
//! probe at `t1` (local), remote stamps `t2`/`t3` (remote), echo arrives at
//! `t4` (local); `offset ≈ ((t2−t1)+(t3−t4))/2` with error bounded by the
//! path asymmetry. The estimator keeps the minimum-RTT sample per peer
//! (best-of-N filtering).

use crate::msg::{ClockMsg, CLOCK_TSAP};
use cm_core::address::{NetAddr, TransportAddr};
use cm_core::time::{SimDuration, SimTime};
use cm_telemetry::{Layer, Telemetry};
use cm_transport::{TransportService, TransportUser};
use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// One two-way measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffsetSample {
    /// Estimated `remote − local` clock offset in microseconds.
    pub offset_us: i64,
    /// Round-trip time of the exchange (quality indicator).
    pub rtt: SimDuration,
}

/// Shared one-shot completion slot for an offset-sample round.
type SampleDone = Rc<RefCell<Option<Box<dyn FnOnce(OffsetSample)>>>>;

struct Pending {
    peer: NetAddr,
    done: Option<Box<dyn FnOnce(OffsetSample)>>,
}

struct State {
    next_nonce: u64,
    pending: HashMap<u64, Pending>,
    /// Best (min-RTT) sample per peer.
    best: HashMap<NetAddr, OffsetSample>,
}

struct Inner {
    svc: TransportService,
    /// Cached clone of the engine-wide flight recorder.
    tel: Telemetry,
    state: RefCell<State>,
}

/// Per-node clock-sync service (responder + estimator).
#[derive(Clone)]
pub struct ClockSync {
    inner: Rc<Inner>,
}

struct ClockUser(ClockSync);

impl TransportUser for ClockUser {
    fn t_datagram_indication(
        &self,
        _svc: &TransportService,
        from: TransportAddr,
        payload: Rc<dyn Any>,
    ) {
        if let Some(msg) = payload.downcast_ref::<ClockMsg>() {
            self.0.on_msg(from, *msg);
        }
    }
}

impl ClockSync {
    /// Install on the node served by `svc`; binds the clock-sync TSAP.
    pub fn install(svc: TransportService) -> ClockSync {
        let cs = ClockSync {
            inner: Rc::new(Inner {
                tel: svc.network().engine().telemetry().clone(),
                svc: svc.clone(),
                state: RefCell::new(State {
                    next_nonce: 0,
                    pending: HashMap::new(),
                    best: HashMap::new(),
                }),
            }),
        };
        svc.bind(CLOCK_TSAP, Rc::new(ClockUser(cs.clone())))
            .expect("clock TSAP already bound");
        cs
    }

    fn local_now(&self) -> SimTime {
        self.inner.svc.network().local_time(self.inner.svc.node())
    }

    /// Send one probe to `peer`; `done` receives the sample.
    pub fn probe(&self, peer: NetAddr, done: impl FnOnce(OffsetSample) + 'static) {
        let nonce = {
            let mut st = self.inner.state.borrow_mut();
            let n = st.next_nonce;
            st.next_nonce += 1;
            st.pending.insert(
                n,
                Pending {
                    peer,
                    done: Some(Box::new(done)),
                },
            );
            n
        };
        let msg = ClockMsg::Probe {
            nonce,
            t1_local: self.local_now(),
        };
        self.inner.svc.send_datagram(
            CLOCK_TSAP,
            TransportAddr {
                node: peer,
                tsap: CLOCK_TSAP,
            },
            Rc::new(msg),
            32,
        );
    }

    /// Run `n` probes to `peer` and call `done` with the best (min-RTT)
    /// estimate.
    pub fn calibrate(&self, peer: NetAddr, n: usize, done: impl FnOnce(OffsetSample) + 'static) {
        assert!(n > 0);
        let me = self.clone();
        let remaining = Rc::new(std::cell::Cell::new(n));
        let done = Rc::new(RefCell::new(Some(
            Box::new(done) as Box<dyn FnOnce(OffsetSample)>
        )));
        fn fire(
            me: ClockSync,
            peer: NetAddr,
            remaining: Rc<std::cell::Cell<usize>>,
            done: SampleDone,
        ) {
            let me2 = me.clone();
            me.probe(peer, move |_s| {
                let left = remaining.get() - 1;
                remaining.set(left);
                if left == 0 {
                    if let Some(d) = done.borrow_mut().take() {
                        let best = me2.offset_to(peer).expect("at least one sample recorded");
                        d(best);
                    }
                } else {
                    fire(me2, peer, remaining, done);
                }
            });
        }
        fire(me, peer, remaining, done);
    }

    /// The best offset estimate to `peer`, if any probe completed.
    pub fn offset_to(&self, peer: NetAddr) -> Option<OffsetSample> {
        self.inner.state.borrow().best.get(&peer).copied()
    }

    /// Convert a remote-clock reading into this node's clock using the
    /// best estimate (`None` before any calibration).
    pub fn remote_to_local(&self, peer: NetAddr, t_remote: SimTime) -> Option<SimTime> {
        let s = self.offset_to(peer)?;
        let local = t_remote.as_micros() as i64 - s.offset_us;
        Some(SimTime::from_micros(local.max(0) as u64))
    }

    fn on_msg(&self, from: TransportAddr, msg: ClockMsg) {
        match msg {
            ClockMsg::Probe { nonce, t1_local } => {
                let now = self.local_now();
                let echo = ClockMsg::Echo {
                    nonce,
                    t1_local,
                    t2_remote: now,
                    t3_remote: now,
                };
                self.inner.svc.send_datagram(
                    CLOCK_TSAP,
                    TransportAddr {
                        node: from.node,
                        tsap: CLOCK_TSAP,
                    },
                    Rc::new(echo),
                    32,
                );
            }
            ClockMsg::Echo {
                nonce,
                t1_local,
                t2_remote,
                t3_remote,
            } => {
                let t4 = self.local_now();
                let pending = self.inner.state.borrow_mut().pending.remove(&nonce);
                let Some(mut pending) = pending else { return };
                let t1 = t1_local.as_micros() as i64;
                let t2 = t2_remote.as_micros() as i64;
                let t3 = t3_remote.as_micros() as i64;
                let t4 = t4.as_micros() as i64;
                let offset_us = ((t2 - t1) + (t3 - t4)) / 2;
                let rtt = SimDuration::from_micros(((t4 - t1) - (t3 - t2)).max(0) as u64);
                let sample = OffsetSample { offset_us, rtt };
                let best = {
                    let mut st = self.inner.state.borrow_mut();
                    let entry = st.best.entry(pending.peer).or_insert(sample);
                    if sample.rtt <= entry.rtt {
                        *entry = sample;
                    }
                    *entry
                };
                if self.inner.tel.enabled() {
                    let at = self.inner.svc.network().engine().now();
                    let peer = pending.peer;
                    // Gauge names are dynamic (per peer) — the String is
                    // built only on the enabled path.
                    self.inner.tel.gauge(
                        &format!("clock.offset_us/{}", peer.0),
                        best.offset_us as f64,
                    );
                    self.inner
                        .tel
                        .instant(at, Layer::Orchestration, "clock.sample", |e| {
                            e.u64("peer", peer.0 as u64)
                                .i64("offset_us", offset_us)
                                .u64("rtt_us", rtt.as_micros());
                        });
                }
                if let Some(done) = pending.done.take() {
                    done(sample);
                }
            }
        }
    }
}
