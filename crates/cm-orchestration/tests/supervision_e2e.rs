//! Orchestrator supervision under node death (DESIGN.md §9): missed
//! regulation indications flag the orchestrating node, the evidence gate
//! separates congestion from death, and re-election moves the session to
//! a surviving node — or gives up, typed, when nothing survives.

use cm_core::media::MediaProfile;
use cm_core::time::SimDuration;
use cm_orchestration::{HloAgent, OrchestrationPolicy, SupervisorConfig};
use cm_testkit::scenario::MediaStream;
use cm_testkit::{FilmScenario, Stack, StackConfig};
use std::cell::Cell;
use std::rc::Rc;

/// Two disjoint telephone streams (server *i* → workstation *i*) over one
/// switch, orchestrated in §7 no-common-node mode: whichever endpoint
/// wins the election holds one stream locally and drives the other
/// entirely by OPDUs.
struct Disjoint {
    stack: Stack,
    a: MediaStream,
    b: MediaStream,
    agent: HloAgent,
}

fn disjoint_session() -> Disjoint {
    let mut cfg = StackConfig::default();
    cfg.testbed.workstations = 2;
    cfg.testbed.servers = 2;
    let stack = Stack::build(cfg);
    let p = MediaProfile::audio_telephone();
    let clip = cm_media::StoredClip::cbr_for(&p, 30);
    let a = MediaStream::build(
        &stack,
        stack.tb.servers[0],
        stack.tb.workstations[0],
        &p,
        &clip,
    );
    let b = MediaStream::build(
        &stack,
        stack.tb.servers[1],
        stack.tb.workstations[1],
        &p,
        &clip,
    );
    stack.hlo.allow_no_common_node();
    let started = Rc::new(Cell::new(false));
    let s2 = started.clone();
    let agent = stack
        .hlo
        .orchestrate_and_start(&[a.vc, b.vc], OrchestrationPolicy::default(), move |r| {
            r.expect("orchestrated start");
            s2.set(true);
        })
        .expect("orchestrate");
    stack.run_for(SimDuration::from_secs(3));
    assert!(started.get(), "no-common-node session failed to start");
    Disjoint { stack, a, b, agent }
}

/// The §7 path itself: a session whose orchestrating node holds no end of
/// one VC still primes, starts and regulates both streams.
#[test]
fn no_common_node_session_regulates_both_streams() {
    let d = disjoint_session();
    d.stack.run_for(SimDuration::from_secs(3));
    let hist = d.agent.history();
    assert!(
        hist.iter().any(|r| r.vc == d.a.vc),
        "stream a never produced a regulation indication"
    );
    assert!(
        hist.iter().any(|r| r.vc == d.b.vc),
        "remote-orchestrated stream b never produced a regulation indication"
    );
}

/// Kill the orchestrating node: the supervisor detects the stall, drops
/// the stream that died with it, and re-elects an orchestrator for the
/// survivor, which keeps regulating on the original timeline.
#[test]
fn reelection_moves_session_off_a_dead_orchestrator() {
    let d = disjoint_session();
    let sup = d.stack.hlo.supervise(
        &d.agent,
        &[d.a.vc, d.b.vc],
        SupervisorConfig {
            allow_no_common_node: true,
            ..Default::default()
        },
    );
    let swapped = Rc::new(Cell::new(false));
    let sw2 = swapped.clone();
    sup.on_reelect(move |_| sw2.set(true));
    d.stack.run_for(SimDuration::from_secs(2));
    assert!(
        !d.agent.history().is_empty(),
        "session must regulate before the fault"
    );

    let dead = d.agent.llo().node();
    d.stack.tb.net.set_node_up(dead, false);
    d.stack.run_for(SimDuration::from_secs(6));

    assert_eq!(sup.reelections(), 1, "exactly one re-election");
    assert!(swapped.get(), "on_reelect must fire");
    assert!(!sup.is_stopped(), "supervision continues on the new agent");
    let cur = sup.current();
    assert_ne!(cur.llo().node(), dead);
    assert_ne!(cur.session(), d.agent.session(), "fresh session id");

    // The survivor is whichever stream did not touch the dead node; the
    // new orchestrator must hold one of its ends and keep regulating it.
    let a_ends = [d.stack.tb.servers[0], d.stack.tb.workstations[0]];
    let (ends, vc) = if a_ends.contains(&dead) {
        ([d.stack.tb.servers[1], d.stack.tb.workstations[1]], d.b.vc)
    } else {
        (a_ends, d.a.vc)
    };
    assert!(
        ends.contains(&cur.llo().node()),
        "re-elected node must touch the surviving VC"
    );
    let before = cur.history().len();
    d.stack.run_for(SimDuration::from_secs(3));
    let hist = cur.history();
    assert!(
        hist.len() > before,
        "re-elected agent must resume regulation"
    );
    assert!(
        hist[before..].iter().all(|r| r.vc == vc),
        "only the surviving VC is regulated"
    );
}

/// Evidence gate: a partitioned orchestrator stalls indications exactly
/// like a dead one, but the node is alive — the supervisor must not
/// re-elect, and regulation resumes once the partition heals.
#[test]
fn partitioned_orchestrator_is_not_reelected() {
    let d = disjoint_session();
    let sup = d.stack.hlo.supervise(
        &d.agent,
        &[d.a.vc, d.b.vc],
        SupervisorConfig {
            allow_no_common_node: true,
            ..Default::default()
        },
    );
    d.stack.run_for(SimDuration::from_secs(2));

    let orch = d.agent.llo().node();
    let net = &d.stack.tb.net;
    let cut: Vec<_> = net
        .links_between(orch, d.stack.tb.switch)
        .into_iter()
        .chain(net.links_between(d.stack.tb.switch, orch))
        .collect();
    for l in &cut {
        net.set_link_up(*l, false);
    }
    d.stack.run_for(SimDuration::from_secs(5));
    assert_eq!(
        sup.reelections(),
        0,
        "an alive-but-partitioned orchestrator must not be replaced"
    );
    assert!(!sup.is_stopped());

    for l in &cut {
        net.set_link_up(*l, true);
    }
    let before = d.agent.history().len();
    d.stack.run_for(SimDuration::from_secs(3));
    assert!(
        d.agent.history().len() > before,
        "regulation must resume after the partition heals"
    );
}

/// When every VC touched the dead orchestrator, nothing survives to
/// regulate: supervision records the give-up and stops instead of
/// thrashing through hopeless elections.
#[test]
fn giveup_when_no_vc_survives_the_orchestrator() {
    let f = FilmScenario::build((0, 0), 30, StackConfig::default());
    let started = Rc::new(Cell::new(false));
    let s2 = started.clone();
    let agent = f
        .stack
        .hlo
        .orchestrate_and_start(
            &[f.audio.vc, f.video.vc],
            OrchestrationPolicy::default(),
            move |r| {
                r.expect("orchestrated start");
                s2.set(true);
            },
        )
        .expect("orchestrate");
    f.stack.run_for(SimDuration::from_secs(3));
    assert!(started.get());
    let sup = f.stack.hlo.supervise(
        &agent,
        &[f.audio.vc, f.video.vc],
        SupervisorConfig::default(),
    );

    // The workstation is the common sink: both VCs die with it.
    f.stack.tb.net.set_node_up(f.workstation, false);
    f.stack.run_for(SimDuration::from_secs(6));

    assert_eq!(sup.reelections(), 0, "no survivors → nothing to re-elect");
    assert!(sup.is_stopped(), "supervision must give up, not spin");
}
