//! End-to-end orchestration tests over the full stack: session
//! establishment (table 4), prime/start/stop semantics (table 5, fig. 7),
//! regulation with drift correction (table 6, fig. 6), event-driven
//! synchronisation (§6.3.4) and the Orch.Delayed path (§6.3.3).

use cm_core::address::OrchSessionId;
use cm_core::error::OrchDenyReason;
use cm_core::media::MediaProfile;
use cm_core::time::{SimDuration, SimTime};
use cm_orchestration::{AgentAction, FailureAction, HloAgent, OrchestrationPolicy};
use cm_testkit::scenario::MediaStream;
use cm_testkit::{FilmScenario, LanguageLab, Stack, StackConfig};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

fn film(skews: (i32, i32), secs: u64) -> FilmScenario {
    FilmScenario::build(skews, secs, StackConfig::default())
}

/// Establish + prime + start a film and return its agent.
fn launch(f: &FilmScenario, policy: OrchestrationPolicy) -> HloAgent {
    let started = Rc::new(Cell::new(false));
    let s2 = started.clone();
    let agent = f
        .stack
        .hlo
        .orchestrate_and_start(&[f.audio.vc, f.video.vc], policy, move |r| {
            r.expect("orchestrated start");
            s2.set(true);
        })
        .expect("orchestrate");
    f.stack.run_for(SimDuration::from_secs(3));
    assert!(started.get(), "session failed to start within 3 s");
    agent
}

// -------------------------------------------------------------------
// Session establishment (table 4)
// -------------------------------------------------------------------

#[test]
fn session_setup_confirms() {
    let f = film((0, 0), 30);
    let confirmed = Rc::new(Cell::new(false));
    let c2 = confirmed.clone();
    let _agent = f
        .stack
        .hlo
        .orchestrate(
            &[f.audio.vc, f.video.vc],
            OrchestrationPolicy::default(),
            move |r| {
                r.expect("setup");
                c2.set(true);
            },
        )
        .expect("orchestrate");
    f.stack.run_for(SimDuration::from_millis(100));
    assert!(confirmed.get());
}

#[test]
fn orchestrating_node_is_the_common_sink() {
    let f = film((0, 0), 30);
    let node = f
        .stack
        .hlo
        .pick_orchestrating_node(&[f.audio.vc, f.video.vc])
        .expect("pick");
    assert_eq!(node, f.workstation, "fig. 5: the common sink orchestrates");
}

#[test]
fn no_common_node_is_rejected_by_default() {
    // Two streams with entirely disjoint endpoints.
    let mut cfg = StackConfig::default();
    cfg.testbed.workstations = 2;
    cfg.testbed.servers = 2;
    let stack = Stack::build(cfg);
    let p = MediaProfile::audio_telephone();
    let clip = cm_media::StoredClip::cbr_for(&p, 10);
    let s1 = MediaStream::build(
        &stack,
        stack.tb.servers[0],
        stack.tb.workstations[0],
        &p,
        &clip,
    );
    let s2 = MediaStream::build(
        &stack,
        stack.tb.servers[1],
        stack.tb.workstations[1],
        &p,
        &clip,
    );
    let err = stack
        .hlo
        .pick_orchestrating_node(&[s1.vc, s2.vc])
        .unwrap_err();
    assert_eq!(err, OrchDenyReason::NoCommonNode);
    // The §7 extension lifts the restriction.
    stack.hlo.allow_no_common_node();
    assert!(stack.hlo.pick_orchestrating_node(&[s1.vc, s2.vc]).is_ok());
}

#[test]
fn table_space_exhaustion_rejects_with_no_table_space() {
    let cfg = StackConfig {
        max_sessions: 0,
        ..Default::default()
    };
    let f = FilmScenario::build((0, 0), 10, cfg);
    let got = Rc::new(RefCell::new(None));
    let g2 = got.clone();
    let _ = f.stack.hlo.orchestrate(
        &[f.audio.vc, f.video.vc],
        OrchestrationPolicy::default(),
        move |r| {
            *g2.borrow_mut() = Some(r);
        },
    );
    f.stack.run_for(SimDuration::from_millis(100));
    assert_eq!(
        *got.borrow(),
        Some(Err(OrchDenyReason::NoTableSpace)),
        "zero table space must reject (§6.1)"
    );
}

// -------------------------------------------------------------------
// Prime / Start / Stop (table 5, fig. 7)
// -------------------------------------------------------------------

#[test]
fn prime_fills_buffers_without_delivery() {
    let f = film((0, 0), 30);
    let agent = f
        .stack
        .hlo
        .orchestrate(
            &[f.audio.vc, f.video.vc],
            OrchestrationPolicy::default(),
            |r| r.expect("setup"),
        )
        .expect("orchestrate");
    f.stack.run_for(SimDuration::from_millis(100));
    let primed = Rc::new(Cell::new(false));
    let p2 = primed.clone();
    agent.prime(move |r| {
        r.expect("prime");
        p2.set(true);
    });
    f.stack.run_for(SimDuration::from_secs(3));
    assert!(primed.get(), "prime confirm (fig. 7)");
    // Buffers full at the sink, nothing presented.
    let ws = f.stack.node(f.workstation);
    assert!(ws.svc.recv_handle(f.audio.vc).expect("buf").is_full());
    assert!(ws.svc.recv_handle(f.video.vc).expect("buf").is_full());
    assert_eq!(f.audio.sink.log.borrow().len(), 0);
    assert_eq!(f.video.sink.log.borrow().len(), 0);
}

#[test]
fn start_after_prime_has_minimal_start_skew() {
    let f = film((0, 0), 30);
    let _agent = launch(&f, OrchestrationPolicy::default());
    let a0 = f.audio.sink.log.borrow().first().map(|p| p.at);
    let v0 = f.video.sink.log.borrow().first().map(|p| p.at);
    let (a0, v0) = (a0.expect("audio started"), v0.expect("video started"));
    let skew = a0.saturating_since(v0).max(v0.saturating_since(a0));
    // Both sinks sit on the orchestrating node: start is near-instant
    // (§6.2.2 "at (almost) the same instant").
    assert!(
        skew < SimDuration::from_millis(25),
        "start skew {skew} too large"
    );
}

#[test]
fn stop_freezes_and_start_resumes() {
    let f = film((0, 0), 60);
    let agent = launch(&f, OrchestrationPolicy::default());
    f.stack.run_for(SimDuration::from_secs(5));
    let stopped = Rc::new(Cell::new(false));
    let s2 = stopped.clone();
    agent.stop(move |r| {
        r.expect("stop");
        s2.set(true);
    });
    f.stack.run_for(SimDuration::from_secs(1));
    assert!(stopped.get());
    let presented_at_stop = f.audio.sink.log.borrow().len();
    f.stack.run_for(SimDuration::from_secs(3));
    assert_eq!(
        f.audio.sink.log.borrow().len(),
        presented_at_stop,
        "no presentations while stopped"
    );
    // Buffers retain data for the restart (§6.2.3).
    let ws = f.stack.node(f.workstation);
    assert!(!ws.svc.recv_handle(f.audio.vc).expect("buf").is_empty());
    // Restart.
    agent.start(|r| r.expect("restart"));
    f.stack.run_for(SimDuration::from_secs(3));
    assert!(f.audio.sink.log.borrow().len() > presented_at_stop + 50);
    // No data was lost across the stop: presented seqs are continuous.
    let seqs: Vec<u64> = f.audio.sink.log.borrow().iter().map(|p| p.seq).collect();
    for w in seqs.windows(2) {
        assert_eq!(w[1], w[0] + 1, "gap across stop/start");
    }
}

#[test]
fn stop_seek_flush_restart_skips_stale_data() {
    let f = film((0, 0), 120);
    let agent = launch(&f, OrchestrationPolicy::default());
    f.stack.run_for(SimDuration::from_secs(4));
    agent.stop(|r| r.expect("stop"));
    f.stack.run_for(SimDuration::from_secs(1));
    // Seek both media to the 60 s mark and flush the pipelines (§6.2.1:
    // otherwise "a short burst of media buffered from the previous play
    // would be discernible").
    agent.flush_all();
    f.stack.run_for(SimDuration::from_millis(100));
    f.audio.source.seek(50 * 60);
    f.video.source.seek(25 * 60);
    let before = f.audio.sink.log.borrow().len();
    let p2 = Rc::new(Cell::new(false));
    let p3 = p2.clone();
    let agent2 = agent.clone();
    agent.prime(move |r| {
        r.expect("re-prime");
        agent2.start(|r| r.expect("re-start"));
        p3.set(true);
    });
    f.stack.run_for(SimDuration::from_secs(4));
    assert!(p2.get());
    let log = f.audio.sink.log.borrow();
    let first_after = log[before].tag.expect("synthetic payload tag");
    assert!(
        first_after >= 50 * 60,
        "stale pre-seek data presented: media unit {first_after}"
    );
}

// -------------------------------------------------------------------
// Regulation (table 6, fig. 6)
// -------------------------------------------------------------------

#[test]
fn regulation_indications_flow_every_interval() {
    let f = film((0, 0), 30);
    let agent = launch(&f, OrchestrationPolicy::default());
    f.stack.run_for(SimDuration::from_secs(10));
    let history = agent.history();
    // ~20 intervals × 2 VCs at 500 ms over 10 s (allowing edge slop).
    assert!(
        history.len() >= 30,
        "only {} interval records",
        history.len()
    );
    // Both VCs are represented and targets are monotone per VC.
    for vc in [f.audio.vc, f.video.vc] {
        let targets: Vec<u64> = history
            .iter()
            .filter(|r| r.vc == vc)
            .map(|r| r.target)
            .collect();
        assert!(targets.len() >= 15, "vc {vc} has {} records", targets.len());
        for w in targets.windows(2) {
            assert!(w[1] >= w[0], "targets must not regress");
        }
    }
}

#[test]
fn orchestration_bounds_drift_from_clock_skew() {
    // ±5000 ppm source skew: the slow stream falls ~5 ms of media time
    // behind per second of play-out.
    let secs = 120;
    // Without orchestration: start both streams by hand.
    let f_free = film((5000, -5000), secs);
    f_free.audio.source.start_producing();
    f_free.video.source.start_producing();
    f_free.audio.sink.play();
    f_free.video.sink.play();
    f_free.stack.run_for(SimDuration::from_secs(85));
    let meter = f_free.skew_meter();
    let free_skew = meter
        .skew_at(SimTime::from_secs(80))
        .expect("skew measured");

    // With orchestration.
    let f_orch = film((5000, -5000), secs);
    let _agent = launch(&f_orch, OrchestrationPolicy::default());
    f_orch.stack.run_for(SimDuration::from_secs(85));
    let meter = f_orch.skew_meter();
    let orch_skew = meter
        .skew_at(SimTime::from_secs(80))
        .expect("skew measured");

    assert!(
        free_skew > SimDuration::from_millis(150),
        "unregulated skew {free_skew} unexpectedly small"
    );
    assert!(
        orch_skew < SimDuration::from_millis(80),
        "orchestrated skew {orch_skew} exceeds lip-sync tolerance (free ran to {free_skew})"
    );
}

#[test]
fn language_lab_stays_in_sync_across_workstations() {
    // Common node is the *source* (storage server); sinks on three
    // student workstations with different clocks.
    let lab = LanguageLab::build(3, vec![1500, -1500, 0], 60, StackConfig::default());
    let vcs: Vec<_> = lab.tracks.iter().map(|t| t.vc).collect();
    let started = Rc::new(Cell::new(false));
    let s2 = started.clone();
    let _agent = lab
        .stack
        .hlo
        .orchestrate_and_start(&vcs, OrchestrationPolicy::default(), move |r| {
            r.expect("lab start");
            s2.set(true);
        })
        .expect("orchestrate");
    lab.stack.run_for(SimDuration::from_secs(30));
    assert!(started.get());
    let meter = cm_media::SkewMeter::new(
        lab.tracks
            .iter()
            .map(|t| {
                (
                    cm_core::media::MediaProfile::audio_telephone().osdu_rate,
                    t.sink.log.borrow().clone(),
                )
            })
            .collect(),
    );
    let skew = meter.skew_at(SimTime::from_secs(25)).expect("skew");
    assert!(
        skew <= SimDuration::from_millis(80),
        "language-lab skew {skew}"
    );
}

// -------------------------------------------------------------------
// Orch.Event (§6.3.4)
// -------------------------------------------------------------------

#[test]
fn event_marks_raise_indications() {
    let mut cfg = StackConfig::default();
    cfg.testbed.servers = 2;
    cfg.testbed.workstations = 1;
    let stack = Stack::build(cfg);
    let ws = stack.tb.workstations[0];
    let server = stack.tb.servers[0];
    let profile = MediaProfile::audio_telephone();
    // Mark an encoding change at unit 100 (§6.3.4's example).
    let clip = cm_media::StoredClip::cbr_for(&profile, 30).with_event(100, 0xC0DE);
    let stream = MediaStream::build(&stack, server, ws, &profile, &clip);

    let events = Rc::new(RefCell::new(Vec::new()));
    let started = Rc::new(Cell::new(false));
    let s2 = started.clone();
    let agent = stack
        .hlo
        .orchestrate_and_start(&[stream.vc], OrchestrationPolicy::default(), move |r| {
            r.expect("start");
            s2.set(true);
        })
        .expect("orchestrate");
    let ev2 = events.clone();
    agent.on_event(move |vc, pattern, seq| ev2.borrow_mut().push((vc, pattern, seq)));
    agent.register_event(stream.vc, 0xC0DE);
    stack.run_for(SimDuration::from_secs(5));
    assert!(started.get());
    let events = events.borrow();
    assert_eq!(events.len(), 1, "exactly one matching OSDU");
    assert_eq!(events[0], (stream.vc, 0xC0DE, 100));
}

// -------------------------------------------------------------------
// Orch.Delayed (§6.3.3) and diagnosis (§6.3.1.2)
// -------------------------------------------------------------------

#[test]
fn slow_source_app_triggers_delayed_indication() {
    let mut cfg = StackConfig::default();
    cfg.testbed.servers = 1;
    cfg.testbed.workstations = 1;
    let stack = Stack::build(cfg);
    let ws = stack.tb.workstations[0];
    let server = stack.tb.servers[0];
    let profile = MediaProfile::audio_telephone();
    let vc = stack.connect(
        server,
        ws,
        cm_core::service_class::ServiceClass::cm_default(),
        profile.requirement(),
    );
    // The source application produces at HALF the media rate.
    let clip = cm_media::StoredClip::cbr_for(&profile, 60);
    let slow = cm_media::ThrottledSource::new(
        stack.node(server).svc.clone(),
        vc,
        clip.reader(),
        profile.osdu_rate.scaled(1, 2),
    );
    stack.node(server).llo.register_app(vc, slow.clone());
    slow.start();
    let sink = cm_media::PlayoutSink::new(stack.node(ws).svc.clone(), vc, profile.osdu_rate);
    cm_media::SinkDriver::register(&stack.node(ws).llo, vc, &sink);

    let policy = OrchestrationPolicy {
        on_failure: FailureAction::DelayThenStop,
        failure_patience: 2,
        ..OrchestrationPolicy::default()
    };
    // Skip priming: a half-rate source would take very long to fill the
    // pipeline; establish and start directly.
    let agent = stack
        .hlo
        .orchestrate(&[vc], policy, |r| r.expect("setup"))
        .expect("orchestrate");
    stack.run_for(SimDuration::from_millis(100));
    agent.start(|r| r.expect("start"));
    stack.run_for(SimDuration::from_secs(10));

    assert!(
        slow.delayed_seen.get() > 0,
        "the slow application thread must receive Orch.Delayed (§6.3.3)"
    );
    assert!(agent
        .actions()
        .iter()
        .any(|a| matches!(a, AgentAction::Delayed(v, cm_transport::VcRole::Source) if *v == vc)));
}

#[test]
fn max_drop_lets_a_behind_stream_catch_up() {
    // Audio server clock very slow (-5000 ppm) and nudge limit small, so
    // rate correction alone cannot close the gap; drops must.
    let f = film((-5000, 0), 60);
    let policy = OrchestrationPolicy {
        rate_nudge_limit_ppt: 2, // ±0.2% only
        max_drop_per_interval: 5,
        ..OrchestrationPolicy::default()
    };
    let agent = launch(&f, policy);
    f.stack.run_for(SimDuration::from_secs(30));
    let drops: u64 = agent
        .history()
        .iter()
        .filter(|r| r.vc == f.audio.vc)
        .map(|r| r.dropped)
        .sum();
    assert!(drops > 0, "catch-up requires source drops (§6.3.1.1)");
    let meter = f.skew_meter();
    let skew = meter.skew_at(SimTime::from_secs(25)).expect("skew");
    assert!(
        skew < SimDuration::from_millis(200),
        "skew {skew} despite drop compensation"
    );
}

#[test]
fn no_loss_policy_never_drops() {
    let f = film((-3000, 0), 40);
    let agent = launch(&f, OrchestrationPolicy::no_loss());
    f.stack.run_for(SimDuration::from_secs(20));
    let drops: u64 = agent.history().iter().map(|r| r.dropped).sum();
    assert_eq!(drops, 0, "max-drop 0 must never drop (§6.3.1.1)");
}

#[test]
fn release_tears_down_session() {
    let f = film((0, 0), 30);
    let agent = launch(&f, OrchestrationPolicy::default());
    f.stack.run_for(SimDuration::from_secs(2));
    agent.release();
    f.stack.run_for(SimDuration::from_secs(1));
    let n = agent.history().len();
    f.stack.run_for(SimDuration::from_secs(3));
    assert_eq!(agent.history().len(), n, "no regulation after release");
}

#[test]
fn sessions_are_identified_and_independent() {
    let f = film((0, 0), 30);
    let agent = launch(&f, OrchestrationPolicy::default());
    assert_eq!(agent.session(), OrchSessionId(1));
    // A second film session on the same stack gets a fresh id.
    let audio2 = MediaStream::build(
        &f.stack,
        f.stack.tb.servers[0],
        f.workstation,
        &MediaProfile::audio_telephone(),
        &cm_media::StoredClip::cbr_for(&MediaProfile::audio_telephone(), 10),
    );
    let agent2 = f
        .stack
        .hlo
        .orchestrate(&[audio2.vc], OrchestrationPolicy::default(), |r| {
            r.expect("setup 2")
        })
        .expect("orchestrate 2");
    f.stack.run_for(SimDuration::from_millis(100));
    assert_eq!(agent2.session(), OrchSessionId(2));
}
