//! Tests for the NTP-style clock-sync service (the §7 extension):
//! estimation accuracy on symmetric paths, min-RTT filtering under
//! jitter, and conversion helpers.

use cm_core::qos::ErrorRate;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use cm_orchestration::ClockSync;
use cm_transport::{EntityConfig, TransportService};
use netsim::{Engine, JitterModel, LinkParams, Network, NodeClock};
use std::cell::Cell;
use std::rc::Rc;

fn two_nodes(
    skew_a: i32,
    offset_a_us: i64,
    jitter: JitterModel,
) -> (Network, ClockSync, cm_core::address::NetAddr) {
    let net = Network::new(Engine::new());
    let mut rng = cm_core::rng::DetRng::from_seed(5);
    let a = net.add_node(NodeClock {
        skew_ppm: skew_a,
        offset_us: offset_a_us,
    });
    let b = net.add_node(NodeClock::perfect());
    let params = LinkParams {
        jitter,
        ..LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(2))
    };
    net.add_duplex(a, b, params, &mut rng);
    let svc_a = TransportService::install(&net, a, EntityConfig::default());
    let svc_b = TransportService::install(&net, b, EntityConfig::default());
    let cs_a = ClockSync::install(svc_a);
    let _cs_b = ClockSync::install(svc_b); // responder
    (net, cs_a, b)
}

#[test]
fn offset_estimated_exactly_on_symmetric_path() {
    // Node a is 3 s ahead of the reference; symmetric 2 ms path.
    let (net, cs, b) = two_nodes(0, 3_000_000, JitterModel::None);
    let sample = Rc::new(Cell::new(None));
    let s2 = sample.clone();
    cs.probe(b, move |s| s2.set(Some(s)));
    net.engine().run_for(SimDuration::from_millis(50));
    let s = sample.get().expect("sample");
    // offset = remote − local = −3 s, exact on a symmetric path.
    assert_eq!(s.offset_us, -3_000_000);
    // RTT ≈ 2 × (2 ms prop + control serialisation + intra-host hop).
    assert!(s.rtt >= SimDuration::from_millis(4));
    assert!(s.rtt < SimDuration::from_millis(6), "rtt {}", s.rtt);
}

#[test]
fn remote_to_local_uses_best_estimate() {
    let (net, cs, b) = two_nodes(0, 1_000_000, JitterModel::None);
    cs.calibrate(b, 3, |_| {});
    net.engine().run_for(SimDuration::from_millis(200));
    // Remote (perfect clock) reads t; local reads t + 1 s.
    let local = cs
        .remote_to_local(b, SimTime::from_secs(10))
        .expect("calibrated");
    assert!(
        local.as_micros().abs_diff(11_000_000) <= 5,
        "converted {local}"
    );
}

#[test]
fn min_rtt_filtering_beats_single_probe_under_jitter() {
    // Heavy asymmetric jitter: individual samples err by up to half the
    // jitter; the min-RTT sample over many probes is near-exact.
    let (net, cs, b) = two_nodes(
        0,
        500_000,
        JitterModel::Uniform(SimDuration::from_millis(20)),
    );
    cs.calibrate(b, 16, |_| {});
    net.engine().run_for(SimDuration::from_secs(2));
    let best = cs.offset_to(b).expect("calibrated");
    let err = (best.offset_us + 500_000).unsigned_abs();
    assert!(
        err < 3_000,
        "best-of-16 offset error {err} us under ±20 ms jitter"
    );
}

#[test]
fn skewed_clock_offset_tracks_elapsed_time() {
    // +1000 ppm local clock: by t the local clock is ahead by ~t/1000.
    let (net, cs, b) = two_nodes(1000, 0, JitterModel::None);
    net.engine().run_until(SimTime::from_secs(100));
    let sample = Rc::new(Cell::new(None));
    let s2 = sample.clone();
    cs.probe(b, move |s| s2.set(Some(s)));
    net.engine().run_for(SimDuration::from_millis(50));
    let s = sample.get().expect("sample");
    // local ahead by ~100 ms ⇒ offset (remote − local) ≈ −100 ms.
    assert!(
        (s.offset_us + 100_000).unsigned_abs() < 1_000,
        "offset {} at t=100 s with +1000 ppm",
        s.offset_us
    );
    // Recalibrating later reflects the continued drift.
    net.engine().run_until(SimTime::from_secs(200));
    let sample2 = Rc::new(Cell::new(None));
    let s3 = sample2.clone();
    cs.probe(b, move |s| s3.set(Some(s)));
    net.engine().run_for(SimDuration::from_millis(50));
    let s2nd = sample2.get().expect("sample");
    assert!(
        (s2nd.offset_us + 200_000).unsigned_abs() < 1_000,
        "offset {} at t=200 s",
        s2nd.offset_us
    );
}

#[test]
fn unanswered_probe_yields_no_estimate() {
    // No responder at the far end: the estimator must simply have no data
    // (and not fabricate one).
    let net = Network::new(Engine::new());
    let mut rng = cm_core::rng::DetRng::from_seed(6);
    let a = net.add_node(NodeClock::perfect());
    let b = net.add_node(NodeClock::perfect());
    net.add_duplex(
        a,
        b,
        LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1)),
        &mut rng,
    );
    let svc_a = TransportService::install(&net, a, EntityConfig::default());
    let _svc_b = TransportService::install(&net, b, EntityConfig::default());
    let cs = ClockSync::install(svc_a);
    let fired = Rc::new(Cell::new(false));
    let f2 = fired.clone();
    cs.probe(b, move |_| f2.set(true));
    net.engine().run_for(SimDuration::from_secs(1));
    assert!(!fired.get());
    assert!(cs.offset_to(b).is_none());
    assert!(cs.remote_to_local(b, SimTime::from_secs(1)).is_none());
}

#[test]
fn loss_on_data_does_not_affect_control_probes() {
    // Clock probes ride the guaranteed control channel: 50% data loss must
    // not lose a single probe.
    let net = Network::new(Engine::new());
    let mut rng = cm_core::rng::DetRng::from_seed(7);
    let a = net.add_node(NodeClock::perfect());
    let b = net.add_node(NodeClock::perfect());
    let params = LinkParams {
        loss: ErrorRate::from_prob(0.5),
        ..LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1))
    };
    net.add_duplex(a, b, params, &mut rng);
    let svc_a = TransportService::install(&net, a, EntityConfig::default());
    let svc_b = TransportService::install(&net, b, EntityConfig::default());
    let cs = ClockSync::install(svc_a);
    let _resp = ClockSync::install(svc_b);
    let done = Rc::new(Cell::new(0u32));
    for _ in 0..10 {
        let d = done.clone();
        cs.probe(b, move |_| d.set(d.get() + 1));
    }
    net.engine().run_for(SimDuration::from_secs(1));
    assert_eq!(done.get(), 10, "every probe must complete");
}
