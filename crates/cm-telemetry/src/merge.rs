//! Deterministic multi-shard trace merge.
//!
//! A zone-sharded run produces one JSONL export per zone (each engine
//! has its own [`Telemetry`](crate::Telemetry)). This module folds them
//! into a single stream a human — or a differential test — can treat as
//! *the* trace of the run: every line gains a `"zone"` field, timed
//! event lines are merged into `(ts, zone, emission index)` order, and
//! the un-timed metric lines (counters, gauges, histograms, overflow)
//! follow grouped by zone.
//!
//! The ordering key is the point of the exercise. Per-zone exports are
//! already byte-deterministic, and zone execution does not depend on
//! which worker thread carried the zone, so the merged stream is
//! byte-identical for any worker count — the property the cluster
//! determinism tests pin.

use std::fmt::Write;

/// Merge per-zone JSONL exports (as produced by
/// [`Telemetry::export_jsonl`](crate::Telemetry::export_jsonl)) into one
/// deterministic stream.
///
/// `shards` pairs each zone id with that zone's export; zone ids must be
/// unique but need not be dense or sorted.
pub fn merge_jsonl(shards: &[(u32, String)]) -> String {
    // (ts, zone, emission index, line) for timed lines; the emission
    // index keeps same-instant lines of one zone in their original
    // order (span records legitimately share timestamps).
    let mut timed: Vec<(u64, u32, usize, &str)> = Vec::new();
    let mut untimed: Vec<(u32, Vec<&str>)> = Vec::new();
    for &(zone, ref jsonl) in shards {
        let mut rest = Vec::new();
        for (idx, line) in jsonl.lines().enumerate() {
            match event_ts(line) {
                Some(ts) => timed.push((ts, zone, idx, line)),
                None => rest.push(line),
            }
        }
        untimed.push((zone, rest));
    }
    timed.sort_by_key(|&(ts, zone, idx, _)| (ts, zone, idx));
    untimed.sort_by_key(|&(zone, _)| zone);

    let mut out = String::new();
    for (_, zone, _, line) in timed {
        push_zoned(&mut out, zone, line);
    }
    for (zone, lines) in untimed {
        for line in lines {
            push_zoned(&mut out, zone, line);
        }
    }
    out
}

/// The `"ts"` of an event line, or `None` for metric/overflow lines.
fn event_ts(line: &str) -> Option<u64> {
    if !line.starts_with("{\"type\":\"event\"") {
        return None;
    }
    let at = line.find("\"ts\":")? + 5;
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Re-emit `line` with `"zone":<zone>` as its first field.
fn push_zoned(out: &mut String, zone: u32, line: &str) {
    let body = line.strip_prefix('{').unwrap_or(line);
    let _ = writeln!(out, "{{\"zone\":{zone},{body}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, Telemetry};
    use cm_core::time::SimTime;

    fn shard(zone_salt: u64, ts: &[u64]) -> String {
        let tel = Telemetry::recording(16);
        for &t in ts {
            tel.instant(SimTime::from_micros(t), Layer::Netsim, "tick", |e| {
                e.u64("salt", zone_salt);
            });
        }
        tel.count("net.delivered", zone_salt);
        tel.export_jsonl()
    }

    #[test]
    fn merge_orders_by_ts_then_zone_and_tags_lines() {
        let merged = merge_jsonl(&[(1, shard(10, &[5, 30])), (0, shard(20, &[5, 7]))]);
        let lines: Vec<&str> = merged.lines().collect();
        // ts=5 zone 0 before ts=5 zone 1, then 7, then 30; counters
        // trail grouped by zone.
        assert!(lines[0].starts_with("{\"zone\":0,\"type\":\"event\",\"ts\":5"));
        assert!(lines[1].starts_with("{\"zone\":1,\"type\":\"event\",\"ts\":5"));
        assert!(lines[2].starts_with("{\"zone\":0,\"type\":\"event\",\"ts\":7"));
        assert!(lines[3].starts_with("{\"zone\":1,\"type\":\"event\",\"ts\":30"));
        assert!(lines[4].starts_with("{\"zone\":0,\"type\":\"counter\""));
        assert!(lines[5].starts_with("{\"zone\":1,\"type\":\"counter\""));
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn merge_is_input_order_independent() {
        let a = shard(1, &[3, 9]);
        let b = shard(2, &[4]);
        let fwd = merge_jsonl(&[(0, a.clone()), (1, b.clone())]);
        let rev = merge_jsonl(&[(1, b), (0, a)]);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn single_shard_merge_only_adds_zone_tags() {
        let raw = shard(7, &[2, 2, 8]);
        let merged = merge_jsonl(&[(3, raw.clone())]);
        let stripped: String = merged
            .lines()
            .map(|l| l.replacen("{\"zone\":3,", "{", 1) + "\n")
            .collect();
        // Same-instant events keep their emission order, so a single
        // shard round-trips exactly.
        assert_eq!(stripped, raw);
    }
}
