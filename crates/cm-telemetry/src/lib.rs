//! # cm-telemetry — sim-time tracing, metrics and a flight recorder
//!
//! The paper's QoS architecture works because every layer *observes*: the
//! transport's QoS maintenance monitors per-VC throughput/jitter/loss
//! against the negotiated flow spec (§4.1.2), and the LLO/HLO orchestration
//! loop regulates streams from harvested sync measurements (§5–6). This
//! crate gives those observations one home:
//!
//! - a **flight recorder** ([`Telemetry`]): a bounded ring buffer of
//!   structured span/instant events stamped with *simulated* time (never
//!   wall clock, so traces are byte-deterministic for a fixed seed);
//! - a **metrics registry**: counters, gauges and log-bucketed
//!   [`Histogram`]s with percentile readout;
//! - two **exporters**: JSONL ([`Telemetry::export_jsonl`]) and Chrome
//!   `trace_event` format ([`Telemetry::export_chrome_trace`]) openable in
//!   Perfetto / `chrome://tracing`.
//!
//! A [`Telemetry`] handle is a cheap clone (one `Rc`); the engine owns one
//! and every layer caches a clone. Disabled telemetry costs a single
//! `Cell<bool>` read per call site — field formatting happens only behind
//! the [`Telemetry::enabled`] fast path, because event builders take
//! closures that never run while disabled.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod export;
mod merge;
mod metrics;

pub use merge::merge_jsonl;
pub use metrics::Histogram;

use cm_core::time::{SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// Which layer of the stack emitted an event. Becomes the Chrome trace
/// "thread" so each layer gets its own track in Perfetto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// The network substrate: links, routing, reservations, the engine.
    Netsim,
    /// The transport entity: per-VC QoS monitoring, credits, error control.
    Transport,
    /// LLO/HLO orchestration and clock sync.
    Orchestration,
    /// Rooms, peers and room-wide control fan-out.
    Session,
    /// Applications and experiment harnesses.
    App,
}

impl Layer {
    /// Stable lower-case name, used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Netsim => "netsim",
            Layer::Transport => "transport",
            Layer::Orchestration => "orchestration",
            Layer::Session => "session",
            Layer::App => "app",
        }
    }

    /// Chrome trace "thread id" of this layer (stable, 1-based).
    pub fn tid(self) -> u32 {
        match self {
            Layer::Netsim => 1,
            Layer::Transport => 2,
            Layer::Orchestration => 3,
            Layer::Session => 4,
            Layer::App => 5,
        }
    }
}

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Static string (no allocation).
    Str(&'static str),
    /// Owned string (built only when telemetry is enabled).
    Text(String),
    /// Boolean.
    Bool(bool),
}

/// One recorded event: an instant (`dur == None`) or a completed span.
#[derive(Debug, Clone)]
pub struct Event {
    /// Simulated time the event happened (span start for spans).
    pub at: SimTime,
    /// Emitting layer.
    pub layer: Layer,
    /// Event name, `layer.noun.verb` style (see DESIGN.md taxonomy).
    pub name: &'static str,
    /// Span length; `None` for instant events.
    pub dur: Option<SimDuration>,
    /// Typed key–value fields, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

/// Builds an event's field list inside an emission closure.
pub struct FieldSink {
    fields: Vec<(&'static str, Value)>,
}

impl FieldSink {
    /// Append an unsigned integer field.
    pub fn u64(&mut self, key: &'static str, v: u64) -> &mut Self {
        self.fields.push((key, Value::U64(v)));
        self
    }

    /// Append a signed integer field.
    pub fn i64(&mut self, key: &'static str, v: i64) -> &mut Self {
        self.fields.push((key, Value::I64(v)));
        self
    }

    /// Append a floating-point field.
    pub fn f64(&mut self, key: &'static str, v: f64) -> &mut Self {
        self.fields.push((key, Value::F64(v)));
        self
    }

    /// Append a static-string field.
    pub fn str(&mut self, key: &'static str, v: &'static str) -> &mut Self {
        self.fields.push((key, Value::Str(v)));
        self
    }

    /// Append an owned-string field (the string is only built when
    /// telemetry is enabled, since the closure doesn't run otherwise).
    pub fn text(&mut self, key: &'static str, v: String) -> &mut Self {
        self.fields.push((key, Value::Text(v)));
        self
    }

    /// Append a boolean field.
    pub fn bool(&mut self, key: &'static str, v: bool) -> &mut Self {
        self.fields.push((key, Value::Bool(v)));
        self
    }
}

struct Inner {
    enabled: Cell<bool>,
    /// Ring-buffer capacity; the oldest events are dropped beyond it.
    capacity: Cell<usize>,
    /// Events dropped to ring-buffer overflow.
    overflow: Cell<u64>,
    events: RefCell<VecDeque<Event>>,
    counters: RefCell<BTreeMap<String, u64>>,
    gauges: RefCell<BTreeMap<String, f64>>,
    histograms: RefCell<BTreeMap<String, Histogram>>,
}

/// Default flight-recorder capacity when enabling without an explicit one.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Cheap-clone handle to one flight recorder + metrics registry.
///
/// Every clone shares the same buffers. The handle always exists (the
/// engine creates one disabled); [`Telemetry::enable`] flips recording on
/// for every holder at once.
#[derive(Clone)]
pub struct Telemetry {
    inner: Rc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    fn with_enabled(enabled: bool, capacity: usize) -> Telemetry {
        Telemetry {
            inner: Rc::new(Inner {
                enabled: Cell::new(enabled),
                capacity: Cell::new(capacity),
                overflow: Cell::new(0),
                events: RefCell::new(VecDeque::new()),
                counters: RefCell::new(BTreeMap::new()),
                gauges: RefCell::new(BTreeMap::new()),
                histograms: RefCell::new(BTreeMap::new()),
            }),
        }
    }

    /// An inert recorder: every emission is a single branch.
    pub fn disabled() -> Telemetry {
        Telemetry::with_enabled(false, DEFAULT_CAPACITY)
    }

    /// A recorder capturing up to `capacity` events (oldest dropped first).
    pub fn recording(capacity: usize) -> Telemetry {
        assert!(capacity > 0, "flight recorder needs capacity");
        Telemetry::with_enabled(true, capacity)
    }

    /// Turn recording on (for every holder of a clone of this handle).
    pub fn enable(&self, capacity: usize) {
        assert!(capacity > 0, "flight recorder needs capacity");
        self.inner.capacity.set(capacity);
        self.inner.enabled.set(true);
    }

    /// Turn recording off. Recorded events and metrics are kept.
    pub fn disable(&self) {
        self.inner.enabled.set(false);
    }

    /// The fast path every emission site checks first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    fn push_event(&self, ev: Event) {
        let mut events = self.inner.events.borrow_mut();
        if events.len() >= self.inner.capacity.get() {
            events.pop_front();
            self.inner.overflow.set(self.inner.overflow.get() + 1);
        }
        events.push_back(ev);
    }

    /// Record an instant event. `fields` runs only when enabled, so the
    /// call site pays one branch while disabled.
    #[inline]
    pub fn instant(
        &self,
        at: SimTime,
        layer: Layer,
        name: &'static str,
        fields: impl FnOnce(&mut FieldSink),
    ) {
        if !self.enabled() {
            return;
        }
        let mut sink = FieldSink { fields: Vec::new() };
        fields(&mut sink);
        self.push_event(Event {
            at,
            layer,
            name,
            dur: None,
            fields: sink.fields,
        });
    }

    /// Record a completed span `[start, start + dur]`.
    #[inline]
    pub fn span(
        &self,
        start: SimTime,
        dur: SimDuration,
        layer: Layer,
        name: &'static str,
        fields: impl FnOnce(&mut FieldSink),
    ) {
        if !self.enabled() {
            return;
        }
        let mut sink = FieldSink { fields: Vec::new() };
        fields(&mut sink);
        self.push_event(Event {
            at: start,
            layer,
            name,
            dur: Some(dur),
            fields: sink.fields,
        });
    }

    /// Add `n` to a named counter.
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        if !self.enabled() {
            return;
        }
        let mut counters = self.inner.counters.borrow_mut();
        match counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                counters.insert(name.to_string(), n);
            }
        }
    }

    /// Set a named gauge to its latest value.
    #[inline]
    pub fn gauge(&self, name: &str, v: f64) {
        if !self.enabled() {
            return;
        }
        let mut gauges = self.inner.gauges.borrow_mut();
        match gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Record one sample into a named log-bucketed histogram.
    #[inline]
    pub fn record(&self, name: &str, v: u64) {
        if !self.enabled() {
            return;
        }
        let mut hists = self.inner.histograms.borrow_mut();
        match hists.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = Histogram::new();
                h.record(v);
                hists.insert(name.to_string(), h);
            }
        }
    }

    /// Record a duration sample, in microseconds.
    #[inline]
    pub fn record_duration(&self, name: &str, d: SimDuration) {
        self.record(name, d.as_micros());
    }

    /// Snapshot of the recorded events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.borrow().iter().cloned().collect()
    }

    /// Number of recorded events currently held.
    pub fn event_count(&self) -> usize {
        self.inner.events.borrow().len()
    }

    /// Events dropped because the ring buffer was full.
    pub fn overflow(&self) -> u64 {
        self.inner.overflow.get()
    }

    /// Read a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.counters.borrow().get(name).copied().unwrap_or(0)
    }

    /// Read a gauge's latest value.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner.gauges.borrow().get(name).copied()
    }

    /// Clone of a named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.histograms.borrow().get(name).cloned()
    }

    /// Names of all histograms, in registry (sorted) order.
    pub fn histogram_names(&self) -> Vec<String> {
        self.inner.histograms.borrow().keys().cloned().collect()
    }

    /// Drop all recorded events and metrics (capacity and enablement keep).
    pub fn clear(&self) {
        self.inner.events.borrow_mut().clear();
        self.inner.overflow.set(0);
        self.inner.counters.borrow_mut().clear();
        self.inner.gauges.borrow_mut().clear();
        self.inner.histograms.borrow_mut().clear();
    }

    /// Export events then metrics as JSON Lines (see [`export`] docs).
    pub fn export_jsonl(&self) -> String {
        export::jsonl(self)
    }

    /// Export the event buffer as a Chrome `trace_event` JSON array.
    pub fn export_chrome_trace(&self) -> String {
        export::chrome_trace(self)
    }

    pub(crate) fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    pub(crate) fn gauges_snapshot(&self) -> Vec<(String, f64)> {
        self.inner
            .gauges
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    pub(crate) fn histograms_snapshot(&self) -> Vec<(String, Histogram)> {
        self.inner
            .histograms
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn disabled_records_nothing() {
        let tel = Telemetry::disabled();
        tel.instant(t(1), Layer::Netsim, "x", |e| {
            e.u64("n", 1);
        });
        tel.count("c", 3);
        tel.gauge("g", 1.0);
        tel.record("h", 10);
        assert_eq!(tel.event_count(), 0);
        assert_eq!(tel.counter("c"), 0);
        assert_eq!(tel.gauge_value("g"), None);
        assert!(tel.histogram("h").is_none());
    }

    #[test]
    fn disabled_never_runs_field_closure() {
        let tel = Telemetry::disabled();
        tel.instant(t(0), Layer::App, "x", |_| {
            panic!("field closure must not run while disabled")
        });
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let tel = Telemetry::recording(3);
        for i in 0..5u64 {
            tel.instant(t(i), Layer::App, "e", |e| {
                e.u64("i", i);
            });
        }
        let evs = tel.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(tel.overflow(), 2);
        assert_eq!(evs[0].fields[0].1, Value::U64(2));
        assert_eq!(evs[2].fields[0].1, Value::U64(4));
    }

    #[test]
    fn clones_share_state_and_enable_late() {
        let tel = Telemetry::disabled();
        let layer_copy = tel.clone();
        layer_copy.instant(t(0), Layer::App, "early", |_| {});
        tel.enable(16);
        layer_copy.instant(t(1), Layer::App, "late", |_| {});
        assert_eq!(tel.event_count(), 1);
        assert_eq!(tel.events()[0].name, "late");
    }

    #[test]
    fn counters_and_gauges() {
        let tel = Telemetry::recording(8);
        tel.count("pkts", 2);
        tel.count("pkts", 3);
        tel.gauge("offset", -4.5);
        tel.gauge("offset", 2.0);
        assert_eq!(tel.counter("pkts"), 5);
        assert_eq!(tel.gauge_value("offset"), Some(2.0));
    }

    #[test]
    fn span_keeps_duration() {
        let tel = Telemetry::recording(8);
        tel.span(
            t(10),
            SimDuration::from_micros(5),
            Layer::Netsim,
            "s",
            |e| {
                e.str("k", "v");
            },
        );
        let evs = tel.events();
        assert_eq!(evs[0].dur, Some(SimDuration::from_micros(5)));
    }
}
