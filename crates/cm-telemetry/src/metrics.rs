//! Log-bucketed histograms with percentile readout.
//!
//! The bucket layout is HDR-style: values below 16 get exact unit buckets;
//! every octave above is split into 16 sub-buckets, so the relative bucket
//! width never exceeds 1/16 of the value. Memory is O(log(max) × 16) — a
//! few hundred `u64`s at most — which is what lets per-VC duration and
//! size distributions live inside the flight recorder without the
//! unbounded `Vec` a `SampleSet` keeps.

/// Sub-bucket bits per octave: 2^4 = 16 sub-buckets.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Bucket index of a value.
fn bucket_index(v: u64) -> usize {
    if v < SUB * 2 {
        // Two exact blocks: values 0..32 map to buckets 0..32 (width 1).
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // v in [2^e, 2^(e+1)), e >= 5
        let width_shift = e - SUB_BITS;
        // Top SUB_BITS+1 bits: (16 + sub) where sub in [0, 16).
        let top = (v >> width_shift) as usize; // in [16, 32)
        let block = (e - SUB_BITS + 1) as usize;
        (block << SUB_BITS) + (top - SUB as usize)
    }
}

/// Inclusive `[lo, hi]` value range of a bucket.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < (SUB * 2) as usize {
        (idx as u64, idx as u64)
    } else {
        let block = (idx >> SUB_BITS) as u32; // >= 2
        let sub = (idx & (SUB as usize - 1)) as u64;
        let width_shift = block - 1;
        let lo = (SUB + sub) << width_shift;
        (lo, lo + ((1u64 << width_shift) - 1))
    }
}

/// A log-bucketed histogram of `u64` samples (durations in µs, sizes in
/// bytes …) with nearest-rank percentile readout.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    n: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: Vec::new(),
            n: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.n += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Exact smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.n > 0).then_some(self.min)
    }

    /// Exact largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.n > 0).then_some(self.max)
    }

    /// Arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// The inclusive `[lo, hi]` bounds of the bucket holding the `p`-th
    /// percentile sample (0–100), or `None` when empty.
    ///
    /// The rank rule matches `cm_core::stats::SampleSet::percentile`
    /// (nearest rank over `n − 1`), so the exact percentile of the same
    /// samples always lies within the returned bounds — the readout error
    /// is at most one bucket width (≤ 1/16 of the value).
    pub fn percentile_bounds(&self, p: f64) -> Option<(u64, u64)> {
        if self.n == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * (self.n as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                let (lo, hi) = bucket_bounds(idx);
                // Exact endpoints are tracked, so clamp the extreme
                // buckets to them.
                return Some((lo.max(self.min).min(hi), hi.min(self.max).max(lo)));
            }
        }
        Some((self.max, self.max))
    }

    /// A representative `p`-th percentile value: the upper bound of the
    /// containing bucket (conservative for latencies), or 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        self.percentile_bounds(p).map(|(_, hi)| hi).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_contains_value() {
        let probes = [
            0u64,
            1,
            15,
            16,
            31,
            32,
            33,
            63,
            64,
            100,
            1000,
            4095,
            4096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} not in [{lo}, {hi}]");
            // Relative width bound: hi - lo <= lo / 16 for lo >= 32.
            if lo >= 32 {
                assert!(hi - lo <= lo / SUB, "bucket too wide at {v}");
            }
        }
    }

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        let mut expected_lo = 0u64;
        for idx in 0..600 {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "gap before bucket {idx}");
            assert!(hi >= lo);
            expected_lo = hi + 1;
        }
    }

    #[test]
    fn exact_below_32() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 7, 31] {
            h.record(v);
        }
        assert_eq!(h.percentile_bounds(0.0), Some((3, 3)));
        assert_eq!(h.percentile_bounds(100.0), Some((31, 31)));
        // rank = round(0.5 × 3) = 2 → the third-smallest sample.
        assert_eq!(h.percentile_bounds(50.0), Some((7, 7)));
    }

    #[test]
    fn min_max_mean() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        h.record(10);
        h.record(30);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn percentile_of_large_values_within_width() {
        let mut h = Histogram::new();
        for i in 0..1000u64 {
            h.record(1_000_000 + i * 1000);
        }
        let (lo, hi) = h.percentile_bounds(99.0).unwrap();
        assert!(lo <= 1_989_000 && 1_989_000 <= hi);
        assert!(hi - lo <= lo / 16 + 1);
    }
}
