//! Trace exporters: JSON Lines and Chrome `trace_event`.
//!
//! Both are hand-rolled (the build has no serde) and byte-deterministic:
//! events export in ring-buffer (emission) order, metrics in sorted-name
//! order, and every timestamp is simulated time in microseconds — two
//! same-seed runs produce identical bytes.
//!
//! The Chrome format is the JSON-array flavour understood by Perfetto and
//! `chrome://tracing`: instants as `"ph":"i"`, spans as complete
//! (`"ph":"X"`) events, one "thread" per [`Layer`](crate::Layer).

use crate::{Event, Telemetry, Value};
use std::fmt::Write;

/// Escape a string into a JSON string literal (with quotes).
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // `Display` omits the point for integral floats; keep the value a
        // JSON number either way (5 is as valid as 5.0), nothing to fix.
    } else {
        out.push_str("null");
    }
}

fn json_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => json_f64(out, *x),
        Value::Str(s) => json_str(out, s),
        Value::Text(s) => json_str(out, s),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn json_fields(out: &mut String, fields: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_str(out, k);
        out.push(':');
        json_value(out, v);
    }
    out.push('}');
}

fn jsonl_event(out: &mut String, ev: &Event) {
    let _ = write!(
        out,
        "{{\"type\":\"event\",\"ts\":{},\"layer\":\"{}\",\"name\":",
        ev.at.as_micros(),
        ev.layer.name()
    );
    json_str(out, ev.name);
    if let Some(d) = ev.dur {
        let _ = write!(out, ",\"dur\":{}", d.as_micros());
    }
    out.push_str(",\"fields\":");
    json_fields(out, &ev.fields);
    out.push_str("}\n");
}

/// Events (emission order) then counters, gauges and histogram summaries
/// (sorted by name), one JSON object per line.
pub(crate) fn jsonl(tel: &Telemetry) -> String {
    let mut out = String::new();
    for ev in tel.events() {
        jsonl_event(&mut out, &ev);
    }
    for (name, v) in tel.counters_snapshot() {
        out.push_str("{\"type\":\"counter\",\"name\":");
        json_str(&mut out, &name);
        let _ = writeln!(out, ",\"value\":{v}}}");
    }
    for (name, v) in tel.gauges_snapshot() {
        out.push_str("{\"type\":\"gauge\",\"name\":");
        json_str(&mut out, &name);
        out.push_str(",\"value\":");
        json_f64(&mut out, v);
        out.push_str("}\n");
    }
    for (name, h) in tel.histograms_snapshot() {
        out.push_str("{\"type\":\"histogram\",\"name\":");
        json_str(&mut out, &name);
        let _ = write!(out, ",\"count\":{}", h.count());
        out.push_str(",\"mean\":");
        json_f64(&mut out, h.mean());
        if let (Some(min), Some(max)) = (h.min(), h.max()) {
            let _ = write!(out, ",\"min\":{min},\"max\":{max}");
        }
        for (label, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0)] {
            if let Some((lo, hi)) = h.percentile_bounds(p) {
                let _ = write!(out, ",\"{label}\":[{lo},{hi}]");
            }
        }
        out.push_str("}\n");
    }
    if tel.overflow() > 0 {
        let _ = writeln!(
            out,
            "{{\"type\":\"overflow\",\"dropped\":{}}}",
            tel.overflow()
        );
    }
    out
}

/// Chrome `trace_event` JSON array (Perfetto / `chrome://tracing`).
pub(crate) fn chrome_trace(tel: &Telemetry) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };
    // Name the process and one "thread" per layer so Perfetto shows
    // readable tracks.
    sep(&mut out, &mut first);
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"cm-stack (sim time)\"}}",
    );
    for layer in [
        crate::Layer::Netsim,
        crate::Layer::Transport,
        crate::Layer::Orchestration,
        crate::Layer::Session,
        crate::Layer::App,
    ] {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            layer.tid(),
            layer.name()
        );
    }
    for ev in tel.events() {
        sep(&mut out, &mut first);
        out.push_str("{\"name\":");
        json_str(&mut out, ev.name);
        match ev.dur {
            Some(d) => {
                let _ = write!(
                    out,
                    ",\"ph\":\"X\",\"ts\":{},\"dur\":{}",
                    ev.at.as_micros(),
                    d.as_micros()
                );
            }
            None => {
                let _ = write!(
                    out,
                    ",\"ph\":\"i\",\"ts\":{},\"s\":\"t\"",
                    ev.at.as_micros()
                );
            }
        }
        let _ = write!(out, ",\"pid\":1,\"tid\":{},\"args\":", ev.layer.tid());
        json_fields(&mut out, &ev.fields);
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::{Layer, Telemetry};
    use cm_core::time::{SimDuration, SimTime};

    fn sample() -> Telemetry {
        let tel = Telemetry::recording(16);
        tel.instant(
            SimTime::from_micros(5),
            Layer::Netsim,
            "net.pkt.drop",
            |e| {
                e.u64("link", 3).str("reason", "loss");
            },
        );
        tel.span(
            SimTime::from_micros(10),
            SimDuration::from_micros(7),
            Layer::Session,
            "room.join",
            |e| {
                e.text("room", "lab \"1\"".to_string()).bool("ok", true);
            },
        );
        tel.count("net.delivered", 2);
        tel.gauge("clock.offset_us/1", -12.5);
        tel.record("vc.jitter_us", 42);
        tel
    }

    #[test]
    fn jsonl_deterministic_and_escaped() {
        let a = sample().export_jsonl();
        let b = sample().export_jsonl();
        assert_eq!(a, b);
        assert!(a.contains("\"name\":\"net.pkt.drop\""));
        assert!(a.contains("lab \\\"1\\\""));
        assert!(a.contains("\"type\":\"counter\""));
        assert!(a.contains("\"type\":\"gauge\""));
        assert!(a.contains("\"type\":\"histogram\""));
        // One JSON object per line.
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let t = sample().export_chrome_trace();
        assert!(t.starts_with("[\n"));
        assert!(t.trim_end().ends_with(']'));
        assert!(t.contains("\"ph\":\"M\""));
        assert!(t.contains("\"ph\":\"i\""));
        assert!(t.contains("\"ph\":\"X\""));
        assert!(t.contains("\"tid\":4")); // session track
        assert_eq!(sample().export_chrome_trace(), t);
    }
}
