//! Property tests pinning the telemetry histogram's percentile readout to
//! the exact percentiles a `cm_core::stats::SampleSet` computes over the
//! same observations: the exact value must always lie inside the bucket
//! bounds the histogram reports (readout error ≤ one bucket width), and
//! count/min/max must agree exactly.

use cm_core::stats::SampleSet;
use cm_telemetry::Histogram;
use proptest::prelude::*;

proptest! {
    #[test]
    fn percentile_bounds_contain_exact_percentile(
        samples in collection::vec(0u64..2_000_000, 1..400),
        p_tenths in 0u64..=1000,
    ) {
        let p = p_tenths as f64 / 10.0;
        let mut hist = Histogram::new();
        let mut exact = SampleSet::new();
        for &s in &samples {
            hist.record(s);
            exact.push(s as f64);
        }
        let want = exact.percentile(p) as u64;
        let (lo, hi) = hist.percentile_bounds(p).expect("non-empty");
        prop_assert!(
            lo <= want && want <= hi,
            "p{p}: exact {want} outside [{lo}, {hi}]"
        );
        // Bucket-width bound: ≤ 1/16 of the value (exact below 32).
        prop_assert!(hi - lo <= (lo / 16), "bucket [{lo}, {hi}] too wide");
    }

    #[test]
    fn count_min_max_match_sampleset(samples in collection::vec(0u64..u64::MAX / 2, 1..200)) {
        let mut hist = Histogram::new();
        let mut exact = SampleSet::new();
        for &s in &samples {
            hist.record(s);
            exact.push(s as f64);
        }
        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.min().expect("non-empty") as f64, exact.percentile(0.0));
        prop_assert_eq!(hist.max().expect("non-empty") as f64, exact.percentile(100.0));
    }

    #[test]
    fn representative_percentile_is_monotone(
        samples in collection::vec(0u64..1_000_000, 2..200),
    ) {
        let mut hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let mut prev = 0u64;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = hist.percentile(p);
            prop_assert!(v >= prev, "p{p} regressed: {v} < {prev}");
            prev = v;
        }
    }
}
