//! Differential pin of the packet transit path.
//!
//! The typed-flight rewrite (engine `Stored::Flight` events instead of
//! per-hop boxed closures, O(1) link occupancy, leaf-move multicast
//! delivery) must be behaviour-invisible: same-seed runs produce the same
//! deliveries in the same order with the same timing, corruption flags and
//! counters, and the telemetry JSONL is byte-identical.
//!
//! The goldens below were captured from the pre-flight closure-based path
//! (commit a8aae7b) on the fixed scenario in `scenario()`; the scenario
//! deliberately mixes everything the transit path can do — multi-hop
//! unicast over lossy/jittery links, queue contention and overflow,
//! control-class priority, local loopback sends, and multicast with
//! mid-flight membership churn (leaf and interior members).

use cm_core::address::{NetAddr, VcId};
use cm_core::rng::DetRng;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use netsim::{Engine, JitterModel, LinkParams, Network, NodeClock, Packet, PacketClass};
use std::cell::RefCell;
use std::rc::Rc;

/// FNV-1a over the formatted delivery log — compact, dependency-free, and
/// stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Records every delivery as one formatted line.
struct Recorder {
    log: RefCell<String>,
}

impl netsim::NodeHandler for Recorder {
    fn on_packet(&self, net: &Network, at: NetAddr, pkt: Packet) {
        use std::fmt::Write;
        let tag = pkt.payload_as::<u64>().copied().unwrap_or(u64::MAX);
        writeln!(
            self.log.borrow_mut(),
            "{} node={} src={} dst={} vc={:?} class={:?} size={} mg={:?} corrupt={} sent={} tag={}",
            net.engine().now(),
            at.0,
            pkt.src.0,
            pkt.dst.0,
            pkt.vc,
            pkt.class,
            pkt.wire_size,
            pkt.mgroup.map(|g| g.0),
            pkt.corrupted,
            pkt.sent_at,
            tag,
        )
        .unwrap();
    }
}

/// The fixed-seed scenario. Returns (delivery log, telemetry JSONL,
/// network counters as a formatted line).
fn scenario() -> (String, String, String) {
    let net = Network::new(Engine::new());
    let tel = net.engine().telemetry().clone();
    tel.enable(cm_telemetry_capacity());

    let mut rng = DetRng::from_seed(4242);
    // Topology: a line a-b-c-d with a lossy/jittery middle link, plus a
    // hub h off b serving three leaves l0..l2 for multicast.
    let a = net.add_node(NodeClock::perfect());
    let b = net.add_node(NodeClock::perfect());
    let c = net.add_node(NodeClock::perfect());
    let d = net.add_node(NodeClock::perfect());
    let h = net.add_node(NodeClock::perfect());
    let leaves = [
        net.add_node(NodeClock::perfect()),
        net.add_node(NodeClock::perfect()),
        net.add_node(NodeClock::perfect()),
    ];
    let clean = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
    let dirty = LinkParams {
        jitter: JitterModel::Uniform(SimDuration::from_micros(700)),
        loss: cm_core::qos::ErrorRate::from_prob(0.05),
        bit_error: cm_core::qos::ErrorRate::from_prob(0.03),
        ..clean.clone()
    };
    let tight = LinkParams {
        queue_capacity: 4_000,
        ..LinkParams::clean(Bandwidth::mbps(2), SimDuration::from_millis(1))
    };
    net.add_duplex(a, b, clean.clone(), &mut rng);
    net.add_duplex(b, c, dirty, &mut rng);
    net.add_duplex(c, d, tight, &mut rng);
    net.add_duplex(b, h, clean.clone(), &mut rng);
    for &l in &leaves {
        net.add_duplex(h, l, clean.clone(), &mut rng);
    }

    let rec = Rc::new(Recorder {
        log: RefCell::new(String::new()),
    });
    for &n in [a, b, c, d, h].iter().chain(leaves.iter()) {
        net.set_handler(n, rec.clone());
    }

    // Multicast group rooted at a; all three leaves plus interior node h
    // (a member that also forwards) join.
    let g = net.create_group(a, Bandwidth::mbps(1));
    net.group_join(g, h).unwrap().unwrap();
    for &l in &leaves {
        net.group_join(g, l).unwrap().unwrap();
    }

    let e = net.engine().clone();
    // Unicast data a→d across the lossy middle and the tight tail: enough
    // packets to overflow the c→d queue.
    for i in 0..60u64 {
        let net2 = net.clone();
        let at = SimTime::from_micros(i * 150);
        e.schedule_at(at, move |_| {
            net2.send(a, Packet::data(a, d, VcId(9), 1000, at, i));
        });
    }
    // Control traffic rides the priority channel d→a.
    for i in 0..10u64 {
        let net2 = net.clone();
        let at = SimTime::from_micros(i * 400);
        e.schedule_at(at, move |_| {
            net2.send(d, Packet::control(d, a, 200, at, 1000 + i));
        });
    }
    // Local loopback on b.
    for i in 0..5u64 {
        let net2 = net.clone();
        let at = SimTime::from_micros(i * 900);
        e.schedule_at(at, move |_| {
            net2.send(b, Packet::control(b, b, 64, at, 2000 + i));
        });
    }
    // Multicast sends with mid-flight churn: l2 leaves and rejoins while
    // packets are on the tree.
    for i in 0..40u64 {
        let net2 = net.clone();
        let at = SimTime::from_micros(i * 320);
        e.schedule_at(at, move |_| {
            net2.send_to_group(
                g,
                Packet::group(a, g, Some(VcId(77)), PacketClass::Data, 800, at, 3000 + i),
            );
            if i == 10 {
                net2.group_leave(g, NetAddr(7)); // l2
            }
            if i == 25 {
                net2.group_join(g, NetAddr(7)).unwrap().unwrap();
            }
        });
    }
    e.run();

    let counters = format!("{:?}", net.counters());
    let log = rec.log.borrow().clone();
    (log, tel.export_jsonl(), counters)
}

fn cm_telemetry_capacity() -> usize {
    // Large enough that the ring never wraps for this scenario: the JSONL
    // is the complete trace, not a suffix.
    1 << 16
}

/// Pinned digests of the pre-rewrite behaviour. If an intentional
/// behaviour change ever invalidates these, re-derive them with
/// `cargo test -p netsim --test packet_differential -- --nocapture`
/// (the failing assertion prints the observed values).
const GOLDEN_DELIVERY_FNV: u64 = 0xca52ffd0d643abc0;
// Re-pinned when the `engine.events_drained` counter was added to the
// run-loop drain span: the counter appears in the JSONL export (the
// delivery log and network counters were unchanged — event order and
// packet behaviour did not drift).
const GOLDEN_JSONL_FNV: u64 = 0x7671455452d1c81e;
// `node_down`/`link_down` were appended to `NetworkCounters` by the fault
// API; a zero-fault run must keep them at zero.
const GOLDEN_COUNTERS: &str = "NetworkCounters { delivered: 180, no_handler: 0, no_route: 0, \
     queue_overflow: 38, link_loss: 2, node_down: 0, link_down: 0 }";

#[test]
fn same_seed_delivery_order_and_telemetry_are_pinned() {
    let (log, jsonl, counters) = scenario();
    let (log2, jsonl2, counters2) = scenario();
    // Run-to-run determinism first: any failure here is noise, not drift.
    assert_eq!(log, log2, "delivery log not deterministic across runs");
    assert_eq!(jsonl, jsonl2, "telemetry JSONL not deterministic");
    assert_eq!(counters, counters2);

    let log_fnv = fnv1a(log.as_bytes());
    let jsonl_fnv = fnv1a(jsonl.as_bytes());
    assert!(
        log_fnv == GOLDEN_DELIVERY_FNV
            && jsonl_fnv == GOLDEN_JSONL_FNV
            && counters == GOLDEN_COUNTERS,
        "packet path behaviour drifted from the pre-flight golden:\n\
         delivery fnv = {log_fnv:#018x} (golden {GOLDEN_DELIVERY_FNV:#018x})\n\
         jsonl fnv    = {jsonl_fnv:#018x} (golden {GOLDEN_JSONL_FNV:#018x})\n\
         counters     = {counters}\n\
         golden       = {GOLDEN_COUNTERS}\n\
         first lines of delivery log:\n{}",
        log.lines().take(10).collect::<Vec<_>>().join("\n"),
    );
}
