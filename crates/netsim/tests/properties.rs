//! Property-based tests on the network substrate: engine ordering and
//! determinism, link timing invariants, reservation-ledger conservation,
//! and clock conversion round-trips.

use cm_core::address::VcId;
use cm_core::qos::ErrorRate;
use cm_core::rng::DetRng;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use netsim::link::{Link, LinkOutcome};
use netsim::reservation::ReservationTable;
use netsim::{Engine, JitterModel, LinkId, LinkParams, NodeClock, PacketClass};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events fire in exact (time, insertion) order regardless of the
    /// order they were scheduled in.
    #[test]
    fn engine_orders_events(times in proptest::collection::vec(0u64..1_000, 1..100)) {
        let e = Engine::new();
        let fired: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &t) in times.iter().enumerate() {
            let f = fired.clone();
            e.schedule_at(SimTime::from_micros(t), move |e| {
                f.borrow_mut().push((e.now().as_micros(), i));
            });
        }
        e.run();
        let log = fired.borrow();
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            // Time non-decreasing; FIFO among equal times.
            prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    /// Data arrivals on one link are FIFO and never precede the physical
    /// minimum (serialisation + propagation).
    #[test]
    fn link_arrivals_fifo_and_causal(
        sizes in proptest::collection::vec(1usize..10_000, 1..100),
        jitter_ms in 0u64..20,
        seed in 0u64..1_000,
    ) {
        let params = LinkParams {
            jitter: if jitter_ms == 0 {
                JitterModel::None
            } else {
                JitterModel::Uniform(SimDuration::from_millis(jitter_ms))
            },
            queue_capacity: usize::MAX >> 1,
            ..LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(2))
        };
        let mut link = Link::new(params, DetRng::from_seed(seed));
        let mut last_arrival = SimTime::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            let now = SimTime::from_micros(i as u64 * 100);
            match link.submit(now, PacketClass::Data, size) {
                LinkOutcome::Deliver { arrival, .. } => {
                    prop_assert!(arrival >= last_arrival, "FIFO violated");
                    // Causality: at least serialisation + propagation.
                    let min = now
                        + Bandwidth::mbps(10).transmission_time(size)
                        + SimDuration::from_millis(2);
                    prop_assert!(arrival >= min, "arrival {arrival} before physical minimum {min}");
                    last_arrival = arrival;
                }
                LinkOutcome::Drop(_) => {}
            }
        }
    }

    /// The same seed yields the same loss/corruption/arrival pattern.
    #[test]
    fn link_is_deterministic(seed in 0u64..10_000) {
        let params = LinkParams {
            loss: ErrorRate::from_prob(0.1),
            bit_error: ErrorRate::from_prob(0.05),
            jitter: JitterModel::Exponential(SimDuration::from_millis(3)),
            ..LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1))
        };
        let run = || {
            let mut link = Link::new(params.clone(), DetRng::from_seed(seed));
            (0..200u64)
                .map(|i| {
                    format!(
                        "{:?}",
                        link.submit(SimTime::from_micros(i * 500), PacketClass::Data, 1_000)
                    )
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Reservation ledger: any sequence of admissions and releases leaves
    /// per-link reserved bandwidth equal to the sum of live reservations,
    /// and admission never oversubscribes.
    #[test]
    fn reservation_ledger_conserves(
        ops in proptest::collection::vec((0u8..2, 0u64..10, 1u64..6), 1..100),
    ) {
        let capacity = Bandwidth::mbps(10);
        let route = [(LinkId(0), capacity), (LinkId(1), capacity)];
        let mut table = ReservationTable::default();
        let mut live: std::collections::HashMap<u64, u64> = Default::default();
        for (op, vc, mbps) in ops {
            match op {
                0 => {
                    let r = table.admit(VcId(vc), &route, Bandwidth::mbps(mbps));
                    if r.is_ok() {
                        prop_assert!(!live.contains_key(&vc), "double admit accepted");
                        live.insert(vc, mbps);
                    }
                }
                _ => {
                    table.release(VcId(vc));
                    live.remove(&vc);
                }
            }
            let total: u64 = live.values().sum();
            prop_assert!(total <= 10, "oversubscribed: {total} Mb/s on 10 Mb/s");
            prop_assert_eq!(
                table.reserved_on(LinkId(0)),
                Bandwidth::mbps(total)
            );
            prop_assert_eq!(
                table.reserved_on(LinkId(1)),
                Bandwidth::mbps(total)
            );
        }
    }

    /// Clock conversions round-trip within 1 µs for any plausible skew.
    #[test]
    fn clock_roundtrip(ppm in -10_000i32..10_000, secs in 0u64..1_000_000) {
        let c = NodeClock::with_skew(ppm);
        let g = SimTime::from_secs(secs);
        let back = c.global_of(c.local_of(g));
        prop_assert!(g.as_micros().abs_diff(back.as_micros()) <= 1);
    }

    /// run_until never executes events beyond the deadline and always
    /// advances the clock to it.
    #[test]
    fn run_until_respects_deadline(times in proptest::collection::vec(0u64..2_000, 1..50), deadline in 0u64..2_000) {
        let e = Engine::new();
        let fired = Rc::new(RefCell::new(Vec::new()));
        for &t in &times {
            let f = fired.clone();
            e.schedule_at(SimTime::from_micros(t), move |e| {
                f.borrow_mut().push(e.now().as_micros());
            });
        }
        e.run_until(SimTime::from_micros(deadline));
        prop_assert!(fired.borrow().iter().all(|&t| t <= deadline));
        prop_assert_eq!(
            fired.borrow().len(),
            times.iter().filter(|&&t| t <= deadline).count()
        );
        prop_assert_eq!(e.now(), SimTime::from_micros(deadline));
    }
}
