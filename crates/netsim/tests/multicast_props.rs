//! Property-based tests of the multicast invariants:
//!
//! 1. every group member receives each packet sent while it was a member
//!    **exactly once**, in send order;
//! 2. no packet traverses any link more than once per send (each link
//!    carries exactly as many packets as there were sends whose snapshot
//!    tree contained it — fan-out happens only at branch points);
//! 3. join/leave mid-stream never duplicates, drops or reorders delivery
//!    for unaffected members (checked by exact per-member sequences);
//! 4. the reservation ledger always ends consistent with the final tree.

use cm_core::address::NetAddr;
use cm_core::rng::DetRng;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use netsim::{Engine, LinkParams, Network, NodeClock, Packet, PacketClass};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Collects payload tags delivered to one node.
struct Tap {
    got: RefCell<Vec<u64>>,
}

impl netsim::NodeHandler for Tap {
    fn on_packet(&self, _net: &Network, _at: NetAddr, pkt: Packet) {
        self.got
            .borrow_mut()
            .push(*pkt.payload_as::<u64>().unwrap());
    }
}

/// Chain topology 0–1–…–(n-1) plus deterministic extra duplex links so the
/// BFS tree has real branch points; clean links (no loss/jitter).
fn build_net(n: usize, extra: &[(usize, usize)]) -> Network {
    let net = Network::new(Engine::new());
    let mut rng = DetRng::from_seed(5);
    let nodes: Vec<NetAddr> = (0..n).map(|_| net.add_node(NodeClock::perfect())).collect();
    let p = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
    for w in nodes.windows(2) {
        net.add_duplex(w[0], w[1], p.clone(), &mut rng);
    }
    for &(a, b) in extra {
        let (a, b) = (a % n, b % n);
        if a != b {
            net.add_duplex(nodes[a], nodes[b], p.clone(), &mut rng);
        }
    }
    net
}

proptest! {
    #[test]
    fn multicast_delivery_is_exact_under_churn(
        n in 3usize..10,
        extra in proptest::collection::vec((0usize..10, 0usize..10), 0..4),
        ops in proptest::collection::vec((0u8..4, 1usize..10), 1..60),
    ) {
        let net = build_net(n, &extra);
        let taps: Vec<Rc<Tap>> = (0..n)
            .map(|i| {
                let t = Rc::new(Tap { got: RefCell::new(Vec::new()) });
                net.set_handler(NetAddr(i as u32), t.clone());
                t
            })
            .collect();
        let root = NetAddr(0);
        let g = net.create_group(root, Bandwidth::kbps(100));

        // Model: replay the op sequence over a membership state machine,
        // recording per-member expected sequences and per-link expected
        // carry counts; schedule the real ops at the same order/times.
        let mut members: BTreeSet<NetAddr> = BTreeSet::new();
        let mut expected: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut expected_on_link: std::collections::BTreeMap<netsim::LinkId, u64> =
            Default::default();
        let mut sends = 0u64;
        for (i, &(op, who)) in ops.iter().enumerate() {
            let member = NetAddr(1 + (who % (n - 1)) as u32); // never the root
            let at = SimTime::from_micros(i as u64 * 500);
            let netc = net.clone();
            match op {
                0 | 1 => {
                    // Join (idempotent).
                    members.insert(member);
                    net.engine().schedule_at(at, move |_| {
                        netc.group_join(g, member).unwrap().unwrap();
                    });
                }
                2 => {
                    members.remove(&member);
                    net.engine().schedule_at(at, move |_| {
                        netc.group_leave(g, member);
                    });
                }
                _ => {
                    let seq = sends;
                    sends += 1;
                    for m in &members {
                        expected[m.0 as usize].push(seq);
                    }
                    net.engine().schedule_at(at, move |_| {
                        netc.send_to_group(
                            g,
                            Packet::group(root, g, None, PacketClass::Data, 1000, at, seq),
                        );
                    });
                }
            }
        }
        // Per-link expected counts need the real snapshot at each send, so
        // capture them during the run: schedule a probe right at each send
        // time (after the send, same instant) recording the tree.
        let carried: Rc<RefCell<Vec<BTreeSet<netsim::LinkId>>>> =
            Rc::new(RefCell::new(Vec::new()));
        for (i, &(op, _)) in ops.iter().enumerate() {
            if op >= 3 {
                let at = SimTime::from_micros(i as u64 * 500);
                let netc = net.clone();
                let carriedc = carried.clone();
                net.engine().schedule_at(at, move |_| {
                    carriedc.borrow_mut().push(netc.group_tree(g).links.clone());
                });
            }
        }
        net.engine().run();

        // (1) + (3): exact per-member sequences — exactly once, in order,
        // unaffected by other members' churn.
        for i in 0..n {
            prop_assert_eq!(
                &*taps[i].got.borrow(),
                &expected[i],
                "member {} sequences diverge", i
            );
        }
        // (2): every link carried exactly one copy per send whose snapshot
        // contained it.
        for snapshot in carried.borrow().iter() {
            for &l in snapshot {
                *expected_on_link.entry(l).or_default() += 1;
            }
        }
        let tree_links: Vec<_> = expected_on_link.keys().copied().collect();
        for l in tree_links {
            prop_assert_eq!(
                net.link_counters(l).submitted,
                expected_on_link[&l],
                "link {:?} carried a packet more than once per send", l
            );
        }
        // (4): ledger consistent with the final tree.
        let final_tree = net.group_tree(g);
        for &l in &final_tree.links {
            prop_assert_eq!(net.reserved_on(l), Bandwidth::kbps(100));
        }
        if final_tree.members.is_empty() {
            prop_assert_eq!(net.reservation_count(), 0);
        } else {
            prop_assert_eq!(net.reservation_count(), 1);
        }
    }

    /// Scaling shape: with k receivers behind one shared first hop, the
    /// source link carries each send once while k copies are delivered.
    #[test]
    fn fan_out_does_not_multiply_source_link(k in 1usize..8, sends in 1u64..20) {
        // root(0) — hub(1) — receivers 2..2+k (star).
        let n = k + 2;
        let extra: Vec<(usize, usize)> = (3..n).map(|r| (1, r)).collect();
        let net = build_net(n, &extra);
        let taps: Vec<Rc<Tap>> = (0..n)
            .map(|i| {
                let t = Rc::new(Tap { got: RefCell::new(Vec::new()) });
                net.set_handler(NetAddr(i as u32), t.clone());
                t
            })
            .collect();
        let g = net.create_group(NetAddr(0), Bandwidth::kbps(64));
        for r in 0..k {
            net.group_join(g, NetAddr(2 + r as u32)).unwrap().unwrap();
        }
        let first_hop = net.route(NetAddr(0), NetAddr(1)).unwrap()[0];
        for s in 0..sends {
            net.send_to_group(
                g,
                Packet::group(NetAddr(0), g, None, PacketClass::Data, 500, SimTime::ZERO, s),
            );
        }
        net.engine().run();
        prop_assert_eq!(net.link_counters(first_hop).submitted, sends);
        for r in 0..k {
            prop_assert_eq!(taps[2 + r].got.borrow().len() as u64, sends);
        }
    }
}
