//! Differential test: the timer-wheel engine must produce byte-identical
//! firing order to a reference binary-heap scheduler (the pre-wheel
//! implementation) under random schedule / cancel / periodic-arm /
//! run_until / step sequences.
//!
//! The reference keeps the old semantics exactly: a max-heap on inverted
//! `(at, seq)` plus a tombstone set for cancellations. Equivalence is
//! checked on the full `(fire_time, tag)` log and on the clock.

use cm_core::time::SimDuration;
use netsim::{Engine, EventId, PeriodicTimer};
use proptest::prelude::*;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;

/// The pre-wheel scheduler, reduced to what ordering depends on.
struct RefEngine {
    now: u64,
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    /// Seqs scheduled, not yet fired, not cancelled — the live count the
    /// new engine's `pending()` must agree with.
    live: HashSet<u64>,
    fired: Vec<(u64, u32)>,
}

impl RefEngine {
    fn new() -> RefEngine {
        RefEngine {
            now: 0,
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            live: HashSet::new(),
            fired: Vec::new(),
        }
    }

    fn schedule(&mut self, at: u64, tag: u32) -> u64 {
        assert!(at >= self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, tag)));
        self.live.insert(seq);
        seq
    }

    fn cancel(&mut self, seq: u64) {
        // Cancelling an already-fired (or already-cancelled) event is a
        // no-op, matching the real engine's stale-generation check.
        if self.live.remove(&seq) {
            self.cancelled.insert(seq);
        }
    }

    fn step(&mut self) -> bool {
        while let Some(Reverse((at, seq, tag))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            self.live.remove(&seq);
            self.now = at;
            self.fired.push((at, tag));
            return true;
        }
        false
    }

    fn run(&mut self) {
        while self.step() {}
    }

    fn run_until(&mut self, deadline: u64) {
        while let Some(&Reverse((at, seq, _))) = self.heap.peek() {
            if self.cancelled.contains(&seq) {
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            if at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }
}

const TIMERS: usize = 4;
/// Offset spreads chosen to exercise every wheel level and the overflow
/// heap (the wheel spans 2^36 µs).
const SPREADS: [u64; 5] = [100, 10_000, 100_000_000, 1 << 37, 1 << 40];

#[derive(Debug, Clone, Copy)]
enum Op {
    Schedule(u64),
    Cancel(u64),
    ArmTimer(usize, u64),
    DisarmTimer(usize),
    RunUntil(u64),
    Step,
}

fn decode(kind: u8, a: u64, b: u64) -> Op {
    let spread = SPREADS[(b >> 32) as usize % SPREADS.len()];
    match kind {
        0..=2 => Op::Schedule(a % spread),
        3 => Op::Cancel(a),
        4 => Op::ArmTimer(a as usize % TIMERS, b % spread),
        5 => Op::DisarmTimer(a as usize % TIMERS),
        6 => Op::RunUntil(a % spread),
        _ => Op::Step,
    }
}

proptest! {
    #[test]
    fn wheel_matches_reference_heap(
        raw in proptest::collection::vec((0u8..8, any::<u64>(), any::<u64>()), 1..120)
    ) {
        let engine = Engine::new();
        let fired: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let timers: Vec<PeriodicTimer> = (0..TIMERS)
            .map(|k| {
                let f = fired.clone();
                PeriodicTimer::new(&engine, move |e| {
                    f.borrow_mut().push((e.now().as_micros(), 1000 + k as u32));
                })
            })
            .collect();
        // Reference timer slots: the seq of the currently-armed shot.
        let mut ref_timers: [Option<u64>; TIMERS] = [None; TIMERS];

        let mut reference = RefEngine::new();
        let mut ids: Vec<(EventId, u64)> = Vec::new(); // (real id, ref seq)

        for (i, &(kind, a, b)) in raw.iter().enumerate() {
            let tag = i as u32;
            match decode(kind, a, b) {
                Op::Schedule(offset) => {
                    let at = engine.now() + SimDuration::from_micros(offset);
                    let f = fired.clone();
                    let id = engine.schedule_at(at, move |e| {
                        f.borrow_mut().push((e.now().as_micros(), tag));
                    });
                    let seq = reference.schedule(at.as_micros(), tag);
                    ids.push((id, seq));
                }
                Op::Cancel(pick) => {
                    if !ids.is_empty() {
                        let (id, seq) = ids[pick as usize % ids.len()];
                        engine.cancel(id);
                        reference.cancel(seq);
                    }
                }
                Op::ArmTimer(k, offset) => {
                    let at = engine.now() + SimDuration::from_micros(offset);
                    timers[k].arm_at(at);
                    if let Some(seq) = ref_timers[k].take() {
                        reference.cancel(seq);
                    }
                    ref_timers[k] = Some(reference.schedule(at.as_micros(), 1000 + k as u32));
                }
                Op::DisarmTimer(k) => {
                    timers[k].disarm();
                    if let Some(seq) = ref_timers[k].take() {
                        reference.cancel(seq);
                    }
                }
                Op::RunUntil(offset) => {
                    let deadline = engine.now() + SimDuration::from_micros(offset);
                    engine.run_until(deadline);
                    reference.run_until(deadline.as_micros());
                    prop_assert_eq!(engine.now().as_micros(), reference.now);
                }
                Op::Step => {
                    let stepped = engine.step();
                    prop_assert_eq!(stepped, reference.step());
                }
            }
            prop_assert_eq!(engine.pending(), reference.live.len());
        }

        engine.run();
        reference.run();
        prop_assert_eq!(engine.now().as_micros(), reference.now);
        prop_assert_eq!(&*fired.borrow(), &reference.fired);
        prop_assert_eq!(engine.pending(), 0);
    }
}
