//! Steady-state packet forwarding must reuse slab slots, not grow the
//! engine's event storage: each hop is a typed `Stored::Flight` in a slab
//! slot that is vacated on fire and handed back to the free list. A million
//! hops through a line should leave the slab no bigger than the first batch
//! made it.

use cm_core::address::VcId;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use netsim::{line, Engine, LinkParams, Packet};

#[test]
fn million_hops_reuse_slab_slots() {
    let params = LinkParams {
        // 1000 packets × 1200 B wire size all queued at once must fit.
        queue_capacity: 4 << 20,
        ..LinkParams::clean(Bandwidth::mbps(10_000), SimDuration::from_micros(50))
    };
    // 11 nodes: end-to-end is 10 hops.
    let (net, nodes) = line(Engine::new(), 11, params, 99);
    let (src, dst) = (nodes[0], *nodes.last().unwrap());

    let engine = net.engine().clone();
    let mut high_water = 0usize;
    const BATCHES: usize = 100;
    const PKTS: usize = 1000; // 100 × 1000 × 10 hops = 1M hops total

    for batch in 0..BATCHES {
        for i in 0..PKTS {
            net.send(
                src,
                Packet::data(src, dst, VcId(1), 1200, engine.now(), (batch, i)),
            );
        }
        engine.run();
        if batch == 0 {
            high_water = engine.slab_slots();
            assert!(high_water > 0);
        } else {
            assert!(
                engine.slab_slots() <= high_water,
                "slab grew after warm-up: batch {batch} has {} slots, warm-up had {high_water}",
                engine.slab_slots()
            );
        }
    }

    // Sanity: every hop actually happened. The first link carried every
    // packet once; deliveries at the far end account for the rest.
    let first_link = net.route(src, dst).unwrap()[0];
    assert_eq!(
        net.link_counters(first_link).submitted,
        (BATCHES * PKTS) as u64
    );
    assert_eq!(net.counters().delivered, 0); // no handler registered…
    assert_eq!(net.counters().no_handler, (BATCHES * PKTS) as u64); // …but all arrived
    assert!(engine.now() > SimTime::ZERO);
}
