//! The simulated network: nodes, simplex links, routing and delivery.
//!
//! A [`Network`] is a cheaply clonable handle shared by every protocol
//! entity. End-systems register a [`NodeHandler`]; intermediate nodes
//! without handlers act as store-and-forward switches. Routing is
//! shortest-path by hop count, computed once and cached (topologies are
//! static after construction, as in the Lancaster testbed).

use crate::clock::NodeClock;
use crate::engine::{Engine, FlightCell};
use crate::link::{DropReason, Link, LinkOutcome, LinkParams};
use crate::multicast::{GroupId, GroupTree};
use crate::packet::{FlightKind, Packet, PacketFlight};
use crate::reservation::{AdmissionError, ReservationTable};
use cm_core::address::{NetAddr, VcId};
use cm_core::qos::{ErrorRate, QosParams};
use cm_core::rng::DetRng;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use cm_telemetry::{Layer, Telemetry};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

/// Identifies one simplex link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Receives packets addressed to a node.
///
/// Handlers take `&self`: implementations wrap their mutable state in
/// `RefCell`, which is safe because the engine is single-threaded and the
/// network never re-enters a handler while it is running.
pub trait NodeHandler {
    /// Called when `pkt` arrives at `at` (which is always `pkt.dst`).
    fn on_packet(&self, net: &Network, at: NetAddr, pkt: Packet);
}

struct NodeState {
    clock: NodeClock,
    handler: Option<Rc<dyn NodeHandler>>,
    /// Fault state: a down node neither forwards, delivers nor originates
    /// packets (fail-stop with state preserved across recovery).
    up: bool,
}

struct LinkState {
    from: NetAddr,
    to: NetAddr,
    link: Link,
    /// Fault state: a down link rejects submissions and drops any flight
    /// still riding it (queued or propagating) when the flight fires.
    up: bool,
}

/// Network-wide drop counters by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkCounters {
    /// Packets handed to a registered handler.
    pub delivered: u64,
    /// Packets that reached a node with no handler registered.
    pub no_handler: u64,
    /// Packets dropped for lack of a route.
    pub no_route: u64,
    /// Packets dropped by link queue overflow.
    pub queue_overflow: u64,
    /// Packets dropped by link loss processes.
    pub link_loss: u64,
    /// Packets dropped at or addressed through a crashed node.
    pub node_down: u64,
    /// Packets dropped on a link that went down while they rode it.
    pub link_down: u64,
}

/// What [`Network::group_refresh`] did to a shared tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupRefresh {
    /// Members dropped because no live root → member path exists any more.
    pub unreachable: Vec<NetAddr>,
    /// Detour links the rebuilt tree newly reserves.
    pub links_added: usize,
    /// Abandoned links the rebuilt tree released.
    pub links_removed: usize,
}

/// State of one multicast group (see [`crate::multicast`]).
struct GroupState {
    root: NetAddr,
    /// Bandwidth reserved on every tree link (one rate per tree).
    bandwidth: Bandwidth,
    members: BTreeSet<NetAddr>,
    /// `parent[v]` = (parent node, link parent→v) on the BFS shortest-path
    /// tree rooted at `root`, computed once (topology is frozen).
    parent: Vec<Option<(NetAddr, LinkId)>>,
    /// Current immutable snapshot; sends capture it, so membership churn
    /// never affects packets already in flight.
    tree: Rc<GroupTree>,
}

struct NetworkInner {
    nodes: Vec<NodeState>,
    links: Vec<LinkState>,
    /// Outgoing link ids per node.
    adjacency: Vec<Vec<LinkId>>,
    /// `next_hop[from][dst]` = link to take, or `None` (lazily built).
    next_hop: Vec<Option<Vec<Option<LinkId>>>>,
    /// Set the first time routes are computed; `add_link`/`add_node` refuse
    /// afterwards. Kept separately from the `next_hop` caches because fault
    /// transitions clear those to force recomputation around dead elements
    /// — the topology itself stays frozen.
    frozen: bool,
    groups: Vec<GroupState>,
    counters: NetworkCounters,
    reservations: ReservationTable,
}

impl NetworkInner {
    fn build_routes_from(&mut self, from: usize) {
        // BFS by hop count; first-added link wins ties, so routing is
        // deterministic and independent of query order. Down nodes and
        // down links are invisible: routes only use live elements.
        self.frozen = true;
        let n = self.nodes.len();
        let mut first_link: Vec<Option<LinkId>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut q = VecDeque::new();
        visited[from] = true;
        q.push_back(from);
        while let Some(u) = q.pop_front() {
            for &lid in &self.adjacency[u] {
                let ls = &self.links[lid.0 as usize];
                if !ls.up {
                    continue;
                }
                let v = ls.to.0 as usize;
                if !self.nodes[v].up {
                    continue;
                }
                if !visited[v] {
                    visited[v] = true;
                    // The first hop toward v is inherited from u, unless u
                    // is the origin, in which case it is this link itself.
                    first_link[v] = if u == from { Some(lid) } else { first_link[u] };
                    q.push_back(v);
                }
            }
        }
        self.next_hop[from] = Some(first_link);
    }

    /// Throw away every cached route (fault transitions call this so the
    /// next lookup recomputes around the new up/down state).
    fn invalidate_routes(&mut self) {
        for r in &mut self.next_hop {
            *r = None;
        }
    }

    fn next_hop(&mut self, from: NetAddr, dst: NetAddr) -> Option<LinkId> {
        let f = from.0 as usize;
        if self.next_hop[f].is_none() {
            self.build_routes_from(f);
        }
        self.next_hop[f].as_ref().expect("routes just built")[dst.0 as usize]
    }

    /// BFS from `root` recording, for every reachable node, the edge it was
    /// first discovered through. Same deterministic tie-break as unicast
    /// routing (first-added link wins), so the shared tree is stable.
    fn build_mcast_parents(&self, root: usize) -> Vec<Option<(NetAddr, LinkId)>> {
        let n = self.nodes.len();
        let mut parent: Vec<Option<(NetAddr, LinkId)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut q = VecDeque::new();
        visited[root] = true;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for &lid in &self.adjacency[u] {
                let ls = &self.links[lid.0 as usize];
                if !ls.up {
                    continue;
                }
                let v = ls.to.0 as usize;
                if !self.nodes[v].up {
                    continue;
                }
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = Some((NetAddr(u as u32), lid));
                    q.push_back(v);
                }
            }
        }
        parent
    }

    /// The links `member`'s branch would add to a tree currently holding
    /// `existing` links: the parent-walk from `member` toward the root,
    /// stopping at the graft point. `None` if `member` is unreachable.
    fn branch_links(
        group: &GroupState,
        member: NetAddr,
        existing: &BTreeSet<LinkId>,
    ) -> Option<Vec<LinkId>> {
        let mut acc = Vec::new();
        let mut v = member;
        while v != group.root {
            let (p, lid) = group.parent[v.0 as usize]?;
            if existing.contains(&lid) {
                break; // grafted onto the existing tree
            }
            acc.push(lid);
            v = p;
        }
        Some(acc)
    }

    /// Walk `member`'s parent chain to the root, or `None` if some hop is
    /// missing (the member is cut off under the current parent forest).
    fn member_branch(group: &GroupState, member: NetAddr) -> Option<Vec<LinkId>> {
        let mut acc = Vec::new();
        let mut v = member;
        while v != group.root {
            let (p, lid) = group.parent[v.0 as usize]?;
            acc.push(lid);
            v = p;
        }
        Some(acc)
    }

    /// Rebuild a group's immutable tree snapshot from its member set.
    ///
    /// Members whose parent walk no longer reaches the root (possible once
    /// nodes and links can go down) contribute no branch and are left out
    /// of the snapshot's member set — [`Network::group_refresh`] is the
    /// operation that reconciles membership after a fault.
    fn rebuild_tree(&self, g: GroupId) -> Rc<GroupTree> {
        let group = &self.groups[g.0 as usize];
        let mut links = BTreeSet::new();
        let mut reached = BTreeSet::new();
        let mut out_links: BTreeMap<NetAddr, Vec<LinkId>> = BTreeMap::new();
        for &m in &group.members {
            // Allocation-free reachability walk: a member with a severed
            // parent chain contributes no branch and is left out of the
            // snapshot (`group_refresh` reconciles membership after faults).
            let mut v = m;
            let reachable = loop {
                if v == group.root {
                    break true;
                }
                match group.parent[v.0 as usize] {
                    Some((p, _)) => v = p,
                    None => break false,
                }
            };
            if !reachable {
                continue;
            }
            reached.insert(m);
            let mut v = m;
            while v != group.root {
                let (p, lid) = group.parent[v.0 as usize].expect("branch walk just succeeded");
                if !links.insert(lid) {
                    break; // remainder of the walk is already in the tree
                }
                out_links.entry(p).or_default().push(lid);
                v = p;
            }
        }
        // Fan-out order at each branch node is part of the deterministic
        // schedule (copy order assigns packet seqs): keep the ascending
        // child-node order the old whole-forest scan produced.
        for fanout in out_links.values_mut() {
            fanout.sort_unstable_by_key(|lid| self.links[lid.0 as usize].to.0);
        }
        Rc::new(GroupTree {
            root: group.root,
            members: reached,
            out_links,
            links,
        })
    }
}

/// Handle to the simulated network (clones share state).
#[derive(Clone)]
pub struct Network {
    engine: Engine,
    /// Cached clone of the engine's recorder: packet paths check the
    /// `enabled` fast path without re-borrowing the engine.
    tel: Telemetry,
    inner: Rc<RefCell<NetworkInner>>,
}

impl Network {
    /// An empty network bound to `engine`. Registers the engine's flight
    /// dispatcher (one network per engine).
    pub fn new(engine: Engine) -> Network {
        let net = Network {
            tel: engine.telemetry().clone(),
            engine,
            inner: Rc::new(RefCell::new(NetworkInner {
                nodes: Vec::new(),
                links: Vec::new(),
                adjacency: Vec::new(),
                next_hop: Vec::new(),
                frozen: false,
                groups: Vec::new(),
                counters: NetworkCounters::default(),
                reservations: ReservationTable::default(),
            })),
        };
        // The dispatcher holds the inner state weakly so a dropped network
        // does not keep itself alive through the engine. Relay hops (the
        // common case) run on borrowed parts — no refcount traffic at all;
        // only terminal deliveries rebuild a full `Network` handle for the
        // node handler.
        let weak = Rc::downgrade(&net.inner);
        net.engine.set_flight_dispatch_cells(move |engine, cell| {
            if let Some(inner) = weak.upgrade() {
                Network::dispatch_flight(engine, &inner, cell);
            }
            // else: the network is gone; the cell drops with its packet.
        });
        net
    }

    /// The engine driving this network.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Add a node with the given clock; returns its address.
    pub fn add_node(&self, clock: NodeClock) -> NetAddr {
        let mut inner = self.inner.borrow_mut();
        let addr = NetAddr(inner.nodes.len() as u32);
        assert!(!inner.frozen, "topology frozen once routing has begun");
        inner.nodes.push(NodeState {
            clock,
            handler: None,
            up: true,
        });
        inner.adjacency.push(Vec::new());
        inner.next_hop.push(None);
        addr
    }

    /// Add a simplex link `from → to`; returns its id.
    ///
    /// Panics if routes have already been computed (topology must be fixed
    /// before traffic starts).
    pub fn add_link(&self, from: NetAddr, to: NetAddr, params: LinkParams, rng: DetRng) -> LinkId {
        let mut inner = self.inner.borrow_mut();
        assert!(!inner.frozen, "topology frozen once routing has begun");
        assert!(
            (from.0 as usize) < inner.nodes.len() && (to.0 as usize) < inner.nodes.len(),
            "link endpoints must exist"
        );
        assert_ne!(from, to, "self-links are not allowed");
        let id = LinkId(inner.links.len() as u32);
        inner.links.push(LinkState {
            from,
            to,
            link: Link::new(params, rng),
            up: true,
        });
        inner.adjacency[from.0 as usize].push(id);
        id
    }

    /// Add a pair of simplex links (`a → b` and `b → a`) with identical
    /// parameters; returns both ids.
    pub fn add_duplex(
        &self,
        a: NetAddr,
        b: NetAddr,
        params: LinkParams,
        rng: &mut DetRng,
    ) -> (LinkId, LinkId) {
        let fwd = self.add_link(a, b, params.clone(), rng.fork(&format!("l{}-{}", a.0, b.0)));
        let rev = self.add_link(b, a, params, rng.fork(&format!("l{}-{}", b.0, a.0)));
        (fwd, rev)
    }

    /// Register the packet handler for a node (replacing any previous one).
    pub fn set_handler(&self, node: NetAddr, handler: Rc<dyn NodeHandler>) {
        self.inner.borrow_mut().nodes[node.0 as usize].handler = Some(handler);
    }

    /// The node's local clock.
    pub fn clock(&self, node: NetAddr) -> NodeClock {
        self.inner.borrow().nodes[node.0 as usize].clock
    }

    /// Read a node's local clock *now*.
    pub fn local_time(&self, node: NetAddr) -> SimTime {
        self.clock(node).local_of(self.engine.now())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Network-wide counters.
    pub fn counters(&self) -> NetworkCounters {
        self.inner.borrow().counters
    }

    /// Counters of one link.
    pub fn link_counters(&self, id: LinkId) -> crate::link::LinkCounters {
        self.inner.borrow().links[id.0 as usize].link.counters
    }

    // ==================================================================
    // Fault API (up/down state used by cm-chaos and the healing layers)
    // ==================================================================

    /// Number of simplex links (ids are `0..link_count()`).
    pub fn link_count(&self) -> usize {
        self.inner.borrow().links.len()
    }

    /// The `(from, to)` endpoints of a simplex link.
    pub fn link_endpoints(&self, id: LinkId) -> (NetAddr, NetAddr) {
        let inner = self.inner.borrow();
        let ls = &inner.links[id.0 as usize];
        (ls.from, ls.to)
    }

    /// All simplex links `from → to`, in creation order.
    pub fn links_between(&self, from: NetAddr, to: NetAddr) -> Vec<LinkId> {
        let inner = self.inner.borrow();
        inner.adjacency[from.0 as usize]
            .iter()
            .copied()
            .filter(|&lid| inner.links[lid.0 as usize].to == to)
            .collect()
    }

    /// Whether `node` is currently up.
    pub fn is_node_up(&self, node: NetAddr) -> bool {
        self.inner.borrow().nodes[node.0 as usize].up
    }

    /// Whether `link` is currently up.
    pub fn is_link_up(&self, link: LinkId) -> bool {
        self.inner.borrow().links[link.0 as usize].up
    }

    /// Crash or recover a node. A down node originates, forwards and
    /// delivers nothing: flights landing on it are dropped, and routing
    /// recomputes around it. Its protocol state is preserved (fail-stop
    /// with amnesia-free recovery). Route caches are invalidated on every
    /// transition; multicast trees are only reconciled by an explicit
    /// [`Network::group_refresh`].
    pub fn set_node_up(&self, node: NetAddr, up: bool) {
        let mut inner = self.inner.borrow_mut();
        let n = &mut inner.nodes[node.0 as usize];
        if n.up == up {
            return;
        }
        n.up = up;
        inner.invalidate_routes();
    }

    /// Take a link down or bring it back up. A down link refuses new
    /// submissions and drops every flight still riding it (queued or
    /// propagating) when that flight fires. Route caches are invalidated
    /// on every transition.
    pub fn set_link_up(&self, link: LinkId, up: bool) {
        let mut inner = self.inner.borrow_mut();
        let l = &mut inner.links[link.0 as usize];
        if l.up == up {
            return;
        }
        l.up = up;
        inner.invalidate_routes();
    }

    /// Forcibly revoke the reservation held by `vc` (the network-initiated
    /// teardown a resource-reservation protocol can impose). Returns the
    /// bandwidth that was held, or `None` if `vc` held nothing. The holder
    /// is *not* notified through the data path — cm-chaos models the
    /// out-of-band revocation indication by poking the transport directly.
    pub fn revoke_reservation(&self, vc: VcId) -> Option<Bandwidth> {
        let mut inner = self.inner.borrow_mut();
        let held = inner.reservations.bandwidth_of(vc)?;
        inner.reservations.release(vc);
        Some(held)
    }

    /// The links a packet would traverse from `from` to `dst`, or `None`
    /// if unreachable.
    pub fn route(&self, from: NetAddr, dst: NetAddr) -> Option<Vec<LinkId>> {
        if from == dst {
            return Some(Vec::new());
        }
        let mut inner = self.inner.borrow_mut();
        let mut at = from;
        let mut path = Vec::new();
        while at != dst {
            let lid = inner.next_hop(at, dst)?;
            path.push(lid);
            at = inner.links[lid.0 as usize].to;
            if path.len() > inner.nodes.len() {
                return None; // routing loop guard (cannot happen with BFS)
            }
        }
        Some(path)
    }

    /// Estimate the QoS achievable on the path `from → dst` for packets of
    /// `mtu` bytes, used as the provider's offer in end-to-end QoS
    /// negotiation: throughput is the tightest link bandwidth, delay the
    /// sum of propagation and per-hop serialisation, jitter the sum of the
    /// links' maximum jitter, and the error rates the route's combined loss
    /// and bit-error probabilities.
    pub fn path_qos(&self, from: NetAddr, dst: NetAddr, mtu: usize) -> Option<QosParams> {
        let route = self.route(from, dst)?;
        Some(self.qos_over_links(&route, mtu))
    }

    /// QoS achievable over an explicit link sequence (shared by unicast
    /// routes and multicast branches).
    fn qos_over_links(&self, route: &[LinkId], mtu: usize) -> QosParams {
        let inner = self.inner.borrow();
        let mut throughput = Bandwidth::bps(u64::MAX);
        let mut delay = SimDuration::ZERO;
        let mut jitter = SimDuration::ZERO;
        let mut p_deliver = 1.0f64;
        let mut p_intact = 1.0f64;
        for &lid in route {
            let p = inner.links[lid.0 as usize].link.params();
            throughput = throughput.min(p.bandwidth);
            delay += p.propagation + p.bandwidth.transmission_time(mtu);
            jitter += match p.jitter {
                crate::link::JitterModel::None => SimDuration::ZERO,
                crate::link::JitterModel::Uniform(m) => m,
                crate::link::JitterModel::Exponential(m) => m.saturating_mul(10),
            };
            p_deliver *= 1.0 - p.loss.as_prob();
            p_intact *= 1.0 - p.bit_error.as_prob();
        }
        QosParams {
            throughput,
            delay,
            jitter,
            packet_error_rate: ErrorRate::from_prob(1.0 - p_deliver),
            bit_error_rate: ErrorRate::from_prob(1.0 - p_intact),
        }
    }

    /// Reserve `bandwidth` for `vc` along the route `from → dst`
    /// (ST-II-style, §7). Fails with `NoRoute` mapped to
    /// [`AdmissionError::InsufficientBandwidth`] semantics kept separate:
    /// returns `None` if the nodes are not connected at all.
    pub fn reserve_path(
        &self,
        vc: VcId,
        from: NetAddr,
        dst: NetAddr,
        bandwidth: Bandwidth,
    ) -> Option<Result<(), AdmissionError>> {
        let route = self.route(from, dst)?;
        let outcome = {
            let mut inner = self.inner.borrow_mut();
            let with_caps: Vec<(LinkId, Bandwidth)> = route
                .iter()
                .map(|&lid| (lid, inner.links[lid.0 as usize].link.params().bandwidth))
                .collect();
            inner.reservations.admit(vc, &with_caps, bandwidth)
        };
        self.trace_reserve("net.reserve", vc.0, bandwidth, &outcome);
        Some(outcome)
    }

    /// A reservation admission decision (unicast VC or multicast branch).
    fn trace_reserve(
        &self,
        name: &'static str,
        id: u64,
        bandwidth: Bandwidth,
        outcome: &Result<(), AdmissionError>,
    ) {
        if !self.tel.enabled() {
            return;
        }
        self.tel
            .instant(self.engine.now(), Layer::Netsim, name, |e| {
                e.u64("id", id).u64("bps", bandwidth.as_bps());
                match outcome {
                    Ok(()) => {
                        e.bool("ok", true);
                    }
                    Err(AdmissionError::InsufficientBandwidth {
                        link, available, ..
                    }) => {
                        e.bool("ok", false)
                            .str("reason", "insufficient_bandwidth")
                            .u64("link", link.0 as u64)
                            .u64("available_bps", available.as_bps());
                    }
                    Err(AdmissionError::AlreadyReserved) => {
                        e.bool("ok", false).str("reason", "already_reserved");
                    }
                }
            });
    }

    /// Release any reservation held by `vc`.
    pub fn release_reservation(&self, vc: VcId) {
        self.inner.borrow_mut().reservations.release(vc);
    }

    /// Whether `vc` holds a reservation whose links are all currently up.
    /// `None` when `vc` holds no reservation at all — the self-healing
    /// probe distinguishes "revoked" (re-admit) from "routed over a dead
    /// link" (release, then re-admit on a detour).
    pub fn reservation_intact(&self, vc: VcId) -> Option<bool> {
        let inner = self.inner.borrow();
        let route = inner.reservations.route_of(vc)?;
        Some(route.iter().all(|&lid| inner.links[lid.0 as usize].up))
    }

    /// Adjust `vc`'s reservation to `bandwidth` in place (QoS
    /// renegotiation support, §4.1.3).
    pub fn renegotiate_reservation(
        &self,
        vc: VcId,
        bandwidth: Bandwidth,
    ) -> Result<(), AdmissionError> {
        let mut inner = self.inner.borrow_mut();
        let caps: std::collections::HashMap<LinkId, Bandwidth> = inner
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l.link.params().bandwidth))
            .collect();
        inner.reservations.renegotiate(vc, &caps, bandwidth)
    }

    /// The bandwidth still reservable along `from → dst` (the tightest
    /// unreserved share over the route), or `None` if unreachable.
    pub fn available_bandwidth(&self, from: NetAddr, dst: NetAddr) -> Option<Bandwidth> {
        let route = self.route(from, dst)?;
        let inner = self.inner.borrow();
        let mut avail = Bandwidth::bps(u64::MAX);
        for lid in route {
            let cap = inner.links[lid.0 as usize].link.params().bandwidth;
            avail = avail.min(inner.reservations.available_on(lid, cap));
        }
        Some(avail)
    }

    /// Number of live reservations (for experiments).
    pub fn reservation_count(&self) -> usize {
        self.inner.borrow().reservations.count()
    }

    /// Bandwidth currently reserved on one link (unicast VCs plus shared
    /// multicast trees) — the observable for branch-accounting tests.
    pub fn reserved_on(&self, link: LinkId) -> Bandwidth {
        self.inner.borrow().reservations.reserved_on(link)
    }

    // ==================================================================
    // Multicast groups (shared-tree 1:N delivery, see `crate::multicast`)
    // ==================================================================

    /// Create a multicast group rooted at `root`, reserving `bandwidth` on
    /// every link its shared tree comes to hold. Freezes the topology
    /// (the BFS tree is computed once).
    pub fn create_group(&self, root: NetAddr, bandwidth: Bandwidth) -> GroupId {
        let mut inner = self.inner.borrow_mut();
        // Freeze the topology exactly like unicast routing does, so links
        // cannot be added under a computed tree.
        if inner.next_hop[root.0 as usize].is_none() {
            inner.build_routes_from(root.0 as usize);
        }
        let id = GroupId(inner.groups.len() as u32);
        let parent = inner.build_mcast_parents(root.0 as usize);
        inner.groups.push(GroupState {
            root,
            bandwidth,
            members: BTreeSet::new(),
            parent,
            tree: Rc::new(GroupTree::empty(root)),
        });
        id
    }

    /// Graft `member` onto `g`'s shared tree, reserving the group's
    /// bandwidth on **only the links the new branch adds** (ST-II-style 1:N
    /// reservation). Returns `None` if `member` is unreachable from the
    /// root; `Some(Err(_))` if a branch link lacks bandwidth (nothing is
    /// charged, existing members are untouched); joining twice is a no-op.
    pub fn group_join(&self, g: GroupId, member: NetAddr) -> Option<Result<(), AdmissionError>> {
        let mut inner = self.inner.borrow_mut();
        let group = &inner.groups[g.0 as usize];
        assert_ne!(member, group.root, "the root is the sender, not a receiver");
        if group.members.contains(&member) {
            return Some(Ok(()));
        }
        let new_links = NetworkInner::branch_links(group, member, &group.tree.links)?;
        let bandwidth = group.bandwidth;
        let with_caps: Vec<(LinkId, Bandwidth)> = new_links
            .iter()
            .map(|&lid| (lid, inner.links[lid.0 as usize].link.params().bandwidth))
            .collect();
        if let Err(e) = inner
            .reservations
            .admit_links(g.reservation_vc(), &with_caps, bandwidth)
        {
            drop(inner);
            self.trace_reserve("net.group.join", g.0 as u64, bandwidth, &Err(e));
            return Some(Err(e));
        }
        inner.groups[g.0 as usize].members.insert(member);
        let tree = inner.rebuild_tree(g);
        inner.groups[g.0 as usize].tree = tree;
        drop(inner);
        self.trace_reserve("net.group.join", g.0 as u64, bandwidth, &Ok(()));
        Some(Ok(()))
    }

    /// Prune `member` from `g`'s shared tree, releasing **only the links
    /// its departure removes** (links still serving other members stay
    /// reserved). No-op if `member` is not in the group. Packets already in
    /// flight keep the snapshot they were sent with.
    pub fn group_leave(&self, g: GroupId, member: NetAddr) {
        let mut inner = self.inner.borrow_mut();
        if !inner.groups[g.0 as usize].members.remove(&member) {
            return;
        }
        let old_links = inner.groups[g.0 as usize].tree.links.clone();
        let new_tree = inner.rebuild_tree(g);
        let released: Vec<LinkId> = old_links.difference(&new_tree.links).copied().collect();
        inner
            .reservations
            .release_links(g.reservation_vc(), &released);
        inner.groups[g.0 as usize].tree = new_tree;
        drop(inner);
        if self.tel.enabled() {
            self.tel
                .instant(self.engine.now(), Layer::Netsim, "net.group.leave", |e| {
                    e.u64("id", g.0 as u64)
                        .u64("member", member.0 as u64)
                        .u64("links_released", released.len() as u64);
                });
        }
    }

    /// Reconcile `g`'s shared tree with the current up/down state of the
    /// network: recompute the BFS parent forest around dead elements,
    /// drop members that no longer have any live path from the root, and
    /// move the tree's reservations onto the links of the rebuilt tree
    /// (charging detour links, releasing abandoned ones — all-or-nothing:
    /// if a detour link lacks bandwidth nothing changes and the caller
    /// retries later). This is the multicast re-graft primitive the
    /// transport's healing layer drives.
    pub fn group_refresh(&self, g: GroupId) -> Result<GroupRefresh, AdmissionError> {
        let mut inner = self.inner.borrow_mut();
        let root = inner.groups[g.0 as usize].root;
        let parent = if inner.nodes[root.0 as usize].up {
            inner.build_mcast_parents(root.0 as usize)
        } else {
            vec![None; inner.nodes.len()] // dead root: nobody is reachable
        };
        inner.groups[g.0 as usize].parent = parent;
        let unreachable: Vec<NetAddr> = {
            let group = &inner.groups[g.0 as usize];
            group
                .members
                .iter()
                .copied()
                .filter(|&m| NetworkInner::member_branch(group, m).is_none())
                .collect()
        };
        for &m in &unreachable {
            inner.groups[g.0 as usize].members.remove(&m);
        }
        let new_tree = inner.rebuild_tree(g);
        let old_links = inner.groups[g.0 as usize].tree.links.clone();
        let bandwidth = inner.groups[g.0 as usize].bandwidth;
        // Charge against the ledger, not the old tree: a tree link whose
        // reservation was revoked out-of-band is re-admitted here too, so
        // one refresh heals both detours and revocations.
        let added: Vec<(LinkId, Bandwidth)> = new_tree
            .links
            .iter()
            .filter(|&&lid| !inner.reservations.holds(g.reservation_vc(), lid))
            .map(|&lid| (lid, inner.links[lid.0 as usize].link.params().bandwidth))
            .collect();
        let removed: Vec<LinkId> = old_links
            .difference(&new_tree.links)
            .filter(|&&lid| inner.reservations.holds(g.reservation_vc(), lid))
            .copied()
            .collect();
        if !added.is_empty() {
            if let Err(e) = inner
                .reservations
                .admit_links(g.reservation_vc(), &added, bandwidth)
            {
                // Keep the old tree and membership so a later retry (or a
                // renegotiation to a thinner rate) starts from known state.
                for &m in &unreachable {
                    inner.groups[g.0 as usize].members.insert(m);
                }
                drop(inner);
                self.trace_reserve("net.group.refresh", g.0 as u64, bandwidth, &Err(e));
                return Err(e);
            }
        }
        inner
            .reservations
            .release_links(g.reservation_vc(), &removed);
        inner.groups[g.0 as usize].tree = new_tree;
        drop(inner);
        self.trace_reserve("net.group.refresh", g.0 as u64, bandwidth, &Ok(()));
        Ok(GroupRefresh {
            unreachable,
            links_added: added.len(),
            links_removed: removed.len(),
        })
    }

    /// Dissolve `g`: drop all members and release every tree reservation.
    pub fn group_release(&self, g: GroupId) {
        let mut inner = self.inner.borrow_mut();
        inner.reservations.release(g.reservation_vc());
        let root = inner.groups[g.0 as usize].root;
        inner.groups[g.0 as usize].members.clear();
        inner.groups[g.0 as usize].tree = Rc::new(GroupTree::empty(root));
    }

    /// The group's current tree snapshot.
    pub fn group_tree(&self, g: GroupId) -> Rc<GroupTree> {
        self.inner.borrow().groups[g.0 as usize].tree.clone()
    }

    /// Current members of the group, in address order.
    pub fn group_members(&self, g: GroupId) -> Vec<NetAddr> {
        self.inner.borrow().groups[g.0 as usize]
            .members
            .iter()
            .copied()
            .collect()
    }

    /// QoS achievable on the tree path from `g`'s root to `member` (whether
    /// or not it has joined yet) — the provider's offer for per-receiver
    /// admission. `None` if unreachable.
    pub fn group_path_qos(&self, g: GroupId, member: NetAddr, mtu: usize) -> Option<QosParams> {
        let path = {
            let inner = self.inner.borrow();
            let group = &inner.groups[g.0 as usize];
            if member == group.root {
                return None;
            }
            // Full parent-walk (ignore the current tree): the branch a
            // packet would traverse root → member.
            let mut acc = Vec::new();
            let mut v = member;
            while v != group.root {
                let (p, lid) = group.parent[v.0 as usize]?;
                acc.push(lid);
                v = p;
            }
            acc
        };
        Some(self.qos_over_links(&path, mtu))
    }

    /// Inject `pkt` into group `g` at its root. The packet is forwarded
    /// once per tree link and copied only at branch points; a copy is
    /// delivered to every member (with `dst` rewritten to that member).
    /// The tree is snapshotted now: later joins/leaves do not affect this
    /// packet.
    pub fn send_to_group(&self, g: GroupId, mut pkt: Packet) {
        let tree = self.group_tree(g);
        pkt.mgroup = Some(g);
        let root = tree.root;
        if !self.is_node_up(root) {
            self.inner.borrow_mut().counters.node_down += 1;
            self.trace_drop(self.engine.now(), None, "node_down");
            return;
        }
        self.mcast_forward(&tree, root, pkt);
    }

    /// A flight fired: continue the packet's journey at its landing node.
    /// Takes the network's pieces by reference so the engine dispatcher can
    /// relay a mid-path hop without cloning any `Rc`.
    fn dispatch_flight(engine: &Engine, inner: &Rc<RefCell<NetworkInner>>, mut cell: FlightCell) {
        let f = (*cell).as_ref().expect("fired flight cell is full");
        // Relay: a unicast flight short of its destination rides the same
        // cell onward — no copy, `hop_cell` just rewrites the next node.
        if matches!(f.kind, FlightKind::Unicast) && f.pkt.dst != f.next {
            Self::hop_cell_parts(engine, engine.telemetry(), inner, cell);
            return;
        }
        // Terminal: unicast arrival, or a multicast tree node. Fault check
        // first: a flight whose carrying link or landing node died after it
        // was scheduled never lands.
        {
            let mut inn = inner.borrow_mut();
            let via_down = f.via.is_some_and(|l| !inn.links[l.0 as usize].up);
            let node_down = !inn.nodes[f.next.0 as usize].up;
            if via_down || node_down {
                let (reason, lid) = if via_down {
                    inn.counters.link_down += 1;
                    ("link_down", f.via)
                } else {
                    inn.counters.node_down += 1;
                    ("node_down", None)
                };
                drop(inn);
                (*cell).take();
                engine.recycle_flight_cell(cell);
                Self::trace_drop_parts(engine.telemetry(), engine.now(), lid, reason);
                return;
            }
        }
        // Handlers get a full `&Network`, so rebuild the owned handle here
        // only.
        let net = Network {
            tel: engine.telemetry().clone(),
            engine: engine.clone(),
            inner: inner.clone(),
        };
        let f = (*cell).take().expect("fired flight cell is full");
        net.engine.recycle_flight_cell(cell);
        match f.kind {
            FlightKind::Unicast => net.arrive(f.next, f.pkt),
            FlightKind::Mcast(tree) => net.mcast_arrive(tree, f.next, f.pkt),
        }
    }

    /// Submit `pkt` to `lid` under one `inner` borrow, folding the drop
    /// counters in. `Err` carries the telemetry reason for the drop.
    fn submit_to_link(
        &self,
        now: SimTime,
        lid: LinkId,
        pkt: &Packet,
    ) -> Result<(SimTime, bool, NetAddr, SimDuration), &'static str> {
        let mut inner = self.inner.borrow_mut();
        if !inner.links[lid.0 as usize].up {
            inner.counters.link_down += 1;
            return Err("link_down");
        }
        let ls = &mut inner.links[lid.0 as usize];
        let next = ls.to;
        match ls.link.submit(now, pkt.class, pkt.wire_size) {
            LinkOutcome::Deliver {
                arrival,
                corrupted,
                queued,
            } => Ok((arrival, corrupted, next, queued)),
            LinkOutcome::Drop(DropReason::QueueOverflow) => {
                inner.counters.queue_overflow += 1;
                Err("queue_overflow")
            }
            LinkOutcome::Drop(DropReason::Loss) => {
                inner.counters.link_loss += 1;
                Err("loss")
            }
        }
    }

    /// Forward a group packet over the tree edges leaving `at`. The packet
    /// moves (not clones) onto the last outgoing edge; earlier branch
    /// copies are field copies plus payload-`Rc` bumps.
    fn mcast_forward(&self, tree: &Rc<GroupTree>, at: NetAddr, pkt: Packet) {
        let now = self.engine.now();
        let Some(outs) = tree.out_links.get(&at) else {
            return;
        };
        let last = outs.len() - 1;
        let mut pkt = Some(pkt);
        for (i, &lid) in outs.iter().enumerate() {
            let p = pkt.as_ref().expect("packet moved before last branch");
            match self.submit_to_link(now, lid, p) {
                Ok((arrival, corrupted, next, queued)) => {
                    self.trace_tx(now, lid, p, arrival);
                    let mut branch_pkt = if i == last {
                        pkt.take().expect("last branch takes the packet")
                    } else {
                        p.clone()
                    };
                    branch_pkt.corrupted |= corrupted;
                    // Branch copies inherit the upstream queue wait and then
                    // accumulate their own — per-receiver attribution.
                    if let Some(t) = branch_pkt.trace.as_mut() {
                        t.queued_us += queued.as_micros();
                    }
                    self.engine.schedule_flight(
                        arrival,
                        PacketFlight {
                            next,
                            via: Some(lid),
                            pkt: branch_pkt,
                            kind: FlightKind::Mcast(tree.clone()),
                        },
                    );
                }
                Err(reason) => self.trace_drop(now, Some(lid), reason),
            }
        }
    }

    /// A group packet reached `node`: deliver locally if it is a member,
    /// then keep forwarding down the subtree. A leaf member (no outgoing
    /// tree edges) takes the packet by move — no copy at the fan-out edge.
    fn mcast_arrive(&self, tree: Rc<GroupTree>, node: NetAddr, mut pkt: Packet) {
        let has_out = tree.out_links.get(&node).is_some_and(|o| !o.is_empty());
        if tree.members.contains(&node) {
            if !has_out {
                pkt.dst = node;
                self.arrive(node, pkt);
                return;
            }
            let mut copy = pkt.clone();
            copy.dst = node;
            self.arrive(node, copy);
        }
        if has_out {
            self.mcast_forward(&tree, node, pkt);
        }
    }

    /// Inject a packet at `from` and route it toward `pkt.dst`.
    ///
    /// Local delivery (`from == pkt.dst`) is scheduled after a fixed 10 µs
    /// intra-host hop, preserving "no handler runs inside its caller".
    pub fn send(&self, from: NetAddr, pkt: Packet) {
        if from == pkt.dst {
            let next = pkt.dst;
            self.engine.schedule_flight_in(
                SimDuration::from_micros(10),
                PacketFlight {
                    next,
                    via: None,
                    pkt,
                    kind: FlightKind::Unicast,
                },
            );
            return;
        }
        let mut cell = self.engine.take_flight_cell();
        *cell = Some(PacketFlight {
            next: from,
            via: None,
            pkt,
            kind: FlightKind::Unicast,
        });
        self.hop_cell(cell);
    }

    /// Forward the flight in `cell` one hop from its current node
    /// (`f.next`): one `inner` borrow for routing, link submission and
    /// counters, then the same cell goes back on the wheel with its next
    /// node rewritten — no boxed closure, no `Network` clone, and the
    /// packet is never copied between injection and delivery.
    fn hop_cell(&self, cell: FlightCell) {
        Self::hop_cell_parts(&self.engine, &self.tel, &self.inner, cell);
    }

    /// [`Network::hop_cell`] on borrowed parts — the form the engine's
    /// flight dispatcher calls so a relay hop does zero `Rc` traffic.
    fn hop_cell_parts(
        engine: &Engine,
        tel: &Telemetry,
        inner: &RefCell<NetworkInner>,
        mut cell: FlightCell,
    ) {
        let now = engine.now();
        let f = (*cell).as_mut().expect("flight cell is full");
        // Routing, link submission and counters under a single borrow. The
        // fault checks come first: a dead carrying link or a dead relay
        // node swallows the flight.
        let outcome = {
            let mut inner = inner.borrow_mut();
            if f.via.is_some_and(|l| !inner.links[l.0 as usize].up) {
                inner.counters.link_down += 1;
                Err((f.via, "link_down"))
            } else if !inner.nodes[f.next.0 as usize].up {
                inner.counters.node_down += 1;
                Err((None, "node_down"))
            } else {
                match inner.next_hop(f.next, f.pkt.dst) {
                    None => {
                        inner.counters.no_route += 1;
                        Err((None, "no_route"))
                    }
                    Some(lid) => {
                        let ls = &mut inner.links[lid.0 as usize];
                        let next = ls.to;
                        match ls.link.submit(now, f.pkt.class, f.pkt.wire_size) {
                            LinkOutcome::Deliver {
                                arrival,
                                corrupted,
                                queued,
                            } => Ok((arrival, corrupted, next, lid, queued)),
                            LinkOutcome::Drop(DropReason::QueueOverflow) => {
                                inner.counters.queue_overflow += 1;
                                Err((Some(lid), "queue_overflow"))
                            }
                            LinkOutcome::Drop(DropReason::Loss) => {
                                inner.counters.link_loss += 1;
                                Err((Some(lid), "loss"))
                            }
                        }
                    }
                }
            }
        };
        match outcome {
            Ok((arrival, corrupted, next, lid, queued)) => {
                Self::trace_tx_parts(tel, now, lid, &f.pkt, arrival);
                f.pkt.corrupted |= corrupted;
                if let Some(t) = f.pkt.trace.as_mut() {
                    t.queued_us += queued.as_micros();
                }
                f.next = next;
                f.via = Some(lid);
                engine.schedule_flight_cell(arrival, cell);
            }
            Err((lid, reason)) => {
                engine.recycle_flight_cell(cell);
                Self::trace_drop_parts(tel, now, lid, reason);
            }
        }
    }

    /// One packet accepted by a link: a `net.link.tx` span covering the
    /// submit → arrival interval (queueing + transmission + propagation).
    fn trace_tx(&self, now: SimTime, lid: LinkId, pkt: &Packet, arrival: SimTime) {
        Self::trace_tx_parts(&self.tel, now, lid, pkt, arrival);
    }

    fn trace_tx_parts(tel: &Telemetry, now: SimTime, lid: LinkId, pkt: &Packet, arrival: SimTime) {
        if !tel.enabled() {
            return;
        }
        tel.span(now, arrival - now, Layer::Netsim, "net.link.tx", |e| {
            e.u64("link", lid.0 as u64)
                .u64("bytes", pkt.wire_size as u64)
                .str("class", pkt.class.name());
        });
    }

    /// One packet dropped inside the network (no route, queue overflow or
    /// the link's loss process).
    fn trace_drop(&self, now: SimTime, lid: Option<LinkId>, reason: &'static str) {
        Self::trace_drop_parts(&self.tel, now, lid, reason);
    }

    fn trace_drop_parts(tel: &Telemetry, now: SimTime, lid: Option<LinkId>, reason: &'static str) {
        if !tel.enabled() {
            return;
        }
        tel.count("net.pkt.drop", 1);
        tel.instant(now, Layer::Netsim, "net.pkt.drop", |e| {
            if let Some(l) = lid {
                e.u64("link", l.0 as u64);
            }
            e.str("reason", reason);
        });
    }

    /// Final delivery at the destination node.
    fn arrive(&self, node: NetAddr, pkt: Packet) {
        let handler = {
            let mut inner = self.inner.borrow_mut();
            let h = inner.nodes[node.0 as usize].handler.clone();
            if h.is_some() {
                inner.counters.delivered += 1;
            } else {
                inner.counters.no_handler += 1;
            }
            h
        };
        if self.tel.enabled() {
            let now = self.engine.now();
            self.tel.count("net.pkt.delivered", 1);
            self.tel
                .record_duration("net.pkt.latency_us", now - pkt.sent_at);
            if handler.is_none() {
                self.tel
                    .instant(now, Layer::Netsim, "net.pkt.no_handler", |e| {
                        e.u64("node", node.0 as u64);
                    });
            }
        }
        if let Some(h) = handler {
            h.on_packet(self, node, pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketClass;
    use std::cell::RefCell;

    /// Collects every packet delivered to it, with arrival times.
    pub struct Collector {
        pub got: RefCell<Vec<(SimTime, Packet)>>,
    }

    impl Collector {
        pub fn new() -> Rc<Collector> {
            Rc::new(Collector {
                got: RefCell::new(Vec::new()),
            })
        }
    }

    impl NodeHandler for Collector {
        fn on_packet(&self, net: &Network, _at: NetAddr, pkt: Packet) {
            self.got.borrow_mut().push((net.engine().now(), pkt));
        }
    }

    fn line3() -> (Network, NetAddr, NetAddr, NetAddr, Rc<Collector>) {
        // a --10Mb/1ms-- b --10Mb/1ms-- c
        let net = Network::new(Engine::new());
        let mut rng = DetRng::from_seed(11);
        let a = net.add_node(NodeClock::perfect());
        let b = net.add_node(NodeClock::perfect());
        let c = net.add_node(NodeClock::perfect());
        let p = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
        net.add_duplex(a, b, p.clone(), &mut rng);
        net.add_duplex(b, c, p, &mut rng);
        let col = Collector::new();
        net.set_handler(c, col.clone());
        (net, a, b, c, col)
    }

    #[test]
    fn multi_hop_delivery_and_timing() {
        let (net, a, _b, c, col) = line3();
        // 1250 B: 1 ms tx + 1 ms prop per hop = 4 ms total.
        net.send(a, Packet::control(a, c, 1250, net.engine().now(), "x"));
        net.engine().run();
        let got = col.got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, SimTime::from_millis(4));
        assert_eq!(got[0].1.payload_as::<&str>(), Some(&"x"));
    }

    #[test]
    fn route_is_shortest() {
        let (net, a, b, c, _) = line3();
        assert_eq!(net.route(a, c).unwrap().len(), 2);
        assert_eq!(net.route(a, b).unwrap().len(), 1);
        assert_eq!(net.route(a, a).unwrap().len(), 0);
    }

    #[test]
    fn unreachable_is_counted() {
        let net = Network::new(Engine::new());
        let a = net.add_node(NodeClock::perfect());
        let _lonely = net.add_node(NodeClock::perfect());
        net.send(a, Packet::control(a, NetAddr(1), 100, SimTime::ZERO, ()));
        net.engine().run();
        assert_eq!(net.counters().no_route, 1);
    }

    #[test]
    fn local_delivery_loops_back() {
        let net = Network::new(Engine::new());
        let a = net.add_node(NodeClock::perfect());
        let col = Collector::new();
        net.set_handler(a, col.clone());
        net.send(a, Packet::control(a, a, 10, SimTime::ZERO, 7u32));
        net.engine().run();
        assert_eq!(col.got.borrow().len(), 1);
        assert_eq!(col.got.borrow()[0].0, SimTime::from_micros(10));
    }

    #[test]
    fn no_handler_is_counted_not_fatal() {
        let (net, a, _b, c, _col) = line3();
        // Remove handler by pointing packets at b (which has none).
        net.send(a, Packet::control(a, NetAddr(1), 100, SimTime::ZERO, ()));
        let _ = c;
        net.engine().run();
        assert_eq!(net.counters().no_handler, 1);
    }

    #[test]
    fn path_qos_estimates_route() {
        let (net, a, _b, c, _) = line3();
        let q = net.path_qos(a, c, 1250).unwrap();
        assert_eq!(q.throughput, Bandwidth::mbps(10));
        // 2 × (1 ms prop + 1 ms tx).
        assert_eq!(q.delay, SimDuration::from_millis(4));
        assert_eq!(q.jitter, SimDuration::ZERO);
        assert_eq!(q.packet_error_rate, ErrorRate::ZERO);
    }

    #[test]
    fn data_class_carries_vc_and_queues() {
        use cm_core::address::VcId;
        let (net, a, _b, c, col) = line3();
        for i in 0..3u64 {
            net.send(a, Packet::data(a, c, VcId(1), 12_500, SimTime::ZERO, i));
        }
        net.engine().run();
        let got = col.got.borrow();
        assert_eq!(got.len(), 3);
        // 12.5 KB at 10 Mb/s = 10 ms tx per packet per hop; pipelined over
        // two hops: first arrives at 22 ms, then every 10 ms.
        assert_eq!(got[0].0, SimTime::from_millis(22));
        assert_eq!(got[1].0, SimTime::from_millis(32));
        assert_eq!(got[2].0, SimTime::from_millis(42));
        // FIFO payload order preserved.
        let tags: Vec<u64> = got
            .iter()
            .map(|(_, p)| *p.payload_as::<u64>().unwrap())
            .collect();
        assert_eq!(tags, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "frozen")]
    fn topology_freezes_after_routing() {
        let (net, a, b, _c, _) = line3();
        net.route(a, b);
        net.add_link(
            a,
            b,
            LinkParams::clean(Bandwidth::mbps(1), SimDuration::ZERO),
            DetRng::from_seed(0),
        );
    }

    /// Star-of-chains topology for multicast tests:
    /// `root — hub — {r0, r1, r2}` (duplex everywhere, 10 Mb/s, 1 ms).
    fn mcast_net() -> (Network, NetAddr, NetAddr, [NetAddr; 3], Vec<Rc<Collector>>) {
        let net = Network::new(Engine::new());
        let mut rng = DetRng::from_seed(23);
        let root = net.add_node(NodeClock::perfect());
        let hub = net.add_node(NodeClock::perfect());
        let rs = [
            net.add_node(NodeClock::perfect()),
            net.add_node(NodeClock::perfect()),
            net.add_node(NodeClock::perfect()),
        ];
        let p = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
        net.add_duplex(root, hub, p.clone(), &mut rng);
        let mut cols = Vec::new();
        for &r in &rs {
            net.add_duplex(hub, r, p.clone(), &mut rng);
            let c = Collector::new();
            net.set_handler(r, c.clone());
            cols.push(c);
        }
        (net, root, hub, rs, cols)
    }

    #[test]
    fn group_delivers_exactly_once_per_member() {
        let (net, root, _hub, rs, cols) = mcast_net();
        let g = net.create_group(root, Bandwidth::mbps(2));
        for &r in &rs {
            net.group_join(g, r).unwrap().unwrap();
        }
        for i in 0..5u64 {
            net.send_to_group(
                g,
                Packet::group(
                    root,
                    g,
                    None,
                    PacketClass::Data,
                    1000,
                    net.engine().now(),
                    i,
                ),
            );
        }
        net.engine().run();
        for (i, c) in cols.iter().enumerate() {
            let got = c.got.borrow();
            assert_eq!(got.len(), 5, "receiver {i}");
            let tags: Vec<u64> = got
                .iter()
                .map(|(_, p)| *p.payload_as::<u64>().unwrap())
                .collect();
            assert_eq!(tags, vec![0, 1, 2, 3, 4]);
            assert_eq!(got[0].1.dst, rs[i]);
            assert_eq!(got[0].1.mgroup, Some(g));
        }
    }

    #[test]
    fn shared_link_carries_stream_once() {
        let (net, root, _hub, rs, _cols) = mcast_net();
        let g = net.create_group(root, Bandwidth::mbps(2));
        for &r in &rs {
            net.group_join(g, r).unwrap().unwrap();
        }
        let first_hop = net.route(root, rs[0]).unwrap()[0];
        for i in 0..10u64 {
            net.send_to_group(
                g,
                Packet::group(
                    root,
                    g,
                    None,
                    PacketClass::Data,
                    1000,
                    net.engine().now(),
                    i,
                ),
            );
        }
        net.engine().run();
        // 3 receivers, but the root→hub link carried each packet once.
        assert_eq!(net.link_counters(first_hop).submitted, 10);
        assert_eq!(net.link_counters(first_hop).bytes, 10_000);
    }

    #[test]
    fn join_reserves_branch_only_and_leave_releases_it() {
        let (net, root, hub, rs, _cols) = mcast_net();
        let g = net.create_group(root, Bandwidth::mbps(2));
        let shared = net.route(root, rs[0]).unwrap()[0]; // root→hub
        net.group_join(g, rs[0]).unwrap().unwrap();
        let b0 = net.route(root, rs[0]).unwrap()[1]; // hub→r0
        assert_eq!(net.reserved_on(shared), Bandwidth::mbps(2));
        assert_eq!(net.reserved_on(b0), Bandwidth::mbps(2));
        // Second join charges only its own branch; shared link unchanged.
        net.group_join(g, rs[1]).unwrap().unwrap();
        let b1 = net.route(hub, rs[1]).unwrap()[0];
        assert_eq!(net.reserved_on(shared), Bandwidth::mbps(2));
        assert_eq!(net.reserved_on(b1), Bandwidth::mbps(2));
        assert_eq!(net.reservation_count(), 1);
        // Leaving r0 releases hub→r0 but keeps the shared link (r1 lives).
        net.group_leave(g, rs[0]);
        assert_eq!(net.reserved_on(b0), Bandwidth::ZERO);
        assert_eq!(net.reserved_on(shared), Bandwidth::mbps(2));
        // Last leave releases everything.
        net.group_leave(g, rs[1]);
        assert_eq!(net.reserved_on(shared), Bandwidth::ZERO);
        assert_eq!(net.reservation_count(), 0);
    }

    #[test]
    fn join_denied_leaves_members_untouched() {
        let (net, root, _hub, rs, _cols) = mcast_net();
        // Group wants 6 Mb/s per tree link; r0 joins, then a unicast VC
        // fills r1's branch so its graft must be denied.
        let g = net.create_group(root, Bandwidth::mbps(6));
        net.group_join(g, rs[0]).unwrap().unwrap();
        net.reserve_path(VcId(77), NetAddr(1), rs[1], Bandwidth::mbps(6))
            .unwrap()
            .unwrap();
        let denied = net.group_join(g, rs[1]).unwrap();
        assert!(matches!(
            denied,
            Err(AdmissionError::InsufficientBandwidth { .. })
        ));
        // r0's branch (and the shared link) still reserved.
        let shared = net.route(root, rs[0]).unwrap()[0];
        assert_eq!(net.reserved_on(shared), Bandwidth::mbps(6));
        assert_eq!(net.group_members(g), vec![rs[0]]);
    }

    #[test]
    fn in_flight_packets_use_send_time_tree() {
        let (net, root, _hub, rs, cols) = mcast_net();
        let g = net.create_group(root, Bandwidth::mbps(1));
        net.group_join(g, rs[0]).unwrap().unwrap();
        net.group_join(g, rs[1]).unwrap().unwrap();
        // Send, then immediately change membership before delivery (~2 ms).
        net.send_to_group(
            g,
            Packet::group(
                root,
                g,
                None,
                PacketClass::Data,
                100,
                net.engine().now(),
                1u64,
            ),
        );
        net.group_leave(g, rs[0]);
        net.group_join(g, rs[2]).unwrap().unwrap();
        net.engine().run();
        // The in-flight packet went to the send-time members {r0, r1} only.
        assert_eq!(cols[0].got.borrow().len(), 1);
        assert_eq!(cols[1].got.borrow().len(), 1);
        assert_eq!(cols[2].got.borrow().len(), 0);
    }

    #[test]
    fn leaf_member_takes_packet_by_move() {
        // root — mid — leaf, both mid and leaf group members. An interior
        // member must clone for local delivery (the original keeps
        // forwarding), but a leaf member takes the packet by move: its
        // handler must see the payload Rc at strong count 1.
        struct CountProbe {
            seen: RefCell<Vec<(NetAddr, usize)>>,
        }
        impl NodeHandler for CountProbe {
            fn on_packet(&self, _net: &Network, at: NetAddr, pkt: Packet) {
                self.seen
                    .borrow_mut()
                    .push((at, Rc::strong_count(&pkt.payload)));
            }
        }
        let net = Network::new(Engine::new());
        let mut rng = DetRng::from_seed(31);
        let root = net.add_node(NodeClock::perfect());
        let mid = net.add_node(NodeClock::perfect());
        let leaf = net.add_node(NodeClock::perfect());
        let p = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
        net.add_duplex(root, mid, p.clone(), &mut rng);
        net.add_duplex(mid, leaf, p, &mut rng);
        let probe = Rc::new(CountProbe {
            seen: RefCell::new(Vec::new()),
        });
        net.set_handler(mid, probe.clone());
        net.set_handler(leaf, probe.clone());
        let g = net.create_group(root, Bandwidth::mbps(1));
        net.group_join(g, mid).unwrap().unwrap();
        net.group_join(g, leaf).unwrap().unwrap();
        net.send_to_group(
            g,
            Packet::group(
                root,
                g,
                None,
                PacketClass::Data,
                500,
                net.engine().now(),
                vec![0u8; 64],
            ),
        );
        net.engine().run();
        let seen = probe.seen.borrow();
        assert_eq!(seen.len(), 2);
        // Interior member: delivery clone + the original still in
        // `mcast_arrive`, about to be forwarded.
        assert_eq!(seen[0], (mid, 2));
        // Leaf member: the one and only Packet, moved all the way in.
        assert_eq!(seen[1], (leaf, 1));
    }

    #[test]
    fn unreachable_member_is_none() {
        let net = Network::new(Engine::new());
        let root = net.add_node(NodeClock::perfect());
        let lonely = net.add_node(NodeClock::perfect());
        let g = net.create_group(root, Bandwidth::mbps(1));
        assert!(net.group_join(g, lonely).is_none());
    }

    /// Square topology with two disjoint 2-hop paths a→c (via b, via d).
    fn square() -> (Network, [NetAddr; 4], Rc<Collector>) {
        let net = Network::new(Engine::new());
        let mut rng = DetRng::from_seed(41);
        let a = net.add_node(NodeClock::perfect());
        let b = net.add_node(NodeClock::perfect());
        let c = net.add_node(NodeClock::perfect());
        let d = net.add_node(NodeClock::perfect());
        let p = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
        net.add_duplex(a, b, p.clone(), &mut rng);
        net.add_duplex(b, c, p.clone(), &mut rng);
        net.add_duplex(a, d, p.clone(), &mut rng);
        net.add_duplex(d, c, p, &mut rng);
        let col = Collector::new();
        net.set_handler(c, col.clone());
        (net, [a, b, c, d], col)
    }

    #[test]
    fn link_down_reroutes_new_traffic() {
        let (net, [a, b, c, d], col) = square();
        // Primary route goes through b (first-added links win BFS ties).
        assert_eq!(net.route(a, c).unwrap()[0], net.links_between(a, b)[0]);
        net.set_link_up(net.links_between(a, b)[0], false);
        // Recomputed route detours through d, still 2 hops, no drops.
        assert_eq!(net.route(a, c).unwrap()[0], net.links_between(a, d)[0]);
        net.send(a, Packet::control(a, c, 100, net.engine().now(), 1u64));
        net.engine().run();
        assert_eq!(col.got.borrow().len(), 1);
        assert_eq!(net.counters().link_down, 0);
    }

    #[test]
    fn link_down_drops_flights_riding_it() {
        let (net, [a, b, c, _d], col) = square();
        net.send(a, Packet::control(a, c, 100, net.engine().now(), 1u64));
        // The packet is mid-flight on a→b when the link dies under it.
        let ab = net.links_between(a, b)[0];
        net.engine().schedule_at(SimTime::from_micros(500), {
            let net = net.clone();
            move |_| net.set_link_up(ab, false)
        });
        net.engine().run();
        assert_eq!(col.got.borrow().len(), 0);
        assert_eq!(net.counters().link_down, 1);
    }

    #[test]
    fn node_down_drops_in_flight_and_recovery_restores() {
        let (net, [a, b, c, _d], col) = square();
        net.send(a, Packet::control(a, c, 100, net.engine().now(), 1u64));
        // b crashes while the packet is in flight toward it.
        net.engine().schedule_at(SimTime::from_micros(500), {
            let net = net.clone();
            move |_| net.set_node_up(b, false)
        });
        net.engine().run();
        assert_eq!(col.got.borrow().len(), 0);
        assert_eq!(net.counters().node_down, 1);
        // New traffic detours around the dead node…
        net.send(a, Packet::control(a, c, 100, net.engine().now(), 2u64));
        net.engine().run();
        assert_eq!(col.got.borrow().len(), 1);
        // …and recovery makes b usable again.
        net.set_node_up(b, true);
        assert_eq!(net.route(a, c).unwrap()[0], net.links_between(a, b)[0]);
    }

    #[test]
    fn dead_destination_is_unroutable() {
        let (net, [a, _b, c, d], _col) = square();
        net.set_node_up(c, false);
        assert!(net.route(a, c).is_none());
        net.send(a, Packet::control(a, c, 100, net.engine().now(), 1u64));
        net.engine().run();
        assert_eq!(net.counters().no_route, 1);
        let _ = d;
    }

    #[test]
    fn fault_transitions_keep_topology_frozen() {
        let (net, [a, b, _c, _d], _col) = square();
        net.route(a, b);
        net.set_link_up(LinkId(0), false);
        net.set_link_up(LinkId(0), true);
        // Route caches were invalidated, but the topology stays frozen.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.add_link(
                a,
                b,
                LinkParams::clean(Bandwidth::mbps(1), SimDuration::ZERO),
                DetRng::from_seed(0),
            );
        }));
        assert!(r.is_err(), "add_link must still panic after fault churn");
    }

    #[test]
    fn group_refresh_regrafts_around_dead_hub() {
        // root—hubA—r and root—hubB—r: the tree prefers hubA, then hubA
        // dies and refresh moves the branch (and its reservation) to hubB.
        let net = Network::new(Engine::new());
        let mut rng = DetRng::from_seed(43);
        let root = net.add_node(NodeClock::perfect());
        let hub_a = net.add_node(NodeClock::perfect());
        let hub_b = net.add_node(NodeClock::perfect());
        let r = net.add_node(NodeClock::perfect());
        let p = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
        net.add_duplex(root, hub_a, p.clone(), &mut rng);
        net.add_duplex(root, hub_b, p.clone(), &mut rng);
        net.add_duplex(hub_a, r, p.clone(), &mut rng);
        net.add_duplex(hub_b, r, p, &mut rng);
        let g = net.create_group(root, Bandwidth::mbps(2));
        net.group_join(g, r).unwrap().unwrap();
        let via_a = net.links_between(hub_a, r)[0];
        let via_b = net.links_between(hub_b, r)[0];
        assert_eq!(net.reserved_on(via_a), Bandwidth::mbps(2));
        net.set_node_up(hub_a, false);
        let outcome = net.group_refresh(g).unwrap();
        assert!(outcome.unreachable.is_empty());
        assert_eq!(outcome.links_added, 2);
        assert_eq!(outcome.links_removed, 2);
        assert_eq!(net.reserved_on(via_a), Bandwidth::ZERO);
        assert_eq!(net.reserved_on(via_b), Bandwidth::mbps(2));
        assert_eq!(net.group_members(g), vec![r]);
        // Delivery works over the re-grafted tree.
        let col = Collector::new();
        net.set_handler(r, col.clone());
        net.send_to_group(
            g,
            Packet::group(
                root,
                g,
                None,
                PacketClass::Data,
                500,
                net.engine().now(),
                9u64,
            ),
        );
        net.engine().run();
        assert_eq!(col.got.borrow().len(), 1);
    }

    #[test]
    fn group_refresh_drops_unreachable_members() {
        let (net, root, hub, rs, _cols) = mcast_net();
        let g = net.create_group(root, Bandwidth::mbps(2));
        for &r in &rs {
            net.group_join(g, r).unwrap().unwrap();
        }
        // r0 is cut off entirely (star topology: single access link pair).
        net.set_link_up(net.links_between(hub, rs[0])[0], false);
        net.set_link_up(net.links_between(rs[0], hub)[0], false);
        let outcome = net.group_refresh(g).unwrap();
        assert_eq!(outcome.unreachable, vec![rs[0]]);
        assert_eq!(net.group_members(g), vec![rs[1], rs[2]]);
        // r0's branch reservation was released, the rest kept.
        let b0 = net.links_between(hub, rs[0])[0];
        assert_eq!(net.reserved_on(b0), Bandwidth::ZERO);
        let shared = net.links_between(root, hub)[0];
        assert_eq!(net.reserved_on(shared), Bandwidth::mbps(2));
    }

    #[test]
    fn revoke_reservation_frees_the_route() {
        let (net, [a, _b, c, _d], _col) = square();
        net.reserve_path(VcId(5), a, c, Bandwidth::mbps(4))
            .unwrap()
            .unwrap();
        assert_eq!(net.revoke_reservation(VcId(5)), Some(Bandwidth::mbps(4)));
        assert_eq!(net.revoke_reservation(VcId(5)), None);
        assert_eq!(net.reservation_count(), 0);
    }

    #[test]
    fn group_refresh_heals_a_revoked_tree_reservation() {
        let (net, root, hub, rs, _cols) = mcast_net();
        let g = net.create_group(root, Bandwidth::mbps(2));
        for &r in &rs {
            net.group_join(g, r).unwrap().unwrap();
        }
        let shared = net.links_between(root, hub)[0];
        assert_eq!(net.reserved_on(shared), Bandwidth::mbps(2));
        // The network revokes the whole tree reservation out-of-band; the
        // tree itself is unchanged, so a refresh re-admits every tree link.
        let vc = g.reservation_vc();
        assert_eq!(net.revoke_reservation(vc), Some(Bandwidth::mbps(2)));
        assert_eq!(net.reserved_on(shared), Bandwidth::ZERO);
        let outcome = net.group_refresh(g).unwrap();
        assert!(outcome.unreachable.is_empty());
        assert_eq!(outcome.links_added, 1 + rs.len());
        assert_eq!(outcome.links_removed, 0);
        assert_eq!(net.reserved_on(shared), Bandwidth::mbps(2));
    }

    #[test]
    fn skewed_node_clock_readable() {
        let net = Network::new(Engine::new());
        let a = net.add_node(NodeClock::with_skew(100));
        net.engine().schedule_at(SimTime::from_secs(10_000), |_| {});
        net.engine().run();
        assert_eq!(net.local_time(a), SimTime::from_secs(10_001));
    }
}
