//! The simulated network: nodes, simplex links, routing and delivery.
//!
//! A [`Network`] is a cheaply clonable handle shared by every protocol
//! entity. End-systems register a [`NodeHandler`]; intermediate nodes
//! without handlers act as store-and-forward switches. Routing is
//! shortest-path by hop count, computed once and cached (topologies are
//! static after construction, as in the Lancaster testbed).

use crate::clock::NodeClock;
use crate::engine::Engine;
use crate::link::{DropReason, Link, LinkOutcome, LinkParams};
use crate::packet::Packet;
use crate::reservation::{AdmissionError, ReservationTable};
use cm_core::address::{NetAddr, VcId};
use cm_core::qos::{ErrorRate, QosParams};
use cm_core::rng::DetRng;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Identifies one simplex link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub u32);

/// Receives packets addressed to a node.
///
/// Handlers take `&self`: implementations wrap their mutable state in
/// `RefCell`, which is safe because the engine is single-threaded and the
/// network never re-enters a handler while it is running.
pub trait NodeHandler {
    /// Called when `pkt` arrives at `at` (which is always `pkt.dst`).
    fn on_packet(&self, net: &Network, at: NetAddr, pkt: Packet);
}

struct NodeState {
    clock: NodeClock,
    handler: Option<Rc<dyn NodeHandler>>,
}

struct LinkState {
    to: NetAddr,
    link: Link,
}

/// Network-wide drop counters by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkCounters {
    /// Packets handed to a registered handler.
    pub delivered: u64,
    /// Packets that reached a node with no handler registered.
    pub no_handler: u64,
    /// Packets dropped for lack of a route.
    pub no_route: u64,
    /// Packets dropped by link queue overflow.
    pub queue_overflow: u64,
    /// Packets dropped by link loss processes.
    pub link_loss: u64,
}

struct NetworkInner {
    nodes: Vec<NodeState>,
    links: Vec<LinkState>,
    /// Outgoing link ids per node.
    adjacency: Vec<Vec<LinkId>>,
    /// `next_hop[from][dst]` = link to take, or `None` (lazily built).
    next_hop: Vec<Option<Vec<Option<LinkId>>>>,
    counters: NetworkCounters,
    reservations: ReservationTable,
}

impl NetworkInner {
    fn build_routes_from(&mut self, from: usize) {
        // BFS by hop count; first-added link wins ties, so routing is
        // deterministic and independent of query order.
        let n = self.nodes.len();
        let mut first_link: Vec<Option<LinkId>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut q = VecDeque::new();
        visited[from] = true;
        q.push_back(from);
        while let Some(u) = q.pop_front() {
            for &lid in &self.adjacency[u] {
                let v = self.links[lid.0 as usize].to.0 as usize;
                if !visited[v] {
                    visited[v] = true;
                    // The first hop toward v is inherited from u, unless u
                    // is the origin, in which case it is this link itself.
                    first_link[v] = if u == from { Some(lid) } else { first_link[u] };
                    q.push_back(v);
                }
            }
        }
        self.next_hop[from] = Some(first_link);
    }

    fn next_hop(&mut self, from: NetAddr, dst: NetAddr) -> Option<LinkId> {
        let f = from.0 as usize;
        if self.next_hop[f].is_none() {
            self.build_routes_from(f);
        }
        self.next_hop[f]
            .as_ref()
            .expect("routes just built")[dst.0 as usize]
    }
}

/// Handle to the simulated network (clones share state).
#[derive(Clone)]
pub struct Network {
    engine: Engine,
    inner: Rc<RefCell<NetworkInner>>,
}

impl Network {
    /// An empty network bound to `engine`.
    pub fn new(engine: Engine) -> Network {
        Network {
            engine,
            inner: Rc::new(RefCell::new(NetworkInner {
                nodes: Vec::new(),
                links: Vec::new(),
                adjacency: Vec::new(),
                next_hop: Vec::new(),
                counters: NetworkCounters::default(),
                reservations: ReservationTable::default(),
            })),
        }
    }

    /// The engine driving this network.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Add a node with the given clock; returns its address.
    pub fn add_node(&self, clock: NodeClock) -> NetAddr {
        let mut inner = self.inner.borrow_mut();
        let addr = NetAddr(inner.nodes.len() as u32);
        inner.nodes.push(NodeState {
            clock,
            handler: None,
        });
        inner.adjacency.push(Vec::new());
        inner.next_hop.push(None);
        addr
    }

    /// Add a simplex link `from → to`; returns its id.
    ///
    /// Panics if routes have already been computed (topology must be fixed
    /// before traffic starts).
    pub fn add_link(&self, from: NetAddr, to: NetAddr, params: LinkParams, rng: DetRng) -> LinkId {
        let mut inner = self.inner.borrow_mut();
        assert!(
            inner.next_hop.iter().all(|r| r.is_none()),
            "topology frozen once routing has begun"
        );
        assert!(
            (from.0 as usize) < inner.nodes.len() && (to.0 as usize) < inner.nodes.len(),
            "link endpoints must exist"
        );
        assert_ne!(from, to, "self-links are not allowed");
        let id = LinkId(inner.links.len() as u32);
        inner.links.push(LinkState {
            to,
            link: Link::new(params, rng),
        });
        inner.adjacency[from.0 as usize].push(id);
        id
    }

    /// Add a pair of simplex links (`a → b` and `b → a`) with identical
    /// parameters; returns both ids.
    pub fn add_duplex(
        &self,
        a: NetAddr,
        b: NetAddr,
        params: LinkParams,
        rng: &mut DetRng,
    ) -> (LinkId, LinkId) {
        let fwd = self.add_link(a, b, params.clone(), rng.fork(&format!("l{}-{}", a.0, b.0)));
        let rev = self.add_link(b, a, params, rng.fork(&format!("l{}-{}", b.0, a.0)));
        (fwd, rev)
    }

    /// Register the packet handler for a node (replacing any previous one).
    pub fn set_handler(&self, node: NetAddr, handler: Rc<dyn NodeHandler>) {
        self.inner.borrow_mut().nodes[node.0 as usize].handler = Some(handler);
    }

    /// The node's local clock.
    pub fn clock(&self, node: NetAddr) -> NodeClock {
        self.inner.borrow().nodes[node.0 as usize].clock
    }

    /// Read a node's local clock *now*.
    pub fn local_time(&self, node: NetAddr) -> SimTime {
        self.clock(node).local_of(self.engine.now())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Network-wide counters.
    pub fn counters(&self) -> NetworkCounters {
        self.inner.borrow().counters
    }

    /// Counters of one link.
    pub fn link_counters(&self, id: LinkId) -> crate::link::LinkCounters {
        self.inner.borrow().links[id.0 as usize].link.counters
    }

    /// The links a packet would traverse from `from` to `dst`, or `None`
    /// if unreachable.
    pub fn route(&self, from: NetAddr, dst: NetAddr) -> Option<Vec<LinkId>> {
        if from == dst {
            return Some(Vec::new());
        }
        let mut inner = self.inner.borrow_mut();
        let mut at = from;
        let mut path = Vec::new();
        while at != dst {
            let lid = inner.next_hop(at, dst)?;
            path.push(lid);
            at = inner.links[lid.0 as usize].to;
            if path.len() > inner.nodes.len() {
                return None; // routing loop guard (cannot happen with BFS)
            }
        }
        Some(path)
    }

    /// Estimate the QoS achievable on the path `from → dst` for packets of
    /// `mtu` bytes, used as the provider's offer in end-to-end QoS
    /// negotiation: throughput is the tightest link bandwidth, delay the
    /// sum of propagation and per-hop serialisation, jitter the sum of the
    /// links' maximum jitter, and the error rates the route's combined loss
    /// and bit-error probabilities.
    pub fn path_qos(&self, from: NetAddr, dst: NetAddr, mtu: usize) -> Option<QosParams> {
        let route = self.route(from, dst)?;
        let inner = self.inner.borrow();
        let mut throughput = Bandwidth::bps(u64::MAX);
        let mut delay = SimDuration::ZERO;
        let mut jitter = SimDuration::ZERO;
        let mut p_deliver = 1.0f64;
        let mut p_intact = 1.0f64;
        for lid in route {
            let p = inner.links[lid.0 as usize].link.params();
            throughput = throughput.min(p.bandwidth);
            delay += p.propagation + p.bandwidth.transmission_time(mtu);
            jitter += match p.jitter {
                crate::link::JitterModel::None => SimDuration::ZERO,
                crate::link::JitterModel::Uniform(m) => m,
                crate::link::JitterModel::Exponential(m) => m.saturating_mul(10),
            };
            p_deliver *= 1.0 - p.loss.as_prob();
            p_intact *= 1.0 - p.bit_error.as_prob();
        }
        Some(QosParams {
            throughput,
            delay,
            jitter,
            packet_error_rate: ErrorRate::from_prob(1.0 - p_deliver),
            bit_error_rate: ErrorRate::from_prob(1.0 - p_intact),
        })
    }

    /// Reserve `bandwidth` for `vc` along the route `from → dst`
    /// (ST-II-style, §7). Fails with `NoRoute` mapped to
    /// [`AdmissionError::InsufficientBandwidth`] semantics kept separate:
    /// returns `None` if the nodes are not connected at all.
    pub fn reserve_path(
        &self,
        vc: VcId,
        from: NetAddr,
        dst: NetAddr,
        bandwidth: Bandwidth,
    ) -> Option<Result<(), AdmissionError>> {
        let route = self.route(from, dst)?;
        let mut inner = self.inner.borrow_mut();
        let with_caps: Vec<(LinkId, Bandwidth)> = route
            .iter()
            .map(|&lid| (lid, inner.links[lid.0 as usize].link.params().bandwidth))
            .collect();
        Some(inner.reservations.admit(vc, &with_caps, bandwidth))
    }

    /// Release any reservation held by `vc`.
    pub fn release_reservation(&self, vc: VcId) {
        self.inner.borrow_mut().reservations.release(vc);
    }

    /// Adjust `vc`'s reservation to `bandwidth` in place (QoS
    /// renegotiation support, §4.1.3).
    pub fn renegotiate_reservation(
        &self,
        vc: VcId,
        bandwidth: Bandwidth,
    ) -> Result<(), AdmissionError> {
        let mut inner = self.inner.borrow_mut();
        let caps: std::collections::HashMap<LinkId, Bandwidth> = inner
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l.link.params().bandwidth))
            .collect();
        inner.reservations.renegotiate(vc, &caps, bandwidth)
    }

    /// The bandwidth still reservable along `from → dst` (the tightest
    /// unreserved share over the route), or `None` if unreachable.
    pub fn available_bandwidth(&self, from: NetAddr, dst: NetAddr) -> Option<Bandwidth> {
        let route = self.route(from, dst)?;
        let inner = self.inner.borrow();
        let mut avail = Bandwidth::bps(u64::MAX);
        for lid in route {
            let cap = inner.links[lid.0 as usize].link.params().bandwidth;
            avail = avail.min(inner.reservations.available_on(lid, cap));
        }
        Some(avail)
    }

    /// Number of live reservations (for experiments).
    pub fn reservation_count(&self) -> usize {
        self.inner.borrow().reservations.count()
    }

    /// Inject a packet at `from` and route it toward `pkt.dst`.
    ///
    /// Local delivery (`from == pkt.dst`) is scheduled after a fixed 10 µs
    /// intra-host hop, preserving "no handler runs inside its caller".
    pub fn send(&self, from: NetAddr, pkt: Packet) {
        if from == pkt.dst {
            let net = self.clone();
            self.engine
                .schedule_in(SimDuration::from_micros(10), move |_| {
                    net.arrive(pkt.dst, pkt);
                });
            return;
        }
        self.hop(from, pkt);
    }

    /// Forward `pkt` one hop from `at`.
    fn hop(&self, at: NetAddr, pkt: Packet) {
        let now = self.engine.now();
        let (outcome, next) = {
            let mut inner = self.inner.borrow_mut();
            let lid = match inner.next_hop(at, pkt.dst) {
                Some(l) => l,
                None => {
                    inner.counters.no_route += 1;
                    return;
                }
            };
            let ls = &mut inner.links[lid.0 as usize];
            let next = ls.to;
            let outcome = ls.link.submit(now, pkt.class, pkt.wire_size);
            (outcome, next)
        };
        match outcome {
            LinkOutcome::Deliver { arrival, corrupted } => {
                let mut pkt = pkt;
                pkt.corrupted |= corrupted;
                let net = self.clone();
                self.engine.schedule_at(arrival, move |_| {
                    if pkt.dst == next {
                        net.arrive(next, pkt);
                    } else {
                        net.hop(next, pkt);
                    }
                });
            }
            LinkOutcome::Drop(DropReason::QueueOverflow) => {
                self.inner.borrow_mut().counters.queue_overflow += 1;
            }
            LinkOutcome::Drop(DropReason::Loss) => {
                self.inner.borrow_mut().counters.link_loss += 1;
            }
        }
    }

    /// Final delivery at the destination node.
    fn arrive(&self, node: NetAddr, pkt: Packet) {
        let handler = {
            let mut inner = self.inner.borrow_mut();
            let h = inner.nodes[node.0 as usize].handler.clone();
            if h.is_some() {
                inner.counters.delivered += 1;
            } else {
                inner.counters.no_handler += 1;
            }
            h
        };
        if let Some(h) = handler {
            h.on_packet(self, node, pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Collects every packet delivered to it, with arrival times.
    pub struct Collector {
        pub got: RefCell<Vec<(SimTime, Packet)>>,
    }

    impl Collector {
        pub fn new() -> Rc<Collector> {
            Rc::new(Collector {
                got: RefCell::new(Vec::new()),
            })
        }
    }

    impl NodeHandler for Collector {
        fn on_packet(&self, net: &Network, _at: NetAddr, pkt: Packet) {
            self.got.borrow_mut().push((net.engine().now(), pkt));
        }
    }

    fn line3() -> (Network, NetAddr, NetAddr, NetAddr, Rc<Collector>) {
        // a --10Mb/1ms-- b --10Mb/1ms-- c
        let net = Network::new(Engine::new());
        let mut rng = DetRng::from_seed(11);
        let a = net.add_node(NodeClock::perfect());
        let b = net.add_node(NodeClock::perfect());
        let c = net.add_node(NodeClock::perfect());
        let p = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
        net.add_duplex(a, b, p.clone(), &mut rng);
        net.add_duplex(b, c, p, &mut rng);
        let col = Collector::new();
        net.set_handler(c, col.clone());
        (net, a, b, c, col)
    }

    #[test]
    fn multi_hop_delivery_and_timing() {
        let (net, a, _b, c, col) = line3();
        // 1250 B: 1 ms tx + 1 ms prop per hop = 4 ms total.
        net.send(
            a,
            Packet::control(a, c, 1250, net.engine().now(), "x"),
        );
        net.engine().run();
        let got = col.got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, SimTime::from_millis(4));
        assert_eq!(got[0].1.payload_as::<&str>(), Some(&"x"));
    }

    #[test]
    fn route_is_shortest() {
        let (net, a, b, c, _) = line3();
        assert_eq!(net.route(a, c).unwrap().len(), 2);
        assert_eq!(net.route(a, b).unwrap().len(), 1);
        assert_eq!(net.route(a, a).unwrap().len(), 0);
    }

    #[test]
    fn unreachable_is_counted() {
        let net = Network::new(Engine::new());
        let a = net.add_node(NodeClock::perfect());
        let _lonely = net.add_node(NodeClock::perfect());
        net.send(
            a,
            Packet::control(a, NetAddr(1), 100, SimTime::ZERO, ()),
        );
        net.engine().run();
        assert_eq!(net.counters().no_route, 1);
    }

    #[test]
    fn local_delivery_loops_back() {
        let net = Network::new(Engine::new());
        let a = net.add_node(NodeClock::perfect());
        let col = Collector::new();
        net.set_handler(a, col.clone());
        net.send(a, Packet::control(a, a, 10, SimTime::ZERO, 7u32));
        net.engine().run();
        assert_eq!(col.got.borrow().len(), 1);
        assert_eq!(col.got.borrow()[0].0, SimTime::from_micros(10));
    }

    #[test]
    fn no_handler_is_counted_not_fatal() {
        let (net, a, _b, c, _col) = line3();
        // Remove handler by pointing packets at b (which has none).
        net.send(a, Packet::control(a, NetAddr(1), 100, SimTime::ZERO, ()));
        let _ = c;
        net.engine().run();
        assert_eq!(net.counters().no_handler, 1);
    }

    #[test]
    fn path_qos_estimates_route() {
        let (net, a, _b, c, _) = line3();
        let q = net.path_qos(a, c, 1250).unwrap();
        assert_eq!(q.throughput, Bandwidth::mbps(10));
        // 2 × (1 ms prop + 1 ms tx).
        assert_eq!(q.delay, SimDuration::from_millis(4));
        assert_eq!(q.jitter, SimDuration::ZERO);
        assert_eq!(q.packet_error_rate, ErrorRate::ZERO);
    }

    #[test]
    fn data_class_carries_vc_and_queues() {
        use cm_core::address::VcId;
        let (net, a, _b, c, col) = line3();
        for i in 0..3u64 {
            net.send(
                a,
                Packet::data(a, c, VcId(1), 12_500, SimTime::ZERO, i),
            );
        }
        net.engine().run();
        let got = col.got.borrow();
        assert_eq!(got.len(), 3);
        // 12.5 KB at 10 Mb/s = 10 ms tx per packet per hop; pipelined over
        // two hops: first arrives at 22 ms, then every 10 ms.
        assert_eq!(got[0].0, SimTime::from_millis(22));
        assert_eq!(got[1].0, SimTime::from_millis(32));
        assert_eq!(got[2].0, SimTime::from_millis(42));
        // FIFO payload order preserved.
        let tags: Vec<u64> = got
            .iter()
            .map(|(_, p)| *p.payload_as::<u64>().unwrap())
            .collect();
        assert_eq!(tags, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "frozen")]
    fn topology_freezes_after_routing() {
        let (net, a, b, _c, _) = line3();
        net.route(a, b);
        net.add_link(
            a,
            b,
            LinkParams::clean(Bandwidth::mbps(1), SimDuration::ZERO),
            DetRng::from_seed(0),
        );
    }

    #[test]
    fn skewed_node_clock_readable() {
        let net = Network::new(Engine::new());
        let a = net.add_node(NodeClock::with_skew(100));
        net.engine().schedule_at(SimTime::from_secs(10_000), |_| {});
        net.engine().run();
        assert_eq!(net.local_time(a), SimTime::from_secs(10_001));
    }
}
