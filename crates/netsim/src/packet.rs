//! Packets as carried by the simulated network.
//!
//! Payloads are typed, not serialised: a packet carries an `Rc<dyn Any>`
//! plus an explicit wire size, so upper layers exchange real TPDU structures
//! while the simulator charges authentic transmission time. Bit errors are
//! modelled as a `corrupted` flag (the checksum the real protocol would
//! compute is simulated by the flag — error-control classes decide what to
//! do about it).

use crate::multicast::{GroupId, GroupTree};
use crate::network::LinkId;
use cm_core::address::{NetAddr, VcId};
use cm_core::time::SimTime;
use std::any::Any;
use std::rc::Rc;

/// How an in-flight packet continues once it lands at its next node.
#[derive(Debug, Clone)]
pub enum FlightKind {
    /// Point-to-point: deliver if the landing node is `pkt.dst`, otherwise
    /// forward another hop toward it.
    Unicast,
    /// Group fan-out: deliver if the landing node is a member of the
    /// captured tree snapshot, then forward down its subtree. The `Rc` is
    /// shared by every packet of the cascade — membership churn after the
    /// send never touches it.
    Mcast(Rc<GroupTree>),
}

/// A packet in transit between two nodes: the engine's typed fast-path
/// event for the packet data plane.
///
/// Hops used to be boxed `FnOnce` closures capturing a `Network` clone and
/// the packet; a `PacketFlight` instead lives *inline* in the engine's slab
/// slot and is handed to the network's registered flight dispatcher when it
/// fires. Slot reuse means steady-state forwarding allocates nothing per
/// hop — moving a flight is a flat copy plus `Rc` refcount bumps.
#[derive(Debug, Clone)]
pub struct PacketFlight {
    /// The node this flight lands on.
    pub next: NetAddr,
    /// The link carrying this hop (`None` for intra-host loopback). If the
    /// link goes down while the flight rides it, the flight is dropped at
    /// fire time — the fault model's "packets on a dead wire are lost".
    pub via: Option<LinkId>,
    /// The packet itself (payload shared by `Rc`).
    pub pkt: Packet,
    /// What happens at the landing node.
    pub kind: FlightKind,
}

/// Traffic class, for link scheduling.
///
/// The paper requires the orchestrator's out-of-band connections to "have
/// guaranteed bandwidth to support the necessary real-time communication of
/// orchestration primitives" (§5); links here serve control traffic with
/// strict priority over data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// Connection-management and orchestration PDUs (priority).
    Control,
    /// Media TPDUs.
    Data,
}

impl PacketClass {
    /// Stable lower-case name, used in telemetry fields.
    pub fn name(self) -> &'static str {
        match self {
            PacketClass::Control => "control",
            PacketClass::Data => "data",
        }
    }
}

/// Causal-trace tag a packet can carry for `cm-obs`: identifies the OSDU
/// span this packet serves and accumulates the link-queue wait it meets at
/// each hop. Stamped by the transport only while observability is enabled,
/// so the disabled path pays nothing beyond the `Option` in [`Packet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketTrace {
    /// The stream (raw VC id) of the traced OSDU.
    pub stream: u64,
    /// The OSDU sequence number within the stream.
    pub seq: u64,
    /// Link-queue wait accumulated along this copy's path, µs. Branch
    /// copies of a multicast cascade inherit the upstream wait and then
    /// diverge — per-receiver attribution stays exact.
    pub queued_us: u64,
}

/// One simulated network packet.
#[derive(Clone)]
pub struct Packet {
    /// Originating end-system.
    pub src: NetAddr,
    /// Destination end-system.
    pub dst: NetAddr,
    /// The VC this packet belongs to, if any (reserved VCs get their
    /// reserved share at each hop; `None` rides best-effort).
    pub vc: Option<VcId>,
    /// Control or data, for priority queueing.
    pub class: PacketClass,
    /// Bytes on the wire, including headers — what transmission time is
    /// charged for.
    pub wire_size: usize,
    /// The multicast group this packet was sent to, if any. Group packets
    /// are fanned out over the group's shared tree; `dst` is rewritten to
    /// the receiving member at each delivery point.
    pub mgroup: Option<GroupId>,
    /// Set by the link's bit-error process; detected by error control.
    pub corrupted: bool,
    /// Global time the packet entered the network at its source.
    pub sent_at: SimTime,
    /// Causal-trace tag (`None` unless observability is on).
    pub trace: Option<PacketTrace>,
    /// The typed payload (a TPDU, an OPDU, an RPC message…).
    pub payload: Rc<dyn Any>,
}

impl Packet {
    /// Construct a control-class packet.
    pub fn control<T: Any>(
        src: NetAddr,
        dst: NetAddr,
        wire_size: usize,
        sent_at: SimTime,
        payload: T,
    ) -> Packet {
        Packet {
            src,
            dst,
            vc: None,
            class: PacketClass::Control,
            wire_size,
            mgroup: None,
            corrupted: false,
            sent_at,
            trace: None,
            payload: Rc::new(payload),
        }
    }

    /// Construct a data-class packet belonging to a VC.
    pub fn data<T: Any>(
        src: NetAddr,
        dst: NetAddr,
        vc: VcId,
        wire_size: usize,
        sent_at: SimTime,
        payload: T,
    ) -> Packet {
        Packet {
            src,
            dst,
            vc: Some(vc),
            class: PacketClass::Data,
            wire_size,
            mgroup: None,
            corrupted: false,
            sent_at,
            trace: None,
            payload: Rc::new(payload),
        }
    }

    /// Construct a packet addressed to a multicast group. `dst` starts as
    /// the source and is rewritten per delivered copy by the network.
    pub fn group<T: Any>(
        src: NetAddr,
        group: GroupId,
        vc: Option<VcId>,
        class: PacketClass,
        wire_size: usize,
        sent_at: SimTime,
        payload: T,
    ) -> Packet {
        Packet {
            src,
            dst: src,
            vc,
            class,
            wire_size,
            mgroup: Some(group),
            corrupted: false,
            sent_at,
            trace: None,
            payload: Rc::new(payload),
        }
    }

    /// Downcast the payload to a concrete type.
    pub fn payload_as<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Packet")
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("vc", &self.vc)
            .field("class", &self.class)
            .field("wire_size", &self.wire_size)
            .field("corrupted", &self.corrupted)
            .field("sent_at", &self.sent_at)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_downcast() {
        #[derive(Debug, PartialEq)]
        struct Tpdu(u32);
        let p = Packet::data(
            NetAddr(0),
            NetAddr(1),
            VcId(9),
            1000,
            SimTime::ZERO,
            Tpdu(42),
        );
        assert_eq!(p.payload_as::<Tpdu>(), Some(&Tpdu(42)));
        assert_eq!(p.payload_as::<String>(), None);
        assert_eq!(p.vc, Some(VcId(9)));
        assert_eq!(p.class, PacketClass::Data);
    }

    #[test]
    fn control_packets_have_no_vc_by_default() {
        let p = Packet::control(NetAddr(0), NetAddr(1), 64, SimTime::ZERO, "hello");
        assert_eq!(p.vc, None);
        assert_eq!(p.class, PacketClass::Control);
        assert!(!p.corrupted);
    }
}
