//! Per-node clocks with rate skew.
//!
//! §3.6 of the paper names "the inevitable discrepancies between remote
//! clock rates" as a prime cause of long-run loss of synchronisation between
//! related connections. The simulator therefore gives every node its own
//! clock: a linear map of global simulation time with a rate skew in parts
//! per million and a fixed offset. Media sources pace themselves by their
//! *local* clock, so two stored streams started together genuinely drift —
//! the pathology the orchestrator's regulation loop exists to correct.

use cm_core::time::{SimDuration, SimTime};

/// A node-local clock: `local = global × (1 + ppm/10⁶) + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeClock {
    /// Rate skew in parts per million (positive = this clock runs fast).
    pub skew_ppm: i32,
    /// Fixed offset added to the scaled time, in microseconds (may be
    /// negative: the clock started "behind").
    pub offset_us: i64,
}

impl Default for NodeClock {
    fn default() -> Self {
        NodeClock::perfect()
    }
}

impl NodeClock {
    /// A clock with no skew and no offset (the orchestrating node's datum
    /// clock is treated as perfect — the paper's common-node scheme measures
    /// everything relative to it).
    pub const fn perfect() -> NodeClock {
        NodeClock {
            skew_ppm: 0,
            offset_us: 0,
        }
    }

    /// A clock with the given rate skew and zero offset.
    pub const fn with_skew(ppm: i32) -> NodeClock {
        NodeClock {
            skew_ppm: ppm,
            offset_us: 0,
        }
    }

    /// Read this clock at global instant `global`.
    pub fn local_of(&self, global: SimTime) -> SimTime {
        let g = global.as_micros() as i128;
        let scaled = g + g * self.skew_ppm as i128 / 1_000_000;
        let l = scaled + self.offset_us as i128;
        SimTime::from_micros(l.max(0) as u64)
    }

    /// Invert: the global instant at which this clock reads `local`.
    ///
    /// Exact up to the microsecond truncation of [`NodeClock::local_of`].
    pub fn global_of(&self, local: SimTime) -> SimTime {
        let l = local.as_micros() as i128 - self.offset_us as i128;
        let g = l * 1_000_000 / (1_000_000 + self.skew_ppm as i128);
        SimTime::from_micros(g.max(0) as u64)
    }

    /// Convert a *duration* measured on this clock into global time.
    pub fn global_duration(&self, local: SimDuration) -> SimDuration {
        let l = local.as_micros() as i128;
        let g = l * 1_000_000 / (1_000_000 + self.skew_ppm as i128);
        SimDuration::from_micros(g.max(0) as u64)
    }

    /// Convert a global duration into this clock's units.
    pub fn local_duration(&self, global: SimDuration) -> SimDuration {
        let g = global.as_micros() as i128;
        let l = g + g * self.skew_ppm as i128 / 1_000_000;
        SimDuration::from_micros(l.max(0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_is_identity() {
        let c = NodeClock::perfect();
        let t = SimTime::from_secs(12345);
        assert_eq!(c.local_of(t), t);
        assert_eq!(c.global_of(t), t);
    }

    #[test]
    fn fast_clock_runs_ahead() {
        // +100 ppm over 10 000 s = 1 s ahead.
        let c = NodeClock::with_skew(100);
        let t = SimTime::from_secs(10_000);
        assert_eq!(c.local_of(t), SimTime::from_secs(10_001));
    }

    #[test]
    fn slow_clock_runs_behind() {
        let c = NodeClock::with_skew(-100);
        let t = SimTime::from_secs(10_000);
        assert_eq!(c.local_of(t), SimTime::from_secs(9_999));
    }

    #[test]
    fn offset_applies() {
        let c = NodeClock {
            skew_ppm: 0,
            offset_us: 500_000,
        };
        assert_eq!(
            c.local_of(SimTime::from_secs(1)),
            SimTime::from_millis(1_500)
        );
        assert_eq!(
            c.global_of(SimTime::from_millis(1_500)),
            SimTime::from_secs(1)
        );
    }

    #[test]
    fn negative_offset_clamps_at_zero() {
        let c = NodeClock {
            skew_ppm: 0,
            offset_us: -2_000_000,
        };
        assert_eq!(c.local_of(SimTime::from_secs(1)), SimTime::ZERO);
        assert_eq!(c.local_of(SimTime::from_secs(3)), SimTime::from_secs(1));
    }

    #[test]
    fn roundtrip_within_truncation() {
        for ppm in [-500, -37, 0, 37, 500] {
            let c = NodeClock::with_skew(ppm);
            for s in [1u64, 60, 3_600, 86_400] {
                let g = SimTime::from_secs(s);
                let back = c.global_of(c.local_of(g));
                let diff = g.as_micros().abs_diff(back.as_micros());
                assert!(diff <= 1, "ppm {ppm} s {s}: diff {diff}us");
            }
        }
    }

    #[test]
    fn duration_conversions_invert() {
        let c = NodeClock::with_skew(250);
        let d = SimDuration::from_secs(100);
        let l = c.local_duration(d);
        assert_eq!(l, SimDuration::from_micros(100_025_000));
        let g = c.global_duration(l);
        assert!(g.as_micros().abs_diff(d.as_micros()) <= 1);
    }
}
