//! Ready-made topologies mirroring the Lancaster testbed (§2.1).
//!
//! The experimental configuration in the paper was small: "two PC based
//! multimedia workstations, a Sun 4/UNIX based multimedia workstation and a
//! PC based storage server" joined by a high-speed network emulator. The
//! builders here reproduce that shape (plus the star/line generalisations
//! the experiments sweep over) so tests and benches share one vocabulary.

use crate::clock::NodeClock;
use crate::engine::Engine;
use crate::link::{JitterModel, LinkParams};
use crate::network::Network;
use cm_core::address::NetAddr;
use cm_core::qos::ErrorRate;
use cm_core::rng::DetRng;
use cm_core::time::{Bandwidth, SimDuration};

/// A built testbed: the network plus the roles of its nodes.
pub struct Testbed {
    /// The network itself.
    pub net: Network,
    /// The switch at the centre (the "network emulator").
    pub switch: NetAddr,
    /// A second switch every node is also homed to when the testbed is
    /// built with [`TestbedConfig::build_resilient`]; `None` for the plain
    /// star. Routing prefers the primary switch (first-added links win BFS
    /// ties) and fails over to this one when the primary path dies.
    pub backup_switch: Option<NetAddr>,
    /// Workstation nodes (sinks and interactive sources).
    pub workstations: Vec<NetAddr>,
    /// Storage-server nodes (stored-media sources).
    pub servers: Vec<NetAddr>,
}

/// Parameters for building a testbed.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Number of workstations.
    pub workstations: usize,
    /// Number of storage servers.
    pub servers: usize,
    /// Access-link bandwidth (each node ↔ switch).
    pub bandwidth: Bandwidth,
    /// Access-link propagation delay.
    pub propagation: SimDuration,
    /// Optional per-node propagation override, cycled across nodes in
    /// creation order (workstations then servers); empty = uniform
    /// `propagation`. Models heterogeneous paths (fig. 2's hosts at
    /// different network distances).
    pub propagation_steps: Vec<SimDuration>,
    /// Jitter on every link.
    pub jitter: JitterModel,
    /// Loss on every link.
    pub loss: ErrorRate,
    /// Bit-error rate on every link.
    pub bit_error: ErrorRate,
    /// Link queue capacity in bytes.
    pub queue_capacity: usize,
    /// Clock skew applied to each node, in ppm, cycling through this list
    /// (empty = all perfect). The switch clock is always perfect.
    pub clock_skews_ppm: Vec<i32>,
    /// Seed for all link random processes.
    pub seed: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            workstations: 3,
            servers: 1,
            bandwidth: Bandwidth::mbps(100),
            propagation: SimDuration::from_millis(1),
            propagation_steps: Vec::new(),
            jitter: JitterModel::None,
            loss: ErrorRate::ZERO,
            bit_error: ErrorRate::ZERO,
            queue_capacity: 1 << 20,
            clock_skews_ppm: Vec::new(),
            seed: 0xC0FFEE,
        }
    }
}

impl TestbedConfig {
    /// The paper's own configuration: two PC workstations, one Sun
    /// workstation, one storage server (§2.1), on a clean fast emulator.
    pub fn lancaster() -> TestbedConfig {
        TestbedConfig::default()
    }

    fn link_params(&self) -> LinkParams {
        LinkParams {
            bandwidth: self.bandwidth,
            propagation: self.propagation,
            jitter: self.jitter,
            loss: self.loss,
            bit_error: self.bit_error,
            queue_capacity: self.queue_capacity,
        }
    }

    /// Build a star: every workstation and server has a duplex link to a
    /// central switch.
    pub fn build(&self, engine: Engine) -> Testbed {
        self.build_inner(engine, false)
    }

    /// Build a dual-homed star: every node has duplex links to *two*
    /// switches, so any single link or switch failure leaves a live
    /// alternative path — the topology the fault-recovery experiments run
    /// on. Routing prefers the primary switch (its links are added first).
    pub fn build_resilient(&self, engine: Engine) -> Testbed {
        self.build_inner(engine, true)
    }

    fn build_inner(&self, engine: Engine, resilient: bool) -> Testbed {
        let net = Network::new(engine);
        let mut rng = DetRng::from_seed(self.seed);
        let mut skews = self.clock_skews_ppm.iter().copied().cycle();
        let mut next_clock = move |list_empty: bool| {
            if list_empty {
                NodeClock::perfect()
            } else {
                NodeClock::with_skew(skews.next().expect("cycled iterator"))
            }
        };
        let empty = self.clock_skews_ppm.is_empty();

        let switch = net.add_node(NodeClock::perfect());
        let backup_switch = resilient.then(|| net.add_node(NodeClock::perfect()));
        let params = self.link_params();
        let prop_for = |i: usize| -> SimDuration {
            if self.propagation_steps.is_empty() {
                self.propagation
            } else {
                self.propagation_steps[i % self.propagation_steps.len()]
            }
        };
        let mut idx = 0usize;
        let mut attach = |node: NetAddr, rng: &mut DetRng| {
            let mut p = params.clone();
            p.propagation = prop_for(idx);
            idx += 1;
            // Primary first: BFS tie-breaks prefer the first-added link, so
            // the backup homing only carries traffic after a failure.
            net.add_duplex(node, switch, p.clone(), rng);
            if let Some(bk) = backup_switch {
                net.add_duplex(node, bk, p, rng);
            }
        };
        let mut workstations = Vec::new();
        for _ in 0..self.workstations {
            let w = net.add_node(next_clock(empty));
            attach(w, &mut rng);
            workstations.push(w);
        }
        let mut servers = Vec::new();
        for _ in 0..self.servers {
            let s = net.add_node(next_clock(empty));
            attach(s, &mut rng);
            servers.push(s);
        }
        Testbed {
            net,
            switch,
            backup_switch,
            workstations,
            servers,
        }
    }
}

/// Build a simple two-node duplex network (source ↔ sink) — the workhorse
/// of the transport-level tests.
pub fn two_node(engine: Engine, params: LinkParams, seed: u64) -> (Network, NetAddr, NetAddr) {
    let net = Network::new(engine);
    let mut rng = DetRng::from_seed(seed);
    let a = net.add_node(NodeClock::perfect());
    let b = net.add_node(NodeClock::perfect());
    net.add_duplex(a, b, params, &mut rng);
    (net, a, b)
}

/// Build a line of `n` nodes with duplex links, returning the node list —
/// used by the multi-hop reservation experiments.
pub fn line(engine: Engine, n: usize, params: LinkParams, seed: u64) -> (Network, Vec<NetAddr>) {
    assert!(n >= 2, "a line needs at least two nodes");
    let net = Network::new(engine);
    let mut rng = DetRng::from_seed(seed);
    let nodes: Vec<NetAddr> = (0..n).map(|_| net.add_node(NodeClock::perfect())).collect();
    for w in nodes.windows(2) {
        net.add_duplex(w[0], w[1], params.clone(), &mut rng);
    }
    (net, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lancaster_testbed_shape() {
        let tb = TestbedConfig::lancaster().build(Engine::new());
        assert_eq!(tb.workstations.len(), 3);
        assert_eq!(tb.servers.len(), 1);
        assert_eq!(tb.net.node_count(), 5);
        // Every node reaches every other through the switch (2 hops).
        let r = tb
            .net
            .route(tb.servers[0], tb.workstations[2])
            .expect("route exists");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn clock_skews_cycle_over_nodes() {
        let tb = TestbedConfig {
            clock_skews_ppm: vec![100, -100],
            ..TestbedConfig::default()
        }
        .build(Engine::new());
        assert_eq!(tb.net.clock(tb.workstations[0]).skew_ppm, 100);
        assert_eq!(tb.net.clock(tb.workstations[1]).skew_ppm, -100);
        assert_eq!(tb.net.clock(tb.workstations[2]).skew_ppm, 100);
        assert_eq!(tb.net.clock(tb.switch).skew_ppm, 0);
    }

    #[test]
    fn resilient_testbed_survives_primary_switch_death() {
        let tb = TestbedConfig::lancaster().build_resilient(Engine::new());
        let bk = tb.backup_switch.expect("resilient build has a backup");
        let (src, dst) = (tb.servers[0], tb.workstations[0]);
        // Primary path rides the first switch…
        let r = tb.net.route(src, dst).expect("route exists");
        assert_eq!(r.len(), 2);
        assert_eq!(tb.net.link_endpoints(r[0]).1, tb.switch);
        // …and the backup takes over when it dies, same hop count.
        tb.net.set_node_up(tb.switch, false);
        let r = tb.net.route(src, dst).expect("failover route exists");
        assert_eq!(r.len(), 2);
        assert_eq!(tb.net.link_endpoints(r[0]).1, bk);
    }

    #[test]
    fn line_topology_routes_end_to_end() {
        let (net, nodes) = line(
            Engine::new(),
            5,
            LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1)),
            7,
        );
        let r = net.route(nodes[0], nodes[4]).unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn two_node_is_symmetric() {
        let (net, a, b) = two_node(
            Engine::new(),
            LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1)),
            7,
        );
        assert_eq!(net.route(a, b).unwrap().len(), 1);
        assert_eq!(net.route(b, a).unwrap().len(), 1);
    }
}
