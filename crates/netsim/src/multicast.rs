//! Multicast groups over a shared delivery tree.
//!
//! The paper's CM connections are *simplex and multicast* ("CM multicast is
//! a simple 1:N topology", §3.1): one source drives N receivers. This
//! module gives the network substrate that topology natively — a group is
//! rooted at its source, receivers graft themselves onto the BFS
//! shortest-path tree from the root, and a packet sent to the group
//! traverses each tree link **exactly once**, fanning out only at branch
//! points. Bandwidth is reserved ST-II-style per shared link (not per
//! receiver), so the source's first-hop link carries the stream once no
//! matter how many receivers join downstream.
//!
//! Membership changes never disturb packets already in flight: each send
//! captures the tree as an immutable [`GroupTree`] snapshot (an `Rc`
//! carried through the per-hop events), so a concurrent join or leave
//! affects only subsequent sends.

use crate::network::LinkId;
use cm_core::address::{NetAddr, VcId};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies one multicast group within a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// Bit marking a [`VcId`] as a group reservation identity, keeping the
/// ledger's group entries disjoint from transport-allocated VC ids.
pub const GROUP_VC_BIT: u64 = 1 << 63;

impl GroupId {
    /// The ledger identity under which this group's shared tree holds its
    /// (single, link-deduplicated) bandwidth reservation.
    pub fn reservation_vc(self) -> VcId {
        VcId(GROUP_VC_BIT | self.0 as u64)
    }
}

/// Immutable snapshot of a group's shared delivery tree.
///
/// Produced by the network on every membership change; sends capture the
/// current snapshot so in-flight packets are unaffected by churn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupTree {
    /// The sending end: packets enter the tree here.
    pub root: NetAddr,
    /// Receivers; a copy is delivered at each (members may also be
    /// interior forwarding nodes of the tree).
    pub members: BTreeSet<NetAddr>,
    /// Tree edges leaving each node, in deterministic (child-node) order.
    pub out_links: BTreeMap<NetAddr, Vec<LinkId>>,
    /// Every link of the tree; each carries one copy per send.
    pub links: BTreeSet<LinkId>,
}

impl GroupTree {
    /// An empty tree rooted at `root` (no members, no links).
    pub fn empty(root: NetAddr) -> GroupTree {
        GroupTree {
            root,
            members: BTreeSet::new(),
            out_links: BTreeMap::new(),
            links: BTreeSet::new(),
        }
    }

    /// Number of receivers.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }
}
