//! Simplex link model: bandwidth, propagation delay, jitter, loss, bit
//! errors and a finite transmit queue.
//!
//! A [`Link`] is pure bookkeeping — given a submission at a point in time it
//! computes the arrival time (or the drop) deterministically from its own
//! seeded random stream; the [`Network`](crate::network::Network) schedules
//! the resulting delivery on the engine. Control-class packets ride the
//! reserved control channel (§5 of the paper: orchestration PDUs travel on
//! out-of-band connections with guaranteed bandwidth): they skip the data
//! queue and cannot be overtaken-blocked by data backlog.

use crate::packet::PacketClass;
use cm_core::qos::ErrorRate;
use cm_core::rng::DetRng;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use std::collections::VecDeque;

/// How jitter (extra, random forwarding latency) is sampled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JitterModel {
    /// No jitter: delay is deterministic.
    None,
    /// Uniform in `[0, max]`.
    Uniform(SimDuration),
    /// Exponential with the given mean, truncated at 10× the mean.
    Exponential(SimDuration),
}

impl JitterModel {
    fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match self {
            JitterModel::None => SimDuration::ZERO,
            JitterModel::Uniform(max) => rng.jitter_uniform(*max),
            JitterModel::Exponential(mean) => rng.jitter_exponential(*mean),
        }
    }
}

/// Static link characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkParams {
    /// Serialisation bandwidth.
    pub bandwidth: Bandwidth,
    /// Propagation delay.
    pub propagation: SimDuration,
    /// Random extra latency.
    pub jitter: JitterModel,
    /// Probability a packet is lost in transit.
    pub loss: ErrorRate,
    /// Probability a packet is delivered with bit errors (`corrupted` set).
    pub bit_error: ErrorRate,
    /// Transmit-queue capacity in bytes; a data packet arriving to a full
    /// queue is dropped (overflow).
    pub queue_capacity: usize,
}

impl LinkParams {
    /// A clean, fast default useful in tests: 100 Mb/s, 1 ms propagation,
    /// no jitter/loss/errors, 1 MiB queue.
    pub fn clean(bandwidth: Bandwidth, propagation: SimDuration) -> LinkParams {
        LinkParams {
            bandwidth,
            propagation,
            jitter: JitterModel::None,
            loss: ErrorRate::ZERO,
            bit_error: ErrorRate::ZERO,
            queue_capacity: 1 << 20,
        }
    }
}

/// Why a submission did not result in delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The transmit queue had no room.
    QueueOverflow,
    /// The loss process consumed the packet in transit.
    Loss,
}

/// Outcome of submitting one packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// The packet will arrive at the far end at `arrival`.
    Deliver {
        /// Global arrival instant at the receiving node.
        arrival: SimTime,
        /// Whether the bit-error process damaged it.
        corrupted: bool,
        /// Time the packet waited behind the data channel's backlog before
        /// its own serialisation began (always zero for control class —
        /// the reserved channel has no queue). Feeds the `queueing` segment
        /// of traced spans.
        queued: SimDuration,
    },
    /// The packet was dropped.
    Drop(DropReason),
}

/// Per-link counters, exposed for traces and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Packets submitted (both classes).
    pub submitted: u64,
    /// Packets that will be delivered.
    pub delivered: u64,
    /// Data packets dropped on queue overflow.
    pub dropped_overflow: u64,
    /// Packets dropped by the loss process.
    pub dropped_loss: u64,
    /// Packets delivered with the corrupted flag.
    pub corrupted: u64,
    /// Payload bytes accepted for transmission.
    pub bytes: u64,
}

/// Runtime state of one simplex link.
#[derive(Debug)]
pub struct Link {
    params: LinkParams,
    rng: DetRng,
    /// When the data channel finishes its current backlog.
    busy_until: SimTime,
    /// (serialisation-finish time, bytes) of queued data packets, used to
    /// compute queue occupancy without engine callbacks.
    in_flight: VecDeque<(SimTime, usize)>,
    /// Running byte total of `in_flight`, kept in lockstep on push and
    /// expiry so occupancy reads are O(1) instead of a deque rescan.
    queued_bytes: usize,
    /// Memo of the last `(wire_size, transmission time)` pair. Continuous-
    /// media traffic is overwhelmingly fixed-size, so this skips the
    /// bandwidth division on nearly every submit; a pure-function cache,
    /// so results are bit-identical with or without a hit.
    tx_memo: (usize, SimDuration),
    /// Arrival-time floor per class, enforcing FIFO delivery within a class
    /// even under jitter.
    last_arrival_data: SimTime,
    last_arrival_control: SimTime,
    /// Counters.
    pub counters: LinkCounters,
}

impl Link {
    /// Create a link with the given parameters and its own random stream.
    pub fn new(params: LinkParams, rng: DetRng) -> Link {
        Link {
            params,
            rng,
            busy_until: SimTime::ZERO,
            in_flight: VecDeque::new(),
            queued_bytes: 0,
            tx_memo: (usize::MAX, SimDuration::ZERO),
            last_arrival_data: SimTime::ZERO,
            last_arrival_control: SimTime::ZERO,
            counters: LinkCounters::default(),
        }
    }

    /// The static parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Bytes currently waiting in (or being serialised by) the data
    /// channel. Amortised O(1): expired entries are popped (each packet is
    /// popped exactly once over its life) and the running byte total is the
    /// answer — no rescan of the backlog.
    pub fn queue_occupancy(&mut self, now: SimTime) -> usize {
        while let Some(&(finish, bytes)) = self.in_flight.front() {
            if finish <= now {
                self.queued_bytes -= bytes;
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        self.queued_bytes
    }

    /// Submit one packet for transmission at global time `now`.
    pub fn submit(&mut self, now: SimTime, class: PacketClass, wire_size: usize) -> LinkOutcome {
        self.counters.submitted += 1;
        let tx = if self.tx_memo.0 == wire_size {
            self.tx_memo.1
        } else {
            let tx = self.params.bandwidth.transmission_time(wire_size);
            self.tx_memo = (wire_size, tx);
            tx
        };

        let (departure, queued) = match class {
            PacketClass::Control => {
                // Reserved control channel: no data-queue wait, no capacity
                // check — guaranteed bandwidth per §5.
                (now + tx, SimDuration::ZERO)
            }
            PacketClass::Data => {
                if self.queue_occupancy(now) + wire_size > self.params.queue_capacity {
                    self.counters.dropped_overflow += 1;
                    return LinkOutcome::Drop(DropReason::QueueOverflow);
                }
                let start = self.busy_until.max(now);
                let finish = start + tx;
                self.busy_until = finish;
                self.in_flight.push_back((finish, wire_size));
                self.queued_bytes += wire_size;
                (finish, start.saturating_since(now))
            }
        };
        self.counters.bytes += wire_size as u64;

        // Loss and bit errors apply to the data channel only: the control
        // channel models the paper's reserved internal control VC (§5),
        // which the orchestration and connection-management machinery
        // assume is reliable.
        if class == PacketClass::Data && self.rng.chance(self.params.loss) {
            // The packet still consumed serialisation time (it was sent and
            // lost in transit), so busy_until stays advanced.
            self.counters.dropped_loss += 1;
            return LinkOutcome::Drop(DropReason::Loss);
        }

        let jitter = self.params.jitter.sample(&mut self.rng);
        let mut arrival = departure + self.params.propagation + jitter;

        // Jitter must not reorder a FIFO link within a class.
        let floor = match class {
            PacketClass::Data => &mut self.last_arrival_data,
            PacketClass::Control => &mut self.last_arrival_control,
        };
        arrival = arrival.max(*floor);
        *floor = arrival;

        let corrupted = class == PacketClass::Data && self.rng.chance(self.params.bit_error);
        if corrupted {
            self.counters.corrupted += 1;
        }
        self.counters.delivered += 1;
        LinkOutcome::Deliver {
            arrival,
            corrupted,
            queued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(bw_mbps: u64, prop_ms: u64) -> Link {
        Link::new(
            LinkParams::clean(Bandwidth::mbps(bw_mbps), SimDuration::from_millis(prop_ms)),
            DetRng::from_seed(1),
        )
    }

    #[test]
    fn uncontended_delivery_time() {
        let mut l = mk(10, 5);
        // 1250 bytes at 10 Mb/s = 1 ms tx; +5 ms prop = arrival at 6 ms.
        match l.submit(SimTime::ZERO, PacketClass::Data, 1250) {
            LinkOutcome::Deliver {
                arrival,
                corrupted,
                queued,
            } => {
                assert_eq!(arrival, SimTime::from_millis(6));
                assert!(!corrupted);
                assert_eq!(queued, SimDuration::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut l = mk(10, 0);
        let a1 = match l.submit(SimTime::ZERO, PacketClass::Data, 1250) {
            LinkOutcome::Deliver { arrival, .. } => arrival,
            o => panic!("{o:?}"),
        };
        let a2 = match l.submit(SimTime::ZERO, PacketClass::Data, 1250) {
            LinkOutcome::Deliver { arrival, .. } => arrival,
            o => panic!("{o:?}"),
        };
        assert_eq!(a1, SimTime::from_millis(1));
        assert_eq!(a2, SimTime::from_millis(2));
    }

    #[test]
    fn control_bypasses_data_backlog() {
        let mut l = mk(10, 0);
        // Fill the data channel with 1 s of backlog.
        for _ in 0..100 {
            l.submit(SimTime::ZERO, PacketClass::Data, 12_500);
        }
        // A control packet still arrives after its own tx time only.
        match l.submit(SimTime::ZERO, PacketClass::Control, 1250) {
            LinkOutcome::Deliver { arrival, .. } => {
                assert_eq!(arrival, SimTime::from_millis(1));
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn queue_overflow_drops_data() {
        let mut l = Link::new(
            LinkParams {
                queue_capacity: 3000,
                ..LinkParams::clean(Bandwidth::mbps(1), SimDuration::ZERO)
            },
            DetRng::from_seed(2),
        );
        assert!(matches!(
            l.submit(SimTime::ZERO, PacketClass::Data, 1500),
            LinkOutcome::Deliver { .. }
        ));
        assert!(matches!(
            l.submit(SimTime::ZERO, PacketClass::Data, 1500),
            LinkOutcome::Deliver { .. }
        ));
        assert_eq!(
            l.submit(SimTime::ZERO, PacketClass::Data, 1500),
            LinkOutcome::Drop(DropReason::QueueOverflow)
        );
        assert_eq!(l.counters.dropped_overflow, 1);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut l = Link::new(
            LinkParams {
                queue_capacity: 3000,
                ..LinkParams::clean(Bandwidth::mbps(1), SimDuration::ZERO)
            },
            DetRng::from_seed(2),
        );
        l.submit(SimTime::ZERO, PacketClass::Data, 1500);
        l.submit(SimTime::ZERO, PacketClass::Data, 1500);
        // 1500 B at 1 Mb/s = 12 ms each; by 13 ms the first has left.
        assert!(matches!(
            l.submit(SimTime::from_millis(13), PacketClass::Data, 1500),
            LinkOutcome::Deliver { .. }
        ));
    }

    #[test]
    fn loss_process_matches_probability() {
        let mut l = Link::new(
            LinkParams {
                loss: ErrorRate::from_prob(0.1),
                ..LinkParams::clean(Bandwidth::mbps(1000), SimDuration::ZERO)
            },
            DetRng::from_seed(7),
        );
        let mut lost = 0;
        for i in 0..10_000u64 {
            if matches!(
                l.submit(SimTime::from_micros(i * 100), PacketClass::Data, 100),
                LinkOutcome::Drop(DropReason::Loss)
            ) {
                lost += 1;
            }
        }
        let frac = lost as f64 / 10_000.0;
        assert!((frac - 0.1).abs() < 0.02, "loss frac {frac}");
    }

    #[test]
    fn jitter_never_reorders_within_class() {
        let mut l = Link::new(
            LinkParams {
                jitter: JitterModel::Uniform(SimDuration::from_millis(20)),
                ..LinkParams::clean(Bandwidth::mbps(100), SimDuration::from_millis(1))
            },
            DetRng::from_seed(3),
        );
        let mut last = SimTime::ZERO;
        for i in 0..1000u64 {
            match l.submit(SimTime::from_micros(i * 50), PacketClass::Data, 500) {
                LinkOutcome::Deliver { arrival, .. } => {
                    assert!(arrival >= last, "reordered at {i}");
                    last = arrival;
                }
                o => panic!("{o:?}"),
            }
        }
    }

    #[test]
    fn occupancy_counter_matches_brute_force_recompute() {
        // Drive a random submit/query schedule and check the O(1) running
        // total against an independent shadow model that rescans its whole
        // backlog on every query.
        let prop = SimDuration::from_millis(2);
        let mut l = Link::new(
            LinkParams {
                queue_capacity: 8_000,
                // Offered load ≈ 4.4 Mb/s vs 4 Mb/s of capacity: slightly
                // overloaded, so the schedule both fills and drains.
                ..LinkParams::clean(Bandwidth::mbps(4), prop)
            },
            DetRng::from_seed(11),
        );
        // Shadow backlog: (serialisation-finish time, bytes). With a clean
        // link (no jitter), finish = arrival - propagation.
        let mut shadow: Vec<(SimTime, usize)> = Vec::new();
        let mut lcg: u64 = 0x2545_f491_4f6c_dd1d;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut now = SimTime::ZERO;
        let mut overflows = 0u32;
        for _ in 0..2000 {
            now += SimDuration::from_micros(next() % 4000);
            let bytes = 200 + (next() % 1800) as usize;
            match l.submit(now, PacketClass::Data, bytes) {
                LinkOutcome::Deliver { arrival, .. } => shadow.push((arrival - prop, bytes)),
                LinkOutcome::Drop(DropReason::QueueOverflow) => overflows += 1,
                o => panic!("clean link dropped: {o:?}"),
            }
            let brute: usize = shadow
                .iter()
                .filter(|&&(f, _)| f > now)
                .map(|&(_, b)| b)
                .sum();
            assert_eq!(l.queue_occupancy(now), brute, "diverged at t={now}");
        }
        // The schedule must actually exercise both fill and drain.
        assert!(overflows > 0, "schedule never hit capacity");
        assert!(l.counters.delivered > 1000);
    }

    #[test]
    fn bit_errors_set_corrupted() {
        let mut l = Link::new(
            LinkParams {
                bit_error: ErrorRate::ONE,
                ..LinkParams::clean(Bandwidth::mbps(10), SimDuration::ZERO)
            },
            DetRng::from_seed(4),
        );
        match l.submit(SimTime::ZERO, PacketClass::Data, 100) {
            LinkOutcome::Deliver { corrupted, .. } => assert!(corrupted),
            o => panic!("{o:?}"),
        }
        assert_eq!(l.counters.corrupted, 1);
    }

    #[test]
    fn counters_add_up() {
        let mut l = mk(10, 1);
        for _ in 0..5 {
            l.submit(SimTime::ZERO, PacketClass::Data, 1000);
        }
        assert_eq!(l.counters.submitted, 5);
        assert_eq!(l.counters.delivered, 5);
        assert_eq!(l.counters.bytes, 5000);
    }
}
