//! The discrete-event core.
//!
//! Everything in the reproduction — link transmissions, protocol timers,
//! application threads, orchestration intervals — runs as closures scheduled
//! on one [`Engine`]. The engine is single-threaded and deterministic:
//! events fire in `(time, sequence)` order, where sequence is the order of
//! scheduling, so two events at the same instant run in FIFO order and every
//! simulation is exactly repeatable.
//!
//! The engine is a cheaply clonable handle (`Rc` inside): components keep a
//! clone and schedule events without needing a mutable reference to a
//! central world object, which is what keeps the crates above loosely
//! coupled (the smoltcp lesson: explicit `poll`-style time, no hidden
//! runtime).

use cm_core::time::{SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type Action = Box<dyn FnOnce(&Engine)>;

struct Entry {
    at: SimTime,
    seq: u64,
    id: EventId,
    action: Action,
}

// Ordering for the max-heap: we invert so the earliest (time, seq) pops
// first. Only `at` and `seq` participate; two entries never tie because
// `seq` is unique.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller (at, seq) = "greater" for BinaryHeap.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct EngineInner {
    now: Cell<SimTime>,
    queue: RefCell<BinaryHeap<Entry>>,
    next_seq: Cell<u64>,
    cancelled: RefCell<HashSet<EventId>>,
    executed: Cell<u64>,
    /// Hard stop against runaway event loops in tests; `u64::MAX` = off.
    event_limit: Cell<u64>,
    /// Same-instant storm guard: (instant, events executed at it).
    same_instant: Cell<(SimTime, u64)>,
}

/// A deterministic discrete-event scheduler handle.
///
/// Clones share the same underlying queue and clock.
#[derive(Clone)]
pub struct Engine {
    inner: Rc<EngineInner>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// A fresh engine at time zero with an empty queue.
    pub fn new() -> Engine {
        Engine {
            inner: Rc::new(EngineInner {
                now: Cell::new(SimTime::ZERO),
                queue: RefCell::new(BinaryHeap::new()),
                next_seq: Cell::new(0),
                cancelled: RefCell::new(HashSet::new()),
                executed: Cell::new(0),
                event_limit: Cell::new(u64::MAX),
                same_instant: Cell::new((SimTime::ZERO, 0)),
            }),
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.inner.executed.get()
    }

    /// Number of events still pending (including cancelled tombstones).
    pub fn pending(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    /// Cap the total number of events the run loops will execute; exceeding
    /// it panics. Tests use this to catch scheduling loops.
    pub fn set_event_limit(&self, limit: u64) {
        self.inner.event_limit.set(limit);
    }

    /// Schedule `action` to run at absolute time `at`.
    ///
    /// `at` must not lie in the past. Returns an id usable with
    /// [`Engine::cancel`].
    pub fn schedule_at(&self, at: SimTime, action: impl FnOnce(&Engine) + 'static) -> EventId {
        assert!(
            at >= self.now(),
            "cannot schedule into the past: {at} < {}",
            self.now()
        );
        let seq = self.inner.next_seq.get();
        self.inner.next_seq.set(seq + 1);
        let id = EventId(seq);
        self.inner.queue.borrow_mut().push(Entry {
            at,
            seq,
            id,
            action: Box::new(action),
        });
        id
    }

    /// Schedule `action` to run after `delay`.
    pub fn schedule_in(
        &self,
        delay: SimDuration,
        action: impl FnOnce(&Engine) + 'static,
    ) -> EventId {
        self.schedule_at(self.now() + delay, action)
    }

    /// Cancel a pending event. Cancelling an already-fired or already-
    /// cancelled event is a no-op.
    pub fn cancel(&self, id: EventId) {
        self.inner.cancelled.borrow_mut().insert(id);
    }

    /// Execute the next pending event, if any. Returns `false` when the
    /// queue is empty.
    pub fn step(&self) -> bool {
        loop {
            // Pop while *not* holding the borrow across the action call:
            // actions schedule and cancel freely.
            let entry = match self.inner.queue.borrow_mut().pop() {
                Some(e) => e,
                None => return false,
            };
            if self.inner.cancelled.borrow_mut().remove(&entry.id) {
                continue; // tombstoned
            }
            debug_assert!(entry.at >= self.now());
            self.inner.now.set(entry.at);
            let n = self.inner.executed.get() + 1;
            self.inner.executed.set(n);
            assert!(
                n <= self.inner.event_limit.get(),
                "event limit exceeded at {} ({} events executed)",
                self.now(),
                n
            );
            // Same-instant storm guard: a zero-delay event cycle would
            // freeze virtual time while burning real time — fail loudly
            // instead of hanging.
            let (at, count) = self.inner.same_instant.get();
            if at == entry.at {
                assert!(
                    count < 5_000_000,
                    "same-instant event storm at {at}: >5M events without time advancing"
                );
                self.inner.same_instant.set((at, count + 1));
            } else {
                self.inner.same_instant.set((entry.at, 1));
            }
            (entry.action)(self);
            return true;
        }
    }

    /// Run until the queue drains.
    pub fn run(&self) {
        while self.step() {}
    }

    /// Run all events scheduled strictly before or at `deadline`, then set
    /// the clock to `deadline` (even if the queue drained earlier), leaving
    /// later events pending.
    pub fn run_until(&self, deadline: SimTime) {
        loop {
            let next_at = loop {
                // Skim tombstones off the top so peek sees a live event.
                let mut q = self.inner.queue.borrow_mut();
                match q.peek() {
                    None => break None,
                    Some(e) => {
                        if self.inner.cancelled.borrow().contains(&e.id) {
                            let e = q.pop().expect("peeked entry vanished");
                            self.inner.cancelled.borrow_mut().remove(&e.id);
                            continue;
                        }
                        break Some(e.at);
                    }
                }
            };
            match next_at {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now() < deadline {
            self.inner.now.set(deadline);
        }
    }

    /// Run for `span` of simulated time from now.
    pub fn run_for(&self, span: SimDuration) {
        let deadline = self.now() + span;
        self.run_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (t, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = log.clone();
            e.schedule_at(SimTime::from_micros(t), move |_| log.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(e.now(), SimTime::from_micros(30));
        assert_eq!(e.executed(), 3);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..10 {
            let log = log.clone();
            e.schedule_at(SimTime::from_micros(5), move |_| log.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn actions_can_schedule_more_events() {
        let e = Engine::new();
        let count = Rc::new(Cell::new(0u32));
        fn tick(e: &Engine, count: Rc<Cell<u32>>) {
            let n = count.get() + 1;
            count.set(n);
            if n < 5 {
                let c = count.clone();
                e.schedule_in(SimDuration::from_millis(1), move |e| tick(e, c));
            }
        }
        let c = count.clone();
        e.schedule_at(SimTime::ZERO, move |e| tick(e, c));
        e.run();
        assert_eq!(count.get(), 5);
        assert_eq!(e.now(), SimTime::from_millis(4));
    }

    #[test]
    fn cancel_prevents_execution() {
        let e = Engine::new();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let id = e.schedule_in(SimDuration::from_millis(1), move |_| f.set(true));
        e.cancel(id);
        e.run();
        assert!(!fired.get());
        // Double-cancel and cancel-after-run are harmless.
        e.cancel(id);
    }

    #[test]
    fn run_until_leaves_later_events_and_advances_clock() {
        let e = Engine::new();
        let fired = Rc::new(Cell::new(0));
        for t in [1u64, 2, 3, 10] {
            let f = fired.clone();
            e.schedule_at(SimTime::from_secs(t), move |_| {
                f.set(f.get() + 1);
            });
        }
        e.run_until(SimTime::from_secs(5));
        assert_eq!(fired.get(), 3);
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert_eq!(e.pending(), 1);
        e.run();
        assert_eq!(fired.get(), 4);
    }

    #[test]
    fn run_until_with_cancelled_head() {
        let e = Engine::new();
        let fired = Rc::new(Cell::new(false));
        let id = e.schedule_at(SimTime::from_secs(1), |_| {});
        let f = fired.clone();
        e.schedule_at(SimTime::from_secs(2), move |_| f.set(true));
        e.cancel(id);
        e.run_until(SimTime::from_secs(3));
        assert!(fired.get());
        assert_eq!(e.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), |_| {});
        e.run();
        e.schedule_at(SimTime::from_millis(1), |_| {});
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_runaway() {
        let e = Engine::new();
        e.set_event_limit(100);
        fn forever(e: &Engine) {
            e.schedule_in(SimDuration::from_micros(1), forever);
        }
        e.schedule_at(SimTime::ZERO, forever);
        e.run();
    }

    #[test]
    fn run_for_is_relative() {
        let e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), |_| {});
        e.run();
        e.run_for(SimDuration::from_secs(2));
        assert_eq!(e.now(), SimTime::from_secs(3));
    }
}
