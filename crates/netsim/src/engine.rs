//! The discrete-event core.
//!
//! Everything in the reproduction — link transmissions, protocol timers,
//! application threads, orchestration intervals — runs as events scheduled
//! on one [`Engine`]. The engine is single-threaded and deterministic:
//! events fire in `(time, sequence)` order, where sequence is the order of
//! scheduling, so two events at the same instant run in FIFO order and every
//! simulation is exactly repeatable.
//!
//! Control-plane events are boxed closures ([`Engine::schedule_at`]); the
//! packet data plane instead schedules typed
//! [`PacketFlight`](crate::packet::PacketFlight) events
//! ([`Engine::schedule_flight`]) kept in pooled cells referenced from the
//! slab and handed to the network's registered dispatcher — steady-state
//! forwarding allocates nothing per hop, and slab slots stay pointer-sized.
//! Both kinds share one sequence space, so replacing a
//! closure with a flight at the same call site preserves firing order
//! exactly.
//!
//! The engine is a cheaply clonable handle (`Rc` inside): components keep a
//! clone and schedule events without needing a mutable reference to a
//! central world object, which is what keeps the crates above loosely
//! coupled (the smoltcp lesson: explicit `poll`-style time, no hidden
//! runtime).
//!
//! # Scheduler internals
//!
//! Events live in a slab of reusable slots addressed by a hierarchical timer
//! wheel ([`LEVELS`] levels of [`SLOTS`] slots, each level covering 64× the
//! span of the one below — level 0 resolves single microseconds, the top
//! level ~19 simulated hours). Events beyond the wheel span wait in a small
//! overflow heap and migrate into the wheel as the cursor approaches.
//!
//! [`EventId`]s carry a generation tag alongside the slot index, so `cancel`
//! is an O(1) slot invalidation: a stale id (already fired, already
//! cancelled, or slot since reused) simply no-ops. Cancelled events leave no
//! tombstones — their bucket keys are dropped lazily when the containing
//! slot drains — and [`Engine::pending`] counts exactly the live events.
//!
//! Determinism argument: every event placed at (or cascaded down to) its
//! deadline lands in a level-0 bucket, and a level-0 bucket is drained only
//! when the cursor equals that exact instant, at which point its live keys
//! are sorted by sequence number before firing. Same-instant FIFO order
//! therefore never depends on *how* an event reached level 0 (direct
//! placement, cascade, or overflow migration). A differential proptest in
//! `tests/engine_differential.rs` checks firing order against a reference
//! binary-heap scheduler.

use crate::packet::PacketFlight;
use cm_core::time::{SimDuration, SimTime};
use cm_telemetry::{Layer, Telemetry};
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::rc::Rc;

/// Bits of the deadline consumed per wheel level.
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of wheel levels; deadlines within `2^(LEVEL_BITS*LEVELS)` µs of
/// the cursor (~19.1 simulated hours) live in the wheel, the rest overflow.
const LEVELS: usize = 6;
/// Total deadline bits the wheel can resolve.
const WHEEL_BITS: u32 = LEVEL_BITS * LEVELS as u32;

/// Identifies a scheduled event so it can be cancelled.
///
/// Packs a slab index and a generation tag; ids from fired or cancelled
/// events go stale (the slot's generation advances) so a late [`Engine::cancel`]
/// can never hit an unrelated event that reused the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn pack(idx: u32, gen: u32) -> EventId {
        EventId(((gen as u64) << 32) | idx as u64)
    }
    fn unpack(self) -> (u32, u32) {
        (self.0 as u32, (self.0 >> 32) as u32)
    }
}

type Action = Box<dyn FnOnce(&Engine)>;
type RepeatAction = Box<dyn FnMut(&Engine)>;
type FlightDispatch = Rc<dyn Fn(&Engine, FlightCell)>;
/// Heap cell for one in-transit packet. The box is recycled through
/// `Core::flight_pool` (emptied on delivery or drop, refilled on the next
/// injection), so steady-state flights allocate nothing while slab slots
/// stay pointer-sized — a `PacketFlight` inline would more than double
/// every `Slot` and drag the whole wheel's cache footprint with it. The
/// cell travels through the dispatcher and back into `schedule_flight_cell`
/// whole: a relayed packet is never copied out of its box between hops.
pub(crate) type FlightCell = Box<Option<PacketFlight>>;

/// What a slab slot currently holds.
enum Stored {
    /// Free slot (on the free list) or a one-shot whose action was taken.
    Vacant,
    /// A one-shot event.
    Once(Action),
    /// A packet in transit, in a pooled cell: no per-hop allocation, no
    /// captured handles. Fired through the engine's registered flight
    /// dispatcher.
    Flight(FlightCell),
    /// A periodic timer's action, at rest.
    Repeat(RepeatAction),
    /// A periodic timer's action, moved out while it runs. If the slot is
    /// released mid-fire (handle dropped inside its own callback) the
    /// generation advances and the put-back drops the action instead.
    RepeatTaken,
}

struct Slot {
    /// Bumped on every release; pending `EventId`s and bucket keys from a
    /// prior life of the slot no longer match.
    gen: u32,
    /// Whether the slot currently has a pending deadline in the wheel.
    scheduled: bool,
    /// Absolute deadline in µs (valid while `scheduled`).
    at: u64,
    /// Sequence number of the *current* arming. Bucket keys snapshot the
    /// seq they were placed with; a key whose seq no longer matches is
    /// stale (cancelled or re-armed) and is dropped when its bucket drains.
    seq: u64,
    /// Auto-rearm period for `PeriodicTimer::arm_every`, in µs.
    period: Option<u64>,
    stored: Stored,
}

/// A bucket entry: slot index plus the seq it was scheduled under.
#[derive(Clone, Copy)]
struct Key {
    idx: u32,
    seq: u64,
}

struct Level {
    /// Bitmap of non-empty buckets.
    occupied: u64,
    buckets: Vec<Vec<Key>>,
}

struct Core {
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Live (scheduled, not cancelled) event count.
    live: usize,
    /// The wheel cursor: deadlines below it have been drained. Invariant:
    /// while `live > 0`, `elapsed <=` the earliest live deadline. When
    /// `live == 0` the cursor may drift past stale buckets and is rewound
    /// on the next arm.
    elapsed: u64,
    levels: Vec<Level>,
    /// Keys whose deadline equals `elapsed`, in firing (seq) order.
    ready: VecDeque<Key>,
    /// Events beyond the wheel span, ordered by `(at, seq)`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Free pool of flight cells: emptied boxes come back on fire or cancel
    /// and are refilled by the next `schedule_flight`. Lives inside `Core`
    /// so pool traffic rides the borrow the scheduler already holds.
    /// High-water bounded by the peak number of concurrent in-flight
    /// packets, exactly like the slab itself.
    flight_pool: Vec<FlightCell>,
}

impl Core {
    fn new() -> Core {
        Core {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            elapsed: 0,
            levels: (0..LEVELS)
                .map(|_| Level {
                    occupied: 0,
                    buckets: (0..SLOTS).map(|_| Vec::new()).collect(),
                })
                .collect(),
            ready: VecDeque::new(),
            overflow: BinaryHeap::new(),
            flight_pool: Vec::new(),
        }
    }

    fn alloc(&mut self) -> u32 {
        if let Some(idx) = self.free.pop() {
            idx
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                scheduled: false,
                at: 0,
                seq: 0,
                period: None,
                stored: Stored::Vacant,
            });
            idx
        }
    }

    /// Return a slot to the free list, advancing its generation so every
    /// outstanding id and bucket key for it goes stale. The caller must
    /// have unscheduled it first.
    fn release(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        debug_assert!(!slot.scheduled);
        slot.stored = Stored::Vacant;
        slot.period = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
    }

    /// Drop a slot's pending deadline, if any. Its bucket key stays behind
    /// and is discarded when the bucket drains.
    fn unschedule(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        if slot.scheduled {
            slot.scheduled = false;
            self.live -= 1;
        }
    }

    fn key_live(&self, key: Key) -> bool {
        let slot = &self.slots[key.idx as usize];
        slot.scheduled && slot.seq == key.seq
    }

    /// Give a slot a new deadline under a fresh seq (any previous deadline
    /// is implicitly dropped). `now` is the engine clock, a lower bound on
    /// every future deadline.
    fn arm(&mut self, idx: u32, at: u64, seq: u64, now: u64) {
        self.unschedule(idx);
        if self.live == 0 {
            // No live deadline constrains the cursor, which may have
            // drifted past `now` while chasing stale buckets; pull it back
            // to the clock (not just to `at`) so that later arms at
            // earlier-but-still-future deadlines stay reachable too.
            self.elapsed = self.elapsed.min(now);
        } else if at < self.elapsed {
            // The cursor is parked on the earliest *previously known*
            // deadline (a `peek_due` with no firing leaves it there) and
            // this arm undercuts it — legal for externally injected
            // events, e.g. a cross-shard delivery at a barrier tick below
            // this shard's own next deadline. Re-seat everything.
            self.rewind(at);
        }
        let slot = &mut self.slots[idx as usize];
        slot.at = at;
        slot.seq = seq;
        slot.scheduled = true;
        self.live += 1;
        self.place(Key { idx, seq }, at);
    }

    /// Pull the cursor back to `to` (`<= elapsed`), re-seating every
    /// pending key relative to the new position. Bucket placement is
    /// cursor-relative (`at ^ elapsed` picks the level), so a plain
    /// cursor write would leave keys in buckets the scan would either
    /// miss (slot below the new cursor position) or drain at the wrong
    /// instant (level-0 keys from a later rotation fire unconditionally).
    /// Cost is O(pending); the shard runner hits this at most once per
    /// barrier round, on the first injection below the peeked cursor.
    fn rewind(&mut self, to: u64) {
        debug_assert!(to <= self.elapsed);
        let mut keys: Vec<Key> = self.ready.drain(..).collect();
        for level in &mut self.levels {
            let mut occ = level.occupied;
            level.occupied = 0;
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                keys.append(&mut level.buckets[slot]);
            }
        }
        self.elapsed = to;
        for key in keys {
            // Live deadlines are all >= the old cursor > `to` (the wheel
            // invariant), so re-placing never lands below the new cursor.
            if self.key_live(key) {
                let at = self.slots[key.idx as usize].at;
                self.place(key, at);
            }
        }
    }

    /// Insert a key at the wheel position (or overflow heap) for deadline
    /// `at`. Deadlines at the cursor itself go in their level-0 bucket so
    /// that *every* path to firing funnels through the seq-sorted drain.
    fn place(&mut self, key: Key, at: u64) {
        debug_assert!(at >= self.elapsed);
        let masked = at ^ self.elapsed;
        if masked >> WHEEL_BITS != 0 {
            self.overflow.push(Reverse((at, key.seq, key.idx)));
            return;
        }
        let level = if masked < SLOTS as u64 {
            0
        } else {
            ((63 - masked.leading_zeros()) / LEVEL_BITS) as usize
        };
        let slot = ((at >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level].buckets[slot].push(key);
        self.levels[level].occupied |= 1 << slot;
    }

    /// Empty one bucket: level 0 feeds the ready queue in seq order (all
    /// live keys there share deadline == `elapsed`); higher levels cascade
    /// live keys down. Stale keys are discarded here — this is where
    /// cancelled events actually leave the structure.
    fn drain(&mut self, level: usize, slot: usize) {
        self.levels[level].occupied &= !(1u64 << slot);
        // Single-key bucket fast path: paced traffic lands one deadline per
        // microsecond slot, where the retain + sort + write-back round-trip
        // below is pure overhead. Behaviour is identical (a one-element sort
        // is a no-op and `retain` is the same liveness check).
        if self.levels[level].buckets[slot].len() == 1 {
            let k = self.levels[level].buckets[slot].pop().expect("len checked");
            if self.key_live(k) {
                if level == 0 {
                    self.ready.push_back(k);
                } else {
                    let at = self.slots[k.idx as usize].at;
                    self.place(k, at);
                }
            }
            return;
        }
        let mut keys = std::mem::take(&mut self.levels[level].buckets[slot]);
        if level == 0 {
            keys.retain(|k| self.key_live(*k));
            keys.sort_unstable_by_key(|k| k.seq);
            self.ready.extend(keys.iter().copied());
        } else {
            for &k in &keys {
                if self.key_live(k) {
                    let at = self.slots[k.idx as usize].at;
                    self.place(k, at);
                }
            }
        }
        keys.clear();
        self.levels[level].buckets[slot] = keys; // keep the allocation
    }

    /// Advance the cursor to the next live deadline `<= limit` and leave its
    /// key at the front of the ready queue (without removing it). Returns
    /// `None` when no live event is due by `limit`; the cursor never
    /// advances past the first deadline beyond `limit`.
    fn peek_due(&mut self, limit: u64) -> Option<Key> {
        loop {
            // 1. Overflow events now within the wheel span re-enter the
            //    wheel (must precede the ready scan so a migrated event
            //    can still win the seq-sort against same-instant peers).
            while let Some(&Reverse((at, seq, idx))) = self.overflow.peek() {
                let key = Key { idx, seq };
                if !self.key_live(key) {
                    self.overflow.pop();
                    continue;
                }
                if (at ^ self.elapsed) >> WHEEL_BITS != 0 {
                    break;
                }
                self.overflow.pop();
                self.place(key, at);
            }
            // 2. Ready keys fire at `elapsed`.
            while let Some(&key) = self.ready.front() {
                if self.key_live(key) {
                    if self.slots[key.idx as usize].at > limit {
                        return None;
                    }
                    return Some(key);
                }
                self.ready.pop_front();
            }
            // 3. Advance to the earliest occupied slot and drain it. The
            //    first non-empty level always holds the earliest candidate:
            //    live keys on level L+1 lie in later L+1-windows than
            //    everything on level L.
            let mut advanced = false;
            for level in 0..LEVELS {
                let shift = LEVEL_BITS * level as u32;
                let cursor = (self.elapsed >> shift) & (SLOTS as u64 - 1);
                let occ = self.levels[level].occupied & (!0u64 << cursor);
                if occ == 0 {
                    continue;
                }
                let slot = occ.trailing_zeros() as usize;
                let next_shift = shift + LEVEL_BITS;
                let base = (self.elapsed >> next_shift) << next_shift;
                // The deadline this slot represents in the current
                // rotation; stale keys can make it sit below the cursor,
                // in which case draining is a pure cleanup.
                let t = (base | ((slot as u64) << shift)).max(self.elapsed);
                if t > limit {
                    return None;
                }
                self.elapsed = t;
                self.drain(level, slot);
                advanced = true;
                break;
            }
            if advanced {
                continue;
            }
            // 4. Wheel empty: jump the cursor to the overflow head (live —
            //    dead heads were popped in step 1).
            match self.overflow.peek() {
                Some(&Reverse((at, seq, idx))) => {
                    if at > limit {
                        return None;
                    }
                    self.overflow.pop();
                    self.elapsed = at;
                    self.place(Key { idx, seq }, at);
                }
                None => return None,
            }
        }
    }

    /// Remove and return the next due key (deadline `<= limit`), if any.
    fn pop_due(&mut self, limit: u64) -> Option<Key> {
        let key = self.peek_due(limit)?;
        self.ready.pop_front();
        let slot = &mut self.slots[key.idx as usize];
        slot.scheduled = false;
        self.live -= 1;
        Some(key)
    }
}

/// What `step` extracted for the firing event.
enum Fired {
    Once(Action),
    /// The cell still holds its flight: it goes to the dispatcher whole,
    /// so the packet rides through this enum as one pointer instead of by
    /// value — and the network can relay the same cell onward untouched.
    Flight(FlightCell),
    Repeat(RepeatAction, u32),
}

struct EngineInner {
    now: Cell<SimTime>,
    core: RefCell<Core>,
    next_seq: Cell<u64>,
    executed: Cell<u64>,
    /// Hard stop against runaway event loops in tests; `u64::MAX` = off.
    event_limit: Cell<u64>,
    /// Same-instant storm guard: (instant, events executed at it).
    same_instant: Cell<(SimTime, u64)>,
    /// Receiver for fired [`PacketFlight`] events, registered once by the
    /// network bound to this engine. Outside the hot `step` borrow so the
    /// dispatcher can schedule freely.
    flight_dispatch: RefCell<Option<FlightDispatch>>,
    /// Flight recorder shared by every layer; disabled until someone calls
    /// `telemetry().enable(..)`. The hot `step` path never touches it —
    /// only the run-loop tails emit drain spans.
    telemetry: Telemetry,
}

/// A deterministic discrete-event scheduler handle.
///
/// Clones share the same underlying queue and clock.
#[derive(Clone)]
pub struct Engine {
    inner: Rc<EngineInner>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// A fresh engine at time zero with an empty queue.
    pub fn new() -> Engine {
        Engine {
            inner: Rc::new(EngineInner {
                now: Cell::new(SimTime::ZERO),
                core: RefCell::new(Core::new()),
                next_seq: Cell::new(0),
                executed: Cell::new(0),
                event_limit: Cell::new(u64::MAX),
                same_instant: Cell::new((SimTime::ZERO, 0)),
                flight_dispatch: RefCell::new(None),
                telemetry: Telemetry::disabled(),
            }),
        }
    }

    /// The engine-wide flight recorder. Created disabled; enabling it here
    /// turns on recording for every layer that cached a clone.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.inner.executed.get()
    }

    /// Number of live pending events (cancelled events don't count).
    pub fn pending(&self) -> usize {
        self.inner.core.borrow().live
    }

    /// Cap the total number of events the run loops will execute; exceeding
    /// it panics. Tests use this to catch scheduling loops.
    pub fn set_event_limit(&self, limit: u64) {
        self.inner.event_limit.set(limit);
    }

    fn next_seq(&self) -> u64 {
        let seq = self.inner.next_seq.get();
        self.inner.next_seq.set(seq + 1);
        seq
    }

    /// Schedule `action` to run at absolute time `at`.
    ///
    /// `at` must not lie in the past. Returns an id usable with
    /// [`Engine::cancel`].
    pub fn schedule_at(&self, at: SimTime, action: impl FnOnce(&Engine) + 'static) -> EventId {
        assert!(
            at >= self.now(),
            "cannot schedule into the past: {at} < {}",
            self.now()
        );
        let seq = self.next_seq();
        let mut core = self.inner.core.borrow_mut();
        let idx = core.alloc();
        let slot = &mut core.slots[idx as usize];
        let gen = slot.gen;
        slot.stored = Stored::Once(Box::new(action));
        let now = self.now().as_micros();
        core.arm(idx, at.as_micros(), seq, now);
        EventId::pack(idx, gen)
    }

    /// Schedule `action` to run after `delay`.
    pub fn schedule_in(
        &self,
        delay: SimDuration,
        action: impl FnOnce(&Engine) + 'static,
    ) -> EventId {
        self.schedule_at(self.now() + delay, action)
    }

    /// Register the receiver for [`PacketFlight`] events. One engine drives
    /// one network: registering twice panics rather than silently rerouting
    /// the first network's in-flight packets.
    pub fn set_flight_dispatch(&self, dispatch: impl Fn(&Engine, PacketFlight) + 'static) {
        self.set_flight_dispatch_cells(move |engine, mut cell| {
            let flight = cell.take().expect("fired flight cell is full");
            engine.recycle_flight_cell(cell);
            dispatch(engine, flight);
        });
    }

    /// Cell-level dispatcher registration: the receiver gets the pooled box
    /// itself and may hand it straight back to
    /// [`Engine::schedule_flight_cell`] — the relay fast path that never
    /// copies the packet out of its cell.
    pub(crate) fn set_flight_dispatch_cells(
        &self,
        dispatch: impl Fn(&Engine, FlightCell) + 'static,
    ) {
        let mut slot = self.inner.flight_dispatch.borrow_mut();
        assert!(
            slot.is_none(),
            "flight dispatcher already registered: one Network per Engine"
        );
        *slot = Some(Rc::new(dispatch));
    }

    /// Pop an empty flight cell from the pool (or mint one — only before
    /// the pool has warmed up to the peak in-flight count).
    pub(crate) fn take_flight_cell(&self) -> FlightCell {
        self.inner
            .core
            .borrow_mut()
            .flight_pool
            .pop()
            .unwrap_or_else(|| Box::new(None))
    }

    /// Return a cell to the pool, dropping any packet still inside.
    pub(crate) fn recycle_flight_cell(&self, mut cell: FlightCell) {
        *cell = None;
        self.inner.core.borrow_mut().flight_pool.push(cell);
    }

    /// Schedule a packet flight to land at absolute time `at` — the
    /// zero-allocation counterpart of [`Engine::schedule_at`] for the
    /// packet data plane. The flight goes into a pooled cell in a reused
    /// slab slot; firing hands it to the dispatcher registered with
    /// [`Engine::set_flight_dispatch`] (a flight fired with no dispatcher
    /// registered is dropped). Ordering is identical to a closure scheduled
    /// at the same point: one sequence number, same `(time, seq)` rules.
    pub fn schedule_flight(&self, at: SimTime, flight: PacketFlight) -> EventId {
        let mut cell = self.take_flight_cell();
        *cell = Some(flight);
        self.schedule_flight_cell(at, cell)
    }

    /// Schedule a packet flight to land after `delay`.
    pub fn schedule_flight_in(&self, delay: SimDuration, flight: PacketFlight) -> EventId {
        self.schedule_flight(self.now() + delay, flight)
    }

    /// [`Engine::schedule_flight`] for a flight already in its cell — the
    /// relay path: the packet stays in the same heap cell from injection to
    /// delivery, only its routing fields are rewritten per hop.
    pub(crate) fn schedule_flight_cell(&self, at: SimTime, cell: FlightCell) -> EventId {
        debug_assert!(cell.is_some(), "scheduling an empty flight cell");
        assert!(
            at >= self.now(),
            "cannot schedule into the past: {at} < {}",
            self.now()
        );
        let seq = self.next_seq();
        let mut core = self.inner.core.borrow_mut();
        let idx = core.alloc();
        let slot = &mut core.slots[idx as usize];
        let gen = slot.gen;
        slot.stored = Stored::Flight(cell);
        let now = self.now().as_micros();
        core.arm(idx, at.as_micros(), seq, now);
        EventId::pack(idx, gen)
    }

    /// Number of slab slots currently backing the scheduler (allocated
    /// high-water mark, free or occupied). Steady-state traffic must reuse
    /// slots rather than grow this — the observable for the no-allocation
    /// guarantee on the packet fast path.
    pub fn slab_slots(&self) -> usize {
        self.inner.core.borrow().slots.len()
    }

    /// Cancel a pending event in O(1). Cancelling an already-fired or
    /// already-cancelled event is a no-op (the id has gone stale).
    pub fn cancel(&self, id: EventId) {
        let (idx, gen) = id.unpack();
        let mut core = self.inner.core.borrow_mut();
        let Some(slot) = core.slots.get_mut(idx as usize) else {
            return;
        };
        if slot.gen != gen || !matches!(slot.stored, Stored::Once(_) | Stored::Flight(_)) {
            return;
        }
        if let Stored::Flight(mut cell) = std::mem::replace(&mut slot.stored, Stored::Vacant) {
            // Drop the cancelled packet but keep its cell for reuse.
            *cell = None;
            core.flight_pool.push(cell);
        }
        core.unschedule(idx);
        core.release(idx);
    }

    /// Advance the clock to a firing event's deadline and run the
    /// bookkeeping guards.
    fn tick_clock(&self, at: SimTime) {
        debug_assert!(at >= self.now());
        self.inner.now.set(at);
        let n = self.inner.executed.get() + 1;
        self.inner.executed.set(n);
        assert!(
            n <= self.inner.event_limit.get(),
            "event limit exceeded at {} ({} events executed)",
            self.now(),
            n
        );
        // Same-instant storm guard: a zero-delay event cycle would freeze
        // virtual time while burning real time — fail loudly instead of
        // hanging.
        let (prev, count) = self.inner.same_instant.get();
        if prev == at {
            assert!(
                count < 5_000_000,
                "same-instant event storm at {prev}: >5M events without time advancing"
            );
            self.inner.same_instant.set((prev, count + 1));
        } else {
            self.inner.same_instant.set((at, 1));
        }
    }

    /// Execute the next pending event, if any. Returns `false` when the
    /// queue is empty.
    pub fn step(&self) -> bool {
        // Extract without holding the borrow across the action call:
        // actions schedule and cancel freely.
        let (key, at, fired) = {
            let mut core = self.inner.core.borrow_mut();
            let Some(key) = core.pop_due(u64::MAX) else {
                return false;
            };
            let slot = &mut core.slots[key.idx as usize];
            let at = slot.at;
            let gen = slot.gen;
            match std::mem::replace(&mut slot.stored, Stored::RepeatTaken) {
                Stored::Once(action) => {
                    slot.stored = Stored::Vacant;
                    // Free before firing: the slot is reusable during the
                    // callback, and a cancel of this id after the fire is a
                    // stale-generation no-op.
                    core.release(key.idx);
                    (key, at, Fired::Once(action))
                }
                Stored::Flight(cell) => {
                    slot.stored = Stored::Vacant;
                    core.release(key.idx);
                    (key, at, Fired::Flight(cell))
                }
                Stored::Repeat(action) => (key, at, Fired::Repeat(action, gen)),
                Stored::Vacant | Stored::RepeatTaken => {
                    unreachable!("live key points at an empty slot")
                }
            }
        };
        self.tick_clock(SimTime::from_micros(at));
        match fired {
            Fired::Once(action) => action(self),
            Fired::Flight(cell) => {
                // Call through the borrow — no per-fire `Rc` traffic. The
                // dispatcher is registered once before the run, so nothing
                // re-borrows this slot mid-dispatch. A missing dispatcher
                // drops the flight (its network is gone).
                if let Some(dispatch) = &*self.inner.flight_dispatch.borrow() {
                    dispatch(self, cell);
                }
            }
            Fired::Repeat(mut action, gen) => {
                action(self);
                // Put the action back unless the timer's handle was dropped
                // (or the slot reused) during its own callback.
                let mut core = self.inner.core.borrow_mut();
                let slot = &mut core.slots[key.idx as usize];
                if slot.gen == gen && matches!(slot.stored, Stored::RepeatTaken) {
                    slot.stored = Stored::Repeat(action);
                    if let (Some(period), false) = (slot.period, slot.scheduled) {
                        // `arm_every` auto-rearm; an explicit arm from the
                        // callback takes precedence.
                        let seq = self.next_seq();
                        core.arm(key.idx, at.saturating_add(period), seq, at);
                    }
                }
            }
        }
        true
    }

    /// Run until the queue drains.
    pub fn run(&self) {
        let (start, before) = (self.now(), self.executed());
        while self.step() {}
        self.drain_span(start, before);
    }

    /// Run all events scheduled strictly before or at `deadline`, then set
    /// the clock to `deadline` (even if the queue drained earlier), leaving
    /// later events pending.
    pub fn run_until(&self, deadline: SimTime) {
        let (start, before) = (self.now(), self.executed());
        let limit = deadline.as_micros();
        loop {
            let due = self.inner.core.borrow_mut().peek_due(limit).is_some();
            if !due {
                break;
            }
            self.step();
        }
        self.drain_span(start, before);
        if self.now() < deadline {
            self.inner.now.set(deadline);
        }
    }

    /// The deadline of the earliest live pending event, if any — the
    /// shard-local bound a conservative parallel runner needs to compute
    /// the next global barrier tick (`min` over shards, plus lookahead).
    ///
    /// Peeking advances the internal wheel cursor up to the returned
    /// deadline (never past it, and never past the clock when the queue is
    /// empty), exactly as [`Engine::run_until`] would on its way there.
    /// Scheduling *below* a peeked cursor afterwards is still legal — the
    /// wheel rewinds and re-seats its pending keys — which is exactly
    /// what a sharded runner does when the global barrier tick (minimum
    /// over all shards, plus lookahead) undercuts this shard's own next
    /// deadline and a cross-shard delivery is injected there.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut core = self.inner.core.borrow_mut();
        let key = core.peek_due(u64::MAX)?;
        Some(SimTime::from_micros(core.slots[key.idx as usize].at))
    }

    /// Record one `engine.drain` span covering a run-loop invocation. Kept
    /// out of `step` so the per-event hot path stays uninstrumented.
    fn drain_span(&self, start: SimTime, executed_before: u64) {
        let tel = &self.inner.telemetry;
        if !tel.enabled() {
            return;
        }
        let events = self.executed() - executed_before;
        if events == 0 {
            return;
        }
        // Throughput counter for scale runs: one add per drain, so the
        // per-event hot path stays untouched.
        tel.count("engine.events_drained", events);
        tel.span(
            start,
            self.now() - start,
            Layer::Netsim,
            "engine.drain",
            |e| {
                e.u64("events", events);
            },
        );
    }

    /// Run for `span` of simulated time from now.
    pub fn run_for(&self, span: SimDuration) {
        let deadline = self.now() + span;
        self.run_until(deadline);
    }
}

/// A reusable timer: one slab slot, one boxed callback, armed and re-armed
/// any number of times without re-boxing the closure per tick.
///
/// This is the primitive behind every steady-state repeat tick in the stack
/// (media-source pacing, retransmission timeouts, QoS monitor periods,
/// orchestration intervals). Re-arming implicitly drops the previous
/// deadline in O(1); dropping the handle frees the slot and stales any
/// in-flight deadline, even from inside the timer's own callback.
pub struct PeriodicTimer {
    engine: Engine,
    idx: u32,
    gen: u32,
}

impl PeriodicTimer {
    /// Allocate a timer slot holding `action`. The timer starts disarmed
    /// and consumes no sequence number until first armed, so creating
    /// timers does not perturb event ordering.
    pub fn new(engine: &Engine, action: impl FnMut(&Engine) + 'static) -> PeriodicTimer {
        let mut core = engine.inner.core.borrow_mut();
        let idx = core.alloc();
        let slot = &mut core.slots[idx as usize];
        let gen = slot.gen;
        slot.stored = Stored::Repeat(Box::new(action));
        PeriodicTimer {
            engine: engine.clone(),
            idx,
            gen,
        }
    }

    /// Arm (or re-arm) the timer to fire once at absolute time `at`.
    pub fn arm_at(&self, at: SimTime) {
        self.arm_inner(at, None);
    }

    /// Arm (or re-arm) the timer to fire once after `delay`.
    pub fn arm_in(&self, delay: SimDuration) {
        self.arm_inner(self.engine.now() + delay, None);
    }

    /// Arm the timer to fire at `first` and then every `period` after each
    /// firing, until [`PeriodicTimer::disarm`]. The latest arm call defines
    /// the mode: an `arm_at`/`arm_in` (including from inside the callback,
    /// where it takes precedence over the auto-rearm) makes the timer
    /// one-shot again.
    pub fn arm_every(&self, first: SimTime, period: SimDuration) {
        self.arm_inner(first, Some(period.as_micros()));
    }

    fn arm_inner(&self, at: SimTime, period: Option<u64>) {
        assert!(
            at >= self.engine.now(),
            "cannot schedule into the past: {at} < {}",
            self.engine.now()
        );
        let seq = self.engine.next_seq();
        let mut core = self.engine.inner.core.borrow_mut();
        debug_assert_eq!(
            core.slots[self.idx as usize].gen, self.gen,
            "periodic timer slot reused while the handle is alive"
        );
        core.slots[self.idx as usize].period = period;
        let now = self.engine.now().as_micros();
        core.arm(self.idx, at.as_micros(), seq, now);
    }

    /// Drop the pending deadline (and any auto-rearm period) in O(1).
    /// Disarming an unarmed timer is a no-op; the callback is retained for
    /// the next arm.
    pub fn disarm(&self) {
        let mut core = self.engine.inner.core.borrow_mut();
        core.slots[self.idx as usize].period = None;
        core.unschedule(self.idx);
    }

    /// Whether the timer currently has a pending deadline.
    pub fn is_armed(&self) -> bool {
        self.engine.inner.core.borrow().slots[self.idx as usize].scheduled
    }
}

impl Drop for PeriodicTimer {
    fn drop(&mut self) {
        let mut core = self.engine.inner.core.borrow_mut();
        // Safe even mid-fire: the generation bump makes the post-callback
        // put-back drop the action instead of resurrecting the slot.
        core.unschedule(self.idx);
        core.release(self.idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (t, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = log.clone();
            e.schedule_at(SimTime::from_micros(t), move |_| log.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(e.now(), SimTime::from_micros(30));
        assert_eq!(e.executed(), 3);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..10 {
            let log = log.clone();
            e.schedule_at(SimTime::from_micros(5), move |_| log.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn actions_can_schedule_more_events() {
        let e = Engine::new();
        let count = Rc::new(Cell::new(0u32));
        fn tick(e: &Engine, count: Rc<Cell<u32>>) {
            let n = count.get() + 1;
            count.set(n);
            if n < 5 {
                let c = count.clone();
                e.schedule_in(SimDuration::from_millis(1), move |e| tick(e, c));
            }
        }
        let c = count.clone();
        e.schedule_at(SimTime::ZERO, move |e| tick(e, c));
        e.run();
        assert_eq!(count.get(), 5);
        assert_eq!(e.now(), SimTime::from_millis(4));
    }

    #[test]
    fn cancel_prevents_execution() {
        let e = Engine::new();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let id = e.schedule_in(SimDuration::from_millis(1), move |_| f.set(true));
        e.cancel(id);
        e.run();
        assert!(!fired.get());
        // Double-cancel and cancel-after-run are harmless.
        e.cancel(id);
    }

    #[test]
    fn run_until_leaves_later_events_and_advances_clock() {
        let e = Engine::new();
        let fired = Rc::new(Cell::new(0));
        for t in [1u64, 2, 3, 10] {
            let f = fired.clone();
            e.schedule_at(SimTime::from_secs(t), move |_| {
                f.set(f.get() + 1);
            });
        }
        e.run_until(SimTime::from_secs(5));
        assert_eq!(fired.get(), 3);
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert_eq!(e.pending(), 1);
        e.run();
        assert_eq!(fired.get(), 4);
    }

    #[test]
    fn run_until_with_cancelled_head() {
        let e = Engine::new();
        let fired = Rc::new(Cell::new(false));
        let id = e.schedule_at(SimTime::from_secs(1), |_| {});
        let f = fired.clone();
        e.schedule_at(SimTime::from_secs(2), move |_| f.set(true));
        e.cancel(id);
        e.run_until(SimTime::from_secs(3));
        assert!(fired.get());
        assert_eq!(e.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), |_| {});
        e.run();
        e.schedule_at(SimTime::from_millis(1), |_| {});
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_runaway() {
        let e = Engine::new();
        e.set_event_limit(100);
        fn forever(e: &Engine) {
            e.schedule_in(SimDuration::from_micros(1), forever);
        }
        e.schedule_at(SimTime::ZERO, forever);
        e.run();
    }

    #[test]
    fn run_for_is_relative() {
        let e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), |_| {});
        e.run();
        e.run_for(SimDuration::from_secs(2));
        assert_eq!(e.now(), SimTime::from_secs(3));
    }

    #[test]
    fn pending_counts_only_live_events() {
        let e = Engine::new();
        let a = e.schedule_at(SimTime::from_secs(1), |_| {});
        let _b = e.schedule_at(SimTime::from_secs(2), |_| {});
        assert_eq!(e.pending(), 2);
        e.cancel(a);
        assert_eq!(e.pending(), 1);
        e.run();
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn stale_id_after_slot_reuse_is_a_no_op() {
        let e = Engine::new();
        let first = e.schedule_at(SimTime::from_micros(1), |_| {});
        e.run(); // fires; the slot goes back on the free list
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        // Reuses the same slot under a new generation.
        let _second = e.schedule_at(SimTime::from_micros(2), move |_| f.set(true));
        e.cancel(first); // stale: must not touch the new occupant
        e.run();
        assert!(fired.get());
    }

    #[test]
    fn cancel_after_fire_then_reschedule_many_times() {
        // The tombstone-leak regression: cancelling after the fire used to
        // leave an entry behind forever. Now it is a pure no-op and slots
        // recycle; `pending` stays exact throughout.
        let e = Engine::new();
        for i in 0..1000u64 {
            let id = e.schedule_at(SimTime::from_micros(i), |_| {});
            e.run_until(SimTime::from_micros(i));
            e.cancel(id); // already fired
            assert_eq!(e.pending(), 0);
        }
        assert_eq!(e.executed(), 1000);
    }

    #[test]
    fn far_future_events_cross_the_wheel_span() {
        // 2^36 µs ≈ 19.1h is the wheel span; go far past it, mixed with
        // near events, and check total order.
        let e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let days = 3 * 24 * 3600; // seconds
        for (t, tag) in [
            (SimTime::from_secs(days), 'z'),
            (SimTime::from_micros(5), 'a'),
            (SimTime::from_secs(days), 'y'), // same far instant, FIFO after 'z'
            (SimTime::from_secs(100_000), 'm'),
        ] {
            let log = log.clone();
            e.schedule_at(t, move |_| log.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*log.borrow(), vec!['a', 'm', 'z', 'y']);
        assert_eq!(e.now(), SimTime::from_secs(days));
    }

    #[test]
    fn run_until_partway_through_far_future() {
        let e = Engine::new();
        let fired = Rc::new(Cell::new(0u32));
        for secs in [1u64, 100_000, 200_000] {
            let f = fired.clone();
            e.schedule_at(SimTime::from_secs(secs), move |_| f.set(f.get() + 1));
        }
        e.run_until(SimTime::from_secs(150_000));
        assert_eq!(fired.get(), 2);
        assert_eq!(e.pending(), 1);
        e.run();
        assert_eq!(fired.get(), 3);
    }

    #[test]
    fn periodic_timer_fires_on_each_arm() {
        let e = Engine::new();
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        let t = PeriodicTimer::new(&e, move |_| c.set(c.get() + 1));
        assert!(!t.is_armed());
        t.arm_at(SimTime::from_micros(10));
        assert!(t.is_armed());
        e.run();
        assert_eq!(count.get(), 1);
        assert!(!t.is_armed());
        t.arm_in(SimDuration::from_micros(5));
        e.run();
        assert_eq!(count.get(), 2);
        assert_eq!(e.now(), SimTime::from_micros(15));
    }

    #[test]
    fn periodic_timer_rearm_replaces_pending_deadline() {
        let e = Engine::new();
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        let t = PeriodicTimer::new(&e, move |_| c.set(c.get() + 1));
        t.arm_at(SimTime::from_micros(10));
        t.arm_at(SimTime::from_micros(50)); // pushes the deadline out
        e.run();
        assert_eq!(count.get(), 1);
        assert_eq!(e.now(), SimTime::from_micros(50));
    }

    #[test]
    fn periodic_timer_disarm_and_drop() {
        let e = Engine::new();
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        let t = PeriodicTimer::new(&e, move |_| c.set(c.get() + 1));
        t.arm_at(SimTime::from_micros(10));
        t.disarm();
        assert_eq!(e.pending(), 0);
        e.run();
        assert_eq!(count.get(), 0);
        t.arm_at(SimTime::from_micros(20));
        drop(t); // dropping the handle stales the pending deadline
        e.run();
        assert_eq!(count.get(), 0);
    }

    #[test]
    fn periodic_timer_arm_every_repeats_until_disarm() {
        let e = Engine::new();
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        let t = PeriodicTimer::new(&e, move |_| c.set(c.get() + 1));
        t.arm_every(SimTime::from_micros(10), SimDuration::from_micros(10));
        e.run_until(SimTime::from_micros(55));
        assert_eq!(count.get(), 5); // fired at 10, 20, 30, 40, 50
        assert!(t.is_armed());
        t.disarm();
        e.run_until(SimTime::from_micros(100));
        assert_eq!(count.get(), 5);
    }

    #[test]
    fn periodic_timer_callback_rearm_overrides_auto_rearm() {
        let e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let timer: Rc<RefCell<Option<PeriodicTimer>>> = Rc::new(RefCell::new(None));
        let l = log.clone();
        let th = timer.clone();
        let t = PeriodicTimer::new(&e, move |e| {
            l.borrow_mut().push(e.now().as_micros());
            if e.now().as_micros() < 30 {
                // Explicit re-arm with a different cadence than the period.
                th.borrow()
                    .as_ref()
                    .unwrap()
                    .arm_in(SimDuration::from_micros(7));
            }
        });
        t.arm_every(SimTime::from_micros(10), SimDuration::from_micros(100));
        *timer.borrow_mut() = Some(t);
        e.run_until(SimTime::from_micros(40));
        assert_eq!(*log.borrow(), vec![10, 17, 24, 31]);
        // The one-shot re-arms cleared the auto-period (the latest arm call
        // defines the mode), so after 31 the timer stays quiet.
        e.run_until(SimTime::from_micros(200));
        assert_eq!(*log.borrow(), vec![10, 17, 24, 31]);
        assert!(!timer.borrow().as_ref().unwrap().is_armed());
    }

    #[test]
    fn periodic_timer_dropped_inside_own_callback() {
        let e = Engine::new();
        let holder: Rc<RefCell<Option<PeriodicTimer>>> = Rc::new(RefCell::new(None));
        let count = Rc::new(Cell::new(0u32));
        let h = holder.clone();
        let c = count.clone();
        let t = PeriodicTimer::new(&e, move |_| {
            c.set(c.get() + 1);
            *h.borrow_mut() = None; // drop ourselves mid-fire
        });
        t.arm_every(SimTime::from_micros(10), SimDuration::from_micros(10));
        *holder.borrow_mut() = Some(t);
        e.run_until(SimTime::from_micros(100));
        assert_eq!(count.get(), 1); // no auto-rearm after self-drop
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn same_instant_mixed_sources_fire_in_seq_order() {
        // Events reaching time t by different routes (direct schedule,
        // schedule-from-callback, periodic arm) still honor global FIFO.
        let e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let timer = {
            let l = log.clone();
            PeriodicTimer::new(&e, move |_| l.borrow_mut().push("timer"))
        };
        e.schedule_at(SimTime::from_micros(10), move |e| {
            l.borrow_mut().push("first");
            let l2 = l.clone();
            e.schedule_at(SimTime::from_micros(10), move |_| {
                l2.borrow_mut().push("nested");
            });
        });
        timer.arm_at(SimTime::from_micros(10));
        let l3 = log.clone();
        e.schedule_at(SimTime::from_micros(10), move |_| {
            l3.borrow_mut().push("last")
        });
        e.run();
        assert_eq!(*log.borrow(), vec!["first", "timer", "last", "nested"]);
    }

    #[test]
    fn next_deadline_peeks_without_firing() {
        let e = Engine::new();
        assert_eq!(e.next_deadline(), None);
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        e.schedule_at(SimTime::from_millis(5), move |_| f.set(true));
        e.schedule_at(SimTime::from_millis(9), |_| {});
        assert_eq!(e.next_deadline(), Some(SimTime::from_millis(5)));
        assert!(!fired.get());
        assert_eq!(e.pending(), 2);
        // Peeking repeatedly is stable, and running still fires everything.
        assert_eq!(e.next_deadline(), Some(SimTime::from_millis(5)));
        e.run();
        assert!(fired.get());
        assert_eq!(e.next_deadline(), None);
    }

    #[test]
    fn next_deadline_skips_cancelled_and_allows_barrier_cycle() {
        // The conservative-runner cycle: peek, run_until the window, then
        // schedule (inject) at-or-after the window end; repeat.
        let e = Engine::new();
        let id = e.schedule_at(SimTime::from_millis(1), |_| {});
        e.schedule_at(SimTime::from_millis(4), |_| {});
        e.cancel(id);
        assert_eq!(e.next_deadline(), Some(SimTime::from_millis(4)));
        e.run_until(SimTime::from_millis(6));
        assert_eq!(e.now(), SimTime::from_millis(6));
        // Inject exactly at the window end (a message whose deliver time
        // lands on the barrier tick) and at a later instant.
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        e.schedule_at(SimTime::from_millis(6), move |e| {
            l.borrow_mut().push(e.now().as_micros())
        });
        let l2 = log.clone();
        e.schedule_at(SimTime::from_millis(8), move |e| {
            l2.borrow_mut().push(e.now().as_micros())
        });
        assert_eq!(e.next_deadline(), Some(SimTime::from_millis(6)));
        e.run_until(SimTime::from_millis(8));
        assert_eq!(*log.borrow(), vec![6_000, 8_000]);
    }

    #[test]
    fn arming_below_a_peeked_cursor_rewinds_the_wheel() {
        // A shard whose own next deadline is far away peeks it (parking
        // the cursor there), then receives a cross-shard injection at a
        // much earlier barrier tick. The wheel must rewind and fire both
        // in order.
        let e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for at_ms in [5_000u64, 90_000] {
            let l = log.clone();
            e.schedule_at(SimTime::from_millis(at_ms), move |e| {
                l.borrow_mut().push(e.now().as_micros())
            });
        }
        assert_eq!(e.next_deadline(), Some(SimTime::from_millis(5_000)));
        // Injections below the peeked cursor, across wheel levels: one
        // close to it, one at the very next tick.
        for at_ms in [4_999u64, 1] {
            let l = log.clone();
            e.schedule_at(SimTime::from_millis(at_ms), move |e| {
                l.borrow_mut().push(e.now().as_micros())
            });
        }
        assert_eq!(e.next_deadline(), Some(SimTime::from_millis(1)));
        e.run();
        assert_eq!(*log.borrow(), vec![1_000, 4_999_000, 5_000_000, 90_000_000]);
    }

    #[test]
    fn rewound_cursor_after_stale_drain() {
        // Cancel everything so the cursor chases stale buckets past `now`,
        // then schedule again at an earlier-than-cursor deadline.
        let e = Engine::new();
        let id = e.schedule_at(SimTime::from_secs(100), |_| {});
        e.run_until(SimTime::from_secs(1));
        e.cancel(id);
        assert!(!e.step()); // drains stale state, may advance the cursor
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        e.schedule_at(SimTime::from_secs(2), move |_| f.set(true));
        e.run();
        assert!(fired.get());
        assert_eq!(e.now(), SimTime::from_secs(2));
    }
}
