//! Resource reservation with admission control.
//!
//! The paper assumes that "a network level resource reservation protocol
//! such as ST-II or SRP will need to be used to guarantee resources in
//! intermediate nodes" (§7), and that for CM VCs "resources must be
//! explicitly reserved" (§3.1). This module provides that substrate: a
//! per-link bandwidth ledger with admission control over a route. A
//! connection is admitted only if every link along its route still has the
//! requested bandwidth unreserved; otherwise the connection request fails
//! with `AdmissionDenied` and the already-admitted connections keep their
//! guarantees.

use crate::network::LinkId;
use cm_core::address::VcId;
use cm_core::time::Bandwidth;
use cm_core::FastMap;
use std::collections::HashMap;

/// Why admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// This link cannot supply the requested bandwidth on top of existing
    /// reservations.
    InsufficientBandwidth {
        /// The bottleneck link.
        link: LinkId,
        /// What remains unreserved there.
        available: Bandwidth,
        /// What was requested.
        requested: Bandwidth,
    },
    /// The VC already holds a reservation (renegotiate instead).
    AlreadyReserved,
}

#[derive(Debug, Clone)]
struct Record {
    route: Vec<LinkId>,
    bandwidth: Bandwidth,
}

/// The bandwidth ledger.
///
/// `utilisation_percent` caps how much of each link's raw capacity is
/// reservable (default 100); operators leave headroom for control traffic
/// by lowering it.
#[derive(Debug)]
pub struct ReservationTable {
    reserved: FastMap<LinkId, Bandwidth>,
    records: FastMap<VcId, Record>,
    utilisation_percent: u64,
}

impl Default for ReservationTable {
    fn default() -> Self {
        ReservationTable::new(100)
    }
}

impl ReservationTable {
    /// A ledger allowing reservation of `utilisation_percent`% of each
    /// link's capacity.
    pub fn new(utilisation_percent: u64) -> ReservationTable {
        assert!(
            (1..=100).contains(&utilisation_percent),
            "utilisation must be 1..=100"
        );
        ReservationTable {
            reserved: FastMap::default(),
            records: FastMap::default(),
            utilisation_percent,
        }
    }

    /// Bandwidth currently reserved on `link`.
    pub fn reserved_on(&self, link: LinkId) -> Bandwidth {
        self.reserved.get(&link).copied().unwrap_or(Bandwidth::ZERO)
    }

    /// Bandwidth still reservable on `link` given its raw `capacity`.
    pub fn available_on(&self, link: LinkId, capacity: Bandwidth) -> Bandwidth {
        let cap = Bandwidth::bps(capacity.as_bps() * self.utilisation_percent / 100);
        cap.saturating_sub(self.reserved_on(link))
    }

    /// Admit `vc` over `route` (link id + raw capacity pairs) at
    /// `bandwidth`. All-or-nothing: on failure no link is charged.
    pub fn admit(
        &mut self,
        vc: VcId,
        route: &[(LinkId, Bandwidth)],
        bandwidth: Bandwidth,
    ) -> Result<(), AdmissionError> {
        if self.records.contains_key(&vc) {
            return Err(AdmissionError::AlreadyReserved);
        }
        for &(link, capacity) in route {
            let available = self.available_on(link, capacity);
            if bandwidth > available {
                return Err(AdmissionError::InsufficientBandwidth {
                    link,
                    available,
                    requested: bandwidth,
                });
            }
        }
        for &(link, _) in route {
            let r = self.reserved.entry(link).or_insert(Bandwidth::ZERO);
            *r = *r + bandwidth;
        }
        self.records.insert(
            vc,
            Record {
                route: route.iter().map(|&(l, _)| l).collect(),
                bandwidth,
            },
        );
        Ok(())
    }

    /// Incrementally admit additional `links` (id + raw capacity pairs)
    /// under `vc`, creating the record if absent — the multicast branch
    /// grafting operation: joining a receiver charges only the links its
    /// branch adds to the shared tree. All-or-nothing over the new links;
    /// links the record already holds must not be resubmitted. `bandwidth`
    /// must match the record's existing bandwidth (one rate per tree).
    pub fn admit_links(
        &mut self,
        vc: VcId,
        links: &[(LinkId, Bandwidth)],
        bandwidth: Bandwidth,
    ) -> Result<(), AdmissionError> {
        if let Some(rec) = self.records.get(&vc) {
            assert_eq!(
                rec.bandwidth, bandwidth,
                "a shared tree reserves one bandwidth on every link"
            );
            debug_assert!(
                links.iter().all(|(l, _)| !rec.route.contains(l)),
                "link resubmitted to admit_links"
            );
        }
        for &(link, capacity) in links {
            let available = self.available_on(link, capacity);
            if bandwidth > available {
                return Err(AdmissionError::InsufficientBandwidth {
                    link,
                    available,
                    requested: bandwidth,
                });
            }
        }
        for &(link, _) in links {
            let r = self.reserved.entry(link).or_insert(Bandwidth::ZERO);
            *r = *r + bandwidth;
        }
        self.records
            .entry(vc)
            .or_insert(Record {
                route: Vec::new(),
                bandwidth,
            })
            .route
            .extend(links.iter().map(|&(l, _)| l));
        Ok(())
    }

    /// Release only `links` from `vc`'s reservation — the multicast branch
    /// pruning operation: a leaving receiver uncharges exactly the links
    /// its departure removed from the shared tree. Removes the record when
    /// its route becomes empty. No-op for links the record does not hold.
    pub fn release_links(&mut self, vc: VcId, links: &[LinkId]) {
        let Some(rec) = self.records.get_mut(&vc) else {
            return;
        };
        let bandwidth = rec.bandwidth;
        for link in links {
            let Some(pos) = rec.route.iter().position(|l| l == link) else {
                continue;
            };
            rec.route.swap_remove(pos);
            if let Some(r) = self.reserved.get_mut(link) {
                *r = r.saturating_sub(bandwidth);
            }
        }
        if rec.route.is_empty() {
            self.records.remove(&vc);
        }
    }

    /// Release the reservation held by `vc` (no-op if it holds none).
    pub fn release(&mut self, vc: VcId) {
        if let Some(rec) = self.records.remove(&vc) {
            for link in rec.route {
                if let Some(r) = self.reserved.get_mut(&link) {
                    *r = r.saturating_sub(rec.bandwidth);
                }
            }
        }
    }

    /// Adjust an existing reservation to `new_bandwidth` in place — the
    /// transport's QoS renegotiation (§4.1.3) maps to this. All-or-nothing;
    /// on failure the old reservation stands.
    pub fn renegotiate(
        &mut self,
        vc: VcId,
        capacities: &HashMap<LinkId, Bandwidth>,
        new_bandwidth: Bandwidth,
    ) -> Result<(), AdmissionError> {
        let rec = match self.records.get(&vc) {
            Some(r) => r.clone(),
            None => return Err(AdmissionError::AlreadyReserved),
        };
        if new_bandwidth > rec.bandwidth {
            let extra = new_bandwidth - rec.bandwidth;
            for link in &rec.route {
                let capacity = capacities.get(link).copied().unwrap_or(Bandwidth::ZERO);
                let available = self.available_on(*link, capacity);
                if extra > available {
                    return Err(AdmissionError::InsufficientBandwidth {
                        link: *link,
                        available,
                        requested: extra,
                    });
                }
            }
        }
        for link in &rec.route {
            let r = self
                .reserved
                .get_mut(link)
                .expect("reserved entry for admitted route");
            *r = r.saturating_sub(rec.bandwidth) + new_bandwidth;
        }
        self.records
            .get_mut(&vc)
            .expect("record just read")
            .bandwidth = new_bandwidth;
        Ok(())
    }

    /// The bandwidth `vc` holds, if any.
    pub fn bandwidth_of(&self, vc: VcId) -> Option<Bandwidth> {
        self.records.get(&vc).map(|r| r.bandwidth)
    }

    /// The links `vc`'s reservation currently charges, if any.
    pub fn route_of(&self, vc: VcId) -> Option<&[LinkId]> {
        self.records.get(&vc).map(|r| r.route.as_slice())
    }

    /// Whether `vc`'s reservation currently charges `link`. Lets the
    /// multicast refresh distinguish tree links that are still paid for
    /// from links whose reservation was revoked out from under the tree.
    pub fn holds(&self, vc: VcId, link: LinkId) -> bool {
        self.records
            .get(&vc)
            .is_some_and(|r| r.route.contains(&link))
    }

    /// Number of live reservations.
    pub fn count(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route2() -> Vec<(LinkId, Bandwidth)> {
        vec![
            (LinkId(0), Bandwidth::mbps(10)),
            (LinkId(1), Bandwidth::mbps(10)),
        ]
    }

    #[test]
    fn admit_and_release_roundtrip() {
        let mut t = ReservationTable::default();
        t.admit(VcId(1), &route2(), Bandwidth::mbps(4)).unwrap();
        assert_eq!(t.reserved_on(LinkId(0)), Bandwidth::mbps(4));
        assert_eq!(t.bandwidth_of(VcId(1)), Some(Bandwidth::mbps(4)));
        t.release(VcId(1));
        assert_eq!(t.reserved_on(LinkId(0)), Bandwidth::ZERO);
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn admission_denied_when_full() {
        let mut t = ReservationTable::default();
        t.admit(VcId(1), &route2(), Bandwidth::mbps(7)).unwrap();
        let err = t.admit(VcId(2), &route2(), Bandwidth::mbps(4)).unwrap_err();
        match err {
            AdmissionError::InsufficientBandwidth {
                link, available, ..
            } => {
                assert_eq!(link, LinkId(0));
                assert_eq!(available, Bandwidth::mbps(3));
            }
            other => panic!("{other:?}"),
        }
        // Failure charged nothing extra.
        assert_eq!(t.reserved_on(LinkId(0)), Bandwidth::mbps(7));
    }

    #[test]
    fn all_or_nothing_on_partial_route() {
        let mut t = ReservationTable::default();
        // Link 1 is nearly full; link 0 is empty.
        t.admit(
            VcId(1),
            &[(LinkId(1), Bandwidth::mbps(10))],
            Bandwidth::mbps(9),
        )
        .unwrap();
        let r = t.admit(VcId(2), &route2(), Bandwidth::mbps(2));
        assert!(r.is_err());
        assert_eq!(t.reserved_on(LinkId(0)), Bandwidth::ZERO);
    }

    #[test]
    fn duplicate_vc_rejected() {
        let mut t = ReservationTable::default();
        t.admit(VcId(1), &route2(), Bandwidth::mbps(1)).unwrap();
        assert_eq!(
            t.admit(VcId(1), &route2(), Bandwidth::mbps(1)),
            Err(AdmissionError::AlreadyReserved)
        );
    }

    #[test]
    fn utilisation_cap_leaves_headroom() {
        let mut t = ReservationTable::new(80);
        let r = t.admit(VcId(1), &route2(), Bandwidth::mbps(9));
        assert!(r.is_err());
        t.admit(VcId(2), &route2(), Bandwidth::mbps(8)).unwrap();
    }

    #[test]
    fn renegotiate_up_and_down() {
        let mut t = ReservationTable::default();
        let caps: HashMap<LinkId, Bandwidth> = route2().into_iter().collect();
        t.admit(VcId(1), &route2(), Bandwidth::mbps(4)).unwrap();
        // Up within capacity.
        t.renegotiate(VcId(1), &caps, Bandwidth::mbps(9)).unwrap();
        assert_eq!(t.reserved_on(LinkId(1)), Bandwidth::mbps(9));
        // Up beyond capacity fails, old reservation stands.
        assert!(t.renegotiate(VcId(1), &caps, Bandwidth::mbps(11)).is_err());
        assert_eq!(t.bandwidth_of(VcId(1)), Some(Bandwidth::mbps(9)));
        // Down always succeeds.
        t.renegotiate(VcId(1), &caps, Bandwidth::mbps(1)).unwrap();
        assert_eq!(t.reserved_on(LinkId(0)), Bandwidth::mbps(1));
    }

    #[test]
    fn release_unknown_vc_is_noop() {
        let mut t = ReservationTable::default();
        t.release(VcId(99));
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn incremental_admit_charges_only_new_links() {
        let mut t = ReservationTable::default();
        let cap = Bandwidth::mbps(10);
        t.admit_links(VcId(1), &[(LinkId(0), cap)], Bandwidth::mbps(3))
            .unwrap();
        assert_eq!(t.count(), 1);
        t.admit_links(
            VcId(1),
            &[(LinkId(1), cap), (LinkId(2), cap)],
            Bandwidth::mbps(3),
        )
        .unwrap();
        assert_eq!(t.count(), 1);
        for l in 0..3 {
            assert_eq!(t.reserved_on(LinkId(l)), Bandwidth::mbps(3));
        }
        // Pruning one branch uncharges exactly its links.
        t.release_links(VcId(1), &[LinkId(1), LinkId(2)]);
        assert_eq!(t.reserved_on(LinkId(0)), Bandwidth::mbps(3));
        assert_eq!(t.reserved_on(LinkId(1)), Bandwidth::ZERO);
        assert_eq!(t.count(), 1);
        // Pruning the last link removes the record entirely.
        t.release_links(VcId(1), &[LinkId(0)]);
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn incremental_admit_is_all_or_nothing() {
        let mut t = ReservationTable::default();
        let cap = Bandwidth::mbps(10);
        t.admit(VcId(7), &[(LinkId(1), cap)], Bandwidth::mbps(9))
            .unwrap();
        // Second link of the branch lacks bandwidth: nothing is charged.
        let r = t.admit_links(
            VcId(1),
            &[(LinkId(0), cap), (LinkId(1), cap)],
            Bandwidth::mbps(2),
        );
        assert!(r.is_err());
        assert_eq!(t.reserved_on(LinkId(0)), Bandwidth::ZERO);
        assert!(t.bandwidth_of(VcId(1)).is_none());
    }
}
