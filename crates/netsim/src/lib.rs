//! # netsim — deterministic discrete-event network substrate
//!
//! Stand-in for the Lancaster transputer-based "real-time high-speed
//! network emulator" (§2.1 of the SIGCOMM '92 paper). Everything above the
//! network — transport protocol, orchestration, platform, applications —
//! runs as closures on the [`engine::Engine`], a single-threaded,
//! deterministic event scheduler; the network itself models store-and-
//! forward nodes joined by simplex [`link::Link`]s with bandwidth,
//! propagation delay, jitter, loss and bit-error processes, plus the
//! ST-II-style [`reservation`] ledger the paper assumes (§7).
//!
//! Per-node skewed [`clock::NodeClock`]s reproduce the clock-drift
//! pathology (§3.6) that orchestration exists to correct.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod engine;
pub mod link;
pub mod multicast;
pub mod network;
pub mod packet;
pub mod reservation;
pub mod topology;

pub use clock::NodeClock;
pub use engine::{Engine, EventId, PeriodicTimer};
pub use link::{JitterModel, LinkCounters, LinkParams};
pub use multicast::{GroupId, GroupTree};
pub use network::{GroupRefresh, LinkId, Network, NetworkCounters, NodeHandler};
pub use packet::{FlightKind, Packet, PacketClass, PacketFlight, PacketTrace};
pub use reservation::{AdmissionError, ReservationTable};
pub use topology::{line, two_node, Testbed, TestbedConfig};
