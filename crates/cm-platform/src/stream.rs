//! The Stream abstraction (paper §2.2).
//!
//! Streams are "the primary extension … made to the basic ANSA model. They
//! represent underlying CM connections but … appear as ADT services with
//! first class status". A [`Stream`] is unidirectional, carries QoS
//! operations *in media-specific terms* (profiles rather than raw transport
//! parameters), and hides the transport service interface: establishment
//! runs the full three-party connect underneath, `set_quality` runs a QoS
//! renegotiation, and 1:N fan-out builds one simplex VC per sink (§3.8's
//! CM multicast is "a simple 1:N topology").

use crate::platform::Platform;
use cm_core::address::{AddressTriple, NetAddr, TransportAddr, VcId};
use cm_core::error::DisconnectReason;
use cm_core::media::MediaProfile;
use cm_core::qos::QosParams;
use cm_core::service_class::ServiceClass;
use cm_core::time::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

/// Establishment state of a stream branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BranchState {
    /// Handshake running.
    Connecting,
    /// Open with the negotiated QoS.
    Open(QosParams),
    /// Refused or released.
    Failed(DisconnectReason),
}

/// One simplex branch of a stream (source → one sink).
pub struct Branch {
    /// The underlying VC.
    pub vc: VcId,
    /// The sink node.
    pub sink: NetAddr,
    /// Establishment state.
    pub state: RefCell<BranchState>,
}

/// A first-class, unidirectional CM stream: one source endpoint fanning
/// out to one or more sinks.
pub struct Stream {
    platform: Platform,
    /// The media profile the stream carries.
    pub profile: RefCell<MediaProfile>,
    /// The source endpoint node.
    pub source: NetAddr,
    /// Per-sink branches.
    pub branches: Vec<Rc<Branch>>,
    class: ServiceClass,
}

impl Stream {
    pub(crate) fn establish(
        platform: &Platform,
        source: NetAddr,
        sinks: &[NetAddr],
        profile: MediaProfile,
        class: ServiceClass,
    ) -> Rc<Stream> {
        assert!(!sinks.is_empty(), "a stream needs at least one sink");
        let mut branches = Vec::new();
        for &sink in sinks {
            let src_addr = TransportAddr {
                node: source,
                tsap: platform.fresh_tsap(),
            };
            let dst_addr = TransportAddr {
                node: sink,
                tsap: platform.fresh_tsap(),
            };
            platform.bind_endpoint(src_addr);
            platform.bind_endpoint(dst_addr);
            let triple = AddressTriple::conventional(src_addr, dst_addr);
            let vc = platform
                .service(source)
                .t_connect_request(triple, class, profile.requirement())
                .expect("stream connect request");
            let branch = Rc::new(Branch {
                vc,
                sink,
                state: RefCell::new(BranchState::Connecting),
            });
            platform.watch_branch(source, branch.clone());
            branches.push(branch);
        }
        Rc::new(Stream {
            platform: platform.clone(),
            profile: RefCell::new(profile),
            source,
            branches,
            class,
        })
    }

    /// The service class in use.
    pub fn class(&self) -> ServiceClass {
        self.class
    }

    /// True when every branch is open.
    pub fn is_open(&self) -> bool {
        self.branches
            .iter()
            .all(|b| matches!(&*b.state.borrow(), BranchState::Open(_)))
    }

    /// The VCs underlying this stream (what the HLO orchestrates).
    pub fn vcs(&self) -> Vec<VcId> {
        self.branches.iter().map(|b| b.vc).collect()
    }

    /// The primary (first) branch's VC.
    pub fn vc(&self) -> VcId {
        self.branches[0].vc
    }

    /// Change the stream's quality in media terms (§3.3's "upgrading from
    /// monochrome to colour video, or telephone quality to CD quality
    /// audio"): renegotiates the QoS of every branch toward the new
    /// profile's tolerance. Outcomes arrive through the transport user's
    /// renegotiation callbacks; the stream's profile is updated eagerly.
    pub fn set_quality(&self, new_profile: MediaProfile) {
        for b in &self.branches {
            let _ = self
                .platform
                .service(self.source)
                .t_renegotiate_request(b.vc, new_profile.tolerance(75));
        }
        *self.profile.borrow_mut() = new_profile;
    }

    /// Release every branch.
    pub fn release(&self) {
        for b in &self.branches {
            let _ = self
                .platform
                .service(self.source)
                .t_disconnect_request(b.vc);
        }
    }

    /// Drive the platform until the stream settles (open or failed);
    /// panics if it is still connecting after `timeout`.
    pub fn await_open(&self, timeout: SimDuration) {
        let engine = self.platform.engine();
        let deadline = engine.now() + timeout;
        while engine.now() < deadline && !self.settled() {
            engine.run_for(SimDuration::from_millis(10));
        }
        assert!(self.settled(), "stream did not settle within {timeout}");
    }

    fn settled(&self) -> bool {
        self.branches
            .iter()
            .all(|b| !matches!(&*b.state.borrow(), BranchState::Connecting))
    }
}
