//! Delay-bounded invocation — the platform's RPC (paper §2.2).
//!
//! "Remote interaction is modelled as the invocation of named operations
//! in abstract data type interfaces … implemented by means of an RPC
//! protocol known as REX extended to provide the delay bounded
//! communication required for the real-time control of multimedia
//! applications." Invocations ride control-class datagrams; each call
//! carries a deadline and fails with [`InvokeError::DeadlineExceeded`] if
//! the reply does not arrive in time.

use cm_core::address::{TransportAddr, Tsap};
use cm_core::time::SimDuration;
use cm_transport::{TransportService, TransportUser};
use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Why an invocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeError {
    /// No reply within the deadline (the REX delay bound).
    DeadlineExceeded,
    /// The target interface rejected the operation name.
    NoSuchOperation,
}

/// Server-side interface: an ADT object exporting named operations.
pub trait AdtInterface {
    /// Execute `op` with `arg`, returning the reply value or `None` for
    /// an unknown operation.
    fn invoke(&self, op: &str, arg: Rc<dyn Any>) -> Option<Rc<dyn Any>>;
}

struct RpcRequest {
    id: u64,
    op: String,
    arg: Rc<dyn Any>,
    reply_to: TransportAddr,
}

struct RpcReply {
    id: u64,
    result: Result<Rc<dyn Any>, InvokeError>,
}

type PendingCb = Box<dyn FnOnce(Result<Rc<dyn Any>, InvokeError>)>;

struct InvokerState {
    next_id: u64,
    pending: HashMap<u64, PendingCb>,
    exported: Option<Rc<dyn AdtInterface>>,
}

struct InvokerInner {
    svc: TransportService,
    tsap: Tsap,
    state: RefCell<InvokerState>,
}

/// A per-endpoint invoker: both client stub and server skeleton.
#[derive(Clone)]
pub struct Invoker {
    inner: Rc<InvokerInner>,
}

struct InvokerUser(Invoker);

impl TransportUser for InvokerUser {
    fn t_datagram_indication(
        &self,
        _svc: &TransportService,
        _from: TransportAddr,
        payload: Rc<dyn Any>,
    ) {
        if let Some(req) = payload.downcast_ref::<Rc<RpcRequest>>() {
            self.0.on_request(req.clone());
        } else if let Some(rep) = payload.downcast_ref::<Rc<RpcReply>>() {
            self.0.on_reply(rep.clone());
        }
    }
}

impl Invoker {
    /// Bind an invoker to `tsap` on the node served by `svc`.
    pub fn bind(svc: TransportService, tsap: Tsap) -> Invoker {
        let inv = Invoker {
            inner: Rc::new(InvokerInner {
                svc: svc.clone(),
                tsap,
                state: RefCell::new(InvokerState {
                    next_id: 0,
                    pending: HashMap::new(),
                    exported: None,
                }),
            }),
        };
        svc.bind(tsap, Rc::new(InvokerUser(inv.clone())))
            .expect("invoker TSAP busy");
        inv
    }

    /// This invoker's address (register it with the trader).
    pub fn address(&self) -> TransportAddr {
        TransportAddr {
            node: self.inner.svc.node(),
            tsap: self.inner.tsap,
        }
    }

    /// Export an ADT interface for incoming invocations.
    pub fn export(&self, iface: Rc<dyn AdtInterface>) {
        self.inner.state.borrow_mut().exported = Some(iface);
    }

    /// Invoke `op(arg)` on the interface at `to`, with a reply deadline.
    pub fn invoke(
        &self,
        to: TransportAddr,
        op: &str,
        arg: Rc<dyn Any>,
        deadline: SimDuration,
        done: impl FnOnce(Result<Rc<dyn Any>, InvokeError>) + 'static,
    ) {
        let id = {
            let mut st = self.inner.state.borrow_mut();
            let id = st.next_id;
            st.next_id += 1;
            st.pending.insert(id, Box::new(done));
            id
        };
        let req = Rc::new(RpcRequest {
            id,
            op: op.to_string(),
            arg,
            reply_to: self.address(),
        });
        self.inner
            .svc
            .send_datagram(self.inner.tsap, to, Rc::new(req), 128);
        // Arm the delay bound.
        let me = self.clone();
        self.inner
            .svc
            .network()
            .engine()
            .schedule_in(deadline, move |_| {
                let cb = me.inner.state.borrow_mut().pending.remove(&id);
                if let Some(cb) = cb {
                    cb(Err(InvokeError::DeadlineExceeded));
                }
            });
    }

    fn on_request(&self, req: Rc<RpcRequest>) {
        let iface = self.inner.state.borrow().exported.clone();
        let result = match iface {
            Some(iface) => iface
                .invoke(&req.op, req.arg.clone())
                .ok_or(InvokeError::NoSuchOperation),
            None => Err(InvokeError::NoSuchOperation),
        };
        let reply = Rc::new(RpcReply { id: req.id, result });
        self.inner
            .svc
            .send_datagram(self.inner.tsap, req.reply_to, Rc::new(reply), 128);
    }

    fn on_reply(&self, rep: Rc<RpcReply>) {
        let cb = self.inner.state.borrow_mut().pending.remove(&rep.id);
        if let Some(cb) = cb {
            cb(rep.result.clone());
        }
    }
}
