//! Multimedia device objects (paper §2.1–2.2).
//!
//! The Lancaster platform managed "all CM sources and sinks" behind ADT
//! interfaces: storage servers holding clips, cameras and microphones
//! (live sources), video monitors and speakers (playout sinks). These
//! wrappers bind the cm-media actors to platform streams and register the
//! orchestration app handlers, so application code reads like the paper's
//! scenarios.

use crate::platform::Platform;
use crate::stream::Stream;
use cm_core::address::NetAddr;
use cm_core::media::MediaProfile;
use cm_core::time::Rate;
use cm_media::{LiveSource, PlayoutSink, SinkDriver, SourceDriver, StoredClip, StoredSource};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A storage server: a node holding named stored clips (§2.1's "PC based
/// storage server").
pub struct StorageServer {
    platform: Platform,
    /// The server's node.
    pub node: NetAddr,
    clips: RefCell<HashMap<String, StoredClip>>,
}

impl StorageServer {
    /// A storage server on `node`.
    pub fn new(platform: &Platform, node: NetAddr) -> StorageServer {
        StorageServer {
            platform: platform.clone(),
            node,
            clips: RefCell::new(HashMap::new()),
        }
    }

    /// Store a clip under `name`.
    pub fn store(&self, name: &str, clip: StoredClip) {
        self.clips.borrow_mut().insert(name.to_string(), clip);
    }

    /// The profile-appropriate rate of a stored clip.
    pub fn clip_rate(&self, name: &str) -> Option<Rate> {
        self.clips.borrow().get(name).map(|c| c.rate)
    }

    /// Attach clip `name` as the source of `stream`'s first branch:
    /// creates the source actor and registers it with this node's LLO for
    /// orchestration. Panics if the clip is unknown.
    pub fn play(&self, name: &str, stream: &Stream) -> Rc<StoredSource> {
        let clip = self
            .clips
            .borrow()
            .get(name)
            .cloned()
            .unwrap_or_else(|| panic!("no clip named {name}"));
        let vc = stream.vc();
        let source = StoredSource::new(self.platform.service(self.node), vc, clip.reader());
        SourceDriver::register(&self.platform.llo(self.node), vc, &source);
        source
    }
}

/// A video monitor / speaker: a playout device on a workstation.
pub struct MonitorDevice {
    platform: Platform,
    /// The workstation node.
    pub node: NetAddr,
}

impl MonitorDevice {
    /// A monitor on `node`.
    pub fn new(platform: &Platform, node: NetAddr) -> MonitorDevice {
        MonitorDevice {
            platform: platform.clone(),
            node,
        }
    }

    /// Attach to the branch of `stream` that terminates at this node,
    /// presenting at the stream profile's rate. Returns the playout actor.
    pub fn attach(&self, stream: &Stream, profile: &MediaProfile) -> Rc<PlayoutSink> {
        let branch = stream
            .branches
            .iter()
            .find(|b| b.sink == self.node)
            .expect("stream has no branch to this monitor's node");
        let sink = PlayoutSink::new(
            self.platform.service(self.node),
            branch.vc,
            profile.osdu_rate,
        );
        SinkDriver::register(&self.platform.llo(self.node), branch.vc, &sink);
        sink
    }
}

/// A camera or microphone: a live capture device (§3.6: live media
/// free-runs; only latency compatibility matters).
pub struct CaptureDevice {
    platform: Platform,
    /// The node hosting the device.
    pub node: NetAddr,
    /// Capture rate (frames or sample blocks per second).
    pub rate: Rate,
    /// Captured unit size in bytes.
    pub unit_size: usize,
}

impl CaptureDevice {
    /// A camera producing `profile`-shaped units on `node`.
    pub fn camera(platform: &Platform, node: NetAddr, profile: &MediaProfile) -> CaptureDevice {
        CaptureDevice {
            platform: platform.clone(),
            node,
            rate: profile.osdu_rate,
            unit_size: profile.nominal_osdu_size,
        }
    }

    /// Switch the device on, feeding `stream`'s first branch. Returns the
    /// live source actor.
    pub fn switch_on(&self, stream: &Stream) -> Rc<LiveSource> {
        let src = LiveSource::new(
            self.platform.service(self.node),
            stream.vc(),
            self.rate,
            self.unit_size,
        );
        src.switch_on();
        src
    }
}
