//! Interface trading — location-independent binding (paper §2.2).
//!
//! ANSA applications access services "in a location independent fashion":
//! an exporter registers a named interface with the trader, an importer
//! resolves the name to an interface reference (here a transport address)
//! and invokes through it. The trader itself is a domain-wide registry —
//! the simulation equivalent of the ANSA trader process.

use cm_core::address::TransportAddr;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A domain-wide name → interface-reference registry.
///
/// Backed by an ordered map so enumeration ([`Trader::list`]) is
/// deterministic — registry iteration order must never feed simulation
/// decisions differently across runs.
#[derive(Clone, Default)]
pub struct Trader {
    entries: Rc<RefCell<BTreeMap<String, TransportAddr>>>,
}

impl Trader {
    /// An empty trader.
    pub fn new() -> Trader {
        Trader::default()
    }

    /// Export an interface under `name` (replacing any previous export).
    pub fn export(&self, name: &str, addr: TransportAddr) {
        self.entries.borrow_mut().insert(name.to_string(), addr);
    }

    /// Withdraw an export.
    pub fn withdraw(&self, name: &str) {
        self.entries.borrow_mut().remove(name);
    }

    /// Resolve `name` to an interface reference.
    pub fn import(&self, name: &str) -> Option<TransportAddr> {
        self.entries.borrow().get(name).copied()
    }

    /// List exports matching a prefix (service browsing), in name order.
    pub fn list(&self, prefix: &str) -> Vec<(String, TransportAddr)> {
        self.entries
            .borrow()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::address::{NetAddr, Tsap};

    fn addr(n: u32, t: u16) -> TransportAddr {
        TransportAddr {
            node: NetAddr(n),
            tsap: Tsap(t),
        }
    }

    #[test]
    fn export_import_roundtrip() {
        let t = Trader::new();
        t.export("lab/microscope-1/video", addr(1, 10));
        assert_eq!(t.import("lab/microscope-1/video"), Some(addr(1, 10)));
        assert_eq!(t.import("lab/microscope-2/video"), None);
    }

    #[test]
    fn withdraw_removes() {
        let t = Trader::new();
        t.export("svc", addr(1, 1));
        t.withdraw("svc");
        assert_eq!(t.import("svc"), None);
    }

    #[test]
    fn list_by_prefix() {
        let t = Trader::new();
        t.export("lab/mic-1", addr(1, 1));
        t.export("lab/mic-2", addr(2, 1));
        t.export("office/phone", addr(3, 1));
        let mut labs = t.list("lab/");
        labs.sort();
        assert_eq!(labs.len(), 2);
        assert_eq!(labs[0].0, "lab/mic-1");
    }

    #[test]
    fn re_export_replaces() {
        let t = Trader::new();
        t.export("svc", addr(1, 1));
        t.export("svc", addr(2, 2));
        assert_eq!(t.import("svc"), Some(addr(2, 2)));
    }
}
