//! The object-based distributed application platform (paper §2).
//!
//! The [`Platform`] "isolates applications from the complexities of
//! multimedia devices and CM communications": it installs the transport
//! entity and LLO on every node, owns the trader and the HLO, allocates
//! endpoints, and hands applications the two platform abstractions —
//! invocation ([`crate::invocation::Invoker`]) and Streams
//! ([`crate::stream::Stream`]).

use crate::stream::{Branch, BranchState, Stream};
use crate::trader::Trader;
use cm_core::address::{AddressTriple, NetAddr, TransportAddr, Tsap, VcId};
use cm_core::error::DisconnectReason;
use cm_core::media::MediaProfile;
use cm_core::qos::{QosParams, QosRequirement, QosTolerance};
use cm_core::service_class::ServiceClass;
use cm_core::FastMap;
use cm_orchestration::{Hlo, HloAgent, Llo, OrchestrationPolicy};
use cm_transport::{EntityConfig, TransportService, TransportUser};
use netsim::Network;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

struct NodeCtx {
    svc: TransportService,
    llo: Llo,
    user: Rc<PlatformUser>,
}

/// The per-node platform transport user: accepts stream connects and
/// updates branch states on confirms.
#[derive(Default)]
struct PlatformUser {
    branches: RefCell<FastMap<VcId, Rc<Branch>>>,
}

impl TransportUser for PlatformUser {
    fn t_connect_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        _triple: AddressTriple,
        _class: ServiceClass,
        _qos: QosRequirement,
    ) {
        svc.t_connect_response(vc, true).expect("platform accept");
    }

    fn t_connect_confirm(
        &self,
        _svc: &TransportService,
        vc: VcId,
        result: Result<QosParams, DisconnectReason>,
    ) {
        if let Some(b) = self.branches.borrow().get(&vc) {
            *b.state.borrow_mut() = match result {
                Ok(q) => BranchState::Open(q),
                Err(r) => BranchState::Failed(r),
            };
        }
    }

    fn t_disconnect_indication(&self, _svc: &TransportService, vc: VcId, reason: DisconnectReason) {
        if reason == DisconnectReason::RenegotiationRefused {
            return; // VC still open (§4.1.3)
        }
        if let Some(b) = self.branches.borrow().get(&vc) {
            *b.state.borrow_mut() = BranchState::Failed(reason);
        }
    }

    fn t_renegotiate_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        _new_tolerance: QosTolerance,
    ) {
        svc.t_renegotiate_response(vc, true)
            .expect("platform reneg accept");
    }
}

struct PlatformInner {
    net: Network,
    nodes: RefCell<FastMap<NetAddr, NodeCtx>>,
    trader: Trader,
    hlo: RefCell<Option<Rc<Hlo>>>,
    next_tsap: Cell<u16>,
}

/// Handle to the platform (clones share it).
#[derive(Clone)]
pub struct Platform {
    inner: Rc<PlatformInner>,
}

impl Platform {
    /// A platform over `net` with no nodes installed yet.
    pub fn new(net: Network) -> Platform {
        Platform {
            inner: Rc::new(PlatformInner {
                net,
                nodes: RefCell::new(FastMap::default()),
                trader: Trader::new(),
                hlo: RefCell::new(None),
                next_tsap: Cell::new(1000),
            }),
        }
    }

    /// Install the platform (transport entity + LLO) on `node`.
    pub fn install_node(&self, node: NetAddr) {
        self.install_node_with(node, EntityConfig::default());
    }

    /// Install with an explicit transport configuration.
    pub fn install_node_with(&self, node: NetAddr, config: EntityConfig) {
        let svc = TransportService::install(&self.inner.net, node, config);
        let llo = Llo::install(svc.clone(), 64);
        let user = Rc::new(PlatformUser::default());
        self.inner
            .nodes
            .borrow_mut()
            .insert(node, NodeCtx { svc, llo, user });
        // A new node invalidates a previously built HLO.
        *self.inner.hlo.borrow_mut() = None;
    }

    /// The network.
    pub fn network(&self) -> &Network {
        &self.inner.net
    }

    /// The engine.
    pub fn engine(&self) -> &netsim::Engine {
        self.inner.net.engine()
    }

    /// The domain trader.
    pub fn trader(&self) -> &Trader {
        &self.inner.trader
    }

    /// The transport service of `node` (panics if not installed).
    pub fn service(&self, node: NetAddr) -> TransportService {
        self.inner.nodes.borrow()[&node].svc.clone()
    }

    /// The LLO of `node` (panics if not installed).
    pub fn llo(&self, node: NetAddr) -> Llo {
        self.inner.nodes.borrow()[&node].llo.clone()
    }

    /// The HLO over all installed nodes (built on first use).
    pub fn hlo(&self) -> Rc<Hlo> {
        if self.inner.hlo.borrow().is_none() {
            let llos: Vec<Llo> = self
                .inner
                .nodes
                .borrow()
                .values()
                .map(|c| c.llo.clone())
                .collect();
            *self.inner.hlo.borrow_mut() = Some(Rc::new(Hlo::new(llos)));
        }
        self.inner.hlo.borrow().as_ref().expect("hlo built").clone()
    }

    /// Allocate a platform-unique TSAP.
    pub fn fresh_tsap(&self) -> Tsap {
        let t = self.inner.next_tsap.get();
        self.inner.next_tsap.set(t + 1);
        Tsap(t)
    }

    /// Bind the platform user at an endpoint address.
    pub(crate) fn bind_endpoint(&self, addr: TransportAddr) {
        let nodes = self.inner.nodes.borrow();
        let ctx = nodes
            .get(&addr.node)
            .expect("endpoint node not installed on platform");
        ctx.svc
            .bind(addr.tsap, ctx.user.clone())
            .expect("platform endpoint TSAP busy");
    }

    /// Track a branch so confirms update its state.
    pub(crate) fn watch_branch(&self, source: NetAddr, branch: Rc<Branch>) {
        let nodes = self.inner.nodes.borrow();
        nodes[&source]
            .user
            .branches
            .borrow_mut()
            .insert(branch.vc, branch.clone());
    }

    /// Establish a unidirectional stream `source → sinks` carrying
    /// `profile` (§2.2; 1:N per §3.8). Returns immediately; use
    /// [`Stream::await_open`] to drive the handshake.
    pub fn create_stream(
        &self,
        source: NetAddr,
        sinks: &[NetAddr],
        profile: MediaProfile,
    ) -> Rc<Stream> {
        Stream::establish(self, source, sinks, profile, ServiceClass::cm_default())
    }

    /// As [`Platform::create_stream`] with an explicit service class.
    pub fn create_stream_with_class(
        &self,
        source: NetAddr,
        sinks: &[NetAddr],
        profile: MediaProfile,
        class: ServiceClass,
    ) -> Rc<Stream> {
        Stream::establish(self, source, sinks, profile, class)
    }

    /// Orchestrate a set of streams (§5: "applications pass Stream
    /// interfaces to these operations"): collects the underlying VCs,
    /// picks the orchestrating node and returns the agent / control
    /// interface.
    pub fn orchestrate_streams(
        &self,
        streams: &[&Stream],
        policy: OrchestrationPolicy,
        started: impl FnOnce(Result<(), cm_core::error::OrchDenyReason>) + 'static,
    ) -> Result<HloAgent, cm_core::error::OrchDenyReason> {
        let vcs: Vec<VcId> = streams.iter().flat_map(|s| s.vcs()).collect();
        self.hlo().orchestrate_and_start(&vcs, policy, started)
    }
}
