//! # cm-platform — the object-based distributed application platform
//!
//! Reproduction of the Lancaster ANSA-based platform (paper §2):
//! applications see two abstractions — delay-bounded *invocation* of named
//! operations on ADT interfaces ([`invocation`]), and first-class
//! unidirectional *Streams* carrying continuous media with media-level QoS
//! operations ([`stream`]). The [`platform::Platform`] installs the whole
//! stack per node, the [`trader`] provides location-independent binding,
//! and [`devices`] wraps storage servers, monitors and cameras as the ADT
//! objects the paper's applications (microscope controller, AV telephone,
//! video disc jockey) were built from.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod devices;
pub mod invocation;
pub mod platform;
pub mod stream;
pub mod trader;

pub use devices::{CaptureDevice, MonitorDevice, StorageServer};
pub use invocation::{AdtInterface, InvokeError, Invoker};
pub use platform::Platform;
pub use stream::{Branch, BranchState, Stream};
pub use trader::Trader;
