//! Platform-level tests: Streams (creation, quality change, fan-out),
//! invocation with delay bounds, trading, device objects and
//! platform-driven orchestration — the application's-eye view of §2.2.

use cm_core::media::MediaProfile;
use cm_core::time::{SimDuration, SimTime};
use cm_media::StoredClip;
use cm_orchestration::OrchestrationPolicy;
use cm_platform::{
    AdtInterface, BranchState, CaptureDevice, InvokeError, Invoker, MonitorDevice, Platform,
    StorageServer,
};
use netsim::{Engine, TestbedConfig};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

struct World {
    platform: Platform,
    workstations: Vec<cm_core::address::NetAddr>,
    servers: Vec<cm_core::address::NetAddr>,
}

fn world(workstations: usize, servers: usize) -> World {
    let tb = TestbedConfig {
        workstations,
        servers,
        ..TestbedConfig::default()
    }
    .build(Engine::new());
    let platform = Platform::new(tb.net.clone());
    for &n in tb.workstations.iter().chain(tb.servers.iter()) {
        platform.install_node(n);
    }
    World {
        platform,
        workstations: tb.workstations,
        servers: tb.servers,
    }
}

#[test]
fn stream_establishes_and_reports_qos() {
    let w = world(1, 1);
    let s = w.platform.create_stream(
        w.servers[0],
        &[w.workstations[0]],
        MediaProfile::video_mono(),
    );
    s.await_open(SimDuration::from_millis(200));
    assert!(s.is_open());
    let state = s.branches[0].state.borrow().clone();
    match state {
        BranchState::Open(q) => {
            assert!(q.throughput >= MediaProfile::video_mono().nominal_throughput())
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn stream_fan_out_builds_one_vc_per_sink() {
    let w = world(3, 1);
    let s = w.platform.create_stream(
        w.servers[0],
        &w.workstations,
        MediaProfile::audio_telephone(),
    );
    s.await_open(SimDuration::from_millis(200));
    assert!(s.is_open());
    assert_eq!(s.vcs().len(), 3);
    // All distinct simplex VCs (§3.1/§3.8).
    let mut vcs = s.vcs();
    vcs.dedup();
    assert_eq!(vcs.len(), 3);
}

#[test]
fn stream_quality_upgrade_renegotiates() {
    let w = world(1, 1);
    let s = w.platform.create_stream(
        w.servers[0],
        &[w.workstations[0]],
        MediaProfile::video_mono(),
    );
    s.await_open(SimDuration::from_millis(200));
    let before = w
        .platform
        .service(w.servers[0])
        .contract(s.vc())
        .expect("contract");
    // Mono → colour (§3.3).
    s.set_quality(MediaProfile::video_colour());
    w.platform.engine().run_for(SimDuration::from_millis(200));
    let after = w
        .platform
        .service(w.servers[0])
        .contract(s.vc())
        .expect("contract");
    assert!(after.throughput > before.throughput);
    assert_eq!(s.profile.borrow().name, "video/colour-25");
}

#[test]
fn invocation_roundtrip_with_deadline() {
    let w = world(2, 0);
    struct Doubler;
    impl AdtInterface for Doubler {
        fn invoke(&self, op: &str, arg: Rc<dyn Any>) -> Option<Rc<dyn Any>> {
            match op {
                "double" => {
                    let x = *arg.downcast_ref::<u32>()?;
                    Some(Rc::new(x * 2))
                }
                _ => None,
            }
        }
    }
    let server = Invoker::bind(
        w.platform.service(w.workstations[0]),
        w.platform.fresh_tsap(),
    );
    server.export(Rc::new(Doubler));
    w.platform.trader().export("math/doubler", server.address());

    let client = Invoker::bind(
        w.platform.service(w.workstations[1]),
        w.platform.fresh_tsap(),
    );
    let target = w.platform.trader().import("math/doubler").expect("traded");
    let got = Rc::new(Cell::new(0u32));
    let g2 = got.clone();
    client.invoke(
        target,
        "double",
        Rc::new(21u32),
        SimDuration::from_millis(100),
        move |r| {
            g2.set(*r.expect("reply").downcast_ref::<u32>().expect("u32"));
        },
    );
    w.platform.engine().run_for(SimDuration::from_millis(200));
    assert_eq!(got.get(), 42);
}

#[test]
fn invocation_deadline_exceeded_on_silence() {
    let w = world(2, 0);
    let client = Invoker::bind(
        w.platform.service(w.workstations[1]),
        w.platform.fresh_tsap(),
    );
    // Target TSAP exists on no node ⇒ no reply ever.
    let target = cm_core::address::TransportAddr {
        node: w.workstations[0],
        tsap: cm_core::address::Tsap(4321),
    };
    let err = Rc::new(RefCell::new(None));
    let e2 = err.clone();
    client.invoke(
        target,
        "noop",
        Rc::new(()),
        SimDuration::from_millis(50),
        move |r| {
            *e2.borrow_mut() = Some(r.err());
        },
    );
    w.platform.engine().run_for(SimDuration::from_millis(200));
    assert_eq!(*err.borrow(), Some(Some(InvokeError::DeadlineExceeded)));
}

#[test]
fn unknown_operation_is_rejected() {
    let w = world(2, 0);
    struct Nothing;
    impl AdtInterface for Nothing {
        fn invoke(&self, _op: &str, _arg: Rc<dyn Any>) -> Option<Rc<dyn Any>> {
            None
        }
    }
    let server = Invoker::bind(
        w.platform.service(w.workstations[0]),
        w.platform.fresh_tsap(),
    );
    server.export(Rc::new(Nothing));
    let client = Invoker::bind(
        w.platform.service(w.workstations[1]),
        w.platform.fresh_tsap(),
    );
    let err = Rc::new(RefCell::new(None));
    let e2 = err.clone();
    client.invoke(
        server.address(),
        "mystery",
        Rc::new(()),
        SimDuration::from_millis(100),
        move |r| {
            *e2.borrow_mut() = Some(r.err());
        },
    );
    w.platform.engine().run_for(SimDuration::from_millis(200));
    assert_eq!(*err.borrow(), Some(Some(InvokeError::NoSuchOperation)));
}

#[test]
fn devices_play_a_film_through_the_platform() {
    // The §3.6 film, written entirely against the platform API.
    let w = world(1, 2);
    let ws = w.workstations[0];
    let audio_profile = MediaProfile::audio_telephone();
    let video_profile = MediaProfile::video_mono();

    let audio_server = StorageServer::new(&w.platform, w.servers[0]);
    audio_server.store("film/soundtrack", StoredClip::cbr_for(&audio_profile, 60));
    let video_server = StorageServer::new(&w.platform, w.servers[1]);
    video_server.store("film/picture", StoredClip::cbr_for(&video_profile, 60));

    let audio_stream = w
        .platform
        .create_stream(w.servers[0], &[ws], audio_profile.clone());
    let video_stream = w
        .platform
        .create_stream(w.servers[1], &[ws], video_profile.clone());
    audio_stream.await_open(SimDuration::from_millis(200));
    video_stream.await_open(SimDuration::from_millis(200));

    let _audio_src = audio_server.play("film/soundtrack", &audio_stream);
    let _video_src = video_server.play("film/picture", &video_stream);
    let monitor = MonitorDevice::new(&w.platform, ws);
    let speaker = monitor.attach(&audio_stream, &audio_profile);
    let screen = monitor.attach(&video_stream, &video_profile);

    let started = Rc::new(Cell::new(false));
    let s2 = started.clone();
    let _agent = w
        .platform
        .orchestrate_streams(
            &[&audio_stream, &video_stream],
            OrchestrationPolicy::lip_sync(),
            move |r| {
                r.expect("film start");
                s2.set(true);
            },
        )
        .expect("orchestrate");
    w.platform.engine().run_for(SimDuration::from_secs(12));
    assert!(started.get());
    assert!(speaker.log.borrow().len() > 400, "audio playing");
    assert!(screen.log.borrow().len() > 200, "video playing");
    // Lip sync holds.
    let meter = cm_media::SkewMeter::new(vec![
        (audio_profile.osdu_rate, speaker.log.borrow().clone()),
        (video_profile.osdu_rate, screen.log.borrow().clone()),
    ]);
    let skew = meter.skew_at(SimTime::from_secs(10)).expect("skew");
    assert!(skew <= SimDuration::from_millis(80), "skew {skew}");
}

#[test]
fn live_capture_flows_over_a_stream() {
    let w = world(2, 0);
    let profile = MediaProfile::audio_telephone();
    let stream = w
        .platform
        .create_stream(w.workstations[0], &[w.workstations[1]], profile.clone());
    stream.await_open(SimDuration::from_millis(200));
    let mic = CaptureDevice::camera(&w.platform, w.workstations[0], &profile);
    let live = mic.switch_on(&stream);
    let monitor = MonitorDevice::new(&w.platform, w.workstations[1]);
    let speaker = monitor.attach(&stream, &profile);
    speaker.play();
    w.platform.engine().run_for(SimDuration::from_secs(5));
    assert!(
        live.captured.get() >= 240,
        "captured {}",
        live.captured.get()
    );
    assert!(
        speaker.log.borrow().len() >= 200,
        "presented {}",
        speaker.log.borrow().len()
    );
}
