//! Deterministic attribution + audit report.
//!
//! A zone-sharded run produces one [`ObsZoneReport`] per zone (each
//! engine has its own [`Obs`](crate::Obs)); [`render_report`] folds them
//! into one JSON artifact: per-zone per-stream budget breakdowns, then a
//! cross-zone per-room rollup keyed by label. Everything is integers and
//! the ordering is `(zone, stream)` / sorted labels, so the bytes are
//! identical for any worker count and any shard arrival order — the
//! property the zones differential pins.

use crate::{ContractBreach, SegClass};
use cm_telemetry::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Summary statistics of one segment class (or the span total), µs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegStats {
    /// Samples recorded.
    pub count: u64,
    /// Median (log-bucket upper bound).
    pub p50_us: u64,
    /// 99th percentile (log-bucket upper bound).
    pub p99_us: u64,
    /// Largest sample.
    pub max_us: u64,
    /// Exact sum over all samples.
    pub sum_us: u64,
}

impl SegStats {
    pub(crate) fn from_hist(h: &Histogram, sum_us: u64) -> SegStats {
        SegStats {
            count: h.count(),
            p50_us: h.percentile(50.0),
            p99_us: h.percentile(99.0),
            max_us: h.max().unwrap_or(0),
            sum_us,
        }
    }
}

/// One stream's (VC's) closed-span aggregates and audit outcome.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Raw VC id.
    pub stream: u64,
    /// Label attached at publish (room/stream path) or `vc<id>`.
    pub label: String,
    /// Contracted end-to-end deadline, µs (0 = uncontracted).
    pub deadline_us: u64,
    /// Contracted deadline-miss budget, ppm.
    pub allowed_miss_ppm: u64,
    /// Spans closed.
    pub spans: u64,
    /// Deadline misses.
    pub misses: u64,
    /// Misses by dominant cause, [`SegClass::ALL`] order.
    pub miss_causes: [u64; 7],
    /// Per-segment-class statistics, [`SegClass::ALL`] order.
    pub segs: [SegStats; 7],
    /// Span total (origin→playout) statistics.
    pub total: SegStats,
    /// Audit windows breached (exact, beyond the recorded cap).
    pub breach_count: u64,
    /// First breached windows, verbatim.
    pub breaches: Vec<ContractBreach>,
    /// Playout-device ticks that found no unit.
    pub underruns: u64,
    /// Traced packets dropped in the network for this stream.
    pub net_drops: u64,
}

/// Everything one zone's [`Obs`](crate::Obs) observed, as plain data
/// (safe to carry across worker threads).
#[derive(Debug, Clone)]
pub struct ObsZoneReport {
    /// Zone id (0 for a flat run).
    pub zone: u32,
    /// Spans closed in this zone.
    pub spans: u64,
    /// Deadline misses in this zone.
    pub misses: u64,
    /// Contract-window breaches in this zone.
    pub breaches_total: u64,
    /// Traces still open at end of run.
    pub open_spans: u64,
    /// Traces retired unclosed by the registry cap.
    pub abandoned: u64,
    /// Flight-recorder events dropped to ring overflow in this zone.
    pub telemetry_overflow: u64,
    /// Per-stream breakdowns, stream-id order.
    pub streams: Vec<StreamReport>,
}

fn seg_json(out: &mut String, s: &SegStats) {
    let _ = write!(
        out,
        "{{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"sum_us\": {}}}",
        s.count, s.p50_us, s.p99_us, s.max_us, s.sum_us
    );
}

fn causes_json(out: &mut String, causes: &[u64; 7]) {
    out.push('{');
    let mut first = true;
    for (i, c) in SegClass::ALL.iter().enumerate() {
        if causes[i] == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "\"{}\": {}", c.slug(), causes[i]);
    }
    out.push('}');
}

/// The dominant cause over a cause-count array: the largest count, ties
/// to the earlier (source-side) class; `"none"` when there are no misses.
fn dominant(causes: &[u64; 7]) -> &'static str {
    let mut dom = 0;
    for i in 1..7 {
        if causes[i] > causes[dom] {
            dom = i;
        }
    }
    if causes[dom] == 0 {
        "none"
    } else {
        SegClass::ALL[dom].slug()
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render per-zone reports into the deterministic JSON artifact.
///
/// Shards may arrive in any order; they are sorted by zone id, and the
/// room rollup merges streams across zones by label.
pub fn render_report(zones: &[ObsZoneReport]) -> String {
    let mut zones: Vec<&ObsZoneReport> = zones.iter().collect();
    zones.sort_by_key(|z| z.zone);

    let mut spans = 0u64;
    let mut misses = 0u64;
    let mut breaches = 0u64;
    let mut open = 0u64;
    let mut abandoned = 0u64;
    let mut overflow = 0u64;
    // label -> (spans, misses, causes, underruns)
    let mut rooms: BTreeMap<&str, (u64, u64, [u64; 7], u64)> = BTreeMap::new();
    for z in &zones {
        spans += z.spans;
        misses += z.misses;
        breaches += z.breaches_total;
        open += z.open_spans;
        abandoned += z.abandoned;
        overflow += z.telemetry_overflow;
        for s in &z.streams {
            let e = rooms.entry(s.label.as_str()).or_insert((0, 0, [0; 7], 0));
            e.0 += s.spans;
            e.1 += s.misses;
            for i in 0..7 {
                e.2[i] += s.miss_causes[i];
            }
            e.3 += s.underruns;
        }
    }

    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"cm-obs/v1\",\n");
    let _ = writeln!(
        out,
        "  \"totals\": {{\"spans\": {spans}, \"misses\": {misses}, \"breaches_total\": {breaches}, \"open_spans\": {open}, \"abandoned\": {abandoned}, \"telemetry_overflow\": {overflow}}},"
    );

    out.push_str("  \"zones\": [\n");
    for (zi, z) in zones.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"zone\": {}, \"spans\": {}, \"misses\": {}, \"breaches_total\": {}, \"open_spans\": {}, \"abandoned\": {}, \"telemetry_overflow\": {}, \"streams\": [",
            z.zone, z.spans, z.misses, z.breaches_total, z.open_spans, z.abandoned, z.telemetry_overflow
        );
        for (si, s) in z.streams.iter().enumerate() {
            out.push_str("\n      {");
            let _ = write!(
                out,
                "\"stream\": {}, \"label\": \"{}\", \"deadline_us\": {}, \"allowed_miss_ppm\": {}, \"spans\": {}, \"misses\": {}, \"dominant_cause\": \"{}\", \"miss_causes\": ",
                s.stream,
                json_escape(&s.label),
                s.deadline_us,
                s.allowed_miss_ppm,
                s.spans,
                s.misses,
                dominant(&s.miss_causes),
            );
            causes_json(&mut out, &s.miss_causes);
            let _ = write!(
                out,
                ", \"underruns\": {}, \"net_drops\": {}, \"total\": ",
                s.underruns, s.net_drops
            );
            seg_json(&mut out, &s.total);
            out.push_str(", \"segments\": {");
            for (i, c) in SegClass::ALL.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": ", c.slug());
                seg_json(&mut out, &s.segs[i]);
            }
            let _ = write!(
                out,
                "}}, \"breach_count\": {}, \"breaches\": [",
                s.breach_count
            );
            for (bi, b) in s.breaches.iter().enumerate() {
                if bi > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"window_start_us\": {}, \"spans\": {}, \"misses\": {}, \"burn_x100\": {}}}",
                    b.window_start_us, b.spans, b.misses, b.burn_x100
                );
            }
            out.push_str("]}");
            if si + 1 < z.streams.len() {
                out.push(',');
            }
        }
        if z.streams.is_empty() {
            out.push_str("]}");
        } else {
            out.push_str("\n    ]}");
        }
        if zi + 1 < zones.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");

    out.push_str("  \"rooms\": [\n");
    let n = rooms.len();
    for (i, (label, (spans, misses, causes, underruns))) in rooms.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": \"{}\", \"spans\": {}, \"misses\": {}, \"dominant_cause\": \"{}\", \"underruns\": {}, \"miss_causes\": ",
            json_escape(label),
            spans,
            misses,
            dominant(causes),
            underruns
        );
        causes_json(&mut out, causes);
        out.push('}');
        if i + 1 < n {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(label: &str, spans: u64, misses: u64, cause: usize) -> StreamReport {
        let mut miss_causes = [0; 7];
        miss_causes[cause] = misses;
        StreamReport {
            stream: 1,
            label: label.to_string(),
            deadline_us: 1_000,
            allowed_miss_ppm: 0,
            spans,
            misses,
            miss_causes,
            segs: [SegStats {
                count: spans,
                p50_us: 1,
                p99_us: 2,
                max_us: 3,
                sum_us: 4,
            }; 7],
            total: SegStats {
                count: spans,
                p50_us: 1,
                p99_us: 2,
                max_us: 3,
                sum_us: 4,
            },
            breach_count: 0,
            breaches: Vec::new(),
            underruns: 0,
            net_drops: 0,
        }
    }

    fn zone(z: u32, s: Vec<StreamReport>) -> ObsZoneReport {
        ObsZoneReport {
            zone: z,
            spans: s.iter().map(|x| x.spans).sum(),
            misses: s.iter().map(|x| x.misses).sum(),
            breaches_total: 0,
            open_spans: 0,
            abandoned: 0,
            telemetry_overflow: 0,
            streams: s,
        }
    }

    #[test]
    fn render_is_shard_order_independent() {
        let a = zone(0, vec![stream("room:r1/main", 10, 1, 3)]);
        let b = zone(1, vec![stream("room:r1/main", 5, 0, 0)]);
        let fwd = render_report(&[a.clone(), b.clone()]);
        let rev = render_report(&[b, a]);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn rooms_merge_across_zones_by_label() {
        let a = zone(0, vec![stream("room:r1/main", 10, 2, 3)]);
        let b = zone(1, vec![stream("room:r1/main", 5, 1, 3)]);
        let json = render_report(&[a, b]);
        assert!(json.contains(
            "{\"label\": \"room:r1/main\", \"spans\": 15, \"misses\": 3, \"dominant_cause\": \"propagation\""
        ));
    }

    #[test]
    fn dominant_cause_none_without_misses() {
        let json = render_report(&[zone(0, vec![stream("s", 4, 0, 0)])]);
        assert!(json.contains("\"dominant_cause\": \"none\""));
    }

    #[test]
    fn totals_roll_up() {
        let mut z = zone(2, vec![stream("s", 7, 1, 4)]);
        z.telemetry_overflow = 9;
        z.abandoned = 2;
        let json = render_report(&[z]);
        assert!(json.contains(
            "\"totals\": {\"spans\": 7, \"misses\": 1, \"breaches_total\": 0, \"open_spans\": 0, \"abandoned\": 2, \"telemetry_overflow\": 9}"
        ));
        assert!(json.contains("\"dominant_cause\": \"repair\""));
    }
}
