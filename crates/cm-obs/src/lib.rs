//! # cm-obs — causal OSDU tracing, budget attribution, contract audit
//!
//! The paper's premise is that continuous-media streams carry *negotiated*
//! QoS contracts the transport and orchestrator must maintain (§3.2, §4.1.2).
//! Flat telemetry events can say *that* an OSDU was late; they cannot say
//! which layer spent its budget. This crate closes that gap with three
//! pieces, all deterministic in simulated time:
//!
//! 1. **Causal spans** ([`Obs`]): a trace is minted when an OSDU enters a
//!    VC's send buffer and closed when the sink application reads it.
//!    Along the way each stage stamps a typed segment — pacing wait,
//!    credit stall, network queueing, propagation, repair, mirror relay,
//!    playout hold ([`SegClass`]) — so the closed span decomposes the
//!    whole origin→playout budget with no residual.
//! 2. **Attribution aggregator**: closed spans fold into per-VC (and,
//!    via labels, per-room) breakdowns — p50/p99/max per segment class —
//!    and every deadline miss is classified by its dominant-cause segment.
//! 3. **Contract auditor**: each VC's negotiated deadline and loss budget
//!    are evaluated over tumbling sim-time windows; a window whose miss
//!    fraction exceeds the contracted budget emits a typed
//!    [`ContractBreach`] with a burn rate (observed/allowed).
//!
//! An [`Obs`] handle is a cheap `Rc` clone, created disabled; every hook
//! in the hot path costs one `Cell<bool>` read until [`Obs::enable`] is
//! called — the same budget discipline as `cm-telemetry`.
//!
//! Identity is deliberately light: a trace is keyed `(stream, seq)` where
//! `stream` is the raw `VcId` and `seq` the OSDU sequence number; the
//! per-receiver leg adds the sink node. Nothing rides on the OSDU itself —
//! packets carry an optional 20-byte tag (`netsim` side) and everything
//! else lives in this registry, so the wire format and `Osdu` equality are
//! untouched.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod report;

pub use report::{render_report, ObsZoneReport, SegStats, StreamReport};

use cm_telemetry::Histogram;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// The typed segment classes a span decomposes into, in budget order
/// (source side first, sink side last).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SegClass {
    /// Waiting in the send buffer for the pacing clock (rate-based
    /// protocol: one OSDU per period, §3.7).
    Pacing,
    /// Waiting in the send buffer because the receiver window/credit ran
    /// out (§4.2 flow control).
    CreditStall,
    /// Waiting in link output queues along the path.
    Queueing,
    /// Transmission + propagation time on the wire (incl. jitter).
    Propagation,
    /// Loss-recovery time: retransmission delay plus resequencing holds
    /// behind a repaired hole.
    Repair,
    /// Upstream time of a cross-zone mirrored OSDU: home-zone delivery,
    /// relay capture and the wide-area envelope hop.
    MirrorRelay,
    /// Sitting reassembled in the sink buffer until the application read.
    PlayoutHold,
}

impl SegClass {
    /// All classes, budget order. Index in this array is the class's
    /// stable id throughout this crate.
    pub const ALL: [SegClass; 7] = [
        SegClass::Pacing,
        SegClass::CreditStall,
        SegClass::Queueing,
        SegClass::Propagation,
        SegClass::Repair,
        SegClass::MirrorRelay,
        SegClass::PlayoutHold,
    ];

    /// Stable lower-case slug, used in reports and event fields.
    pub fn slug(self) -> &'static str {
        match self {
            SegClass::Pacing => "pacing",
            SegClass::CreditStall => "credit_stall",
            SegClass::Queueing => "queueing",
            SegClass::Propagation => "propagation",
            SegClass::Repair => "repair",
            SegClass::MirrorRelay => "mirror_relay",
            SegClass::PlayoutHold => "playout_hold",
        }
    }
}

/// One audited contract-window violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContractBreach {
    /// Start of the tumbling window (µs, absolute sim time).
    pub window_start_us: u64,
    /// Spans closed inside the window.
    pub spans: u64,
    /// Deadline misses inside the window.
    pub misses: u64,
    /// Burn rate ×100: observed miss rate over the contracted budget
    /// (`200` = burning the budget twice as fast as allowed).
    pub burn_x100: u64,
}

/// Source-side half of an open trace.
struct SourceRec {
    /// Local origin: when the OSDU entered this VC's send buffer.
    origin_us: u64,
    /// End-to-end origin: equals `origin_us` except for mirrored spans,
    /// where it is the home-zone write time carried across the wide area.
    e2e_origin_us: u64,
    /// Upstream time for mirrored spans: home origin → this zone's
    /// re-publish (home residency + relay capture + wide-area hop).
    mirror_relay_us: u64,
    /// Stream's cumulative credit-stall time when the span was minted.
    stall_at_mint_us: u64,
    /// First fresh transmission time; `None` until the OSDU leaves the
    /// send buffer.
    first_tx_us: Option<u64>,
    /// Send-buffer wait attributed to the pacing clock.
    pacing_us: u64,
    /// Send-buffer wait attributed to exhausted credit.
    credit_us: u64,
    /// At least one receiver leg closed against this record. Kept because
    /// a group span closes once per member: the record must outlive the
    /// first close, but its retirement is then bookkeeping, not loss.
    closed_once: bool,
}

/// Per-receiver half of an open trace.
struct ArrivalRec {
    /// When the final fragment completed reassembly at this sink.
    arrived_us: u64,
    /// Sum of link queue waits along the completing fragment's path.
    queued_us: u64,
    /// When the completing fragment's transmission left the source.
    sent_at_us: u64,
    /// When the OSDU entered the sink buffer (differs from `arrived_us`
    /// only when it was stashed behind a hole awaiting repair).
    delivered_us: u64,
}

/// Per-stream state: label, contract, aggregates and the audit window.
struct StreamObs {
    label: String,
    deadline_us: u64,
    allowed_miss_ppm: u64,
    stall_cum_us: u64,
    pending_relay: Option<(u64, u64)>,
    underruns: u64,
    net_drops: u64,
    seg_hist: [Histogram; 7],
    seg_sum_us: [u64; 7],
    total_hist: Histogram,
    total_sum_us: u64,
    spans: u64,
    misses: u64,
    miss_causes: [u64; 7],
    win_start_us: Option<u64>,
    win_spans: u64,
    win_misses: u64,
    breaches: Vec<ContractBreach>,
    breach_count: u64,
}

impl StreamObs {
    fn new(stream: u64) -> StreamObs {
        StreamObs {
            label: format!("vc{stream}"),
            deadline_us: 0,
            allowed_miss_ppm: 0,
            stall_cum_us: 0,
            pending_relay: None,
            underruns: 0,
            net_drops: 0,
            seg_hist: Default::default(),
            seg_sum_us: [0; 7],
            total_hist: Histogram::new(),
            total_sum_us: 0,
            spans: 0,
            misses: 0,
            miss_causes: [0; 7],
            win_start_us: None,
            win_spans: 0,
            win_misses: 0,
            breaches: Vec::new(),
            breach_count: 0,
        }
    }

    /// Fold the audit window(s) up to `now`, emitting breaches for any
    /// closed window whose miss fraction exceeds the contracted budget.
    fn roll_window(&mut self, now_us: u64, window_us: u64, breach_cap: usize) {
        let Some(start) = self.win_start_us else {
            self.win_start_us = Some(now_us - now_us % window_us);
            return;
        };
        if now_us < start + window_us {
            return;
        }
        if let Some(miss_ppm) = (self.win_misses * 1_000_000).checked_div(self.win_spans) {
            if self.win_misses > 0 && miss_ppm > self.allowed_miss_ppm {
                self.breach_count += 1;
                if self.breaches.len() < breach_cap {
                    self.breaches.push(ContractBreach {
                        window_start_us: start,
                        spans: self.win_spans,
                        misses: self.win_misses,
                        burn_x100: miss_ppm * 100 / self.allowed_miss_ppm.max(1),
                    });
                }
            }
        }
        self.win_spans = 0;
        self.win_misses = 0;
        // Jump straight to the window containing `now` — empty windows
        // cannot breach, so nothing is lost by skipping them.
        self.win_start_us = Some(now_us - now_us % window_us);
    }
}

struct Inner {
    enabled: Cell<bool>,
    window_us: Cell<u64>,
    open_cap: Cell<usize>,
    streams: RefCell<BTreeMap<u64, StreamObs>>,
    open: RefCell<BTreeMap<(u64, u64), SourceRec>>,
    open_order: RefCell<VecDeque<(u64, u64)>>,
    arrivals: RefCell<BTreeMap<(u64, u64, u64), ArrivalRec>>,
    arrivals_order: RefCell<VecDeque<(u64, u64, u64)>>,
    abandoned: Cell<u64>,
}

/// Default contract-audit window: one second of simulated time.
pub const DEFAULT_WINDOW_US: u64 = 1_000_000;

/// Default bound on concurrently-open trace records. Oldest-first
/// retirement keeps memory flat under churn; retired spans are counted,
/// never silently lost.
pub const DEFAULT_OPEN_CAP: usize = 65_536;

/// Breach records kept verbatim per stream (the count is exact beyond it).
const BREACH_CAP: usize = 64;

/// Cheap-clone handle to one tracing + audit registry.
///
/// The engine-facing layers each cache a clone; `enable` flips every
/// holder at once, exactly like `cm-telemetry::Telemetry`.
#[derive(Clone)]
pub struct Obs {
    inner: Rc<Inner>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

impl Obs {
    /// An inert registry: every hook is a single branch.
    pub fn disabled() -> Obs {
        Obs {
            inner: Rc::new(Inner {
                enabled: Cell::new(false),
                window_us: Cell::new(DEFAULT_WINDOW_US),
                open_cap: Cell::new(DEFAULT_OPEN_CAP),
                streams: RefCell::new(BTreeMap::new()),
                open: RefCell::new(BTreeMap::new()),
                open_order: RefCell::new(VecDeque::new()),
                arrivals: RefCell::new(BTreeMap::new()),
                arrivals_order: RefCell::new(VecDeque::new()),
                abandoned: Cell::new(0),
            }),
        }
    }

    /// Turn tracing on for every holder of a clone of this handle.
    pub fn enable(&self) {
        self.inner.enabled.set(true);
    }

    /// Turn tracing off (recorded aggregates are kept).
    pub fn disable(&self) {
        self.inner.enabled.set(false);
    }

    /// The fast path every hook checks first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Override the contract-audit window length (µs).
    pub fn set_window_us(&self, window_us: u64) {
        assert!(window_us > 0, "audit window must be positive");
        self.inner.window_us.set(window_us);
    }

    fn stream_mut<R>(&self, stream: u64, f: impl FnOnce(&mut StreamObs) -> R) -> R {
        let mut streams = self.inner.streams.borrow_mut();
        f(streams
            .entry(stream)
            .or_insert_with(|| StreamObs::new(stream)))
    }

    /// Record the negotiated contract for a stream: the end-to-end delay
    /// bound, and the loss budget doubled as the deadline-miss budget —
    /// a late CM OSDU is as lost as a dropped one.
    pub fn set_contract(&self, stream: u64, deadline_us: u64, allowed_miss_ppm: u64) {
        if !self.enabled() {
            return;
        }
        self.stream_mut(stream, |s| {
            s.deadline_us = deadline_us;
            s.allowed_miss_ppm = allowed_miss_ppm;
        });
    }

    /// Attach a human-readable label (room/stream path, media kind…).
    pub fn label(&self, stream: u64, label: &str) {
        if !self.enabled() {
            return;
        }
        self.stream_mut(stream, |s| s.label = label.to_string());
    }

    /// Mint a trace: the OSDU entered the stream's send buffer at `now`.
    pub fn mint(&self, stream: u64, seq: u64, now_us: u64) {
        if !self.enabled() {
            return;
        }
        let (e2e_origin_us, mirror_relay_us) = self.stream_mut(stream, |s| {
            match s.pending_relay.take() {
                // The whole upstream leg — home-zone residency, relay
                // capture and the wide-area hop — is one segment here;
                // the home zone's own span carries its fine breakdown.
                Some((origin, _relayed_at)) => (origin, now_us.saturating_sub(origin)),
                None => (now_us, 0),
            }
        });
        let mut open = self.inner.open.borrow_mut();
        let mut order = self.inner.open_order.borrow_mut();
        // Oldest-first retirement keeps the registry bounded under churn
        // (a closed VC's unread tail never closes its spans). Retiring a
        // record that already closed at least once is plain bookkeeping.
        while open.len() >= self.inner.open_cap.get() {
            let Some(k) = order.pop_front() else { break };
            if let Some(r) = open.remove(&k) {
                if !r.closed_once {
                    self.inner.abandoned.set(self.inner.abandoned.get() + 1);
                }
            }
        }
        order.push_back((stream, seq));
        open.insert(
            (stream, seq),
            SourceRec {
                origin_us: now_us,
                e2e_origin_us,
                mirror_relay_us,
                stall_at_mint_us: 0,
                first_tx_us: None,
                pacing_us: 0,
                credit_us: 0,
                closed_once: false,
            },
        );
        // Snapshot the stall counter after insert to avoid a double borrow.
        let stall = self.stream_mut(stream, |s| s.stall_cum_us);
        if let Some(rec) = open.get_mut(&(stream, seq)) {
            rec.stall_at_mint_us = stall;
        }
    }

    /// The local origin time of an open span, if still tracked. Used by
    /// cross-zone relays to stamp the home write time onto wide-area
    /// envelopes.
    pub fn origin_of(&self, stream: u64, seq: u64) -> Option<u64> {
        if !self.enabled() {
            return None;
        }
        self.inner
            .open
            .borrow()
            .get(&(stream, seq))
            .map(|r| r.e2e_origin_us)
    }

    /// Stage relay provenance for the *next* mint on `stream`: the guest
    /// zone's re-publish consumes it so the mirrored span keeps the home
    /// origin and charges the whole upstream leg to
    /// [`SegClass::MirrorRelay`]. `relayed_at_us` (when the home relay
    /// captured the OSDU) is carried for provenance; the segment itself
    /// is measured origin → re-publish.
    pub fn stage_relay(&self, stream: u64, origin_us: u64, relayed_at_us: u64) {
        if !self.enabled() {
            return;
        }
        self.stream_mut(stream, |s| {
            s.pending_relay = Some((origin_us, relayed_at_us));
        });
    }

    /// Clear staged relay provenance (the re-publish was dropped).
    pub fn unstage_relay(&self, stream: u64) {
        if !self.enabled() {
            return;
        }
        self.stream_mut(stream, |s| s.pending_relay = None);
    }

    /// The stream's producer resumed after a credit stall of `dur_us`.
    pub fn stalled(&self, stream: u64, dur_us: u64) {
        if !self.enabled() {
            return;
        }
        self.stream_mut(stream, |s| s.stall_cum_us += dur_us);
    }

    /// First fresh transmission of `(stream, seq)`: splits the
    /// send-buffer wait into pacing vs credit stall. Idempotent — later
    /// fragments and retransmissions leave the record untouched.
    pub fn transmitted(&self, stream: u64, seq: u64, now_us: u64) {
        if !self.enabled() {
            return;
        }
        let stall_now = self.stream_mut(stream, |s| s.stall_cum_us);
        let mut open = self.inner.open.borrow_mut();
        let Some(rec) = open.get_mut(&(stream, seq)) else {
            return;
        };
        if rec.first_tx_us.is_some() {
            return;
        }
        let wait = now_us.saturating_sub(rec.origin_us);
        let credit = stall_now.saturating_sub(rec.stall_at_mint_us).min(wait);
        rec.first_tx_us = Some(now_us);
        rec.credit_us = credit;
        rec.pacing_us = wait - credit;
    }

    /// The final fragment completed reassembly at sink `node`:
    /// `queued_us` is the link-queue wait the completing packet
    /// accumulated, `sent_at_us` when its transmission left the source.
    pub fn arrived(
        &self,
        stream: u64,
        seq: u64,
        node: u64,
        now_us: u64,
        queued_us: u64,
        sent_at_us: u64,
    ) {
        if !self.enabled() {
            return;
        }
        if !self.inner.open.borrow().contains_key(&(stream, seq)) {
            return;
        }
        let mut arrivals = self.inner.arrivals.borrow_mut();
        // First completion wins: a late duplicate (crossing retransmit)
        // must not overwrite the true arrival time.
        if arrivals.contains_key(&(stream, seq, node)) {
            return;
        }
        let mut order = self.inner.arrivals_order.borrow_mut();
        while arrivals.len() >= self.inner.open_cap.get() {
            let Some(k) = order.pop_front() else { break };
            if arrivals.remove(&k).is_some() {
                self.inner.abandoned.set(self.inner.abandoned.get() + 1);
            }
        }
        order.push_back((stream, seq, node));
        arrivals.insert(
            (stream, seq, node),
            ArrivalRec {
                arrived_us: now_us,
                queued_us,
                sent_at_us,
                delivered_us: now_us,
            },
        );
    }

    /// The OSDU entered sink `node`'s receive buffer (later than arrival
    /// only when it waited, stashed, behind a hole under repair).
    pub fn sink_delivered(&self, stream: u64, seq: u64, node: u64, now_us: u64) {
        if !self.enabled() {
            return;
        }
        if let Some(rec) = self
            .inner
            .arrivals
            .borrow_mut()
            .get_mut(&(stream, seq, node))
        {
            rec.delivered_us = now_us;
        }
    }

    /// The sink application read the OSDU: close this receiver's span,
    /// decompose the budget and feed the aggregator + auditor.
    pub fn closed(&self, stream: u64, seq: u64, node: u64, now_us: u64) {
        if !self.enabled() {
            return;
        }
        let Some(arr) = self
            .inner
            .arrivals
            .borrow_mut()
            .remove(&(stream, seq, node))
        else {
            return;
        };
        let (pacing, credit, first_tx, e2e_origin, mirror_relay) = {
            let mut open = self.inner.open.borrow_mut();
            let Some(src) = open.get_mut(&(stream, seq)) else {
                return;
            };
            let Some(first_tx) = src.first_tx_us else {
                return;
            };
            src.closed_once = true;
            (
                src.pacing_us,
                src.credit_us,
                first_tx,
                src.e2e_origin_us,
                src.mirror_relay_us,
            )
        };
        // Budget decomposition. Each piece is the time between two
        // stamped instants, so for a single-zone span they sum exactly
        // to origin→close; mirrored spans add the upstream leg.
        let repair = arr.sent_at_us.saturating_sub(first_tx)
            + arr.delivered_us.saturating_sub(arr.arrived_us);
        let flight = arr.arrived_us.saturating_sub(arr.sent_at_us);
        let queueing = arr.queued_us.min(flight);
        let propagation = flight - queueing;
        let playout = now_us.saturating_sub(arr.delivered_us);
        let total = now_us.saturating_sub(e2e_origin);
        let segs = [
            pacing,
            credit,
            queueing,
            propagation,
            repair,
            mirror_relay,
            playout,
        ];
        let window_us = self.inner.window_us.get();
        self.stream_mut(stream, |s| {
            for (i, &v) in segs.iter().enumerate() {
                s.seg_hist[i].record(v);
                s.seg_sum_us[i] += v;
            }
            s.total_hist.record(total);
            s.total_sum_us += total;
            s.spans += 1;
            s.roll_window(now_us, window_us, BREACH_CAP);
            s.win_spans += 1;
            if s.deadline_us > 0 && total > s.deadline_us {
                s.misses += 1;
                s.win_misses += 1;
                // Dominant cause: the largest segment, ties to the
                // earlier (source-side) class.
                let mut dom = 0;
                for (i, &v) in segs.iter().enumerate() {
                    if v > segs[dom] {
                        dom = i;
                    }
                }
                s.miss_causes[dom] += 1;
            }
        });
    }

    /// A traced packet was dropped in the network (fault, queue overflow,
    /// corruption discard). Repair may still deliver the OSDU; this only
    /// feeds the per-stream drop count.
    pub fn net_drop(&self, stream: u64) {
        if !self.enabled() {
            return;
        }
        self.stream_mut(stream, |s| s.net_drops += 1);
    }

    /// A playout device tick found no unit ready on `stream`.
    pub fn underrun(&self, stream: u64) {
        if !self.enabled() {
            return;
        }
        self.stream_mut(stream, |s| s.underruns += 1);
    }

    /// Spans retired unclosed because the open-trace registry hit its cap.
    pub fn abandoned(&self) -> u64 {
        self.inner.abandoned.get()
    }

    /// Flush the audit windows at end of run and snapshot everything into
    /// a plain (thread-safe) report for `zone`.
    pub fn finish_report(&self, zone: u32, now_us: u64, telemetry_overflow: u64) -> ObsZoneReport {
        let window_us = self.inner.window_us.get();
        let mut streams_out = Vec::new();
        let mut spans = 0u64;
        let mut misses = 0u64;
        let mut breaches_total = 0u64;
        {
            let mut streams = self.inner.streams.borrow_mut();
            for (&id, s) in streams.iter_mut() {
                // Close the final partial window: a breach in the last
                // second of a run is still a breach.
                s.roll_window(now_us.saturating_add(window_us), window_us, BREACH_CAP);
                if s.spans == 0 && s.breach_count == 0 && s.underruns == 0 && s.net_drops == 0 {
                    continue;
                }
                spans += s.spans;
                misses += s.misses;
                breaches_total += s.breach_count;
                streams_out.push(StreamReport {
                    stream: id,
                    label: s.label.clone(),
                    deadline_us: s.deadline_us,
                    allowed_miss_ppm: s.allowed_miss_ppm,
                    spans: s.spans,
                    misses: s.misses,
                    miss_causes: s.miss_causes,
                    segs: std::array::from_fn(|i| {
                        SegStats::from_hist(&s.seg_hist[i], s.seg_sum_us[i])
                    }),
                    total: SegStats::from_hist(&s.total_hist, s.total_sum_us),
                    breach_count: s.breach_count,
                    breaches: s.breaches.clone(),
                    underruns: s.underruns,
                    net_drops: s.net_drops,
                });
            }
        }
        ObsZoneReport {
            zone,
            spans,
            misses,
            breaches_total,
            open_spans: self
                .inner
                .open
                .borrow()
                .values()
                .filter(|r| !r.closed_once)
                .count() as u64,
            abandoned: self.inner.abandoned.get(),
            telemetry_overflow,
            streams: streams_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> Obs {
        let o = Obs::disabled();
        o.enable();
        o
    }

    /// Drive one span through the full pipeline with explicit timings.
    fn one_span(o: &Obs, stream: u64, seq: u64) {
        o.mint(stream, seq, 1_000);
        o.transmitted(stream, seq, 1_400); // 400 pacing
        o.arrived(stream, seq, 9, 2_600, 200, 1_400); // 200 queue, 1000 prop
        o.sink_delivered(stream, seq, 9, 2_600);
        o.closed(stream, seq, 9, 3_000); // 400 playout
    }

    #[test]
    fn disabled_is_inert() {
        let o = Obs::disabled();
        o.mint(1, 0, 10);
        o.transmitted(1, 0, 20);
        o.arrived(1, 0, 9, 30, 0, 20);
        o.closed(1, 0, 9, 40);
        let r = o.finish_report(0, 100, 0);
        assert_eq!(r.spans, 0);
        assert!(r.streams.is_empty());
    }

    #[test]
    fn span_decomposes_budget_exactly() {
        let o = obs();
        one_span(&o, 7, 0);
        let r = o.finish_report(0, 10_000, 0);
        assert_eq!(r.spans, 1);
        let s = &r.streams[0];
        assert_eq!(s.stream, 7);
        let sums: Vec<u64> = s.segs.iter().map(|g| g.sum_us).collect();
        // pacing, credit, queueing, propagation, repair, relay, playout
        assert_eq!(sums, vec![400, 0, 200, 1000, 0, 0, 400]);
        assert_eq!(s.total.sum_us, 2_000);
        assert_eq!(sums.iter().sum::<u64>(), s.total.sum_us);
    }

    #[test]
    fn credit_stall_splits_send_wait() {
        let o = obs();
        o.mint(3, 0, 0);
        o.stalled(3, 600);
        o.transmitted(3, 0, 1_000); // 1000 wait: 600 credit, 400 pacing
        o.arrived(3, 0, 1, 1_500, 0, 1_000);
        o.closed(3, 0, 1, 1_500);
        let r = o.finish_report(0, 2_000, 0);
        let s = &r.streams[0];
        assert_eq!(s.segs[0].sum_us, 400);
        assert_eq!(s.segs[1].sum_us, 600);
    }

    #[test]
    fn retransmission_charges_repair() {
        let o = obs();
        o.mint(5, 0, 0);
        o.transmitted(5, 0, 100);
        // The delivering transmission left 40_000 later (a retransmit):
        // that gap plus a 2_000 stash hold is the repair budget.
        o.arrived(5, 0, 2, 42_000, 0, 40_100);
        o.sink_delivered(5, 0, 2, 44_000);
        o.closed(5, 0, 2, 44_000);
        let s = o.finish_report(0, 50_000, 0);
        assert_eq!(s.streams[0].segs[4].sum_us, 40_000 + 2_000);
    }

    #[test]
    fn relayed_span_keeps_home_origin() {
        let o = obs();
        o.stage_relay(9, 100, 20_100); // home origin 100, relayed at 20_100
        o.mint(9, 0, 25_000);
        o.transmitted(9, 0, 25_000);
        o.arrived(9, 0, 4, 26_000, 0, 25_000);
        o.closed(9, 0, 4, 26_000);
        let s = o.finish_report(0, 30_000, 0);
        let st = &s.streams[0];
        assert_eq!(
            st.segs[5].sum_us,
            25_000 - 100,
            "mirror_relay covers the whole upstream leg"
        );
        assert_eq!(st.total.sum_us, 26_000 - 100, "e2e total from home origin");
    }

    #[test]
    fn deadline_miss_gets_dominant_cause() {
        let o = obs();
        o.set_contract(1, 1_000, 0);
        o.mint(1, 0, 0);
        o.transmitted(1, 0, 100);
        o.arrived(1, 0, 2, 2_000, 1_500, 100); // queueing dominates
        o.closed(1, 0, 2, 2_100);
        let r = o.finish_report(0, 5_000, 0);
        let s = &r.streams[0];
        assert_eq!(s.misses, 1);
        assert_eq!(s.miss_causes[2], 1, "queueing is the dominant cause");
        assert_eq!(s.miss_causes.iter().sum::<u64>(), s.misses);
    }

    #[test]
    fn auditor_breaches_on_burn() {
        let o = obs();
        o.set_contract(1, 500, 100_000); // 10% miss budget
        for seq in 0..10 {
            o.mint(1, seq, seq * 10);
            o.transmitted(1, seq, seq * 10 + 1);
            o.arrived(1, seq, 2, seq * 10 + 2, 0, seq * 10 + 1);
            // Half the spans blow the 500 µs deadline.
            let close = if seq % 2 == 0 {
                seq * 10 + 3
            } else {
                seq * 10 + 900
            };
            o.closed(1, seq, 2, close);
        }
        let r = o.finish_report(0, 2_000_000, 0);
        let s = &r.streams[0];
        assert_eq!(s.misses, 5);
        assert_eq!(s.breach_count, 1, "one breached window");
        let b = s.breaches[0];
        assert_eq!(b.spans, 10);
        assert_eq!(b.misses, 5);
        // 500_000 ppm observed over a 100_000 ppm budget = 5× burn.
        assert_eq!(b.burn_x100, 500);
    }

    #[test]
    fn clean_stream_never_breaches() {
        let o = obs();
        o.set_contract(1, 10_000, 0); // zero miss budget, generous deadline
        for seq in 0..50 {
            let t = seq * 5_000;
            o.mint(1, seq, t);
            o.transmitted(1, seq, t + 10);
            o.arrived(1, seq, 2, t + 500, 0, t + 10);
            o.closed(1, seq, 2, t + 600);
        }
        let r = o.finish_report(0, 300_000, 0);
        assert_eq!(r.misses, 0);
        assert_eq!(r.breaches_total, 0);
    }

    #[test]
    fn open_cap_retires_oldest() {
        let o = obs();
        o.inner.open_cap.set(4);
        for seq in 0..6 {
            o.mint(1, seq, seq);
        }
        assert_eq!(o.abandoned(), 2);
        assert!(o.origin_of(1, 0).is_none());
        assert!(o.origin_of(1, 5).is_some());
    }

    #[test]
    fn report_is_deterministic() {
        let run = || {
            let o = obs();
            o.label(1, "room:r1/main");
            o.set_contract(1, 1_000, 1_000);
            for seq in 0..20 {
                one_span(&o, 1, seq);
            }
            render_report(&[o.finish_report(0, 1_000_000, 3)])
        };
        assert_eq!(run(), run());
    }
}
