//! Seeded-determinism properties of the city scenario generator: the
//! schedule is a pure function of the config (same seed → byte-identical
//! encoding and FNV fingerprint), and the seed actually matters
//! (different seeds → different schedules).

use cm_testkit::{CityConfig, CityEvent, CityMedia, CitySchedule, MediaMix};
use proptest::prelude::*;

fn cfg(seed: u64, rooms: u32, nodes: u32, churn: u32) -> CityConfig {
    CityConfig {
        seed,
        nodes,
        rooms,
        arrival_window_ms: 30_000,
        members_min: 2,
        members_max: 6,
        lifetime_min_ms: 4_000,
        lifetime_max_ms: 20_000,
        churn_percent: churn,
        writes_per_stream: 3,
        mix: MediaMix {
            audio: 5,
            text: 3,
            video: 2,
        },
        zones: 3,
        cross_zone_percent: 40,
        wan_latency_ms: 50,
    }
}

proptest! {
    #[test]
    fn same_seed_byte_identical(
        seed in any::<u64>(),
        rooms in 1u32..60,
        nodes in 6u32..24,
        churn in 0u32..=100,
    ) {
        let c = cfg(seed, rooms, nodes, churn);
        let a = CitySchedule::generate(&c);
        let b = CitySchedule::generate(&c);
        prop_assert_eq!(a.encode(), b.encode());
        prop_assert_eq!(a.fnv(), b.fnv());
        prop_assert_eq!(a.member_slots, b.member_slots);
    }

    #[test]
    fn different_seeds_differ(seed in any::<u64>(), rooms in 4u32..40) {
        let a = CitySchedule::generate(&cfg(seed, rooms, 12, 30));
        let b = CitySchedule::generate(&cfg(seed.wrapping_add(1), rooms, 12, 30));
        // With ≥4 rooms of random open times/lifetimes, a schedule
        // collision across seeds means the seed is being ignored.
        prop_assert_ne!(a.fnv(), b.fnv());
    }

    #[test]
    fn schedule_is_well_formed(seed in any::<u64>(), rooms in 1u32..40) {
        let c = cfg(seed, rooms, 10, 50);
        let s = CitySchedule::generate(&c);
        // Replay order: non-decreasing time.
        for w in s.events.windows(2) {
            prop_assert!(w[0].at_ms() <= w[1].at_ms());
        }
        // Every room opens exactly once, publishes exactly once, closes
        // exactly once, and member 0 joins at the open tick.
        let mut opens = vec![0u32; rooms as usize];
        let mut closes = vec![0u32; rooms as usize];
        let mut publishes = vec![0u32; rooms as usize];
        for e in &s.events {
            match *e {
                CityEvent::RoomOpen { room, members, .. } => {
                    opens[room as usize] += 1;
                    prop_assert!(members >= 1 && members <= c.members_max.min(c.nodes));
                }
                CityEvent::RoomClose { room, .. } => closes[room as usize] += 1,
                CityEvent::Publish { room, media, .. } => {
                    publishes[room as usize] += 1;
                    prop_assert!(matches!(
                        media,
                        CityMedia::AudioTelephone | CityMedia::TextCaptions | CityMedia::VideoMono
                    ));
                }
                CityEvent::Join { node, .. } => prop_assert!(node < c.nodes),
                CityEvent::Leave { .. } => {}
            }
        }
        prop_assert!(opens.iter().all(|&n| n == 1));
        prop_assert!(closes.iter().all(|&n| n == 1));
        prop_assert!(publishes.iter().all(|&n| n == 1));
    }
}
