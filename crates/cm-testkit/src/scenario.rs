//! Full-stack scenario builders.

use crate::users::AutoAcceptUser;
use cm_core::address::{AddressTriple, NetAddr, TransportAddr, Tsap, VcId};
use cm_core::media::MediaProfile;
use cm_core::qos::QosRequirement;
use cm_core::service_class::ServiceClass;
use cm_core::time::SimDuration;
use cm_media::{ClipReader, PlayoutSink, SinkDriver, SourceDriver, StoredClip, StoredSource};
use cm_orchestration::{Hlo, Llo};
use cm_transport::{EntityConfig, TransportService};
use netsim::{Engine, Testbed, TestbedConfig};
use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

/// Configuration of a full stack.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Network shape and impairments.
    pub testbed: TestbedConfig,
    /// Transport entity configuration (applied to every node).
    pub entity: EntityConfig,
    /// LLO session table space per node.
    pub max_sessions: usize,
    /// Build the dual-homed testbed (backup switch) so healers have a
    /// detour to reroute over.
    pub resilient: bool,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            testbed: TestbedConfig::default(),
            entity: EntityConfig::default(),
            max_sessions: 16,
            resilient: false,
        }
    }
}

/// One node's installed services.
pub struct StackNode {
    /// Transport service.
    pub svc: TransportService,
    /// Low-level orchestrator.
    pub llo: Llo,
    /// The node's scenario user (accepts connects, records reports).
    pub user: Rc<AutoAcceptUser>,
}

/// The full stack over a star testbed.
pub struct Stack {
    /// The underlying testbed (network + node roles).
    pub tb: Testbed,
    /// Per-node services.
    pub nodes: HashMap<NetAddr, StackNode>,
    /// The high-level orchestrator over all LLOs.
    pub hlo: Hlo,
    next_tsap: Cell<u16>,
}

impl Stack {
    /// Build the stack: testbed, one transport entity + LLO per
    /// workstation/server node, and the HLO over them.
    pub fn build(cfg: StackConfig) -> Stack {
        let tb = if cfg.resilient {
            cfg.testbed.build_resilient(Engine::new())
        } else {
            cfg.testbed.build(Engine::new())
        };
        let mut nodes = HashMap::new();
        let mut llos = Vec::new();
        for &node in tb.workstations.iter().chain(tb.servers.iter()) {
            let svc = TransportService::install(&tb.net, node, cfg.entity.clone());
            let llo = Llo::install(svc.clone(), cfg.max_sessions);
            let user = AutoAcceptUser::new();
            llos.push(llo.clone());
            nodes.insert(node, StackNode { svc, llo, user });
        }
        Stack {
            tb,
            nodes,
            hlo: Hlo::new(llos),
            next_tsap: Cell::new(100),
        }
    }

    /// The engine driving everything.
    pub fn engine(&self) -> &netsim::Engine {
        self.tb.net.engine()
    }

    /// Run the simulation for `d`.
    pub fn run_for(&self, d: SimDuration) {
        self.engine().run_for(d);
    }

    /// A node's services.
    pub fn node(&self, n: NetAddr) -> &StackNode {
        &self.nodes[&n]
    }

    /// Allocate a fresh TSAP number (scenario-unique).
    pub fn fresh_tsap(&self) -> Tsap {
        let t = self.next_tsap.get();
        self.next_tsap.set(t + 1);
        Tsap(t)
    }

    /// Open a simplex media VC `src → dst`, binding fresh TSAPs with the
    /// nodes' auto-accept users and running the engine until the
    /// handshake completes. Panics if the connect is refused.
    pub fn connect(
        &self,
        src: NetAddr,
        dst: NetAddr,
        class: ServiceClass,
        req: QosRequirement,
    ) -> VcId {
        let src_tsap = self.fresh_tsap();
        let dst_tsap = self.fresh_tsap();
        let sn = self.node(src);
        let dn = self.node(dst);
        sn.svc.bind(src_tsap, sn.user.clone()).expect("bind src");
        dn.svc.bind(dst_tsap, dn.user.clone()).expect("bind dst");
        let triple = AddressTriple::conventional(
            TransportAddr {
                node: src,
                tsap: src_tsap,
            },
            TransportAddr {
                node: dst,
                tsap: dst_tsap,
            },
        );
        let vc = sn
            .svc
            .t_connect_request(triple, class, req)
            .expect("connect request");
        // Generous handshake window: slow/long links take hundreds of ms.
        self.run_for(SimDuration::from_millis(800));
        assert!(
            sn.svc.is_open(vc),
            "scenario connect refused: {:?}",
            sn.user.confirmed.borrow().last()
        );
        vc
    }
}

/// Open a media VC for `profile` between two nodes of a stack.
pub fn connect_media(stack: &Stack, src: NetAddr, dst: NetAddr, profile: &MediaProfile) -> VcId {
    stack.connect(src, dst, ServiceClass::cm_default(), profile.requirement())
}

/// One orchestrated stream: VC + source + sink actors, registered with the
/// LLOs at both ends.
pub struct MediaStream {
    /// The VC.
    pub vc: VcId,
    /// Source actor (at the VC's source node).
    pub source: Rc<StoredSource>,
    /// Sink actor (at the VC's destination node).
    pub sink: Rc<PlayoutSink>,
}

impl MediaStream {
    /// Build a stream: connect the VC, attach a [`StoredSource`] playing
    /// `clip` and a [`PlayoutSink`] presenting at the clip rate.
    pub fn build(
        stack: &Stack,
        src: NetAddr,
        dst: NetAddr,
        profile: &MediaProfile,
        clip: &StoredClip,
    ) -> MediaStream {
        Self::build_with_class(stack, src, dst, profile, clip, ServiceClass::cm_default())
    }

    /// As [`MediaStream::build`] with an explicit service class.
    pub fn build_with_class(
        stack: &Stack,
        src: NetAddr,
        dst: NetAddr,
        profile: &MediaProfile,
        clip: &StoredClip,
        class: ServiceClass,
    ) -> MediaStream {
        let vc = stack.connect(src, dst, class, profile.requirement());
        let reader: ClipReader = clip.reader();
        let source = StoredSource::new(stack.node(src).svc.clone(), vc, reader);
        SourceDriver::register(&stack.node(src).llo, vc, &source);
        let sink = PlayoutSink::new(stack.node(dst).svc.clone(), vc, clip.rate);
        SinkDriver::register(&stack.node(dst).llo, vc, &sink);
        MediaStream { vc, source, sink }
    }
}

/// The film scenario of §3.6: separately stored audio and video tracks of
/// one film, played out in lip sync at a single workstation. Audio and
/// video come from (possibly different) storage servers with their own
/// clock skews.
pub struct FilmScenario {
    /// The stack.
    pub stack: Stack,
    /// Audio stream (50 blocks/s telephone-grade track).
    pub audio: MediaStream,
    /// Video stream (25 f/s mono).
    pub video: MediaStream,
    /// The common sink workstation (the orchestrating node, fig. 5).
    pub workstation: NetAddr,
}

impl FilmScenario {
    /// Build the film: `skews_ppm = (audio server, video server)` clock
    /// skews; clip length in seconds.
    pub fn build(skews_ppm: (i32, i32), secs: u64, mut cfg: StackConfig) -> FilmScenario {
        cfg.testbed.servers = 2;
        cfg.testbed.workstations = 1;
        // Node order in the builder: workstations then servers; clocks
        // cycle through the list, so pin them explicitly.
        cfg.testbed.clock_skews_ppm = vec![0, skews_ppm.0, skews_ppm.1];
        let stack = Stack::build(cfg);
        let workstation = stack.tb.workstations[0];
        let audio_server = stack.tb.servers[0];
        let video_server = stack.tb.servers[1];

        let audio_profile = MediaProfile::audio_telephone();
        let video_profile = MediaProfile::video_mono();
        let audio_clip = StoredClip::cbr_for(&audio_profile, secs);
        let video_clip = StoredClip::cbr_for(&video_profile, secs);

        let audio = MediaStream::build(
            &stack,
            audio_server,
            workstation,
            &audio_profile,
            &audio_clip,
        );
        let video = MediaStream::build(
            &stack,
            video_server,
            workstation,
            &video_profile,
            &video_clip,
        );
        FilmScenario {
            stack,
            audio,
            video,
            workstation,
        }
    }

    /// The skew meter over both presentation logs.
    pub fn skew_meter(&self) -> cm_media::SkewMeter {
        cm_media::SkewMeter::new(vec![
            (
                MediaProfile::audio_telephone().osdu_rate,
                self.audio.sink.log.borrow().clone(),
            ),
            (
                MediaProfile::video_mono().osdu_rate,
                self.video.sink.log.borrow().clone(),
            ),
        ])
    }
}

/// The language laboratory of §3.6: several audio tracks stored on one
/// server, distributed to different workstations in a live lesson. The
/// *source* is the common (orchestrating) node.
pub struct LanguageLab {
    /// The stack.
    pub stack: Stack,
    /// One stream per student workstation.
    pub tracks: Vec<MediaStream>,
    /// The storage server (common node).
    pub server: NetAddr,
}

impl LanguageLab {
    /// Build a lab with `students` workstations, each with the given clock
    /// skew (cycled), playing `secs` seconds of telephone audio.
    pub fn build(
        students: usize,
        student_skews_ppm: Vec<i32>,
        secs: u64,
        mut cfg: StackConfig,
    ) -> LanguageLab {
        cfg.testbed.workstations = students;
        cfg.testbed.servers = 1;
        let mut skews = Vec::new();
        for i in 0..students {
            skews.push(
                student_skews_ppm
                    .get(i % student_skews_ppm.len().max(1))
                    .copied()
                    .unwrap_or(0),
            );
        }
        skews.push(0); // the server (common node) is the datum clock
        cfg.testbed.clock_skews_ppm = skews;
        let stack = Stack::build(cfg);
        let server = stack.tb.servers[0];
        let profile = MediaProfile::audio_telephone();
        let clip = StoredClip::cbr_for(&profile, secs);
        let tracks: Vec<MediaStream> = stack
            .tb
            .workstations
            .clone()
            .iter()
            .map(|&w| MediaStream::build(&stack, server, w, &profile, &clip))
            .collect();
        LanguageLab {
            stack,
            tracks,
            server,
        }
    }
}
