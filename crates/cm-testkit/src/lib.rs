//! # cm-testkit — shared scenario builders
//!
//! Assembles the full stack (network testbed → transport entities → LLOs →
//! HLO → media actors) into ready-made scenarios used by the integration
//! tests, the examples and the experiment harness: the *film* (lip-sync,
//! §3.6), the *language laboratory* (§3.6) and the captioned-video session.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod city;
pub mod faults;
pub mod scenario;
pub mod users;
pub mod zone;

pub use city::{CityConfig, CityEvent, CityMedia, CitySchedule, MediaMix};
pub use faults::{FaultPlan, RevocationRouter};
pub use scenario::{connect_media, FilmScenario, LanguageLab, Stack, StackConfig};
pub use users::AutoAcceptUser;
pub use zone::{CityWire, ZoneEvent, ZonePlan, ZoneRoomInfo, ZoneSchedule};
