//! Zone partitioner: overlay a multi-zone split on a generated city.
//!
//! The city schedule stays exactly what [`CitySchedule::generate`]
//! produces — the partitioner is a *pure overlay* computed from hashes
//! of `(seed, room)`, deliberately touching no RNG stream, so adding
//! zones never perturbs the flat schedule (its FNV fingerprint is
//! unchanged). Each room gets a *home* zone; a configured fraction of
//! rooms with enough members also get up to two *guest* zones whose
//! members join a local **mirror** of the room instead of crossing the
//! wide area one by one:
//!
//! ```text
//!   home zone                      guest zone
//!   ┌───────────────┐   1 envelope ┌────────────────┐
//!   │ room ── relay ─┼─────────────┼→ relay ── mirror│
//!   │  ↑members↑     │  per OSDU   │        ↑members↑│
//!   └───────────────┘              └────────────────┘
//! ```
//!
//! A published OSDU crosses each inter-zone link **once** (the home
//! relay fans it out per guest *zone*, not per guest member) and the
//! guest relay re-publishes it locally — the paper's orchestration
//! argument, and the reason inter-zone byte counts stay flat as rooms
//! grow members.
//!
//! Node indices are remapped into per-zone worlds of
//! [`ZonePlan::nodes_per_zone`] regular leaves plus one dedicated relay
//! leaf (index `nodes_per_zone`), so relays never collide with members
//! on the one-peer-per-node admission rule.

use crate::city::{CityConfig, CityEvent, CityMedia, CitySchedule};

/// Cross-zone wire messages for the sharded city — the `Send` payload
/// carried by `cm-cluster` envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CityWire {
    /// Home published the room's stream: guest relays open their mirror
    /// stream with the same media profile.
    MirrorPublish {
        /// Dense room index.
        room: u32,
        /// Media profile of the mirrored stream.
        media: CityMedia,
    },
    /// One OSDU crossing the wide area (once per guest zone, whatever
    /// the member count): the guest relay re-emits a synthetic payload
    /// of the same tag and length into the mirror stream.
    Media {
        /// Dense room index.
        room: u32,
        /// Payload tag (`room << 32 | osdu index`), preserved so guest
        /// deliveries are attributable.
        tag: u64,
        /// Payload length in bytes.
        len: u32,
        /// Causal provenance: home-zone write time of the OSDU, µs (zero
        /// when tracing is off).
        origin_us: u64,
        /// Causal provenance: when the home relay captured and forwarded
        /// the OSDU, µs (zero when tracing is off).
        relayed_at_us: u64,
    },
}

/// One zone-local scheduled action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneEvent {
    /// A flat city event with its node index remapped to this zone's
    /// world. `RoomOpen` capacities are adjusted for the relay slot and
    /// count only this zone's members.
    City(CityEvent),
    /// Home side of a cross-zone room: the relay subscriber joins (from
    /// the relay leaf) so it can forward the stream to guest zones.
    RelayJoin {
        /// Fire time, ms of simulated time.
        at_ms: u64,
        /// Dense room index.
        room: u32,
    },
    /// Guest side: open the local mirror room (capacity = this zone's
    /// guest members + the relay publisher).
    MirrorOpen {
        /// Fire time, ms of simulated time.
        at_ms: u64,
        /// Dense room index.
        room: u32,
        /// Mirror capacity: guest members here + 1 relay publisher.
        capacity: u32,
    },
    /// Guest side: the home room closed; tear the mirror down.
    MirrorClose {
        /// Fire time, ms of simulated time.
        at_ms: u64,
        /// Dense room index.
        room: u32,
    },
}

impl ZoneEvent {
    /// The event's fire time in simulated milliseconds.
    pub fn at_ms(&self) -> u64 {
        match *self {
            ZoneEvent::City(ev) => ev.at_ms(),
            ZoneEvent::RelayJoin { at_ms, .. }
            | ZoneEvent::MirrorOpen { at_ms, .. }
            | ZoneEvent::MirrorClose { at_ms, .. } => at_ms,
        }
    }
}

/// Where one room's members live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneRoomInfo {
    /// Zone hosting the real room (and its publisher).
    pub home: u32,
    /// Guest zones (0–2 entries, distinct from `home`); empty for
    /// zone-local rooms.
    pub guests: Vec<u32>,
    /// The room's node base from the flat schedule (recoverable as the
    /// `RoomOpen` host).
    pub node_base: u32,
    /// Member count from the flat schedule.
    pub members: u32,
}

impl ZoneRoomInfo {
    /// Which zone member `m` of this room lives in: the publisher stays
    /// home, other members round-robin across home + guests.
    pub fn member_zone(&self, m: u32) -> u32 {
        if m == 0 || self.guests.is_empty() {
            return self.home;
        }
        let fold = 1 + self.guests.len() as u32;
        match m % fold {
            0 => self.home,
            k => self.guests[(k - 1) as usize],
        }
    }

    /// Members of this room living in `zone`.
    pub fn members_in(&self, zone: u32) -> u32 {
        (0..self.members)
            .filter(|&m| self.member_zone(m) == zone)
            .count() as u32
    }
}

/// Per-zone slice of the partitioned schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ZoneSchedule {
    /// Events in replay order (inherited from the flat schedule's
    /// sort, with relay/mirror events pinned to their room-open and
    /// room-close ticks).
    pub events: Vec<ZoneEvent>,
    /// `Join` events in this zone (mirror joins included).
    pub member_slots: u64,
}

/// The partitioned city: one schedule per zone plus the room placement
/// table the executor needs to route envelopes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZonePlan {
    /// Zone count (≥ 1).
    pub zones: u32,
    /// Regular leaves per zone; the relay leaf is index
    /// `nodes_per_zone`, so each zone world has `nodes_per_zone + 1`
    /// leaves.
    pub nodes_per_zone: u32,
    /// One-way inter-zone latency, ms (the runner's lookahead).
    pub wan_latency_ms: u64,
    /// Per-zone schedules, indexed by zone id.
    pub per_zone: Vec<ZoneSchedule>,
    /// Placement of every room, indexed by dense room id.
    pub rooms: Vec<ZoneRoomInfo>,
    /// Rooms that span zones.
    pub cross_rooms: u32,
}

/// SplitMix64 — the standard 64-bit finalizer; pure, no stream state.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ZonePlan {
    /// Overlay `cfg.zones` zones on an already-generated schedule.
    ///
    /// Pure and deterministic: the zone of a room is a hash of
    /// `(seed, room)`, never an RNG draw, so the flat schedule's bytes
    /// (and fingerprint) are untouched by partitioning and the same
    /// config always yields the same plan.
    pub fn partition(cfg: &CityConfig, schedule: &CitySchedule) -> ZonePlan {
        let zones = cfg.zones.max(1);
        let members_cap = cfg.members_max.min(cfg.nodes);
        let nodes_per_zone = (cfg.nodes / zones).max(members_cap).max(2);
        let mut per_zone = vec![ZoneSchedule::default(); zones as usize];
        let mut rooms: Vec<Option<ZoneRoomInfo>> = Vec::new();
        let mut cross_rooms = 0u32;

        let info_of = |rooms: &Vec<Option<ZoneRoomInfo>>, room: u32| -> ZoneRoomInfo {
            rooms
                .get(room as usize)
                .and_then(Clone::clone)
                .expect("schedule replays RoomOpen before other room events")
        };

        for &ev in &schedule.events {
            match ev {
                CityEvent::RoomOpen {
                    at_ms,
                    room,
                    host,
                    members,
                } => {
                    let home = (splitmix(cfg.seed ^ ((room as u64) << 1)) % zones as u64) as u32;
                    let wants_cross = zones > 1
                        && members >= 3
                        && splitmix(cfg.seed ^ ((room as u64) << 1 | 1)) % 100
                            < cfg.cross_zone_percent as u64;
                    let guests: Vec<u32> = if wants_cross {
                        (1..=2u32)
                            .map(|k| (home + k) % zones)
                            .filter(|&g| g != home)
                            .take(zones.saturating_sub(1).min(2) as usize)
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let info = ZoneRoomInfo {
                        home,
                        guests,
                        node_base: host,
                        members,
                    };
                    if !info.guests.is_empty() {
                        cross_rooms += 1;
                    }
                    let home_members = info.members_in(home);
                    let relay_slot = u32::from(!info.guests.is_empty());
                    per_zone[home as usize]
                        .events
                        .push(ZoneEvent::City(CityEvent::RoomOpen {
                            at_ms,
                            room,
                            host: host % nodes_per_zone,
                            members: home_members + relay_slot,
                        }));
                    if relay_slot == 1 {
                        per_zone[home as usize]
                            .events
                            .push(ZoneEvent::RelayJoin { at_ms, room });
                    }
                    for &g in &info.guests {
                        per_zone[g as usize].events.push(ZoneEvent::MirrorOpen {
                            at_ms,
                            room,
                            capacity: info.members_in(g) + 1,
                        });
                    }
                    if rooms.len() <= room as usize {
                        rooms.resize(room as usize + 1, None);
                    }
                    rooms[room as usize] = Some(info);
                }
                CityEvent::Join {
                    at_ms,
                    room,
                    member,
                    ..
                } => {
                    let info = info_of(&rooms, room);
                    let zone = info.member_zone(member);
                    let node = (info.node_base + member) % nodes_per_zone;
                    let zs = &mut per_zone[zone as usize];
                    zs.events.push(ZoneEvent::City(CityEvent::Join {
                        at_ms,
                        room,
                        member,
                        node,
                    }));
                    zs.member_slots += 1;
                }
                CityEvent::Publish { room, .. } => {
                    // The publisher is always home.
                    let info = info_of(&rooms, room);
                    per_zone[info.home as usize]
                        .events
                        .push(ZoneEvent::City(ev));
                }
                CityEvent::Leave {
                    at_ms,
                    room,
                    member,
                } => {
                    let info = info_of(&rooms, room);
                    let zone = info.member_zone(member);
                    per_zone[zone as usize]
                        .events
                        .push(ZoneEvent::City(CityEvent::Leave {
                            at_ms,
                            room,
                            member,
                        }));
                }
                CityEvent::RoomClose { at_ms, room } => {
                    let info = info_of(&rooms, room);
                    per_zone[info.home as usize]
                        .events
                        .push(ZoneEvent::City(ev));
                    for &g in &info.guests {
                        per_zone[g as usize]
                            .events
                            .push(ZoneEvent::MirrorClose { at_ms, room });
                    }
                }
            }
        }

        ZonePlan {
            zones,
            nodes_per_zone,
            wan_latency_ms: cfg.wan_latency_ms.max(1),
            per_zone,
            rooms: rooms.into_iter().map(Option::unwrap).collect(),
            cross_rooms,
        }
    }

    /// The relay leaf's node index in every zone world.
    pub fn relay_node(&self) -> u32 {
        self.nodes_per_zone
    }

    /// Every ordered zone pair that actually exchanges traffic —
    /// `(home, guest)` for each cross-zone room, deduplicated. Traffic
    /// is strictly home → guest (guests never send back), so this is
    /// the complete edge set of the wide-area lookahead matrix.
    pub fn wan_edges(&self) -> Vec<(u32, u32)> {
        let mut edges: Vec<(u32, u32)> = self
            .rooms
            .iter()
            .flat_map(|r| r.guests.iter().map(move |&g| (r.home, g)))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Sorted times (µs of simulated time) of `zone`'s
    /// *emission-enabling* events: the static schedule points after
    /// which the zone could start forwarding cross-zone traffic it
    /// could not forward before. Every wide-area message — the stream
    /// announcement and each forwarded OSDU — is causally downstream of
    /// a cross-zone room's `Publish` execution (the relay join chain
    /// itself exchanges nothing over the WAN; mirror rooms are opened
    /// by the guest zone's own schedule), so the enabling events are
    /// exactly the cross-zone rooms' `Publish`es. A relay that joins
    /// *after* a publish replays the announcement on join completion,
    /// but that too is bounded: the room turns hot at the publish tick
    /// and stays hot until the relay has forwarded the stream's last
    /// scheduled OSDU, which cannot happen before the join completes.
    /// Between the last forwarded stream draining and the next enabling
    /// event, the zone provably cannot emit — the window stretch the
    /// adaptive runner feeds on.
    pub fn emission_enables_us(&self, zone: u32) -> Vec<u64> {
        self.per_zone[zone as usize]
            .events
            .iter()
            .filter_map(|ev| match *ev {
                ZoneEvent::City(CityEvent::Publish { at_ms, room, .. })
                    if !self.rooms[room as usize].guests.is_empty() =>
                {
                    Some(at_ms * 1_000)
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_for(mut cfg: CityConfig) -> (CityConfig, CitySchedule, ZonePlan) {
        cfg.rooms = cfg.rooms.min(200);
        let schedule = CitySchedule::generate(&cfg);
        let plan = ZonePlan::partition(&cfg, &schedule);
        (cfg, schedule, plan)
    }

    #[test]
    fn partition_is_deterministic_and_leaves_schedule_alone() {
        let cfg = CityConfig::smoke(7);
        let schedule = CitySchedule::generate(&cfg);
        let fnv_before = schedule.fnv();
        let a = ZonePlan::partition(&cfg, &schedule);
        let b = ZonePlan::partition(&cfg, &schedule);
        assert_eq!(a, b);
        assert_eq!(schedule.fnv(), fnv_before);
    }

    #[test]
    fn single_zone_plan_is_the_flat_schedule() {
        let mut cfg = CityConfig::smoke(11);
        cfg.zones = 1;
        let (_, schedule, plan) = plan_for(cfg);
        assert_eq!(plan.per_zone.len(), 1);
        assert_eq!(plan.cross_rooms, 0);
        // With one zone the node world is the flat world, so every
        // event round-trips unchanged.
        let flat: Vec<ZoneEvent> = schedule
            .events
            .iter()
            .map(|&e| ZoneEvent::City(e))
            .collect();
        assert_eq!(plan.per_zone[0].events, flat);
    }

    #[test]
    fn wan_edges_cover_exactly_the_guest_pairs() {
        let (_, _, plan) = plan_for(CityConfig::smoke(7));
        let edges = plan.wan_edges();
        assert!(!edges.is_empty(), "smoke config spans zones");
        // Sorted, deduplicated, never self-directed, and each edge is
        // backed by at least one room.
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(edges, sorted);
        for &(h, g) in &edges {
            assert_ne!(h, g);
            assert!(plan
                .rooms
                .iter()
                .any(|r| r.home == h && r.guests.contains(&g)));
        }
        // And every room's placement is covered by the edge list.
        for r in &plan.rooms {
            for &g in &r.guests {
                assert!(edges.contains(&(r.home, g)));
            }
        }
    }

    #[test]
    fn emission_enables_are_sorted_and_match_cross_room_events() {
        let (cfg, _, plan) = plan_for(CityConfig::smoke(7));
        let mut total = 0usize;
        for z in 0..cfg.zones {
            let enables = plan.emission_enables_us(z);
            assert!(enables.windows(2).all(|w| w[0] <= w[1]), "sorted");
            total += enables.len();
            // Each enable is a cross-zone room's Publish tick.
            for &t in &enables {
                let ms = t / 1_000;
                assert!(plan.per_zone[z as usize].events.iter().any(|ev| {
                    ev.at_ms() == ms
                        && matches!(
                            ev,
                            ZoneEvent::City(CityEvent::Publish { room, .. })
                                if !plan.rooms[*room as usize].guests.is_empty()
                        )
                }));
            }
        }
        assert!(total > 0, "cross rooms must produce enabling events");
    }

    #[test]
    fn every_member_lands_in_exactly_one_zone() {
        let (cfg, schedule, plan) = plan_for(CityConfig::smoke(3));
        let scheduled_joins = schedule
            .events
            .iter()
            .filter(|e| matches!(e, CityEvent::Join { .. }))
            .count() as u64;
        let zone_joins: u64 = plan.per_zone.iter().map(|z| z.member_slots).sum();
        assert_eq!(zone_joins, scheduled_joins);
        assert!(plan.cross_rooms > 0, "smoke config should span zones");
        assert!(cfg.zones > 1);
    }

    #[test]
    fn cross_room_shape_and_capacities_hold() {
        let (_, _, plan) = plan_for(CityConfig::smoke(5));
        for (room, info) in plan.rooms.iter().enumerate() {
            assert!(info.guests.len() <= 2);
            assert!(!info.guests.contains(&info.home));
            assert_eq!(info.member_zone(0), info.home, "publisher stays home");
            // Every zone's member counts sum back to the room size.
            let total: u32 = (0..plan.zones).map(|z| info.members_in(z)).sum();
            assert_eq!(total, info.members, "room {room}");
            // Guests are never empty zones: the relay would idle.
            for &g in &info.guests {
                assert!(info.members_in(g) >= 1, "room {room} guest zone {g}");
            }
        }
        // Mirror capacities match guest membership + relay publisher.
        for (z, zs) in plan.per_zone.iter().enumerate() {
            for ev in &zs.events {
                if let ZoneEvent::MirrorOpen { room, capacity, .. } = *ev {
                    let info = &plan.rooms[room as usize];
                    assert!(info.guests.contains(&(z as u32)));
                    assert_eq!(capacity, info.members_in(z as u32) + 1);
                }
            }
        }
    }

    #[test]
    fn node_indices_stay_inside_the_zone_world() {
        let (_, _, plan) = plan_for(CityConfig::city_10k(1));
        for zs in &plan.per_zone {
            for ev in &zs.events {
                match *ev {
                    ZoneEvent::City(CityEvent::RoomOpen { host, .. }) => {
                        assert!(host < plan.nodes_per_zone);
                    }
                    ZoneEvent::City(CityEvent::Join { node, .. }) => {
                        assert!(node < plan.nodes_per_zone);
                    }
                    _ => {}
                }
            }
        }
    }
}
