//! Declarative fault scenarios over the cm-chaos scheduler.
//!
//! Chaos tests and the recovery benchmark share one idiom for describing
//! a fault timeline:
//!
//! ```ignore
//! FaultPlan::new()
//!     .at_ms(1_000).node_crash(server).for_ms(500)
//!     .at_ms(2_000).link_down(hub, ws).for_ms(300)
//!     .at_ms(3_000).link_flap(hub, server).down_ms(40).up_ms(80).cycles(3)
//!     .at_ms(4_000).partition(&[ws]).for_ms(400)
//!     .at_ms(5_000).revoke(vc)
//!     .schedule(&chaos);
//! ```
//!
//! Node pairs resolve to *every* link between them, both directions, at
//! schedule time — a duplex pair is cut as one fault. Without a duration
//! modifier a fault is permanent.

use cm_chaos::{ChaosObserver, ChaosScheduler, Fault};
use cm_core::address::{NetAddr, VcId};
use cm_core::time::{SimDuration, SimTime};
use cm_transport::{TransportService, VcRole};
use netsim::Network;
use std::rc::Rc;

enum PlanEntry {
    Node {
        node: NetAddr,
        down_for: Option<SimDuration>,
    },
    Link {
        a: NetAddr,
        b: NetAddr,
        down_for: Option<SimDuration>,
    },
    Flap {
        a: NetAddr,
        b: NetAddr,
        down: SimDuration,
        up: SimDuration,
        cycles: u32,
    },
    Part {
        side: Vec<NetAddr>,
        heal_after: Option<SimDuration>,
    },
    Revoke {
        vc: VcId,
    },
}

/// A fault timeline under construction. Build with the chained `at…`
/// methods, then [`FaultPlan::schedule`] it onto a scheduler.
#[derive(Default)]
pub struct FaultPlan {
    cursor: SimTime,
    entries: Vec<(SimTime, PlanEntry)>,
}

impl FaultPlan {
    /// An empty plan (cursor at t = 0).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Move the cursor: subsequent faults are injected at `t`.
    pub fn at(mut self, t: SimTime) -> FaultPlan {
        self.cursor = t;
        self
    }

    /// Move the cursor to `ms` milliseconds of engine time.
    pub fn at_ms(self, ms: u64) -> FaultPlan {
        self.at(SimTime::from_millis(ms))
    }

    fn push(mut self, e: PlanEntry) -> FaultPlan {
        self.entries.push((self.cursor, e));
        self
    }

    /// Crash `node` at the cursor (permanent unless `.for_ms(..)`).
    pub fn node_crash(self, node: NetAddr) -> FaultPlan {
        self.push(PlanEntry::Node {
            node,
            down_for: None,
        })
    }

    /// Cut every link between `a` and `b`, both directions (permanent
    /// unless `.for_ms(..)`).
    pub fn link_down(self, a: NetAddr, b: NetAddr) -> FaultPlan {
        self.push(PlanEntry::Link {
            a,
            b,
            down_for: None,
        })
    }

    /// Flap every link between `a` and `b` (defaults: 50 ms down, 50 ms
    /// up, 3 cycles — override with `.down_ms` / `.up_ms` / `.cycles`).
    pub fn link_flap(self, a: NetAddr, b: NetAddr) -> FaultPlan {
        self.push(PlanEntry::Flap {
            a,
            b,
            down: SimDuration::from_millis(50),
            up: SimDuration::from_millis(50),
            cycles: 3,
        })
    }

    /// Partition `side` from the rest of the network (permanent unless
    /// `.for_ms(..)`).
    pub fn partition(self, side: &[NetAddr]) -> FaultPlan {
        self.push(PlanEntry::Part {
            side: side.to_vec(),
            heal_after: None,
        })
    }

    /// Revoke the reservation held by `vc`.
    pub fn revoke(self, vc: VcId) -> FaultPlan {
        self.push(PlanEntry::Revoke { vc })
    }

    /// Heal the preceding fault after `ms` (crash recovery, link
    /// restoration, partition heal).
    pub fn for_ms(mut self, ms: u64) -> FaultPlan {
        let d = Some(SimDuration::from_millis(ms));
        match self.entries.last_mut().map(|(_, e)| e) {
            Some(PlanEntry::Node { down_for, .. }) | Some(PlanEntry::Link { down_for, .. }) => {
                *down_for = d
            }
            Some(PlanEntry::Part { heal_after, .. }) => *heal_after = d,
            _ => panic!("for_ms must follow node_crash, link_down or partition"),
        }
        self
    }

    /// Set the down phase of the preceding `link_flap`.
    pub fn down_ms(mut self, ms: u64) -> FaultPlan {
        match self.entries.last_mut().map(|(_, e)| e) {
            Some(PlanEntry::Flap { down, .. }) => *down = SimDuration::from_millis(ms),
            _ => panic!("down_ms must follow link_flap"),
        }
        self
    }

    /// Set the up phase of the preceding `link_flap`.
    pub fn up_ms(mut self, ms: u64) -> FaultPlan {
        match self.entries.last_mut().map(|(_, e)| e) {
            Some(PlanEntry::Flap { up, .. }) => *up = SimDuration::from_millis(ms),
            _ => panic!("up_ms must follow link_flap"),
        }
        self
    }

    /// Set the cycle count of the preceding `link_flap`.
    pub fn cycles(mut self, n: u32) -> FaultPlan {
        match self.entries.last_mut().map(|(_, e)| e) {
            Some(PlanEntry::Flap { cycles, .. }) => *cycles = n,
            _ => panic!("cycles must follow link_flap"),
        }
        self
    }

    /// Resolve node pairs against the scheduler's network and schedule
    /// every fault at its cursor time.
    pub fn schedule(&self, chaos: &ChaosScheduler) {
        let net = chaos.network();
        for (at, entry) in &self.entries {
            match entry {
                PlanEntry::Node { node, down_for } => chaos.inject_at(
                    *at,
                    Fault::NodeCrash {
                        node: *node,
                        down_for: *down_for,
                    },
                ),
                PlanEntry::Link { a, b, down_for } => {
                    for link in duplex_links(net, *a, *b) {
                        chaos.inject_at(
                            *at,
                            Fault::LinkDown {
                                link,
                                down_for: *down_for,
                            },
                        );
                    }
                }
                PlanEntry::Flap {
                    a,
                    b,
                    down,
                    up,
                    cycles,
                } => {
                    for link in duplex_links(net, *a, *b) {
                        chaos.inject_at(
                            *at,
                            Fault::LinkFlap {
                                link,
                                down_for: *down,
                                up_for: *up,
                                cycles: *cycles,
                            },
                        );
                    }
                }
                PlanEntry::Part { side, heal_after } => chaos.inject_at(
                    *at,
                    Fault::Partition {
                        side: side.clone(),
                        heal_after: *heal_after,
                    },
                ),
                PlanEntry::Revoke { vc } => {
                    chaos.inject_at(*at, Fault::ReservationRevoked { vc: *vc })
                }
            }
        }
    }
}

fn duplex_links(net: &Network, a: NetAddr, b: NetAddr) -> Vec<netsim::LinkId> {
    let mut links = net.links_between(a, b);
    links.extend(net.links_between(b, a));
    assert!(!links.is_empty(), "no links between {a:?} and {b:?}");
    links
}

/// Chaos observer delivering out-of-band indications into the stack: a
/// revoked reservation is announced to the victim VC's *source* entity
/// (the end that owns the sending credit and the healer), as the
/// reservation protocol of a real network would.
pub struct RevocationRouter {
    svcs: Vec<TransportService>,
}

impl RevocationRouter {
    /// A router over the given transport services (one per node).
    pub fn new(svcs: Vec<TransportService>) -> RevocationRouter {
        RevocationRouter { svcs }
    }
}

impl ChaosObserver for RevocationRouter {
    fn on_chaos(&self, _net: &Network, fault: &Fault, heal: bool) {
        let Fault::ReservationRevoked { vc } = fault else {
            return;
        };
        if heal {
            return;
        }
        for svc in &self.svcs {
            if svc.role(*vc) == Ok(VcRole::Source) {
                svc.on_reservation_revoked(*vc);
                return;
            }
        }
    }
}

/// Wiring sugar on [`Stack`](crate::Stack): a chaos scheduler with the
/// revocation router installed over every node's transport service.
impl crate::Stack {
    /// A [`ChaosScheduler`] injecting into this stack's network, with
    /// reservation revocations routed to the victim VC's source entity.
    pub fn chaos(&self) -> ChaosScheduler {
        let chaos = ChaosScheduler::new(&self.tb.net);
        let mut nodes: Vec<NetAddr> = self.nodes.keys().copied().collect();
        nodes.sort();
        let svcs = nodes
            .into_iter()
            .map(|n| self.nodes[&n].svc.clone())
            .collect();
        chaos.set_observer(Rc::new(RevocationRouter::new(svcs)));
        chaos
    }
}
