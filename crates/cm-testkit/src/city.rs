//! City-scale scenario generator (ROADMAP item 2).
//!
//! Produces a *seeded, fully precomputed* schedule of room arrivals,
//! member churn and media publishes: a pure function of [`CityConfig`],
//! independent of the engine, so the schedule can be hashed and compared
//! byte-for-byte before anything runs. The executor that replays a
//! schedule against a live platform lives in `cm-bench` (`city_run`),
//! keeping this crate free of session/platform dependencies.
//!
//! The workload shape follows the paper's pitch of many concurrent
//! continuous-media sessions: rooms open at uniform times across an
//! arrival window, live for a bounded random lifetime, carry one
//! published stream with a media profile drawn from a weighted mix, and
//! lose a configurable fraction of members early (churn) before the room
//! closes and the remainder leave.

use cm_core::DetRng;

/// Media profile selector carried in the schedule (resolved to a
/// `MediaProfile` by the executor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CityMedia {
    /// 32 Kbit/s telephone voice — the bulk of a city's rooms.
    AudioTelephone,
    /// Caption-rate text, the lightest profile.
    TextCaptions,
    /// 25 f/s monochrome video, the heaviest profile in the mix.
    VideoMono,
}

impl CityMedia {
    /// Stable wire code used in the canonical schedule encoding.
    pub fn code(self) -> u8 {
        match self {
            CityMedia::AudioTelephone => 0,
            CityMedia::TextCaptions => 1,
            CityMedia::VideoMono => 2,
        }
    }
}

/// One scheduled action, timestamped in simulated milliseconds.
///
/// `room` and `member` are dense indices (`0..rooms`, `0..members`);
/// `node` is an index into the platform node vector. Members of one room
/// always sit on distinct nodes (the session layer admits one peer per
/// node per room), but nodes are reused freely across rooms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CityEvent {
    /// Create the room (capacity `members`) hosted at `host`.
    RoomOpen {
        /// Fire time, ms of simulated time.
        at_ms: u64,
        /// Dense room index.
        room: u32,
        /// Node index hosting the room's registry agent.
        host: u32,
        /// Member count the room was sized for.
        members: u32,
    },
    /// Member `member` of `room` joins from `node`.
    Join {
        /// Fire time, ms of simulated time.
        at_ms: u64,
        /// Dense room index.
        room: u32,
        /// Dense member index within the room.
        member: u32,
        /// Node index the member joins from.
        node: u32,
    },
    /// Member 0 publishes the room's stream and writes `writes` OSDUs.
    Publish {
        /// Fire time, ms of simulated time.
        at_ms: u64,
        /// Dense room index.
        room: u32,
        /// Media profile of the published stream.
        media: CityMedia,
        /// OSDUs the publisher writes into the stream.
        writes: u32,
    },
    /// Early (churn) departure of one member.
    Leave {
        /// Fire time, ms of simulated time.
        at_ms: u64,
        /// Dense room index.
        room: u32,
        /// Dense member index within the room.
        member: u32,
    },
    /// End of the room's lifetime: every remaining member leaves.
    RoomClose {
        /// Fire time, ms of simulated time.
        at_ms: u64,
        /// Dense room index.
        room: u32,
    },
}

impl CityEvent {
    /// The event's fire time in simulated milliseconds.
    pub fn at_ms(&self) -> u64 {
        match *self {
            CityEvent::RoomOpen { at_ms, .. }
            | CityEvent::Join { at_ms, .. }
            | CityEvent::Publish { at_ms, .. }
            | CityEvent::Leave { at_ms, .. }
            | CityEvent::RoomClose { at_ms, .. } => at_ms,
        }
    }

    /// Canonical fixed-width encoding: `[kind, at_ms, room, a, b]`.
    fn encode_into(&self, out: &mut Vec<u8>) {
        let (kind, at_ms, room, a, b) = match *self {
            CityEvent::RoomOpen {
                at_ms,
                room,
                host,
                members,
            } => (0u8, at_ms, room, host, members),
            CityEvent::Join {
                at_ms,
                room,
                member,
                node,
            } => (1, at_ms, room, member, node),
            CityEvent::Publish {
                at_ms,
                room,
                media,
                writes,
            } => (2, at_ms, room, media.code() as u32, writes),
            CityEvent::Leave {
                at_ms,
                room,
                member,
            } => (3, at_ms, room, member, 0),
            CityEvent::RoomClose { at_ms, room } => (4, at_ms, room, 0, 0),
        };
        out.push(kind);
        out.extend_from_slice(&at_ms.to_le_bytes());
        out.extend_from_slice(&room.to_le_bytes());
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }

    /// Sort rank so same-tick events replay in a stable, causally sound
    /// order (opens before joins before publishes before departures).
    fn rank(&self) -> (u64, u8, u32, u32) {
        match *self {
            CityEvent::RoomOpen { at_ms, room, .. } => (at_ms, 0, room, 0),
            CityEvent::Join {
                at_ms,
                room,
                member,
                ..
            } => (at_ms, 1, room, member),
            CityEvent::Publish { at_ms, room, .. } => (at_ms, 2, room, 0),
            CityEvent::Leave {
                at_ms,
                room,
                member,
            } => (at_ms, 3, room, member),
            CityEvent::RoomClose { at_ms, room } => (at_ms, 4, room, 0),
        }
    }
}

/// Relative weights of the media mix (need not sum to anything).
#[derive(Debug, Clone, Copy)]
pub struct MediaMix {
    /// Weight of telephone-quality audio rooms.
    pub audio: u32,
    /// Weight of caption-text rooms.
    pub text: u32,
    /// Weight of monochrome-video rooms.
    pub video: u32,
}

/// Everything the generator needs; the schedule is a pure function of
/// this value.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Master seed; every distribution below forks from it by label.
    pub seed: u64,
    /// Platform nodes available (members of one room need distinct nodes,
    /// so `members_max` is capped to this).
    pub nodes: u32,
    /// Rooms opened over the whole run.
    pub rooms: u32,
    /// Room open times are uniform in `[0, arrival_window_ms)`.
    pub arrival_window_ms: u64,
    /// Inclusive per-room member-count range.
    pub members_min: u32,
    /// Inclusive per-room member-count range.
    pub members_max: u32,
    /// Inclusive per-room lifetime range (open → close), ms.
    pub lifetime_min_ms: u64,
    /// Inclusive per-room lifetime range (open → close), ms.
    pub lifetime_max_ms: u64,
    /// Percent (0–100) of non-publisher members that leave early.
    pub churn_percent: u32,
    /// OSDUs the publisher writes into each room's stream.
    pub writes_per_stream: u32,
    /// Weighted media mix across rooms.
    pub mix: MediaMix,
    /// Logical zones the city is partitioned into (see
    /// [`ZonePlan`](crate::zone::ZonePlan)). Part of the workload, not
    /// of the execution: the partition is fixed per config so a sharded
    /// run is comparable — byte-identical, in fact — across worker
    /// counts. `1` disables partitioning (the flat legacy world).
    pub zones: u32,
    /// Percent (0–100) of rooms whose members span multiple zones.
    pub cross_zone_percent: u32,
    /// One-way latency of every inter-zone (wide-area) link, ms. Also
    /// the conservative lookahead of the sharded runner.
    pub wan_latency_ms: u64,
}

impl CityConfig {
    /// Small config for CI smoke runs: ~50 rooms on 16 nodes.
    pub fn smoke(seed: u64) -> CityConfig {
        CityConfig {
            seed,
            nodes: 16,
            rooms: 50,
            arrival_window_ms: 20_000,
            members_min: 3,
            members_max: 8,
            lifetime_min_ms: 5_000,
            lifetime_max_ms: 15_000,
            churn_percent: 20,
            writes_per_stream: 6,
            mix: MediaMix {
                audio: 6,
                text: 3,
                video: 1,
            },
            zones: 4,
            cross_zone_percent: 30,
            wan_latency_ms: 50,
        }
    }

    /// The headline city: 10k rooms / ≥100k member slots on 256 nodes.
    pub fn city_10k(seed: u64) -> CityConfig {
        CityConfig {
            seed,
            nodes: 256,
            rooms: 10_000,
            arrival_window_ms: 600_000,
            members_min: 6,
            members_max: 16,
            lifetime_min_ms: 30_000,
            lifetime_max_ms: 120_000,
            churn_percent: 25,
            writes_per_stream: 24,
            mix: MediaMix {
                audio: 6,
                text: 3,
                video: 1,
            },
            zones: 8,
            cross_zone_percent: 20,
            wan_latency_ms: 50,
        }
    }
}

/// A generated schedule: the event list plus summary counts.
#[derive(Debug, Clone)]
pub struct CitySchedule {
    /// Events in replay order (time, then stable same-tick rank).
    pub events: Vec<CityEvent>,
    /// Total member slots scheduled (count of `Join` events).
    pub member_slots: u64,
    /// Total OSDUs scheduled for writing across all publishes.
    pub writes: u64,
    /// Horizon: latest event time plus the longest room lifetime slack.
    pub horizon_ms: u64,
}

impl CitySchedule {
    /// Generate the schedule for `cfg` — pure and deterministic: the same
    /// config yields a byte-identical event list.
    pub fn generate(cfg: &CityConfig) -> CitySchedule {
        assert!(cfg.nodes >= 2, "need at least two nodes");
        assert!(cfg.members_min >= 1, "rooms need at least a publisher");
        assert!(cfg.members_min <= cfg.members_max, "member range empty");
        assert!(
            cfg.lifetime_min_ms <= cfg.lifetime_max_ms,
            "lifetime range empty"
        );
        let members_cap = cfg.members_max.min(cfg.nodes);
        let mut root = DetRng::from_seed(cfg.seed);
        let mut events = Vec::new();
        let mut member_slots = 0u64;
        let mut writes = 0u64;
        let mut horizon = 0u64;
        let mix_total = (cfg.mix.audio + cfg.mix.text + cfg.mix.video).max(1) as u64;
        for room in 0..cfg.rooms {
            let mut rng = root.fork(&format!("room{room}"));
            let open = rng.range_inclusive(0, cfg.arrival_window_ms.saturating_sub(1));
            let lifetime = rng.range_inclusive(cfg.lifetime_min_ms, cfg.lifetime_max_ms);
            let close = open + lifetime;
            let members = rng
                .range_inclusive(cfg.members_min.min(members_cap) as u64, members_cap as u64)
                as u32;
            let node_base = rng.range_inclusive(0, cfg.nodes as u64 - 1) as u32;
            let node_of = |m: u32| (node_base + m) % cfg.nodes;
            let draw = rng.range_inclusive(0, mix_total - 1);
            let media = if draw < cfg.mix.audio as u64 {
                CityMedia::AudioTelephone
            } else if draw < (cfg.mix.audio + cfg.mix.text) as u64 {
                CityMedia::TextCaptions
            } else {
                CityMedia::VideoMono
            };
            events.push(CityEvent::RoomOpen {
                at_ms: open,
                room,
                host: node_of(0),
                members,
            });
            // The publisher joins as soon as the room exists; its publish
            // follows once the capacity-only admission has settled.
            events.push(CityEvent::Join {
                at_ms: open,
                room,
                member: 0,
                node: node_of(0),
            });
            member_slots += 1;
            events.push(CityEvent::Publish {
                at_ms: open + 50,
                room,
                media,
                writes: cfg.writes_per_stream,
            });
            writes += cfg.writes_per_stream as u64;
            // Listeners trickle in over the first half of the lifetime.
            let join_hi = open + 100 + lifetime / 2;
            for m in 1..members {
                let join_at = rng.range_inclusive(open + 100, join_hi);
                events.push(CityEvent::Join {
                    at_ms: join_at,
                    room,
                    member: m,
                    node: node_of(m),
                });
                member_slots += 1;
                if rng.range_inclusive(0, 99) < cfg.churn_percent as u64 {
                    let leave_at = rng.range_inclusive(join_at + 200, close.max(join_at + 201) - 1);
                    events.push(CityEvent::Leave {
                        at_ms: leave_at,
                        room,
                        member: m,
                    });
                }
            }
            events.push(CityEvent::RoomClose { at_ms: close, room });
            horizon = horizon.max(close);
        }
        events.sort_by_key(|e| e.rank());
        CitySchedule {
            events,
            member_slots,
            writes,
            // Generous drain slack so in-flight teardowns complete.
            horizon_ms: horizon + 5_000,
        }
    }

    /// Canonical byte encoding of the whole schedule (fixed-width records
    /// in replay order).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.events.len() * 21);
        for e in &self.events {
            e.encode_into(&mut out);
        }
        out
    }

    /// FNV-1a over [`CitySchedule::encode`] — the determinism fingerprint
    /// pinned by the seeded-determinism property test.
    pub fn fnv(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.encode() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}
