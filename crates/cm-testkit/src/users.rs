//! Transport users for scenario plumbing.

use cm_core::address::{AddressTriple, VcId};
use cm_core::error::DisconnectReason;
use cm_core::qos::{QosParams, QosRequirement, QosTolerance};
use cm_core::service_class::ServiceClass;
use cm_transport::{QosReport, TransportService, TransportUser};
use std::cell::RefCell;
use std::rc::Rc;

/// A transport user that accepts every connect and renegotiation, and
/// records what happened (sufficient for scenario plumbing; protocol
/// conformance is asserted by the dedicated transport tests).
#[derive(Default)]
pub struct AutoAcceptUser {
    /// Successful connects confirmed to this user.
    pub confirmed: RefCell<Vec<(VcId, Result<QosParams, DisconnectReason>)>>,
    /// QoS degradation reports received.
    pub qos_reports: RefCell<Vec<QosReport>>,
    /// Disconnect indications received.
    pub disconnects: RefCell<Vec<(VcId, DisconnectReason)>>,
    /// Error (loss) indications received.
    pub errors: RefCell<Vec<(VcId, u64)>>,
}

impl AutoAcceptUser {
    /// A fresh auto-accepting user.
    pub fn new() -> Rc<AutoAcceptUser> {
        Rc::new(AutoAcceptUser::default())
    }
}

impl TransportUser for AutoAcceptUser {
    fn t_connect_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        _triple: AddressTriple,
        _class: ServiceClass,
        _qos: QosRequirement,
    ) {
        svc.t_connect_response(vc, true).expect("accept connect");
    }

    fn t_connect_confirm(
        &self,
        _svc: &TransportService,
        vc: VcId,
        result: Result<QosParams, DisconnectReason>,
    ) {
        self.confirmed.borrow_mut().push((vc, result));
    }

    fn t_disconnect_indication(&self, _svc: &TransportService, vc: VcId, reason: DisconnectReason) {
        self.disconnects.borrow_mut().push((vc, reason));
    }

    fn t_qos_indication(&self, _svc: &TransportService, report: QosReport) {
        self.qos_reports.borrow_mut().push(report);
    }

    fn t_renegotiate_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        _new_tolerance: QosTolerance,
    ) {
        svc.t_renegotiate_response(vc, true).expect("accept reneg");
    }

    fn t_error_indication(&self, _svc: &TransportService, vc: VcId, seq: u64) {
        self.errors.borrow_mut().push((vc, seq));
    }
}
