//! Tests for the media actors: stored sources (eager fill, seek, clip
//! end), throttled sources (slow production + Orch.Delayed reaction),
//! live sources (free-running on the local clock, overrun behaviour) and
//! playout sinks (local-clock pacing, underruns, catch-up).

use cm_core::media::MediaProfile;
use cm_core::service_class::ServiceClass;
use cm_core::time::{Rate, SimDuration};
use cm_media::{LiveSource, PlayoutSink, StoredClip, StoredSource, ThrottledSource};
use cm_testkit::{Stack, StackConfig};

fn small_stack(skews: Vec<i32>) -> Stack {
    let mut cfg = StackConfig::default();
    cfg.testbed.workstations = 1;
    cfg.testbed.servers = 1;
    cfg.testbed.clock_skews_ppm = skews;
    Stack::build(cfg)
}

#[test]
fn stored_source_plays_clip_to_the_end() {
    let stack = small_stack(vec![]);
    let profile = MediaProfile::audio_telephone();
    let vc = stack.connect(
        stack.tb.servers[0],
        stack.tb.workstations[0],
        ServiceClass::cm_default(),
        profile.requirement(),
    );
    let clip = StoredClip::cbr_for(&profile, 4); // 200 units
    let src = StoredSource::new(
        stack.node(stack.tb.servers[0]).svc.clone(),
        vc,
        clip.reader(),
    );
    src.start_producing();
    let sink = PlayoutSink::new(
        stack.node(stack.tb.workstations[0]).svc.clone(),
        vc,
        profile.osdu_rate,
    );
    sink.play();
    stack.run_for(SimDuration::from_secs(10));
    assert_eq!(src.written.get(), 200, "whole clip written");
    assert_eq!(sink.log.borrow().len(), 200, "whole clip presented");
    assert_eq!(sink.position(), Some(199));
    // Media unit indices survive end-to-end (payload tags).
    assert!(sink
        .log
        .borrow()
        .iter()
        .enumerate()
        .all(|(i, p)| p.tag == Some(i as u64)));
}

#[test]
fn stored_source_seek_skips_media() {
    let stack = small_stack(vec![]);
    let profile = MediaProfile::audio_telephone();
    let vc = stack.connect(
        stack.tb.servers[0],
        stack.tb.workstations[0],
        ServiceClass::cm_default(),
        profile.requirement(),
    );
    let clip = StoredClip::cbr_for(&profile, 60);
    let src = StoredSource::new(
        stack.node(stack.tb.servers[0]).svc.clone(),
        vc,
        clip.reader(),
    );
    // Seek before starting: play from unit 1000.
    src.seek(1000);
    src.start_producing();
    let sink = PlayoutSink::new(
        stack.node(stack.tb.workstations[0]).svc.clone(),
        vc,
        profile.osdu_rate,
    );
    sink.play();
    stack.run_for(SimDuration::from_secs(2));
    let first = sink.log.borrow().first().and_then(|p| p.tag);
    assert_eq!(first, Some(1000));
}

#[test]
fn throttled_source_limits_production_rate() {
    let stack = small_stack(vec![]);
    let profile = MediaProfile::audio_telephone();
    let vc = stack.connect(
        stack.tb.servers[0],
        stack.tb.workstations[0],
        ServiceClass::cm_default(),
        profile.requirement(),
    );
    let clip = StoredClip::cbr_for(&profile, 60);
    let slow = ThrottledSource::new(
        stack.node(stack.tb.servers[0]).svc.clone(),
        vc,
        clip.reader(),
        profile.osdu_rate.scaled(1, 2), // 25/s instead of 50/s
    );
    slow.start();
    let sink = PlayoutSink::new(
        stack.node(stack.tb.workstations[0]).svc.clone(),
        vc,
        profile.osdu_rate,
    );
    sink.play();
    stack.run_for(SimDuration::from_secs(10));
    let written = slow.written.get();
    assert!(
        (230..=260).contains(&written),
        "half-rate producer wrote {written} in 10 s"
    );
    // The sink could only present what the slow producer supplied.
    assert!(sink.log.borrow().len() <= written as usize);
    assert!(
        sink.underruns.get() > 100,
        "starvation must show as underruns"
    );
}

#[test]
fn live_source_paces_on_its_local_clock() {
    // Camera node +10000 ppm: captures 1% more units than nominal.
    let stack = small_stack(vec![0, 10_000]);
    let profile = MediaProfile::audio_telephone();
    let vc = stack.connect(
        stack.tb.servers[0],
        stack.tb.workstations[0],
        ServiceClass::cm_default(),
        profile.requirement(),
    );
    let live = LiveSource::new(
        stack.node(stack.tb.servers[0]).svc.clone(),
        vc,
        profile.osdu_rate,
        profile.nominal_osdu_size,
    );
    live.switch_on();
    stack.run_for(SimDuration::from_secs(100));
    let captured = live.captured.get();
    assert!(
        (5040..=5060).contains(&captured),
        "+1% clock must capture ~5050 in 100 s, got {captured}"
    );
    live.switch_off();
    let at_off = live.captured.get();
    stack.run_for(SimDuration::from_secs(2));
    assert_eq!(live.captured.get(), at_off, "off means off");
}

#[test]
fn live_source_drops_on_full_buffer_instead_of_blocking() {
    // Nobody consumes: the live source keeps capturing and counts
    // overruns (live media waits for nobody, §3.6).
    let stack = small_stack(vec![]);
    let profile = MediaProfile::audio_telephone();
    let vc = stack.connect(
        stack.tb.servers[0],
        stack.tb.workstations[0],
        ServiceClass::cm_default(),
        profile.requirement(),
    );
    let live = LiveSource::new(
        stack.node(stack.tb.servers[0]).svc.clone(),
        vc,
        profile.osdu_rate,
        profile.nominal_osdu_size,
    );
    live.switch_on();
    stack.run_for(SimDuration::from_secs(10));
    assert_eq!(live.captured.get(), 501, "capture never pauses");
    assert!(
        live.overrun.get() > 300,
        "unconsumed stream must overrun, got {}",
        live.overrun.get()
    );
}

#[test]
fn playout_sink_counts_underruns_when_starved() {
    let stack = small_stack(vec![]);
    let profile = MediaProfile::audio_telephone();
    let vc = stack.connect(
        stack.tb.servers[0],
        stack.tb.workstations[0],
        ServiceClass::cm_default(),
        profile.requirement(),
    );
    // Supply only 1 s of media, play for 5 s.
    let clip = StoredClip::cbr_for(&profile, 1);
    let src = StoredSource::new(
        stack.node(stack.tb.servers[0]).svc.clone(),
        vc,
        clip.reader(),
    );
    src.start_producing();
    let sink = PlayoutSink::new(
        stack.node(stack.tb.workstations[0]).svc.clone(),
        vc,
        profile.osdu_rate,
    );
    sink.play();
    stack.run_for(SimDuration::from_secs(5));
    assert_eq!(sink.log.borrow().len(), 50);
    assert!(
        sink.underruns.get() > 150,
        "starved sink must record underruns, got {}",
        sink.underruns.get()
    );
}

#[test]
fn playout_sink_catch_up_skips_units() {
    let stack = small_stack(vec![]);
    let profile = MediaProfile::audio_telephone();
    let vc = stack.connect(
        stack.tb.servers[0],
        stack.tb.workstations[0],
        ServiceClass::cm_default(),
        profile.requirement(),
    );
    let clip = StoredClip::cbr_for(&profile, 30);
    let src = StoredSource::new(
        stack.node(stack.tb.servers[0]).svc.clone(),
        vc,
        clip.reader(),
    );
    src.start_producing();
    let sink = PlayoutSink::new(
        stack.node(stack.tb.workstations[0]).svc.clone(),
        vc,
        profile.osdu_rate,
    );
    sink.play();
    stack.run_for(SimDuration::from_secs(5));
    let before = sink.position().expect("playing");
    // Simulate an Orch.Delayed of 10 units (the §6.3.3 reaction).
    use cm_orchestration::OrchAppHandler;
    sink.orch_delayed_indication(cm_core::address::OrchSessionId(1), vc, 10);
    stack.run_for(SimDuration::from_secs(2));
    let after = sink.position().expect("playing");
    // All ten catch-up skips executed, and the stream kept advancing at
    // (at least) the supply rate — skips consume supply, so the net
    // position stays supply-paced once the backlog is gone.
    assert_eq!(sink.skipped.get(), 10);
    let advanced = after - before;
    assert!(
        (95..=115).contains(&advanced),
        "position should advance ~2 s of media, got {advanced}"
    );
    // Conservation: everything popped was either presented or skipped.
    let presented = sink.log.borrow().len() as u64;
    assert_eq!(presented + sink.skipped.get(), after + 1);
}

#[test]
fn vbr_clip_respects_max_osdu_size_end_to_end() {
    let stack = small_stack(vec![]);
    let profile = MediaProfile::video_mono();
    let vc = stack.connect(
        stack.tb.servers[0],
        stack.tb.workstations[0],
        ServiceClass::cm_default(),
        profile.requirement(),
    );
    let clip = StoredClip::vbr_for(&profile, 10, 99);
    let src = StoredSource::new(
        stack.node(stack.tb.servers[0]).svc.clone(),
        vc,
        clip.reader(),
    );
    src.start_producing();
    let sink = PlayoutSink::new(
        stack.node(stack.tb.workstations[0]).svc.clone(),
        vc,
        profile.osdu_rate,
    );
    sink.play();
    stack.run_for(SimDuration::from_secs(12));
    // VBR units all arrived (none rejected for size) and in order.
    assert_eq!(sink.log.borrow().len(), 250);
}

#[test]
fn skew_meter_rate_independence() {
    // Sanity: two streams of different rates presenting the same media
    // timeline measure zero skew.
    use cm_core::time::SimTime;
    use cm_media::{Presented, SkewMeter};
    let audio: Vec<Presented> = (0..100)
        .map(|i| Presented {
            at: SimTime::from_millis(i * 20),
            seq: i,
            tag: Some(i),
        })
        .collect();
    let video: Vec<Presented> = (0..50)
        .map(|i| Presented {
            at: SimTime::from_millis(i * 40),
            seq: i,
            tag: Some(i),
        })
        .collect();
    let meter = SkewMeter::new(vec![
        (Rate::per_second(50), audio),
        (Rate::per_second(25), video),
    ]);
    for t in [500u64, 1000, 1500] {
        let skew = meter.skew_at(SimTime::from_millis(t)).expect("skew");
        assert!(
            skew <= SimDuration::from_millis(20),
            "skew {skew} at {t} ms"
        );
    }
}
