//! # cm-media — media workloads for the CM transport & orchestration stack
//!
//! Synthetic but faithful stand-ins for the paper's media devices (§2.1):
//! stored clips with CBR/VBR unit-size processes and embedded event marks,
//! storage-server source actors (eager, throttled, live), playout sinks
//! paced on their node's local clock, and the [`sink::SkewMeter`] that
//! turns presentation logs into the lip-sync skew series the experiments
//! report.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clip;
pub mod sink;
pub mod source;

pub use clip::{ClipReader, SizeModel, StoredClip};
pub use sink::{PlayoutSink, Presented, SinkDriver, SkewMeter};
pub use source::{LiveSource, SourceDriver, StoredSource, ThrottledSource};
