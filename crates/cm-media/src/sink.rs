//! Media sink actors and synchronisation metering.
//!
//! [`PlayoutSink`] models the "sink application thread": a playout device
//! ticking at the media rate on its node's *local* clock, presenting one
//! logical unit per tick. It records every presentation `(global time,
//! seq)` and counts underruns (ticks with no unit available). The
//! [`SkewMeter`] turns two or more presentation logs into the inter-stream
//! skew series that the lip-sync experiments report (§3.6).

use cm_core::address::{OrchSessionId, VcId};
use cm_core::stats::SampleSet;
use cm_core::time::{Rate, SimDuration, SimTime};
use cm_orchestration::OrchAppHandler;
use cm_transport::TransportService;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// One presentation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Presented {
    /// Global simulation time of presentation.
    pub at: SimTime,
    /// The unit's OSDU sequence number.
    pub seq: u64,
    /// The media unit index (synthetic payload tag), when available —
    /// unlike `seq` this survives seeks.
    pub tag: Option<u64>,
}

/// A playout device consuming one VC.
pub struct PlayoutSink {
    svc: TransportService,
    vc: VcId,
    rate: Rate,
    playing: Cell<bool>,
    /// Presentation log.
    pub log: RefCell<Vec<Presented>>,
    /// Ticks that found no unit ready.
    pub underruns: Cell<u64>,
    /// Units presented (lifetime).
    pub presented: Cell<u64>,
    /// Units still owed by catch-up skipping (set by `Orch.Delayed`).
    pub catchup: Cell<u64>,
    /// Units skipped while catching up.
    pub skipped: Cell<u64>,
}

impl PlayoutSink {
    /// Create a playout sink for `vc` presenting at `rate` (on the sink
    /// node's local clock).
    pub fn new(svc: TransportService, vc: VcId, rate: Rate) -> Rc<PlayoutSink> {
        Rc::new(PlayoutSink {
            svc,
            vc,
            rate,
            playing: Cell::new(false),
            log: RefCell::new(Vec::new()),
            underruns: Cell::new(0),
            presented: Cell::new(0),
            catchup: Cell::new(0),
            skipped: Cell::new(0),
        })
    }

    /// Begin the playout ticker.
    pub fn play(self: &Rc<Self>) {
        if self.playing.replace(true) {
            return;
        }
        self.tick();
    }

    /// Pause the ticker (buffered media stays put).
    pub fn pause(&self) {
        self.playing.set(false);
    }

    /// The media position (seq of the last presented unit), if any.
    pub fn position(&self) -> Option<u64> {
        self.log.borrow().last().map(|p| p.seq)
    }

    fn tick(self: &Rc<Self>) {
        if !self.playing.get() {
            return;
        }
        // While catching up (after Orch.Delayed, §6.3.3) skip one extra
        // unit per tick — the playout-device equivalent of "requesting
        // more processor resources" is to drop frames locally.
        if self.catchup.get() > 0 {
            if let Ok(Some(_)) = self.svc.read_osdu(self.vc) {
                self.skipped.set(self.skipped.get() + 1);
                self.catchup.set(self.catchup.get() - 1);
            }
        }
        match self.svc.read_osdu(self.vc) {
            Ok(Some(osdu)) => {
                self.presented.set(self.presented.get() + 1);
                self.log.borrow_mut().push(Presented {
                    at: self.svc.now(),
                    seq: osdu.seq(),
                    tag: osdu.payload.tag(),
                });
            }
            Ok(None) => {
                self.underruns.set(self.underruns.get() + 1);
                // Feed the attribution report: an underrun is the playout
                // device's view of a late span.
                self.svc.obs().underrun(self.vc.0);
            }
            Err(_) => {
                self.playing.set(false);
                return;
            }
        }
        let me = self.clone();
        let clock = self.svc.network().clock(self.svc.node());
        let global = clock.global_duration(self.rate.interval());
        self.svc
            .network()
            .engine()
            .schedule_in(global, move |_| me.tick());
    }
}

impl OrchAppHandler for PlayoutSink {
    fn orch_prime_indication(&self, _session: OrchSessionId, _vc: VcId) -> bool {
        true
    }
    fn orch_stop_indication(&self, _session: OrchSessionId, _vc: VcId) {
        self.pause();
    }
    fn orch_delayed_indication(&self, _session: OrchSessionId, _vc: VcId, behind: u64) -> bool {
        self.catchup.set(self.catchup.get() + behind);
        true
    }
}

/// Register a [`PlayoutSink`] with the LLO so `Orch.Start` begins playout
/// and `Orch.Stop` pauses it.
pub struct SinkDriver;

impl SinkDriver {
    /// Register `sink` as the app handler for its VC.
    pub fn register(llo: &cm_orchestration::Llo, vc: VcId, sink: &Rc<PlayoutSink>) {
        struct Adapter {
            sink: Rc<PlayoutSink>,
        }
        impl OrchAppHandler for Adapter {
            fn orch_start_indication(&self, _s: OrchSessionId, _v: VcId) {
                self.sink.play();
            }
            fn orch_stop_indication(&self, _s: OrchSessionId, _v: VcId) {
                self.sink.pause();
            }
            fn orch_delayed_indication(&self, s: OrchSessionId, v: VcId, behind: u64) -> bool {
                self.sink.orch_delayed_indication(s, v, behind)
            }
        }
        llo.register_app(vc, Rc::new(Adapter { sink: sink.clone() }));
    }
}

/// Inter-stream skew measurement over presentation logs (§3.6's lip-sync
/// metric).
pub struct SkewMeter {
    streams: Vec<(Rate, Vec<Presented>)>,
}

impl SkewMeter {
    /// Build a meter from `(rate, presentation log)` pairs.
    pub fn new(streams: Vec<(Rate, Vec<Presented>)>) -> SkewMeter {
        SkewMeter { streams }
    }

    /// Media position of one stream at global time `t`: the media time of
    /// the last unit presented at or before `t` (`None` before the first
    /// presentation).
    fn position_at(rate: Rate, log: &[Presented], t: SimTime) -> Option<SimTime> {
        let idx = log.partition_point(|p| p.at <= t);
        if idx == 0 {
            return None;
        }
        let seq = log[idx - 1].seq;
        Some(rate.due_time(SimTime::ZERO, seq))
    }

    /// The skew (max − min media position) across all streams at time `t`;
    /// `None` until every stream has presented at least one unit.
    pub fn skew_at(&self, t: SimTime) -> Option<SimDuration> {
        let mut lo: Option<SimTime> = None;
        let mut hi: Option<SimTime> = None;
        for (rate, log) in &self.streams {
            let p = Self::position_at(*rate, log, t)?;
            lo = Some(lo.map_or(p, |l| l.min(p)));
            hi = Some(hi.map_or(p, |h| h.max(p)));
        }
        Some(hi?.saturating_since(lo?))
    }

    /// Sample the skew every `step` from `from` to `to`; returns
    /// `(times, skews)` plus a [`SampleSet`] over the skew in
    /// microseconds.
    pub fn series(
        &self,
        from: SimTime,
        to: SimTime,
        step: SimDuration,
    ) -> (Vec<(SimTime, SimDuration)>, SampleSet) {
        let mut out = Vec::new();
        let mut stats = SampleSet::new();
        let mut t = from;
        while t <= to {
            if let Some(skew) = self.skew_at(t) {
                out.push((t, skew));
                stats.push_duration(skew);
            }
            t += step;
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_at(rate: Rate, times_seqs: &[(u64, u64)]) -> (Rate, Vec<Presented>) {
        (
            rate,
            times_seqs
                .iter()
                .map(|&(ms, seq)| Presented {
                    at: SimTime::from_millis(ms),
                    seq,
                    tag: Some(seq),
                })
                .collect(),
        )
    }

    #[test]
    fn skew_zero_for_identical_progress() {
        let a = log_at(Rate::per_second(10), &[(0, 0), (100, 1), (200, 2)]);
        let b = log_at(Rate::per_second(10), &[(0, 0), (100, 1), (200, 2)]);
        let m = SkewMeter::new(vec![a, b]);
        assert_eq!(
            m.skew_at(SimTime::from_millis(250)),
            Some(SimDuration::ZERO)
        );
    }

    #[test]
    fn skew_reflects_lag_in_media_time() {
        // Stream B is one unit (100 ms of media) behind at t=200ms.
        let a = log_at(Rate::per_second(10), &[(0, 0), (100, 1), (200, 2)]);
        let b = log_at(Rate::per_second(10), &[(0, 0), (110, 1)]);
        let m = SkewMeter::new(vec![a, b]);
        assert_eq!(
            m.skew_at(SimTime::from_millis(200)),
            Some(SimDuration::from_millis(100))
        );
    }

    #[test]
    fn skew_handles_different_rates() {
        // 50/s audio seq 10 = 200 ms position; 25/s video seq 5 = 200 ms.
        let a = log_at(Rate::per_second(50), &[(0, 0), (210, 10)]);
        let v = log_at(Rate::per_second(25), &[(0, 0), (205, 5)]);
        let m = SkewMeter::new(vec![a, v]);
        assert_eq!(
            m.skew_at(SimTime::from_millis(220)),
            Some(SimDuration::ZERO)
        );
    }

    #[test]
    fn no_skew_before_both_present() {
        let a = log_at(Rate::per_second(10), &[(100, 0)]);
        let b = log_at(Rate::per_second(10), &[(300, 0)]);
        let m = SkewMeter::new(vec![a, b]);
        assert_eq!(m.skew_at(SimTime::from_millis(200)), None);
        assert!(m.skew_at(SimTime::from_millis(300)).is_some());
    }

    #[test]
    fn series_samples_inclusive() {
        let a = log_at(Rate::per_second(10), &[(0, 0), (100, 1)]);
        let b = log_at(Rate::per_second(10), &[(0, 0), (100, 1)]);
        let m = SkewMeter::new(vec![a, b]);
        let (pts, mut stats) = m.series(
            SimTime::ZERO,
            SimTime::from_millis(200),
            SimDuration::from_millis(50),
        );
        assert_eq!(pts.len(), 5);
        assert_eq!(stats.max(), 0.0);
    }
}
