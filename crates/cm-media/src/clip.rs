//! Stored-media models: clips with frame counts, logical rates, CBR/VBR
//! size processes and embedded event marks.
//!
//! Every OSDU of a clip is a logical unit (a video frame, an audio sample
//! block, a caption — §3.7). VBR sizes come from a truncated normal (the
//! paper notes CM "data can be variable bit rate encoded" and still must
//! yield one logical unit per period).

use cm_core::media::MediaProfile;
use cm_core::osdu::Payload;
use cm_core::rng::DetRng;
use cm_core::time::Rate;
use std::collections::HashMap;

/// Size process for the units of a clip.
#[derive(Debug, Clone)]
pub enum SizeModel {
    /// Constant bit rate: every unit is exactly this many bytes.
    Cbr(usize),
    /// Variable bit rate: truncated normal over `[min, max]`.
    Vbr {
        /// Mean unit size.
        mean: usize,
        /// Standard deviation.
        std_dev: usize,
        /// Smallest unit emitted.
        min: usize,
        /// Largest unit emitted (must fit `max_osdu_size`).
        max: usize,
    },
}

impl SizeModel {
    fn sample(&self, rng: &mut DetRng) -> usize {
        match self {
            SizeModel::Cbr(n) => *n,
            SizeModel::Vbr {
                mean,
                std_dev,
                min,
                max,
            } => {
                rng.normal_clamped(*mean as f64, *std_dev as f64, *min as f64, *max as f64) as usize
            }
        }
    }
}

/// A stored clip: the unit generator a storage server plays from.
#[derive(Debug, Clone)]
pub struct StoredClip {
    /// Total logical units in the clip.
    pub frames: u64,
    /// The media's logical rate (matches the VC's contracted rate).
    pub rate: Rate,
    /// Unit size process.
    pub size_model: SizeModel,
    /// Event marks embedded at specific unit indices (§6.3.4 — e.g. an
    /// encoding change signalled in the data stream).
    pub events: HashMap<u64, u64>,
    /// Seed for the size process.
    pub seed: u64,
}

impl StoredClip {
    /// A CBR clip matching a media profile, `secs` seconds long.
    pub fn cbr_for(profile: &MediaProfile, secs: u64) -> StoredClip {
        StoredClip {
            frames: profile
                .osdu_rate
                .units_in(cm_core::time::SimDuration::from_secs(secs)),
            rate: profile.osdu_rate,
            size_model: SizeModel::Cbr(profile.nominal_osdu_size),
            events: HashMap::new(),
            seed: 1,
        }
    }

    /// A VBR clip matching a media profile, `secs` seconds long, with the
    /// profile's nominal size as mean and ±50% spread.
    pub fn vbr_for(profile: &MediaProfile, secs: u64, seed: u64) -> StoredClip {
        let mean = profile.nominal_osdu_size;
        StoredClip {
            frames: profile
                .osdu_rate
                .units_in(cm_core::time::SimDuration::from_secs(secs)),
            rate: profile.osdu_rate,
            size_model: SizeModel::Vbr {
                mean,
                std_dev: mean / 4,
                min: mean / 2,
                max: profile.max_osdu_size.min(mean * 2),
            },
            events: HashMap::new(),
            seed,
        }
    }

    /// Add an event mark at unit `index`.
    pub fn with_event(mut self, index: u64, pattern: u64) -> StoredClip {
        self.events.insert(index, pattern);
        self
    }

    /// Instantiate the unit generator.
    pub fn reader(&self) -> ClipReader {
        ClipReader {
            clip: self.clone(),
            rng: DetRng::from_seed(self.seed),
            pos: 0,
        }
    }
}

/// Sequential reader over a clip with seek support.
#[derive(Debug, Clone)]
pub struct ClipReader {
    clip: StoredClip,
    rng: DetRng,
    pos: u64,
}

impl ClipReader {
    /// The next unit index to be produced.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Remaining units.
    pub fn remaining(&self) -> u64 {
        self.clip.frames.saturating_sub(self.pos)
    }

    /// True when the clip is exhausted.
    pub fn at_end(&self) -> bool {
        self.pos >= self.clip.frames
    }

    /// Jump to unit `index` (fast-forward / rewind; §6.2.1's stop + seek).
    pub fn seek(&mut self, index: u64) {
        self.pos = index.min(self.clip.frames);
    }

    /// Produce the next unit: `(payload, event_mark)`, or `None` at end.
    pub fn next_unit(&mut self) -> Option<(Payload, Option<u64>)> {
        if self.at_end() {
            return None;
        }
        let idx = self.pos;
        self.pos += 1;
        let size = self.clip.size_model.sample(&mut self.rng);
        let event = self.clip.events.get(&idx).copied();
        Some((Payload::synthetic(idx, size), event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_clip_shape() {
        let clip = StoredClip::cbr_for(&MediaProfile::audio_telephone(), 10);
        assert_eq!(clip.frames, 500);
        let mut r = clip.reader();
        let (p, e) = r.next_unit().expect("unit");
        assert_eq!(p.len(), 80);
        assert_eq!(e, None);
        assert_eq!(r.position(), 1);
    }

    #[test]
    fn vbr_sizes_bounded_and_deterministic() {
        let clip = StoredClip::vbr_for(&MediaProfile::video_mono(), 4, 7);
        let mut a = clip.reader();
        let mut b = clip.reader();
        let mut total = 0usize;
        for _ in 0..clip.frames {
            let (pa, _) = a.next_unit().expect("a");
            let (pb, _) = b.next_unit().expect("b");
            assert_eq!(pa.len(), pb.len(), "same seed, same sizes");
            assert!(pa.len() >= 4_000 && pa.len() <= 16_000);
            total += pa.len();
        }
        let mean = total / clip.frames as usize;
        assert!((6_000..=10_000).contains(&mean), "mean {mean}");
    }

    #[test]
    fn events_surface_at_their_index() {
        let clip = StoredClip::cbr_for(&MediaProfile::video_mono(), 1).with_event(5, 0xAB);
        let mut r = clip.reader();
        for i in 0..clip.frames {
            let (_, e) = r.next_unit().expect("unit");
            assert_eq!(e, (i == 5).then_some(0xAB));
        }
        assert!(r.at_end());
        assert!(r.next_unit().is_none());
    }

    #[test]
    fn seek_repositions() {
        let clip = StoredClip::cbr_for(&MediaProfile::audio_telephone(), 2);
        let mut r = clip.reader();
        r.next_unit();
        r.seek(50);
        let (p, _) = r.next_unit().expect("unit");
        assert_eq!(p.tag(), Some(50));
        r.seek(10_000);
        assert!(r.at_end());
    }
}
