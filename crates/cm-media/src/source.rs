//! Media source actors: the "source application threads" of the paper.
//!
//! [`StoredSource`] models a storage server playing a [`ClipReader`]
//! (crate::clip): on `Orch.Prime.indication` it starts filling the send
//! buffer and keeps it topped up (a disk can stay ahead of the network);
//! the *transmission* rate is the transport protocol's paced rate, so the
//! source node's clock skew shows up on the wire exactly as in the real
//! system. [`ThrottledSource`] produces at a limited rate instead — the
//! "application thread not running sufficiently fast" case that
//! `Orch.Delayed` exists for (§6.3.3). [`LiveSource`] free-runs from the
//! moment it is switched on (§3.6: live media cannot be started, stopped
//! or re-paced).

use crate::clip::ClipReader;
use cm_core::address::{OrchSessionId, VcId};
use cm_core::time::{Rate, SimDuration};
use cm_orchestration::OrchAppHandler;
use cm_transport::TransportService;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A stored-media source driving one VC.
pub struct StoredSource {
    svc: TransportService,
    vc: VcId,
    reader: RefCell<ClipReader>,
    producing: Cell<bool>,
    parked: Cell<bool>,
    /// Units written over the actor's lifetime.
    pub written: Cell<u64>,
    /// How often the actor answers `Orch.Delayed` with "give up".
    give_up_on_delay: Cell<bool>,
}

impl StoredSource {
    /// Create a source for `vc` playing `reader`.
    pub fn new(svc: TransportService, vc: VcId, reader: ClipReader) -> Rc<StoredSource> {
        Rc::new(StoredSource {
            svc,
            vc,
            reader: RefCell::new(reader),
            producing: Cell::new(false),
            parked: Cell::new(false),
            written: Cell::new(0),
            give_up_on_delay: Cell::new(false),
        })
    }

    /// Make the source answer `Orch.Delayed` with a denial.
    pub fn set_give_up_on_delay(&self, b: bool) {
        self.give_up_on_delay.set(b);
    }

    /// Begin producing without orchestration (plain transport use).
    pub fn start_producing(self: &Rc<Self>) {
        self.producing.set(true);
        self.fill();
    }

    /// Stop producing (the clip position is retained).
    pub fn stop_producing(&self) {
        self.producing.set(false);
    }

    /// Seek the clip (legal while stopped; combine with buffer flushes for
    /// the §6.2.1 stop-seek-restart pattern).
    pub fn seek(&self, index: u64) {
        self.reader.borrow_mut().seek(index);
    }

    /// The clip position (next unit to write).
    pub fn position(&self) -> u64 {
        self.reader.borrow().position()
    }

    /// Top up the send buffer until it refuses or the clip ends.
    fn fill(self: &Rc<Self>) {
        if !self.producing.get() {
            return;
        }
        loop {
            let unit = self.reader.borrow_mut().next_unit();
            let Some((payload, event)) = unit else {
                self.producing.set(false);
                return;
            };
            match self.svc.write_osdu(self.vc, payload, event) {
                Ok(true) => {
                    self.written.set(self.written.get() + 1);
                }
                Ok(false) => {
                    // Buffer full: rewind the reader one unit and park.
                    let pos = self.reader.borrow().position();
                    self.reader.borrow_mut().seek(pos - 1);
                    self.park();
                    return;
                }
                Err(_) => {
                    self.producing.set(false);
                    return;
                }
            }
        }
    }

    fn park(self: &Rc<Self>) {
        if self.parked.get() {
            return;
        }
        let Ok(buf) = self.svc.send_handle(self.vc) else {
            return;
        };
        self.parked.set(true);
        let me = self.clone();
        let engine = self.svc.network().engine().clone();
        buf.park_producer(self.svc.now(), move || {
            let me2 = me.clone();
            engine.schedule_in(SimDuration::ZERO, move |_| {
                me2.parked.set(false);
                me2.fill();
            });
        });
    }
}

impl OrchAppHandler for StoredSource {
    fn orch_prime_indication(&self, _session: OrchSessionId, _vc: VcId) -> bool {
        // `&self` here, but fill() needs Rc — run via a queued start.
        self.producing.set(true);
        true
    }

    fn orch_start_indication(&self, _session: OrchSessionId, _vc: VcId) {
        self.producing.set(true);
    }

    fn orch_stop_indication(&self, _session: OrchSessionId, _vc: VcId) {
        // Freeze production too: buffered data is retained for a primed
        // restart, and a subsequent seek + flush must not race against
        // stale refills (§6.2.1).
        self.stop_producing();
    }

    fn orch_delayed_indication(&self, _session: OrchSessionId, _vc: VcId, _behind: u64) -> bool {
        !self.give_up_on_delay.get()
    }
}

/// Wire a [`StoredSource`] into the orchestration layer: registers it as
/// the app handler for its VC and arranges that prime/start indications
/// actually kick the fill loop.
pub struct SourceDriver;

impl SourceDriver {
    /// Register `source` with `llo` for its VC.
    pub fn register(llo: &cm_orchestration::Llo, vc: VcId, source: &Rc<StoredSource>) {
        struct Adapter {
            source: Rc<StoredSource>,
        }
        impl OrchAppHandler for Adapter {
            fn orch_prime_indication(&self, s: OrchSessionId, v: VcId) -> bool {
                let ok = self.source.orch_prime_indication(s, v);
                if ok {
                    self.source.fill();
                }
                ok
            }
            fn orch_start_indication(&self, s: OrchSessionId, v: VcId) {
                self.source.orch_start_indication(s, v);
                self.source.fill();
            }
            fn orch_stop_indication(&self, s: OrchSessionId, v: VcId) {
                self.source.orch_stop_indication(s, v);
            }
            fn orch_delayed_indication(&self, s: OrchSessionId, v: VcId, b: u64) -> bool {
                self.source.orch_delayed_indication(s, v, b)
            }
        }
        llo.register_app(
            vc,
            Rc::new(Adapter {
                source: source.clone(),
            }),
        );
    }
}

/// A source whose application thread is rate-limited (slower than the
/// media rate): models the `Orch.Delayed` scenario of §6.3.3.
pub struct ThrottledSource {
    svc: TransportService,
    vc: VcId,
    reader: RefCell<ClipReader>,
    /// The (slow) production rate.
    rate: Cell<Rate>,
    running: Cell<bool>,
    /// Units written.
    pub written: Cell<u64>,
    /// Whether a `Orch.Delayed` indication arrived.
    pub delayed_seen: Cell<u64>,
    /// On `Orch.Delayed`, speed up to the full media rate ("requesting
    /// more processor resources", §6.3.3).
    speed_up_on_delay: Cell<bool>,
    /// The rate to switch to when speeding up.
    full_rate: Cell<Option<Rate>>,
}

impl ThrottledSource {
    /// Create a throttled source producing at `rate`.
    pub fn new(
        svc: TransportService,
        vc: VcId,
        reader: ClipReader,
        rate: Rate,
    ) -> Rc<ThrottledSource> {
        Rc::new(ThrottledSource {
            svc,
            vc,
            reader: RefCell::new(reader),
            rate: Cell::new(rate),
            running: Cell::new(false),
            written: Cell::new(0),
            delayed_seen: Cell::new(0),
            speed_up_on_delay: Cell::new(false),
            full_rate: Cell::new(None),
        })
    }

    /// React to `Orch.Delayed` by speeding up to `full_rate` ("requesting
    /// more processor resources", §6.3.3).
    pub fn speed_up_on_delay(&self, full_rate: Rate) {
        self.speed_up_on_delay.set(true);
        self.full_rate.set(Some(full_rate));
    }

    /// Start the production ticker.
    pub fn start(self: &Rc<Self>) {
        if self.running.replace(true) {
            return;
        }
        self.tick();
    }

    /// Stop producing.
    pub fn stop(&self) {
        self.running.set(false);
    }

    fn tick(self: &Rc<Self>) {
        if !self.running.get() {
            return;
        }
        let unit = self.reader.borrow_mut().next_unit();
        if let Some((payload, event)) = unit {
            // A throttled producer that meets a full buffer just skips its
            // turn (it is slow, not parked).
            if let Ok(true) = self.svc.write_osdu(self.vc, payload, event) {
                self.written.set(self.written.get() + 1);
            } else {
                let pos = self.reader.borrow().position();
                self.reader.borrow_mut().seek(pos - 1);
            }
        } else {
            self.running.set(false);
            return;
        }
        let me = self.clone();
        let interval = self.rate.get().interval();
        self.svc
            .network()
            .engine()
            .schedule_in(interval, move |_| me.tick());
    }
}

impl OrchAppHandler for ThrottledSource {
    fn orch_delayed_indication(&self, _session: OrchSessionId, _vc: VcId, _behind: u64) -> bool {
        self.delayed_seen.set(self.delayed_seen.get() + 1);
        if self.speed_up_on_delay.get() {
            if let Some(r) = self.full_rate.get() {
                self.rate.set(r);
            }
        }
        true
    }
}

/// A live source (camera/microphone): free-runs at its node's local clock
/// from `switch_on`; cannot be primed, paused or re-paced (§3.6).
pub struct LiveSource {
    svc: TransportService,
    vc: VcId,
    rate: Rate,
    unit_size: usize,
    next_tag: Cell<u64>,
    on: Cell<bool>,
    /// Units captured (written or attempted).
    pub captured: Cell<u64>,
    /// Units discarded because the buffer was full (live media waits for
    /// nobody).
    pub overrun: Cell<u64>,
}

impl LiveSource {
    /// Create a live source for `vc` at `rate` with fixed unit size.
    pub fn new(svc: TransportService, vc: VcId, rate: Rate, unit_size: usize) -> Rc<LiveSource> {
        Rc::new(LiveSource {
            svc,
            vc,
            rate,
            unit_size,
            next_tag: Cell::new(0),
            on: Cell::new(false),
            captured: Cell::new(0),
            overrun: Cell::new(0),
        })
    }

    /// Switch the camera on.
    pub fn switch_on(self: &Rc<Self>) {
        if self.on.replace(true) {
            return;
        }
        self.capture_tick();
    }

    /// Switch it off.
    pub fn switch_off(&self) {
        self.on.set(false);
    }

    fn capture_tick(self: &Rc<Self>) {
        if !self.on.get() {
            return;
        }
        let tag = self.next_tag.get();
        self.next_tag.set(tag + 1);
        self.captured.set(self.captured.get() + 1);
        match self.svc.write_osdu(
            self.vc,
            cm_core::osdu::Payload::synthetic(tag, self.unit_size),
            None,
        ) {
            Ok(true) => {}
            Ok(false) => self.overrun.set(self.overrun.get() + 1),
            Err(_) => {
                self.on.set(false);
                return;
            }
        }
        // Pace on the *local* clock: the camera's crystal.
        let me = self.clone();
        let node = self.svc.node();
        let clock = self.svc.network().clock(node);
        let local_interval = self.rate.interval();
        let global = clock.global_duration(local_interval);
        self.svc
            .network()
            .engine()
            .schedule_in(global, move |_| me.capture_tick());
    }
}
