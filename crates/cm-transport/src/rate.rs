//! Rate-based transmission pacing (\[Shepherd,91\] stand-in; see also
//! \[Cheriton,86\], \[Chesson,88\], \[Clark,88\] cited in §7).
//!
//! The paper's protocol transmits one logical unit per period at the
//! connection's contracted rate, with flow control *decoupled from error
//! control* and "capable of rapid adaptation" (§6.2.3). [`RateClock`]
//! implements the drift-free schedule: transmissions are due at exact
//! rational multiples of the effective rate, and the orchestrator can
//! retune the rate (the LLO's fine-grained regulation, §6.3.1) or pause/
//! resume it instantaneously without losing the schedule.

use cm_core::time::{Rate, SimDuration, SimTime};

/// Drift-free pacing clock for one sending VC.
#[derive(Debug, Clone)]
pub struct RateClock {
    /// The contracted logical-unit rate.
    base_rate: Rate,
    /// Regulation factor applied on top (LLO speed-up/slow-down).
    factor_num: u64,
    factor_den: u64,
    /// Datum of the current schedule.
    base_time: SimTime,
    /// Transmission slots consumed since the datum.
    slots: u64,
    /// Paused by Orch.Stop / flow control.
    paused: bool,
    started: bool,
}

impl RateClock {
    /// A clock for `base_rate`, not yet started.
    pub fn new(base_rate: Rate) -> RateClock {
        assert!(!base_rate.is_zero(), "zero OSDU rate");
        RateClock {
            base_rate,
            factor_num: 1,
            factor_den: 1,
            base_time: SimTime::ZERO,
            slots: 0,
            paused: false,
            started: false,
        }
    }

    /// The effective rate (base × factor).
    pub fn effective_rate(&self) -> Rate {
        self.base_rate.scaled(self.factor_num, self.factor_den)
    }

    /// The base rate as contracted.
    pub fn base_rate(&self) -> Rate {
        self.base_rate
    }

    /// Begin the schedule at `now`: the first unit is due immediately.
    pub fn start(&mut self, now: SimTime) {
        self.base_time = now;
        self.slots = 0;
        self.started = true;
        self.paused = false;
    }

    /// True once started and not paused.
    pub fn is_running(&self) -> bool {
        self.started && !self.paused
    }

    /// True if `start` was ever called.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Freeze transmissions (Orch.Stop or credit exhaustion). The schedule
    /// datum is dropped; `resume` rebases.
    pub fn pause(&mut self) {
        self.paused = true;
    }

    /// Whether the clock is paused.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Resume after a pause: the next unit is due one interval from `now`
    /// (an instantaneous re-start would bunch units around the stop).
    pub fn resume(&mut self, now: SimTime) {
        if !self.paused {
            return;
        }
        self.paused = false;
        self.base_time = now + self.interval();
        self.slots = 0;
    }

    /// When the next transmission is due (`None` while paused or before
    /// start).
    pub fn next_due(&self) -> Option<SimTime> {
        if !self.is_running() {
            return None;
        }
        Some(self.effective_rate().due_time(self.base_time, self.slots))
    }

    /// Consume one transmission slot (call exactly once per unit sent).
    pub fn consume_slot(&mut self) {
        debug_assert!(self.is_running(), "slot consumed while not running");
        self.slots += 1;
    }

    /// Retune the regulation factor: effective rate becomes
    /// `base × num/den`. The next unit stays due at its previously
    /// scheduled instant; subsequent units follow the new rate (the paper's
    /// requirement to "spread compensatory actions over the interval",
    /// §6.3.1.1, is implemented by retuning rather than bursting).
    pub fn set_factor(&mut self, num: u64, den: u64, now: SimTime) {
        assert!(num > 0 && den > 0, "factor must be positive");
        // Preserve the next due instant under the old schedule.
        let next = self.next_due();
        self.factor_num = num;
        self.factor_den = den;
        if let Some(next) = next {
            self.base_time = next.max(now);
            self.slots = 0;
        }
    }

    /// The nominal gap between units at the effective rate.
    pub fn interval(&self) -> SimDuration {
        self.effective_rate().interval()
    }

    /// The current factor `(num, den)`.
    pub fn factor(&self) -> (u64, u64) {
        (self.factor_num, self.factor_den)
    }

    /// Bound the catch-up backlog: if the schedule has fallen more than
    /// `max_slots` transmission intervals behind `now`, rebase so the next
    /// unit is due one interval from now. Rate-based senders transmit on
    /// schedule — after a long stall (credit exhaustion, Orch.Stop) they
    /// resume pacing rather than bursting the entire backlog onto the
    /// network (\[Clark,88\]-style rate control, §7).
    pub fn limit_backlog(&mut self, now: SimTime, max_slots: u64) {
        if !self.is_running() {
            return;
        }
        let due = self.effective_rate().due_time(self.base_time, self.slots);
        let horizon = self.interval().saturating_mul(max_slots);
        if due + horizon < now {
            self.base_time = now + self.interval();
            self.slots = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_drift_free() {
        let mut c = RateClock::new(Rate::per_second(25));
        c.start(SimTime::from_secs(1));
        // Unit 0 due immediately; unit 25 due exactly 1 s later.
        assert_eq!(c.next_due(), Some(SimTime::from_secs(1)));
        for _ in 0..25 {
            c.consume_slot();
        }
        assert_eq!(c.next_due(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn pause_stops_and_resume_rebases() {
        let mut c = RateClock::new(Rate::per_second(10));
        c.start(SimTime::ZERO);
        c.consume_slot();
        c.pause();
        assert_eq!(c.next_due(), None);
        assert!(c.is_paused());
        c.resume(SimTime::from_secs(5));
        // One interval after the resume point.
        assert_eq!(c.next_due(), Some(SimTime::from_millis(5_100)));
    }

    #[test]
    fn resume_when_not_paused_is_noop() {
        let mut c = RateClock::new(Rate::per_second(10));
        c.start(SimTime::ZERO);
        c.consume_slot();
        c.resume(SimTime::from_secs(9));
        assert_eq!(c.next_due(), Some(SimTime::from_millis(100)));
    }

    #[test]
    fn factor_slows_the_schedule() {
        let mut c = RateClock::new(Rate::per_second(10));
        c.start(SimTime::ZERO);
        c.consume_slot(); // next due at 100 ms
        c.set_factor(9, 10, SimTime::from_millis(50)); // 10% slower
                                                       // Next unit keeps its slot at 100 ms...
        assert_eq!(c.next_due(), Some(SimTime::from_millis(100)));
        c.consume_slot();
        // ...but the one after follows the new 9/s rate: +111.1 ms.
        assert_eq!(c.next_due(), Some(SimTime::from_micros(100_000 + 111_111)));
    }

    #[test]
    fn factor_speeds_up() {
        let mut c = RateClock::new(Rate::per_second(10));
        c.start(SimTime::ZERO);
        c.consume_slot();
        c.set_factor(11, 10, SimTime::from_millis(10));
        assert_eq!(c.effective_rate().per_second_f64(), 11.0);
    }

    #[test]
    fn not_started_has_no_due_time() {
        let c = RateClock::new(Rate::per_second(10));
        assert_eq!(c.next_due(), None);
        assert!(!c.is_running());
    }

    #[test]
    #[should_panic(expected = "zero OSDU rate")]
    fn zero_rate_rejected() {
        RateClock::new(Rate::ZERO);
    }
}
