//! Per-VC connection state held by a transport entity.
//!
//! Every VC is simplex (§3.1): one end holds a [`SourceEnd`] (send buffer +
//! pacing/window engine), the other a [`SinkEnd`] (receive buffer +
//! reassembly engine + QoS monitor). The same node may of course hold both
//! ends of *different* VCs.

use crate::buffer::BufferHandle;
use crate::monitor::QosMonitor;
use crate::rate::RateClock;
use crate::receiver::SinkEngine;
use crate::tpdu::DataTpdu;
use crate::window::{GoBackNReceiver, GoBackNSender};
use cm_core::address::{AddressTriple, NetAddr, Tsap, VcId};
use cm_core::osdu::Osdu;
use cm_core::qos::{QosParams, QosRequirement};
use cm_core::service_class::ServiceClass;
use cm_core::time::{SimDuration, SimTime};
use netsim::PeriodicTimer;
use std::collections::VecDeque;

/// Which end of the simplex VC this entity holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcRole {
    /// The data-producing end.
    Source,
    /// The data-consuming end.
    Sink,
}

/// Source-end state.
pub struct SourceEnd {
    /// Shared circular buffer the application writes into (§3.7).
    pub send_buf: BufferHandle,
    /// Pacing clock (rate-based profile).
    pub clock: RateClock,
    /// Window engine (window-based profile).
    pub gbn: Option<GoBackNSender>,
    /// Fragments of a partially-transmitted OSDU awaiting window room.
    pub pending_frags: VecDeque<DataTpdu>,
    /// Next OSDU sequence number to assign at `write_osdu`.
    pub next_write_seq: u64,
    /// Sequence slots consumed (transmitted or intentionally dropped) —
    /// the sender side of the cumulative credit scheme.
    pub charged: u64,
    /// Latest cumulative freed count reported by the receiver.
    pub freed_remote: u64,
    /// Receive-buffer capacity granted at connect.
    pub recv_capacity: u64,
    /// OSDUs intentionally discarded at the source (orchestration
    /// compensation, §6.3.1.1) — lifetime count.
    pub dropped: u64,
    /// OSDUs transmitted (lifetime).
    pub sent: u64,
    /// Recently sent OSDUs kept for selective retransmission.
    pub retrans_cache: VecDeque<Osdu>,
    /// Maximum entries in `retrans_cache`.
    pub retrans_cache_cap: usize,
    /// Pacing-tick timer; each re-arm implicitly drops the previous
    /// deadline (one boxed closure while the VC is live). Attached after
    /// the entry is inserted so the closure can capture the slab handle;
    /// set back to `None` at teardown, which frees the engine's timer slot.
    pub tick_timer: Option<PeriodicTimer>,
    /// Window RTO timer (same attach/teardown lifecycle as `tick_timer`).
    pub rto_timer: Option<PeriodicTimer>,
    /// Parked as consumer on the send buffer (application slow).
    pub waiting_buffer: bool,
    /// Stalled on exhausted receiver credit.
    pub stalled_credit: bool,
    /// When the current credit stall began (telemetry: stall duration).
    pub stalled_at: Option<SimTime>,
    /// Consecutive RTO firings without window progress — the window
    /// profile's path-failure detector (self-healing, DESIGN.md §9).
    pub rto_strikes: u32,
    /// Interval-stats snapshot of `dropped` at last harvest.
    pub dropped_snap: u64,
}

impl SourceEnd {
    /// OSDUs charged against receiver buffer slots but not yet freed.
    pub fn in_flight(&self) -> u64 {
        self.charged.saturating_sub(self.freed_remote)
    }

    /// Whether another OSDU may be charged without overrunning the
    /// receiver's buffer.
    pub fn has_credit(&self) -> bool {
        self.in_flight() < self.recv_capacity
    }
}

/// Sink-end state.
pub struct SinkEnd {
    /// Shared circular buffer the application reads from (§3.7); the
    /// delivery gate on it implements `Orch.Prime` (§6.2).
    pub recv_buf: BufferHandle,
    /// Reassembly/ordering/error-control engine.
    pub engine: SinkEngine,
    /// Window-profile receiver state.
    pub gbn_recv: Option<GoBackNReceiver>,
    /// OSDUs popped by the application (lifetime).
    pub app_popped: u64,
    /// Last cumulative freed total advertised to the sender.
    pub last_freed_sent: u64,
    /// QoS monitor (absent for best-effort VCs).
    pub monitor: Option<QosMonitor>,
    /// Monitor period timer (absent for best-effort VCs).
    pub monitor_timer: Option<PeriodicTimer>,
    /// In-order OSDUs waiting for receive-buffer space.
    pub pending_delivery: VecDeque<Osdu>,
    /// Producer side (protocol) parked on a full receive buffer.
    pub producer_parked: bool,
    /// Interval-stats snapshot of the engine's lifetime loss counter.
    pub lost_snap: u64,
    /// Interval-stats snapshot of the engine's lifetime delivery counter.
    pub delivered_snap: u64,
}

impl SinkEnd {
    /// Cumulative freed slots: application pops + holes/drops resolved
    /// inside the engine.
    pub fn freed_total(&self) -> u64 {
        self.app_popped + self.engine.internal_freed
    }
}

/// The lifecycle of a VC endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcPhase {
    /// Handshake in progress.
    Connecting,
    /// Data may flow.
    Open,
    /// Torn down (kept briefly for late-message tolerance).
    Closed,
}

/// One VC endpoint.
pub struct Vc {
    /// Connection id (allocated by the initiating entity).
    pub id: VcId,
    /// The full address triple.
    pub triple: AddressTriple,
    /// Protocol profile + error-control class.
    pub class: ServiceClass,
    /// The requirement as contracted (tolerance, rate, max OSDU size).
    pub requirement: QosRequirement,
    /// The negotiated QoS in force.
    pub contract: QosParams,
    /// Which end this is.
    pub role: VcRole,
    /// The opposite end's node.
    pub peer_node: NetAddr,
    /// The local user's TSAP (for indications).
    pub local_tsap: Tsap,
    /// Lifecycle phase.
    pub phase: VcPhase,
    /// Source-end machinery (when `role == Source`).
    pub source: Option<SourceEnd>,
    /// Sink-end machinery (when `role == Sink`).
    pub sink: Option<SinkEnd>,
    /// Group state when this is the sending end of a 1:N group VC: the
    /// multicast group id plus the per-receiver book-keeping (credit,
    /// contracts). `None` on ordinary point-to-point VCs and on the sink
    /// ends of group VCs.
    pub group: Option<crate::group::GroupEnd>,
    /// Tolerance received in a `RenegotiateRequest`, awaiting the local
    /// user's `T-Renegotiate.response`.
    pub pending_reneg: Option<cm_core::qos::QosTolerance>,
}

/// Interval statistics harvested from one end of a VC, feeding
/// `Orch.Regulate.indication` (§6.3.1.2): the blocking times of application
/// and protocol threads plus progress/drop counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EndStats {
    /// Time the application thread spent blocked on the shared buffer.
    pub app_blocked: SimDuration,
    /// Time the protocol thread spent blocked on the shared buffer.
    pub proto_blocked: SimDuration,
    /// Source: OSDU sequence charged so far. Sink: OSDUs accounted for at
    /// the application delivery point (units popped by the application
    /// plus units resolved without delivery — drops and unrepairable
    /// losses), i.e. the media position actually reached.
    pub seq_progress: u64,
    /// OSDUs intentionally dropped this interval (source only).
    pub dropped: u64,
    /// OSDUs lost this interval (sink only).
    pub lost: u64,
    /// OSDUs the application consumed in total (sink only).
    pub app_popped: u64,
}
