//! Transport-layer self-healing (DESIGN.md §9).
//!
//! A CM connection rides on state in the network — a route and, for
//! guaranteed VCs, a bandwidth reservation — that faults can destroy out
//! from under it: links flap, nodes crash, partitions form, reservations
//! get revoked by management action. The transport entity detects the
//! resulting symptoms at the *source* end (the end that owns the pacing
//! machinery and the reservation) and runs a bounded repair loop:
//!
//! | signal (detection)                       | reason    |
//! |------------------------------------------|-----------|
//! | credit stall persisting past patience    | `Stall`   |
//! | N consecutive RTOs without progress      | `Rto`     |
//! | zero-throughput QoS report w/ violations | `Starved` |
//! | out-of-band revocation indication        | `Revoked` |
//!
//! Each signal arms a per-VC probe timer. When it fires the probe checks
//! the infrastructure: is there a live route to the peer, and is the
//! reservation intact (held, and charging only live links)? Broken
//! infrastructure is repaired — release + re-admit on the current route
//! for unicast VCs, [`netsim::Network::group_refresh`] for multicast
//! trees (detour grafts, unreachable-member pruning, revoked-reservation
//! re-admission). Repairs that fail (no route yet, admission denied) back
//! off exponentially up to a cap; after `heal_max_attempts` consecutive
//! failures the VC is torn down with `DisconnectReason::Unreachable` so
//! the layers above see a typed member loss instead of a silent wedge.
//!
//! **Unsticking.** Repairing the path is not enough for the rate profile:
//! OSDUs lost in flight are never freed by the sink, so the source's
//! credit view stays exhausted forever. Once the infrastructure is sound
//! again the probe *unsticks* the source — retransmits the cached suffix
//! of unacknowledged OSDUs, declares the uncached prefix `Dropped` (the
//! sink frees those slots without counting them lost twice), and sends a
//! [`ControlMsg::CreditProbe`] so the sink re-advertises its cumulative
//! freed total even if its last `Credit` message died on the dead path.
//! The window profile needs none of this: go-back-N retransmission is
//! self-healing once the route is back.
//!
//! A plain credit stall is *normal backpressure* (a slow application),
//! not a fault — and so is the zero-throughput QoS report it produces.
//! Corrective actions therefore require the episode to have *observed*
//! broken infrastructure on some probe; a triggering signal alone ends
//! quietly when every probe finds the path healthy, leaving fault-free
//! runs untouched. (The price: a fault that both begins and fully heals
//! between two probes, taking the sink's last `Credit` report with it,
//! is not detected — bounded by `heal_patience`.)

use crate::entity::TransportEntity;
use crate::tpdu::ControlMsg;
use crate::vc::VcPhase;
use cm_core::address::{NetAddr, VcId};
use cm_core::error::DisconnectReason;
use cm_core::osdu::Osdu;
use cm_core::qos::GuaranteeMode;
use cm_core::time::{Bandwidth, SimTime};
use cm_telemetry::Layer;
use netsim::{GroupId, PeriodicTimer};
use std::rc::Rc;

/// Why a healing episode was opened (telemetry + evidence weighting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealReason {
    /// Credit stall persisted past the patience window.
    Stall,
    /// Consecutive RTO firings without window progress.
    Rto,
    /// The sink reported a monitoring period with zero throughput and
    /// contract violations.
    Starved,
    /// The network (or a chaos controller) revoked the reservation.
    Revoked,
}

impl HealReason {
    fn kind(self) -> &'static str {
        match self {
            HealReason::Stall => "stall",
            HealReason::Rto => "rto",
            HealReason::Starved => "starved",
            HealReason::Revoked => "revoked",
        }
    }
}

/// Per-VC healing state. Lives in the VC's slab entry for the life of
/// the VC (episodes come and go; the lifetime counters persist).
pub(crate) struct HealState {
    /// Probe timer (holds a `Weak` back-reference; post-teardown fires
    /// are no-ops).
    timer: PeriodicTimer,
    /// An episode is open: the timer is armed or a probe is imminent.
    active: bool,
    /// The signal that opened the current episode.
    reason: HealReason,
    /// The episode has observed actual broken infrastructure on some
    /// probe. Gate for the corrective actions that would be wrong during
    /// ordinary backpressure (see module doc) — a triggering signal alone
    /// is never enough: a zero-throughput report or a stall also occurs
    /// when the application simply stops reading.
    saw_fault: bool,
    /// When the current episode's signal was first raised — recovery time
    /// is measured from here.
    since: SimTime,
    /// Probe attempts in the current episode (bounds the repair loop).
    tries: u32,
    /// Next re-arm delay after a failed attempt.
    backoff: cm_core::time::SimDuration,
    /// Lifetime repair attempts (probes that took action).
    attempts: u64,
    /// Lifetime successful repairs.
    repairs: u64,
}

impl TransportEntity {
    // ------------------------------------------------------------------
    // Detection entry points
    // ------------------------------------------------------------------

    /// Open (or reinforce) a healing episode for `vc`. No-op unless `vc`
    /// is an open source end — repair is the sender's job.
    pub(crate) fn heal_kick(self: &Rc<Self>, vc: VcId, reason: HealReason) {
        let now = self.now();
        {
            let st = self.state.borrow();
            let Some(v) = st.vcs.get(&vc) else { return };
            if v.phase != VcPhase::Open || v.source.is_none() {
                return;
            }
        }
        if !self.state.borrow().vcs.has_heal(&vc) {
            let weak = Rc::downgrade(self);
            let timer = PeriodicTimer::new(self.net.engine(), move |_| {
                if let Some(me) = weak.upgrade() {
                    me.heal_fire(vc);
                }
            });
            self.state.borrow_mut().vcs.set_heal(
                vc,
                HealState {
                    timer,
                    active: false,
                    reason,
                    saw_fault: false,
                    since: now,
                    tries: 0,
                    backoff: self.config.heal_patience,
                    attempts: 0,
                    repairs: 0,
                },
            );
        }
        let patience = self.config.heal_patience;
        let mut st = self.state.borrow_mut();
        let hs = st.vcs.heal_mut(&vc).expect("heal state just ensured");
        if !hs.active {
            hs.active = true;
            hs.reason = reason;
            hs.saw_fault = false;
            hs.since = now;
            hs.tries = 0;
            hs.backoff = patience;
            hs.timer.arm_at(now + patience);
        }
    }

    /// A source newly stalled on exhausted credit (called from the data
    /// path at the stall transition).
    pub(crate) fn heal_on_stall(self: &Rc<Self>, vc: VcId) {
        self.heal_kick(vc, HealReason::Stall);
    }

    /// Lifetime `(attempts, repairs)` counters for `vc`'s healing state.
    pub(crate) fn heal_stats(&self, vc: VcId) -> (u64, u64) {
        self.state
            .borrow()
            .vcs
            .heal(&vc)
            .map(|h| (h.attempts, h.repairs))
            .unwrap_or((0, 0))
    }

    // ------------------------------------------------------------------
    // The probe
    // ------------------------------------------------------------------

    pub(crate) fn heal_fire(self: &Rc<Self>, vc: VcId) {
        let now = self.now();
        // A crashed node must not diagnose (and tear down!) its own VCs;
        // hold the episode until the node itself is back.
        if !self.net.is_node_up(self.node) {
            let st = self.state.borrow();
            if let Some(hs) = st.vcs.heal(&vc) {
                if hs.active {
                    hs.timer.arm_at(now + self.config.heal_backoff_cap);
                }
            }
            return;
        }
        enum Probe {
            Gone,
            Unicast {
                peer: NetAddr,
                needs_resv: bool,
                bandwidth: Bandwidth,
                stalled: bool,
                window: bool,
            },
            Group {
                group: GroupId,
                stalled: bool,
            },
        }
        let probe = {
            let st = self.state.borrow();
            match st.vcs.get(&vc) {
                Some(v) if v.phase == VcPhase::Open && v.source.is_some() => {
                    let s = v.source.as_ref().expect("source end");
                    let stalled = s.stalled_credit;
                    match &v.group {
                        Some(ge) => Probe::Group {
                            group: ge.group,
                            stalled,
                        },
                        None => Probe::Unicast {
                            peer: v.peer_node,
                            needs_resv: v.requirement.guarantee != GuaranteeMode::BestEffort,
                            bandwidth: v.contract.throughput,
                            stalled,
                            window: s.gbn.is_some(),
                        },
                    }
                }
                _ => Probe::Gone,
            }
        };
        match probe {
            Probe::Gone => {
                self.state.borrow_mut().vcs.remove_heal(&vc);
            }
            Probe::Unicast {
                peer,
                needs_resv,
                bandwidth,
                stalled,
                window,
            } => self.probe_unicast(vc, peer, needs_resv, bandwidth, stalled, window, now),
            Probe::Group { group, stalled } => self.probe_group(vc, group, stalled, now),
        }
    }

    /// Probe + repair a point-to-point source end (the reroute path).
    #[allow(clippy::too_many_arguments)]
    fn probe_unicast(
        self: &Rc<Self>,
        vc: VcId,
        peer: NetAddr,
        needs_resv: bool,
        bandwidth: Bandwidth,
        stalled: bool,
        window: bool,
        now: SimTime,
    ) {
        let route_ok = self.net.route(self.node, peer).is_some();
        let resv = needs_resv
            .then(|| self.net.reservation_intact(vc))
            .flatten();
        let resv_broken = needs_resv && !matches!(resv, Some(true));
        if !route_ok || resv_broken {
            self.heal_note_fault(vc);
        }
        if !route_ok {
            self.heal_attempt_failed(vc, now);
            return;
        }
        let mut rerouted = false;
        if resv_broken {
            if resv == Some(false) {
                // Held, but charging a dead link: move it to the detour.
                self.net.release_reservation(vc);
            }
            match self.net.reserve_path(vc, self.node, peer, bandwidth) {
                Some(Ok(())) => rerouted = true,
                _ => {
                    self.heal_attempt_failed(vc, now);
                    return;
                }
            }
        }
        let saw_fault = {
            let st = self.state.borrow();
            st.vcs.heal(&vc).map(|h| h.saw_fault).unwrap_or(false)
        };
        let mut unstuck = false;
        if stalled && (rerouted || saw_fault) {
            unstuck = self.unstick_source(vc);
        }
        if window && (rerouted || saw_fault) {
            // Nudge the window machinery: clear the strike counter and let
            // go-back-N's own retransmission drive recovery over the
            // repaired path.
            let mut st = self.state.borrow_mut();
            if let Some(s) = st.vcs.get_mut(&vc).and_then(|v| v.source.as_mut()) {
                s.rto_strikes = 0;
            }
        }
        if rerouted || unstuck {
            self.heal_repaired(vc, now, rerouted.then_some("vc.reroute"));
        }
        // Episode state machine: a persisting stall re-probes (bounded by
        // tries); otherwise the episode is over.
        let still_stalled = {
            let st = self.state.borrow();
            st.vcs
                .get(&vc)
                .and_then(|v| v.source.as_ref())
                .map(|s| s.stalled_credit)
                .unwrap_or(false)
        };
        if still_stalled && saw_fault {
            self.heal_reprobe(vc, now);
        } else {
            self.heal_end(vc);
        }
    }

    /// Probe + repair a group source end (the regraft path).
    fn probe_group(self: &Rc<Self>, vc: VcId, group: GroupId, stalled: bool, now: SimTime) {
        let refresh = match self.net.group_refresh(group) {
            Err(_) => {
                // A detour branch exists but was denied admission — the
                // tree cannot be healed yet.
                self.heal_note_fault(vc);
                self.heal_attempt_failed(vc, now);
                return;
            }
            Ok(r) => r,
        };
        let acted =
            refresh.links_added > 0 || refresh.links_removed > 0 || !refresh.unreachable.is_empty();
        if acted {
            self.heal_note_fault(vc);
        }
        // Members with no live path any more left the tree: prune their
        // sender-side state and surface a typed leave.
        let lost = refresh.unreachable.len();
        for member in refresh.unreachable {
            let (gone, tsap) = {
                let mut st = self.state.borrow_mut();
                let Some(v) = st.vcs.get_mut(&vc) else { return };
                let tsap = v.local_tsap;
                let Some(ge) = v.group.as_mut() else { return };
                let gone = ge
                    .receivers
                    .remove(&member)
                    .map(|r| r.addr)
                    .or_else(|| ge.pending.remove(&member).map(|p| p.addr));
                (gone, tsap)
            };
            if let Some(addr) = gone {
                self.to_user(tsap, move |svc, u| {
                    u.t_group_leave_indication(svc, vc, addr, DisconnectReason::Unreachable)
                });
            }
        }
        if lost > 0 {
            // Credit floor and pacing re-derive from the surviving set.
            self.recompute_group(vc);
        }
        let saw_fault = {
            let st = self.state.borrow();
            st.vcs.heal(&vc).map(|h| h.saw_fault).unwrap_or(false)
        };
        let mut unstuck = false;
        if stalled && (acted || saw_fault) {
            unstuck = self.unstick_source(vc);
        }
        if acted || unstuck {
            self.heal_repaired(vc, now, acted.then_some("mcast.regraft"));
            if acted && self.tel.enabled() {
                self.tel
                    .instant(now, Layer::Transport, "mcast.regraft.detail", |e| {
                        e.u64("vc", vc.0)
                            .u64("group", group.0 as u64)
                            .u64("links_added", refresh.links_added as u64)
                            .u64("links_removed", refresh.links_removed as u64)
                            .u64("members_lost", lost as u64);
                    });
            }
        }
        let still_stalled = {
            let st = self.state.borrow();
            st.vcs
                .get(&vc)
                .and_then(|v| v.source.as_ref())
                .map(|s| s.stalled_credit)
                .unwrap_or(false)
        };
        if still_stalled && saw_fault {
            self.heal_reprobe(vc, now);
        } else {
            self.heal_end(vc);
        }
    }

    // ------------------------------------------------------------------
    // Episode bookkeeping
    // ------------------------------------------------------------------

    /// The probe observed broken infrastructure: from here on the episode
    /// may take corrective actions that would be wrong for plain
    /// backpressure.
    fn heal_note_fault(&self, vc: VcId) {
        let mut st = self.state.borrow_mut();
        if let Some(hs) = st.vcs.heal_mut(&vc) {
            hs.saw_fault = true;
        }
    }

    /// A repair attempt failed: exponential backoff, bounded give-up.
    fn heal_attempt_failed(self: &Rc<Self>, vc: VcId, now: SimTime) {
        let give_up = {
            let mut st = self.state.borrow_mut();
            let Some(hs) = st.vcs.heal_mut(&vc) else {
                return;
            };
            hs.attempts += 1;
            hs.tries += 1;
            if hs.tries >= self.config.heal_max_attempts {
                hs.active = false;
                true
            } else {
                hs.timer.arm_at(now + hs.backoff);
                hs.backoff = hs
                    .backoff
                    .saturating_mul(2)
                    .min(self.config.heal_backoff_cap);
                false
            }
        };
        if give_up {
            if self.tel.enabled() {
                self.tel.count("vc.heal.giveup", 1);
                self.tel
                    .instant(now, Layer::Transport, "vc.heal.giveup", |e| {
                        e.u64("vc", vc.0);
                    });
            }
            // The path never came back: surface it as a typed disconnect
            // instead of a silent forever-wedge.
            self.teardown_local(vc, DisconnectReason::Unreachable, true);
        }
    }

    /// A probe repaired something. `event` names the headline telemetry
    /// event (`vc.reroute` / `mcast.regraft`) when the repair touched
    /// network state; a bare unstick counts but stays quiet.
    fn heal_repaired(&self, vc: VcId, now: SimTime, event: Option<&'static str>) {
        let (reason, since, tries) = {
            let mut st = self.state.borrow_mut();
            let Some(hs) = st.vcs.heal_mut(&vc) else {
                return;
            };
            hs.attempts += 1;
            hs.repairs += 1;
            (hs.reason, hs.since, hs.tries)
        };
        if !self.tel.enabled() {
            return;
        }
        let dur = now.saturating_since(since);
        self.tel.record_duration("vc.heal.repair_us", dur);
        if let Some(name) = event {
            self.tel.count(name, 1);
            self.tel.instant(now, Layer::Transport, name, |e| {
                e.u64("vc", vc.0)
                    .str("reason", reason.kind())
                    .u64("tries", tries as u64)
                    .u64("repair_us", dur.as_micros());
            });
        }
    }

    /// Re-probe a repaired-but-still-stalled VC at patience cadence
    /// (counts against the episode's try budget so a truly dead sink
    /// still converges on give-up).
    fn heal_reprobe(self: &Rc<Self>, vc: VcId, now: SimTime) {
        let give_up = {
            let mut st = self.state.borrow_mut();
            let Some(hs) = st.vcs.heal_mut(&vc) else {
                return;
            };
            hs.tries += 1;
            if hs.tries >= self.config.heal_max_attempts {
                hs.active = false;
                true
            } else {
                hs.timer.arm_at(now + self.config.heal_patience);
                false
            }
        };
        if give_up {
            if self.tel.enabled() {
                self.tel.count("vc.heal.giveup", 1);
                self.tel
                    .instant(now, Layer::Transport, "vc.heal.giveup", |e| {
                        e.u64("vc", vc.0);
                    });
            }
            self.teardown_local(vc, DisconnectReason::Unreachable, true);
        }
    }

    /// Close the episode: signal cleared (or was never a fault).
    fn heal_end(&self, vc: VcId) {
        let mut st = self.state.borrow_mut();
        if let Some(hs) = st.vcs.heal_mut(&vc) {
            hs.active = false;
            hs.timer.disarm();
        }
        if let Some(s) = st.vcs.get_mut(&vc).and_then(|v| v.source.as_mut()) {
            // Let the RTO strike detector re-arm from zero.
            s.rto_strikes = 0;
        }
    }

    // ------------------------------------------------------------------
    // Repair actions
    // ------------------------------------------------------------------

    /// Clear a credit wedge on a rate-profile source whose in-flight
    /// OSDUs died with the old path: retransmit the cached suffix,
    /// declare the uncached prefix dropped, and ask the sink to
    /// re-advertise its cumulative credit. Every step is idempotent at
    /// the sink (duplicate data, repeated drop notices and repeated
    /// credit reports are all absorbed), so repeated unsticks are safe.
    /// Returns whether anything was sent.
    fn unstick_source(self: &Rc<Self>, vc: VcId) -> bool {
        let plan = {
            let st = self.state.borrow();
            let Some(v) = st.vcs.get(&vc) else {
                return false;
            };
            if v.phase != VcPhase::Open {
                return false;
            }
            let Some(s) = v.source.as_ref() else {
                return false;
            };
            // The window profile recovers through go-back-N itself.
            if !s.stalled_credit || s.gbn.is_some() {
                return false;
            }
            let resend: Vec<Osdu> = s
                .retrans_cache
                .iter()
                .filter(|o| o.seq() >= s.freed_remote)
                .cloned()
                .collect();
            // FIFO cache with ascending seqs: everything below the first
            // cached survivor is unrecoverable — declare it dropped so the
            // sink frees the slots instead of waiting forever.
            let cover_from = resend.first().map(|o| o.seq()).unwrap_or(s.charged);
            let dropped: Vec<u64> = (s.freed_remote..cover_from).collect();
            (resend, dropped)
        };
        let (resend, dropped) = plan;
        for osdu in resend {
            self.transmit_osdu(vc, osdu, true, None);
        }
        if !dropped.is_empty() {
            self.send_source_feedback(vc, ControlMsg::Dropped { vc, seqs: dropped });
        }
        self.send_source_feedback(vc, ControlMsg::CreditProbe { vc });
        if self.tel.enabled() {
            self.tel.count("vc.heal.unstick", 1);
        }
        true
    }

    /// Sink side of [`ControlMsg::CreditProbe`]: re-advertise the
    /// cumulative freed total unconditionally (the delta gate in
    /// `maybe_send_credit` would swallow a repeat of a lost report).
    pub(crate) fn force_send_credit(self: &Rc<Self>, vc: VcId) {
        let msg = {
            let mut st = self.state.borrow_mut();
            let Some(v) = st.vcs.get_mut(&vc) else { return };
            let peer = v.peer_node;
            let Some(k) = v.sink.as_mut() else { return };
            let freed = k.freed_total();
            k.last_freed_sent = k.last_freed_sent.max(freed);
            (peer, freed)
        };
        let (peer, freed) = msg;
        self.send_control(
            peer,
            ControlMsg::Credit {
                vc,
                freed_total: freed,
            },
        );
    }
}
