//! The transport service interface — the OSI-style primitives of tables
//! 1–3 plus the data-transfer and orchestration hooks.
//!
//! A [`TransportService`] is a per-node handle over the transport entity.
//! Applications/platform objects implement [`TransportUser`] and bind it to
//! a TSAP; the entity delivers indications and confirms through that trait
//! (each as its own event at the current simulated instant, so users may
//! freely call back into the service). The orchestration layer additionally
//! registers a [`VcTap`] per orchestrated VC for OPDU and arrival
//! monitoring (§5–6).

use crate::buffer::BufferHandle;
use crate::entity::TransportEntity;
use crate::tpdu::QosReport;
use crate::vc::{EndStats, VcRole};
use cm_core::address::{AddressTriple, NetAddr, TransportAddr, Tsap, VcId};
use cm_core::error::{DisconnectReason, ServiceError};
use cm_core::osdu::{Opdu, Osdu, Payload};
use cm_core::qos::{QosParams, QosRequirement, QosTolerance};
use cm_core::service_class::ServiceClass;
use cm_core::time::{Rate, SimDuration, SimTime};
use std::any::Any;
use std::rc::Rc;

/// Static configuration of a transport entity.
#[derive(Debug, Clone)]
pub struct EntityConfig {
    /// Network MTU the entity fragments against.
    pub mtu: usize,
    /// QoS monitor sample period (§4.1.2).
    pub monitor_period: SimDuration,
    /// Fixed buffer slot count (overrides the rate-derived default).
    pub buffer_slots_override: Option<usize>,
    /// Window size in TPDUs (window-based profile).
    pub window_size: usize,
    /// Retransmission timeout (window-based profile).
    pub rto: SimDuration,
    /// Self-healing: delay between failure detection and the first repair
    /// attempt, and the initial repair-retry backoff. A transient stall
    /// shorter than this never churns reservations.
    pub heal_patience: SimDuration,
    /// Self-healing: cap on the exponential repair-retry backoff.
    pub heal_backoff_cap: SimDuration,
    /// Self-healing: consecutive no-progress RTO firings before a reroute
    /// is attempted (the window profile's failure detector).
    pub heal_rto_patience: u32,
    /// Self-healing: repair attempts per episode before giving up and
    /// tearing the VC down as `Unreachable`.
    pub heal_max_attempts: u32,
    /// Causal-tracing registry (`cm-obs`). Entities installed with clones
    /// of one config share the registry; it is disabled by default and
    /// costs one branch per hook until enabled.
    pub obs: cm_obs::Obs,
}

impl Default for EntityConfig {
    fn default() -> Self {
        EntityConfig {
            mtu: crate::tpdu::DEFAULT_MTU,
            monitor_period: SimDuration::from_secs(1),
            buffer_slots_override: None,
            window_size: 16,
            rto: SimDuration::from_millis(200),
            heal_patience: SimDuration::from_millis(50),
            heal_backoff_cap: SimDuration::from_millis(800),
            heal_rto_patience: 3,
            heal_max_attempts: 8,
            obs: cm_obs::Obs::disabled(),
        }
    }
}

/// Callbacks delivered to a transport user bound to a TSAP.
///
/// Every method has a default empty implementation so users override only
/// what they need. The service handle is passed in so responses
/// (`t_connect_response` etc.) can be issued directly from the callback.
#[allow(unused_variables)]
pub trait TransportUser {
    /// `T-Connect.indication` (table 1): a connection to this TSAP is
    /// proposed. Answer with [`TransportService::t_connect_response`].
    fn t_connect_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        triple: AddressTriple,
        class: ServiceClass,
        qos: QosRequirement,
    ) {
    }

    /// `T-Connect.confirm` (table 1): outcome of a connect this user
    /// initiated (or sourced).
    fn t_connect_confirm(
        &self,
        svc: &TransportService,
        vc: VcId,
        result: Result<QosParams, DisconnectReason>,
    ) {
    }

    /// `T-Disconnect.indication` (table 1). Note §4.1.3: when the reason is
    /// [`DisconnectReason::RenegotiationRefused`] the VC is *still open* —
    /// the indication reports only that the new service level was refused.
    fn t_disconnect_indication(&self, svc: &TransportService, vc: VcId, reason: DisconnectReason) {}

    /// `T-QoS.indication` (table 2): the monitored QoS violated the
    /// contract over the last sample period (soft guarantee, §3.2).
    fn t_qos_indication(&self, svc: &TransportService, report: QosReport) {}

    /// `T-Renegotiate.indication` (table 3): the peer proposes new
    /// tolerance levels. Answer with
    /// [`TransportService::t_renegotiate_response`].
    fn t_renegotiate_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        new_tolerance: QosTolerance,
    ) {
    }

    /// `T-Renegotiate.confirm` (table 3): the renegotiation succeeded and
    /// `qos` is now in force.
    fn t_renegotiate_confirm(&self, svc: &TransportService, vc: VcId, qos: QosParams) {}

    /// Error indication (§3.4 classes (i) and (iii)): OSDU `seq` was lost
    /// or damaged beyond repair.
    fn t_error_indication(&self, svc: &TransportService, vc: VcId, seq: u64) {}

    /// A connectionless datagram arrived at this TSAP.
    fn t_datagram_indication(
        &self,
        svc: &TransportService,
        from: TransportAddr,
        payload: Rc<dyn Any>,
    ) {
    }

    // ---- Group (1:N) VC callbacks, sender side ---------------------------

    /// Outcome of a [`TransportService::t_group_add_receiver`] invitation:
    /// either the per-receiver contract now in force for `member`, or a
    /// typed denial (branch QoS below the acceptable floor, reservation
    /// admission failure, unreachable node, or the member's own refusal).
    /// Denials leave already-admitted receivers untouched.
    fn t_group_join_confirm(
        &self,
        svc: &TransportService,
        vc: VcId,
        member: TransportAddr,
        result: Result<QosParams, DisconnectReason>,
    ) {
    }

    /// A group member released its end (or was torn down remotely); its
    /// branch reservations have been pruned and the group contract
    /// re-derived from the remaining receivers.
    fn t_group_leave_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        member: TransportAddr,
        reason: DisconnectReason,
    ) {
    }

    /// A QoS violation report from one receiver of a group VC (soft
    /// guarantee, §3.2) — per-member, so one degraded branch is
    /// attributable without implicating the rest of the group.
    fn t_group_qos_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        member: NetAddr,
        report: QosReport,
    ) {
    }
}

/// Orchestration-layer tap on one VC (the "close implementation
/// relationship between the LLO and the transport service", §6.2.1).
#[allow(unused_variables)]
pub trait VcTap {
    /// An OSDU was written into the receive buffer (sink side); carries
    /// its OPDU for `Orch.Event` matching (§6.3.4).
    fn on_osdu_arrived(&self, vc: VcId, opdu: Opdu) {}

    /// An opaque control payload arrived on the VC's control channel.
    fn on_control(&self, vc: VcId, payload: Rc<dyn Any>) {}

    /// An OSDU was reported lost/damaged beyond repair.
    fn on_loss_indicated(&self, vc: VcId, seq: u64) {}
}

/// Source-side egress tap on one VC: sees every OSDU the instant
/// `write_osdu` accepts it into the send buffer, synchronously, before
/// packetization. This is the capture point for zone-edge relays — a
/// wide-area forwarder observing at the write call costs no extra
/// packets, no receiver slot and no engine events, where a forwarder
/// joined as a *member* would ride the full local delivery path once
/// per OSDU (DESIGN.md §13).
///
/// The callback runs after the entity's state borrow is released, so it
/// may call back into the service (including `write_osdu`) — but it runs
/// inside the writer's call, so it must not assume the OSDU has been
/// transmitted, only buffered.
pub trait EgressTap {
    /// `write_osdu` accepted this OSDU (sequence number assigned, span
    /// minted) at simulated time `now_us`.
    fn on_osdu_written(&self, vc: VcId, osdu: &Osdu, now_us: u64);
}

/// Per-node handle to the transport service.
#[derive(Clone)]
pub struct TransportService {
    entity: Rc<TransportEntity>,
}

impl TransportService {
    pub(crate) fn new(entity: Rc<TransportEntity>) -> TransportService {
        TransportService { entity }
    }

    /// The causal-tracing registry this entity stamps spans into.
    pub fn obs(&self) -> &cm_obs::Obs {
        self.entity.obs()
    }

    /// Install a transport entity on `node` and return its service handle.
    pub fn install(net: &netsim::Network, node: NetAddr, config: EntityConfig) -> TransportService {
        TransportEntity::install(net, node, config)
    }

    /// The node this service runs on.
    pub fn node(&self) -> NetAddr {
        self.entity.node
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.entity.net.engine().now()
    }

    /// The underlying network handle (topology queries, engine access).
    pub fn network(&self) -> &netsim::Network {
        &self.entity.net
    }

    // ---- TSAP management -------------------------------------------------

    /// Bind `user` to a TSAP.
    pub fn bind(&self, tsap: Tsap, user: Rc<dyn TransportUser>) -> Result<(), ServiceError> {
        self.entity.bind(tsap, user)
    }

    /// Release a TSAP.
    pub fn unbind(&self, tsap: Tsap) -> Result<(), ServiceError> {
        self.entity.unbind(tsap)
    }

    // ---- Connection management (tables 1 & 3) ----------------------------

    /// `T-Connect.request`: initiate a (possibly remote, §3.5) simplex
    /// connection. Returns the allocated VC id; the outcome arrives via
    /// `t_connect_confirm`.
    pub fn t_connect_request(
        &self,
        triple: AddressTriple,
        class: ServiceClass,
        qos: QosRequirement,
    ) -> Result<VcId, ServiceError> {
        self.entity.t_connect_request(triple, class, qos)
    }

    /// `T-Connect.response`: answer a `t_connect_indication`.
    pub fn t_connect_response(&self, vc: VcId, accept: bool) -> Result<(), ServiceError> {
        self.entity.t_connect_response(vc, accept)
    }

    /// `T-Disconnect.request`: release a VC (from an endpoint) or request
    /// remote release (from the initiator, §4.1.1).
    pub fn t_disconnect_request(&self, vc: VcId) -> Result<(), ServiceError> {
        self.entity
            .t_disconnect_request(vc, DisconnectReason::UserRelease)
    }

    /// `T-Renegotiate.request`: propose new tolerance levels for a live VC
    /// (§4.1.3). Outcome arrives as `t_renegotiate_confirm`, or as a
    /// `t_disconnect_indication(RenegotiationRefused)` with the VC intact.
    pub fn t_renegotiate_request(
        &self,
        vc: VcId,
        new_tolerance: QosTolerance,
    ) -> Result<(), ServiceError> {
        self.entity.t_renegotiate_request(vc, new_tolerance)
    }

    /// `T-Renegotiate.response`: answer a `t_renegotiate_indication`.
    pub fn t_renegotiate_response(&self, vc: VcId, accept: bool) -> Result<(), ServiceError> {
        self.entity.t_renegotiate_response(vc, accept)
    }

    // ---- Group (1:N) VCs (§3.1 CM multicast) -----------------------------

    /// Open the sending end of a 1:N group VC at `tsap`. The VC starts
    /// with an empty receiver set; invite members with
    /// [`TransportService::t_group_add_receiver`]. Each OSDU is forwarded
    /// once per shared-tree link and fanned out at branch points, so the
    /// source's first-hop link carries the stream exactly once regardless
    /// of the receiver count.
    pub fn t_group_open(
        &self,
        tsap: Tsap,
        class: ServiceClass,
        qos: QosRequirement,
    ) -> Result<VcId, ServiceError> {
        self.entity.t_group_open(tsap, class, qos)
    }

    /// Invite `to` into group VC `vc`. Synchronous errors cover misuse
    /// only; the admission outcome arrives via
    /// [`TransportUser::t_group_join_confirm`]. The invitee sees an
    /// ordinary `t_connect_indication` and answers with
    /// [`TransportService::t_connect_response`].
    pub fn t_group_add_receiver(&self, vc: VcId, to: TransportAddr) -> Result<(), ServiceError> {
        self.entity.t_group_add_receiver(vc, to)
    }

    /// Remove `member` from the group: its branch reservations are
    /// released (and only those — the rest of the tree is untouched) and
    /// the group contract re-derived from the remaining receivers.
    pub fn t_group_remove_receiver(&self, vc: VcId, member: NetAddr) -> Result<(), ServiceError> {
        self.entity.t_group_remove_receiver(vc, member)
    }

    /// Close the whole group VC: disconnect every member and release the
    /// shared tree.
    pub fn t_group_close(&self, vc: VcId) -> Result<(), ServiceError> {
        self.entity.t_group_close(vc)
    }

    /// The network-layer multicast group behind a group VC.
    pub fn group_id(&self, vc: VcId) -> Result<netsim::GroupId, ServiceError> {
        let st = self.entity.state.borrow();
        st.vcs
            .get(&vc)
            .and_then(|v| v.group.as_ref())
            .map(|ge| ge.group)
            .ok_or(ServiceError::UnknownVc)
    }

    /// The admitted receivers of a group VC with their per-member
    /// contracts, in deterministic node order.
    pub fn group_receivers(
        &self,
        vc: VcId,
    ) -> Result<Vec<(TransportAddr, QosParams)>, ServiceError> {
        let st = self.entity.state.borrow();
        st.vcs
            .get(&vc)
            .and_then(|v| v.group.as_ref())
            .map(|ge| {
                ge.receivers
                    .values()
                    .map(|r| (r.addr, r.contract))
                    .collect()
            })
            .ok_or(ServiceError::UnknownVc)
    }

    // ---- Data transfer (§3.7) --------------------------------------------

    /// Write one logical unit; the transport assigns its OSDU sequence
    /// number (numbering starts at zero from first use, §5). Returns
    /// `Ok(false)` when the send buffer is full (park on
    /// [`TransportService::send_handle`] to be woken).
    pub fn write_osdu(
        &self,
        vc: VcId,
        payload: Payload,
        event: Option<u64>,
    ) -> Result<bool, ServiceError> {
        self.entity.write_osdu(vc, payload, event)
    }

    /// Read the next in-order logical unit from the receive buffer
    /// (respects the orchestration gate).
    pub fn read_osdu(&self, vc: VcId) -> Result<Option<Osdu>, ServiceError> {
        self.entity.read_osdu(vc)
    }

    /// Direct handle to the source-end shared circular buffer.
    pub fn send_handle(&self, vc: VcId) -> Result<BufferHandle, ServiceError> {
        let st = self.entity.state.borrow();
        st.vcs
            .get(&vc)
            .and_then(|v| v.source.as_ref())
            .map(|s| s.send_buf.clone())
            .ok_or(ServiceError::UnknownVc)
    }

    /// Direct handle to the sink-end shared circular buffer.
    pub fn recv_handle(&self, vc: VcId) -> Result<BufferHandle, ServiceError> {
        let st = self.entity.state.borrow();
        st.vcs
            .get(&vc)
            .and_then(|v| v.sink.as_ref())
            .map(|k| k.recv_buf.clone())
            .ok_or(ServiceError::UnknownVc)
    }

    // ---- Datagrams --------------------------------------------------------

    /// Connectionless send (control-priority) to a remote TSAP.
    pub fn send_datagram(
        &self,
        from_tsap: Tsap,
        to: TransportAddr,
        payload: Rc<dyn Any>,
        wire_size: usize,
    ) {
        self.entity.send_datagram(from_tsap, to, payload, wire_size)
    }

    // ---- Orchestration hooks (§5–6) ----------------------------------------

    /// Register a [`VcTap`] on a VC.
    pub fn register_tap(&self, vc: VcId, tap: Rc<dyn VcTap>) -> Result<(), ServiceError> {
        self.entity.register_tap(vc, tap)
    }

    /// Remove the tap from a VC.
    pub fn clear_tap(&self, vc: VcId) {
        self.entity.clear_tap(vc)
    }

    /// Register an [`EgressTap`] on a source-end VC; it fires
    /// synchronously on every accepted `write_osdu`.
    pub fn set_egress_tap(&self, vc: VcId, tap: Rc<dyn EgressTap>) -> Result<(), ServiceError> {
        self.entity.set_egress_tap(vc, tap)
    }

    /// Remove the egress tap from a VC.
    pub fn clear_egress_tap(&self, vc: VcId) {
        self.entity.clear_egress_tap(vc)
    }

    /// Send an opaque payload on the VC's out-of-band control channel.
    pub fn send_vc_control(&self, vc: VcId, payload: Rc<dyn Any>) -> Result<(), ServiceError> {
        self.entity.send_vc_control(vc, payload)
    }

    /// Freeze the source's transmission (Orch.Stop path).
    pub fn pause_source(&self, vc: VcId) -> Result<(), ServiceError> {
        self.entity.pause_source(vc)
    }

    /// Resume a frozen source (Orch.Start path).
    pub fn resume_source(&self, vc: VcId) -> Result<(), ServiceError> {
        self.entity.resume_source(vc)
    }

    /// Retune the pacing rate to `base × num/den` (LLO regulation).
    pub fn set_rate_factor(&self, vc: VcId, num: u64, den: u64) -> Result<(), ServiceError> {
        self.entity.set_rate_factor(vc, num, den)
    }

    /// Discard the oldest unsent OSDU at the source (§6.3.1.1).
    pub fn source_drop_one(&self, vc: VcId) -> Result<bool, ServiceError> {
        self.entity.source_drop_one(vc)
    }

    /// Gate/ungate delivery from the receive buffer (Orch.Prime).
    pub fn set_recv_gate(&self, vc: VcId, gated: bool) -> Result<(), ServiceError> {
        self.entity.set_recv_gate(vc, gated)
    }

    /// Cap the total OSDUs releasable to the sink application (the LLO's
    /// paced release, §5). `None` removes the cap.
    pub fn set_release_limit(&self, vc: VcId, limit: Option<u64>) -> Result<(), ServiceError> {
        let now = self.now();
        self.recv_handle(vc)?.set_release_limit(now, limit);
        Ok(())
    }

    /// Flush this end's buffered OSDUs (stop + seek, §6.2.1).
    pub fn flush_local(&self, vc: VcId) -> Result<usize, ServiceError> {
        self.entity.flush_local(vc)
    }

    /// Harvest interval statistics for this end of the VC (§6.3.1.2).
    pub fn take_end_stats(&self, vc: VcId) -> Result<EndStats, ServiceError> {
        self.entity.take_end_stats(vc)
    }

    // ---- Self-healing (failure model, DESIGN.md §9) ------------------------

    /// Out-of-band notification that the network revoked this VC's (or its
    /// group tree's) resource reservation: schedules an immediate repair
    /// attempt at the source end. No-op for unknown or sink-side VCs —
    /// revocation repair is the sender's job.
    pub fn on_reservation_revoked(&self, vc: VcId) {
        self.entity.heal_kick(vc, crate::heal::HealReason::Revoked);
    }

    /// Cumulative self-healing statistics for a source-side VC:
    /// `(attempts, repairs)` — repair attempts made and attempts that
    /// succeeded (reroute or regraft). `(0, 0)` if healing never armed.
    pub fn heal_stats(&self, vc: VcId) -> (u64, u64) {
        self.entity.heal_stats(vc)
    }

    // ---- Adversarial-input hooks -------------------------------------------

    /// Deliver `msg` to this entity as if it had arrived on the control
    /// channel from `from`, bypassing the network. Fuzzing/chaos hook:
    /// the entity must absorb arbitrary control traffic — unknown VCs,
    /// stale sequence numbers, replayed or reordered messages — without
    /// panicking or corrupting unrelated VCs.
    pub fn inject_control(&self, from: NetAddr, msg: crate::tpdu::ControlMsg) {
        self.entity.on_control(from, msg);
    }

    /// Deliver `tpdu` to this entity as if it had arrived on a data VC,
    /// bypassing the network. Fuzzing/chaos hook; `corrupted` marks the
    /// fragment as damaged in transit (error-control path).
    pub fn inject_data(&self, tpdu: crate::tpdu::DataTpdu, corrupted: bool) {
        self.entity.on_data(tpdu, corrupted, 0);
    }

    // ---- Introspection -----------------------------------------------------

    /// The contract currently in force.
    pub fn contract(&self, vc: VcId) -> Result<QosParams, ServiceError> {
        let st = self.entity.state.borrow();
        st.vcs
            .get(&vc)
            .map(|v| v.contract)
            .ok_or(ServiceError::UnknownVc)
    }

    /// This end's role on the VC.
    pub fn role(&self, vc: VcId) -> Result<VcRole, ServiceError> {
        let st = self.entity.state.borrow();
        st.vcs
            .get(&vc)
            .map(|v| v.role)
            .ok_or(ServiceError::UnknownVc)
    }

    /// The VC's contracted logical-unit rate.
    pub fn osdu_rate(&self, vc: VcId) -> Result<Rate, ServiceError> {
        let st = self.entity.state.borrow();
        st.vcs
            .get(&vc)
            .map(|v| v.requirement.osdu_rate)
            .ok_or(ServiceError::UnknownVc)
    }

    /// The VC's address triple.
    pub fn triple(&self, vc: VcId) -> Result<AddressTriple, ServiceError> {
        let st = self.entity.state.borrow();
        st.vcs
            .get(&vc)
            .map(|v| v.triple)
            .ok_or(ServiceError::UnknownVc)
    }

    /// Source-end progress: `(charged, dropped, next_write_seq)` — OSDU
    /// sequence slots consumed by transmission or drop, lifetime drops,
    /// and the next sequence the application write will be assigned.
    pub fn source_progress(&self, vc: VcId) -> Result<(u64, u64, u64), ServiceError> {
        let st = self.entity.state.borrow();
        st.vcs
            .get(&vc)
            .and_then(|v| v.source.as_ref())
            .map(|s| (s.charged, s.dropped, s.next_write_seq))
            .ok_or(ServiceError::UnknownVc)
    }

    /// Sink-end application delivery point: units popped by the
    /// application plus units resolved without delivery (drops,
    /// unrepairable losses) — the media position actually reached.
    pub fn sink_delivery_point(&self, vc: VcId) -> Result<u64, ServiceError> {
        let st = self.entity.state.borrow();
        st.vcs
            .get(&vc)
            .and_then(|v| v.sink.as_ref())
            .map(|k| k.app_popped + k.engine.internal_freed)
            .ok_or(ServiceError::UnknownVc)
    }

    /// Sink-end progress: the next in-order OSDU sequence owed to the
    /// application (everything below is delivered, lost or dropped).
    pub fn sink_progress(&self, vc: VcId) -> Result<u64, ServiceError> {
        let st = self.entity.state.borrow();
        st.vcs
            .get(&vc)
            .and_then(|v| v.sink.as_ref())
            .map(|k| k.engine.next_expected())
            .ok_or(ServiceError::UnknownVc)
    }

    /// Whether the VC is open at this end.
    pub fn is_open(&self, vc: VcId) -> bool {
        let st = self.entity.state.borrow();
        st.vcs
            .get(&vc)
            .map(|v| v.phase == crate::vc::VcPhase::Open)
            .unwrap_or(false)
    }
}
