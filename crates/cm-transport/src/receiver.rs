//! Sink-side protocol engine: reassembly, ordering, loss accounting and
//! error control.
//!
//! Pure logic, driven by the transport entity: every incoming data TPDU is
//! folded into the engine, which emits a list of [`SinkAction`]s (deliver,
//! nack, indicate). Behaviour per error-control class (§3.4):
//!
//! - **detect + indicate**: damaged/missing OSDUs are counted, freed and
//!   reported; the stream keeps flowing (media tolerate loss, §3.2);
//! - **detect + correct (± indicate)**: gaps trigger selective
//!   retransmission requests; in-order delivery stalls until the hole is
//!   repaired (or the source declares it dropped).
//!
//! Links deliver FIFO within the data class, so out-of-order arrival occurs
//! only via retransmission — which is what the stash handles.

use crate::tpdu::DataTpdu;
use cm_core::osdu::Osdu;
use cm_core::service_class::ErrorControlClass;
use cm_core::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// What the entity must do after feeding a TPDU in.
#[derive(Debug)]
pub enum SinkAction {
    /// Push this OSDU (in order) toward the receive buffer.
    Deliver(Osdu),
    /// Request retransmission of these sequence numbers.
    SendNack(Vec<u64>),
    /// Report unrepairable damage/loss of this OSDU to the user
    /// (indicate classes only).
    IndicateLoss(u64),
}

#[derive(Debug)]
struct Partial {
    seq: u64,
    frags_received: u32,
    frag_count: u32,
    corrupted: bool,
    first_sent_at: SimTime,
}

/// Sink protocol engine for one VC.
#[derive(Debug)]
pub struct SinkEngine {
    class: ErrorControlClass,
    /// Next OSDU sequence number owed to the application (in-order point).
    next_expected: u64,
    /// Highest OSDU sequence number seen starting reassembly.
    highest_seen: Option<u64>,
    partial: Option<Partial>,
    /// Reliable mode: complete OSDUs waiting for an earlier hole.
    stash: BTreeMap<u64, Osdu>,
    /// Reliable mode: holes awaiting retransmission.
    holes: BTreeSet<u64>,
    /// Sequences the source declared intentionally dropped.
    declared_dropped: BTreeSet<u64>,
    /// Holes already freed (credit-wise) but not yet passed by
    /// `next_expected` — resolved out of order in reliable mode.
    resolved_gaps: BTreeSet<u64>,
    /// Holes created during the current `on_tpdu`, nacked in its batch.
    fresh_holes: Vec<u64>,
    /// Slots freed without application delivery (holes + drops).
    pub internal_freed: u64,
    /// OSDUs lost or damaged beyond repair.
    pub lost: u64,
    /// OSDUs that arrived with bit errors (damaged; subset counted in
    /// `lost` when unrepairable).
    pub corrupted: u64,
    /// OSDUs handed toward the receive buffer.
    pub delivered: u64,
    /// When we last sent a nack (for re-nack pacing).
    last_nack: Option<SimTime>,
    /// Re-nack interval while holes persist.
    renack_after: SimDuration,
}

impl SinkEngine {
    /// Engine for one VC with the given error-control class.
    pub fn new(class: ErrorControlClass) -> SinkEngine {
        SinkEngine {
            class,
            next_expected: 0,
            highest_seen: None,
            partial: None,
            stash: BTreeMap::new(),
            holes: BTreeSet::new(),
            declared_dropped: BTreeSet::new(),
            resolved_gaps: BTreeSet::new(),
            fresh_holes: Vec::new(),
            internal_freed: 0,
            lost: 0,
            corrupted: 0,
            delivered: 0,
            last_nack: None,
            renack_after: SimDuration::from_millis(100),
        }
    }

    /// The in-order delivery point.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }

    /// Start the in-order point at `seq` instead of zero (a receiver
    /// joining a multicast group mid-stream): everything below `seq`
    /// predates this receiver and is neither owed to the application nor
    /// counted as loss. Only valid before any TPDU has been fed in.
    pub fn start_at(&mut self, seq: u64) {
        debug_assert!(
            self.next_expected == 0 && self.highest_seen.is_none(),
            "start_at on a running engine"
        );
        self.next_expected = seq;
        if seq > 0 {
            self.highest_seen = Some(seq - 1);
        }
    }

    /// Outstanding holes (reliable mode).
    pub fn hole_count(&self) -> usize {
        self.holes.len()
    }

    /// Feed one data TPDU; `corrupted` is the carrying packet's bit-error
    /// flag (the simulation's stand-in for a failed checksum). Returns the
    /// actions to perform, in order.
    pub fn on_tpdu(&mut self, tpdu: &DataTpdu, corrupted: bool, now: SimTime) -> Vec<SinkAction> {
        let mut actions = Vec::new();
        let seq = tpdu.osdu_seq;

        // Stale duplicate (late retransmission of something already
        // resolved): ignore.
        if seq < self.next_expected && !self.holes.contains(&seq) {
            return actions;
        }

        // A fragment of a different OSDU than the current partial means the
        // partial is damaged (fragment loss) — resolve it first.
        if let Some(p) = &self.partial {
            if p.seq != seq {
                let dead = p.seq;
                self.partial = None;
                self.resolve_missing(dead, &mut actions);
            }
        }

        // Whole-OSDU gap detection, only when moving forward.
        let forward = self.highest_seen.is_none_or(|h| seq > h);
        if forward {
            let from = self.highest_seen.map_or(0, |h| h + 1);
            for missing in from..seq {
                self.resolve_missing(missing, &mut actions);
            }
            self.highest_seen = Some(seq);
        }

        let p = self.partial.get_or_insert(Partial {
            seq,
            frags_received: 0,
            frag_count: tpdu.frag_count,
            corrupted: false,
            first_sent_at: tpdu.osdu_sent_at,
        });
        p.frags_received += 1;
        p.corrupted |= corrupted;
        if tpdu.frag_index + 1 == tpdu.frag_count {
            let complete = p.frags_received == p.frag_count;
            let corrupted = p.corrupted;
            let sent_at = p.first_sent_at;
            self.partial = None;
            if complete && !corrupted {
                if let Some(payload) = tpdu.payload.clone() {
                    let mut osdu = Osdu {
                        opdu: tpdu.opdu,
                        payload,
                    };
                    osdu.opdu.seq = seq;
                    let _ = sent_at;
                    self.accept_complete(seq, osdu, &mut actions);
                } else {
                    // Final fragment without payload is a malformed TPDU.
                    self.resolve_missing(seq, &mut actions);
                }
            } else {
                if corrupted {
                    self.corrupted += 1;
                }
                self.resolve_missing(seq, &mut actions);
            }
        }

        // Nack newly created holes promptly; re-nack persistent ones on
        // the pacing interval.
        if self.class.corrects() && !self.holes.is_empty() {
            if !self.fresh_holes.is_empty() {
                let mut seqs = std::mem::take(&mut self.fresh_holes);
                seqs.retain(|s| self.holes.contains(s));
                if !seqs.is_empty() {
                    self.last_nack = Some(now);
                    actions.push(SinkAction::SendNack(seqs));
                }
            } else {
                let due = match self.last_nack {
                    None => true,
                    Some(t) => now.saturating_since(t) >= self.renack_after,
                };
                if due {
                    let seqs: Vec<u64> = self.holes.iter().copied().collect();
                    self.last_nack = Some(now);
                    actions.push(SinkAction::SendNack(seqs));
                }
            }
        } else {
            self.fresh_holes.clear();
        }
        actions
    }

    /// The source declared these sequences intentionally dropped
    /// (`ControlMsg::Dropped`): free them without loss accounting or nacks.
    pub fn on_drop_notice(&mut self, seqs: &[u64], _now: SimTime) -> Vec<SinkAction> {
        let mut actions = Vec::new();
        for &s in seqs {
            if s < self.next_expected {
                continue;
            }
            if self.holes.remove(&s) {
                // An open hole is resolved exactly once, here.
                self.internal_freed += 1;
                if s == self.next_expected {
                    self.next_expected += 1;
                    self.drain_stash(&mut actions);
                } else {
                    self.resolved_gaps.insert(s);
                }
            } else {
                // Not yet noticed missing: remember so the future gap is
                // skipped silently.
                self.declared_dropped.insert(s);
            }
        }
        // Drop notices at the in-order point advance it immediately (a
        // stopped stream must not leave the head parked on a dropped seq).
        self.drain_stash(&mut actions);
        actions
    }

    fn resolve_missing(&mut self, seq: u64, actions: &mut Vec<SinkAction>) {
        if seq < self.next_expected {
            return;
        }
        if self.declared_dropped.remove(&seq) {
            // An intentional drop: free silently.
            self.free_without_delivery(seq, actions);
            return;
        }
        if self.class.corrects() {
            if self.holes.insert(seq) {
                // Nacked promptly by the batch at the end of `on_tpdu`.
                self.fresh_holes.push(seq);
            }
        } else {
            self.lost += 1;
            if self.class.indicates() {
                actions.push(SinkAction::IndicateLoss(seq));
            }
            self.free_without_delivery(seq, actions);
        }
    }

    /// Account `seq` as freed without delivery, advancing the in-order
    /// point now (head) or when it is reached (recorded gap).
    fn free_without_delivery(&mut self, seq: u64, actions: &mut Vec<SinkAction>) {
        self.internal_freed += 1;
        if seq == self.next_expected {
            self.next_expected += 1;
            self.drain_stash(actions);
        } else {
            self.resolved_gaps.insert(seq);
        }
    }

    fn accept_complete(&mut self, seq: u64, osdu: Osdu, actions: &mut Vec<SinkAction>) {
        self.holes.remove(&seq);
        if seq == self.next_expected {
            self.next_expected += 1;
            self.delivered += 1;
            actions.push(SinkAction::Deliver(osdu));
            self.drain_stash(actions);
        } else if self.class.corrects() {
            self.stash.insert(seq, osdu);
        } else {
            // Unreliable: earlier gaps were already freed by
            // `resolve_missing`, so this must now be the in-order point.
            debug_assert!(seq >= self.next_expected);
            self.next_expected = seq + 1;
            self.delivered += 1;
            actions.push(SinkAction::Deliver(osdu));
        }
    }

    fn drain_stash(&mut self, actions: &mut Vec<SinkAction>) {
        loop {
            if let Some(osdu) = self.stash.remove(&self.next_expected) {
                self.next_expected += 1;
                self.delivered += 1;
                actions.push(SinkAction::Deliver(osdu));
                continue;
            }
            // A declared-dropped seq at the in-order point frees and
            // advances (counted exactly once, here).
            if self.declared_dropped.remove(&self.next_expected) {
                self.internal_freed += 1;
                self.next_expected += 1;
                continue;
            }
            // A hole resolved out of order earlier (already freed).
            if self.resolved_gaps.remove(&self.next_expected) {
                self.next_expected += 1;
                continue;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::osdu::{Opdu, Payload};

    fn tpdu(seq: u64, idx: u32, count: u32) -> DataTpdu {
        DataTpdu {
            vc: cm_core::address::VcId(1),
            osdu_seq: seq,
            frag_index: idx,
            frag_count: count,
            frag_bytes: 100,
            opdu: Opdu { seq, event: None },
            payload: if idx + 1 == count {
                Some(Payload::synthetic(seq, 100))
            } else {
                None
            },
            osdu_sent_at: SimTime::ZERO,
        }
    }

    fn deliver_seqs(actions: &[SinkAction]) -> Vec<u64> {
        actions
            .iter()
            .filter_map(|a| match a {
                SinkAction::Deliver(o) => Some(o.seq()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn in_order_single_fragment_delivery() {
        let mut e = SinkEngine::new(ErrorControlClass::DetectIndicate);
        for seq in 0..5 {
            let a = e.on_tpdu(&tpdu(seq, 0, 1), false, SimTime::ZERO);
            assert_eq!(deliver_seqs(&a), vec![seq]);
        }
        assert_eq!(e.delivered, 5);
        assert_eq!(e.next_expected(), 5);
    }

    #[test]
    fn multi_fragment_reassembly() {
        let mut e = SinkEngine::new(ErrorControlClass::DetectIndicate);
        assert!(deliver_seqs(&e.on_tpdu(&tpdu(0, 0, 3), false, SimTime::ZERO)).is_empty());
        assert!(deliver_seqs(&e.on_tpdu(&tpdu(0, 1, 3), false, SimTime::ZERO)).is_empty());
        let a = e.on_tpdu(&tpdu(0, 2, 3), false, SimTime::ZERO);
        assert_eq!(deliver_seqs(&a), vec![0]);
    }

    #[test]
    fn whole_osdu_gap_unreliable_counts_lost_and_continues() {
        let mut e = SinkEngine::new(ErrorControlClass::DetectIndicate);
        e.on_tpdu(&tpdu(0, 0, 1), false, SimTime::ZERO);
        // 1 and 2 vanish.
        let a = e.on_tpdu(&tpdu(3, 0, 1), false, SimTime::ZERO);
        assert_eq!(e.lost, 2);
        assert_eq!(e.internal_freed, 2);
        assert_eq!(deliver_seqs(&a), vec![3]);
        // Losses are indicated.
        let ind: Vec<u64> = a
            .iter()
            .filter_map(|x| match x {
                SinkAction::IndicateLoss(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(ind, vec![1, 2]);
        assert_eq!(e.next_expected(), 4);
    }

    #[test]
    fn missing_fragment_damages_osdu() {
        let mut e = SinkEngine::new(ErrorControlClass::DetectIndicate);
        // OSDU 0 fragment 0 of 2 arrives, fragment 1 lost; OSDU 1 arrives.
        e.on_tpdu(&tpdu(0, 0, 2), false, SimTime::ZERO);
        let a = e.on_tpdu(&tpdu(1, 0, 1), false, SimTime::ZERO);
        assert_eq!(e.lost, 1);
        assert_eq!(deliver_seqs(&a), vec![1]);
    }

    #[test]
    fn corrupted_osdu_dropped_and_indicated() {
        let mut e = SinkEngine::new(ErrorControlClass::DetectIndicate);
        e.on_tpdu(&tpdu(0, 0, 2), true, SimTime::ZERO);
        let a = e.on_tpdu(&tpdu(0, 1, 2), false, SimTime::ZERO);
        assert!(deliver_seqs(&a).is_empty());
        assert_eq!(e.corrupted, 1);
        assert_eq!(e.lost, 1);
        assert!(matches!(a[0], SinkAction::IndicateLoss(0)));
    }

    #[test]
    fn reliable_gap_nacks_and_stalls_then_repairs() {
        let mut e = SinkEngine::new(ErrorControlClass::DetectCorrect);
        e.on_tpdu(&tpdu(0, 0, 1), false, SimTime::ZERO);
        // 1 lost; 2 arrives → nack for 1, delivery stalls.
        let a = e.on_tpdu(&tpdu(2, 0, 1), false, SimTime::ZERO);
        let nacks: Vec<Vec<u64>> = a
            .iter()
            .filter_map(|x| match x {
                SinkAction::SendNack(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nacks, vec![vec![1]]);
        assert!(deliver_seqs(&a).is_empty());
        assert_eq!(e.next_expected(), 1);
        assert_eq!(e.hole_count(), 1);
        // Retransmission of 1 arrives → 1 and stashed 2 both deliver.
        let a = e.on_tpdu(&tpdu(1, 0, 1), false, SimTime::from_millis(5));
        assert_eq!(deliver_seqs(&a), vec![1, 2]);
        assert_eq!(e.hole_count(), 0);
        assert_eq!(e.lost, 0);
    }

    #[test]
    fn renack_paces_repeats() {
        let mut e = SinkEngine::new(ErrorControlClass::DetectCorrect);
        e.on_tpdu(&tpdu(0, 0, 1), false, SimTime::ZERO);
        let a = e.on_tpdu(&tpdu(2, 0, 1), false, SimTime::ZERO);
        assert_eq!(
            a.iter()
                .filter(|x| matches!(x, SinkAction::SendNack(_)))
                .count(),
            1
        );
        // Immediately after: no re-nack yet.
        let a = e.on_tpdu(&tpdu(3, 0, 1), false, SimTime::from_millis(1));
        assert_eq!(
            a.iter()
                .filter(|x| matches!(x, SinkAction::SendNack(_)))
                .count(),
            0
        );
        // 100 ms later: re-nack fires.
        let a = e.on_tpdu(&tpdu(4, 0, 1), false, SimTime::from_millis(101));
        let renacks: Vec<&Vec<u64>> = a
            .iter()
            .filter_map(|x| match x {
                SinkAction::SendNack(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(renacks, vec![&vec![1]]);
    }

    #[test]
    fn drop_notice_resolves_hole_without_loss() {
        let mut e = SinkEngine::new(ErrorControlClass::DetectCorrect);
        e.on_tpdu(&tpdu(0, 0, 1), false, SimTime::ZERO);
        e.on_tpdu(&tpdu(2, 0, 1), false, SimTime::ZERO); // hole at 1
        let a = e.on_drop_notice(&[1], SimTime::from_millis(1));
        // Hole resolved; stashed 2 delivers; nothing counted lost.
        assert_eq!(deliver_seqs(&a), vec![2]);
        assert_eq!(e.lost, 0);
        assert_eq!(e.internal_freed, 1);
        assert_eq!(e.next_expected(), 3);
    }

    #[test]
    fn drop_notice_ahead_of_data_skips_silently() {
        let mut e = SinkEngine::new(ErrorControlClass::DetectIndicate);
        // Source dropped 0 and 1 before sending 2.
        e.on_drop_notice(&[0, 1], SimTime::ZERO);
        let a = e.on_tpdu(&tpdu(2, 0, 1), false, SimTime::ZERO);
        assert_eq!(deliver_seqs(&a), vec![2]);
        assert_eq!(e.lost, 0);
        assert_eq!(e.internal_freed, 2);
    }

    #[test]
    fn stale_duplicate_ignored() {
        let mut e = SinkEngine::new(ErrorControlClass::DetectCorrect);
        e.on_tpdu(&tpdu(0, 0, 1), false, SimTime::ZERO);
        let a = e.on_tpdu(&tpdu(0, 0, 1), false, SimTime::ZERO);
        assert!(a.is_empty());
        assert_eq!(e.delivered, 1);
    }
}
