//! # cm-transport — the continuous-media transport service (paper §3–4)
//!
//! A from-scratch implementation of the Lancaster CM transport service:
//! simplex VCs with five-parameter QoS contracts, full end-to-end option
//! negotiation, remote (three-party) connection establishment, soft-
//! guarantee monitoring with `T-QoS.indication`, in-place QoS
//! renegotiation, selectable protocol profiles (rate-based CM protocol vs
//! the window-based baseline) and error-control classes, shared circular
//! buffer data transfer with blocking-time accounting, and the
//! orchestration-facing hooks of §5–6.
//!
//! Entry point: [`TransportService::install`] per node; applications
//! implement [`TransportUser`] and bind to TSAPs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod entity;
pub mod group;
pub mod heal;
pub mod monitor;
pub mod rate;
pub mod receiver;
pub mod service;
pub mod sync_buffer;
pub mod tpdu;
pub mod vc;
pub mod window;
pub mod wire;

pub use buffer::{BufferHandle, BufferStats, PushOutcome};
pub use group::{GroupEnd, GroupReceiver};
pub use heal::HealReason;
pub use service::{EgressTap, EntityConfig, TransportService, TransportUser, VcTap};
pub use sync_buffer::SyncCircularBuffer;
pub use tpdu::{QosReport, DEFAULT_MTU};
pub use vc::{EndStats, VcRole};
pub use wire::{TpduHeader, TpduParseError};
