//! Per-VC QoS monitoring (§4.1.2, table 2).
//!
//! The sink-side transport entity measures each connection over a sample
//! period — throughput, mean end-to-end OSDU delay, delay jitter, packet
//! (OSDU) error rate and bit-error-derived corruption rate — compares the
//! measurement against the contracted tolerance, and produces the
//! `T-QoS.indication` payload when any contracted level is violated (the
//! paper's *soft guarantee*: violations are notified, not silently
//! absorbed).

use cm_core::qos::{ErrorRate, QosParams};
use cm_core::stats::OnlineStats;
use cm_core::time::{Bandwidth, SimDuration, SimTime};

/// One sample period's raw measurements.
#[derive(Debug)]
pub struct QosMonitor {
    period: SimDuration,
    period_start: SimTime,
    bytes: u64,
    delay: OnlineStats,
    delivered: u64,
    lost: u64,
    corrupted: u64,
}

impl QosMonitor {
    /// A monitor with the given sample period, starting at `now`.
    pub fn new(period: SimDuration, now: SimTime) -> QosMonitor {
        assert!(!period.is_zero(), "sample period must be positive");
        QosMonitor {
            period,
            period_start: now,
            bytes: 0,
            delay: OnlineStats::new(),
            delivered: 0,
            lost: 0,
            corrupted: 0,
        }
    }

    /// The configured sample period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// When the current period ends.
    pub fn period_end(&self) -> SimTime {
        self.period_start + self.period
    }

    /// Record a delivered OSDU: wire bytes and end-to-end delay.
    pub fn on_delivered(&mut self, wire_bytes: usize, delay: SimDuration) {
        self.bytes += wire_bytes as u64;
        self.delay.push_duration(delay);
        self.delivered += 1;
    }

    /// Record `n` OSDUs lost or damaged beyond repair.
    pub fn on_lost(&mut self, n: u64) {
        self.lost += n;
    }

    /// Record an OSDU that arrived with bit errors.
    pub fn on_corrupted(&mut self) {
        self.corrupted += 1;
    }

    /// Close the period at `now`, returning the measured [`QosParams`] and
    /// resetting for the next period.
    ///
    /// Jitter is reported as the spread (max − min) of OSDU delays within
    /// the period — the "variance in delay" of §3.2 in its worst-case form.
    /// The bit-error figure is the fraction of OSDUs that arrived damaged
    /// (the per-bit rate is not observable once the link has flagged the
    /// unit, so the corrupted-unit fraction is the honest measurement).
    pub fn end_period(&mut self, now: SimTime) -> QosParams {
        let elapsed = now.saturating_since(self.period_start);
        let secs_us = elapsed.as_micros().max(1);
        let throughput =
            Bandwidth::bps((self.bytes as u128 * 8 * 1_000_000 / secs_us as u128) as u64);
        let delay = SimDuration::from_micros(self.delay.mean() as u64);
        let jitter = match self.delay.range() {
            Some(spread) if self.delay.count() >= 2 => SimDuration::from_micros(spread as u64),
            _ => SimDuration::ZERO,
        };
        let total = self.delivered + self.lost;
        let packet_error_rate = ErrorRate::observed(self.lost, total);
        let bit_error_rate = ErrorRate::observed(self.corrupted, total);
        // Reset for the next period.
        self.period_start = now;
        self.bytes = 0;
        self.delay.reset();
        self.delivered = 0;
        self.lost = 0;
        self.corrupted = 0;
        QosParams {
            throughput,
            delay,
            jitter,
            packet_error_rate,
            bit_error_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_delay_measured() {
        let mut m = QosMonitor::new(SimDuration::from_secs(1), SimTime::ZERO);
        // 25 OSDUs × 5000 B over 1 s = 1 Mb/s.
        for _ in 0..25 {
            m.on_delivered(5000, SimDuration::from_millis(20));
        }
        let q = m.end_period(SimTime::from_secs(1));
        assert_eq!(q.throughput, Bandwidth::mbps(1));
        assert_eq!(q.delay, SimDuration::from_millis(20));
        assert_eq!(q.jitter, SimDuration::ZERO);
        assert_eq!(q.packet_error_rate, ErrorRate::ZERO);
    }

    #[test]
    fn jitter_is_delay_spread() {
        let mut m = QosMonitor::new(SimDuration::from_secs(1), SimTime::ZERO);
        m.on_delivered(100, SimDuration::from_millis(10));
        m.on_delivered(100, SimDuration::from_millis(25));
        m.on_delivered(100, SimDuration::from_millis(18));
        let q = m.end_period(SimTime::from_secs(1));
        assert_eq!(q.jitter, SimDuration::from_millis(15));
    }

    #[test]
    fn loss_rate_observed() {
        let mut m = QosMonitor::new(SimDuration::from_secs(1), SimTime::ZERO);
        for _ in 0..90 {
            m.on_delivered(100, SimDuration::from_millis(1));
        }
        m.on_lost(10);
        let q = m.end_period(SimTime::from_secs(1));
        assert_eq!(q.packet_error_rate, ErrorRate::from_prob(0.1));
    }

    #[test]
    fn period_resets() {
        let mut m = QosMonitor::new(SimDuration::from_secs(1), SimTime::ZERO);
        m.on_delivered(1000, SimDuration::from_millis(5));
        m.end_period(SimTime::from_secs(1));
        // Next period is empty.
        let q = m.end_period(SimTime::from_secs(2));
        assert_eq!(q.throughput, Bandwidth::ZERO);
        assert_eq!(q.delay, SimDuration::ZERO);
        assert_eq!(m.period_end(), SimTime::from_secs(3));
    }

    #[test]
    fn empty_period_has_no_errors() {
        let mut m = QosMonitor::new(SimDuration::from_secs(1), SimTime::ZERO);
        let q = m.end_period(SimTime::from_secs(1));
        assert_eq!(q.packet_error_rate, ErrorRate::ZERO);
        assert_eq!(q.bit_error_rate, ErrorRate::ZERO);
    }
}
