//! The shared circular-buffer data-transfer interface (§3.7).
//!
//! The paper rejects per-unit `send()`/`recv()` calls for CM in favour of
//! shared circular buffers with producer/consumer contention controlled by
//! semaphores, for four stated reasons: implicit data location (no copy),
//! no per-unit synchronisation when rates match, scheduler visibility of
//! buffer state, and — crucially for orchestration — *measurable blocking
//! time*: "the time spent blocking by both the application and the
//! transport entity can be measured by monitoring the state of the
//! synchronisation semaphores. These statistics are used by the
//! orchestration service" (§3.7, §6.3.1.2).
//!
//! This is the virtual-time implementation used inside the simulation; a
//! byte-for-byte threaded twin for real-time use (and the E8 benchmark)
//! lives in [`crate::sync_buffer`].

use cm_core::osdu::Osdu;
use cm_core::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Blocking-time totals for one accounting interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Time the producer side spent blocked on a full buffer.
    pub producer_blocked: SimDuration,
    /// Time the consumer side spent blocked on an empty (or gated) buffer.
    pub consumer_blocked: SimDuration,
    /// Time the buffer spent completely full. At a sink this measures how
    /// long the protocol was held off by flow control even when the credit
    /// scheme stalls the *sender* rather than parking the local producer —
    /// the "protocol thread blocked" signal of §6.3.1.2.
    pub full_time: SimDuration,
}

type Waker = Box<dyn FnOnce()>;

struct Inner {
    capacity: usize,
    slots: VecDeque<Osdu>,
    /// While gated, the consumer sees an empty buffer: data accumulates but
    /// is not released (the `Orch.Prime` mechanism, §6.2.1).
    gated: bool,
    /// Release pacing (§5: quanta are "released by the sink LLO instance
    /// to the application thread at times determined by the HLO initiated
    /// targets"): a unit is releasable only while its OSDU sequence number
    /// (= media position) is below this cap, so source-side drops advance
    /// the position without inflating the release budget.
    release_limit: Option<u64>,
    producer_waiter: Option<Waker>,
    consumer_waiter: Option<Waker>,
    producer_blocked_since: Option<SimTime>,
    consumer_blocked_since: Option<SimTime>,
    producer_blocked_acc: SimDuration,
    consumer_blocked_acc: SimDuration,
    /// Invoked (once per transition) when a push fills the last free slot.
    full_watch: Option<Rc<dyn Fn()>>,
    full_since: Option<SimTime>,
    full_acc: SimDuration,
    /// Total OSDUs ever pushed/popped, for invariant checks and tests.
    pushed: u64,
    popped: u64,
}

impl Inner {
    fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    fn finish_producer_block(&mut self, now: SimTime) {
        if let Some(t0) = self.producer_blocked_since.take() {
            self.producer_blocked_acc += now.saturating_since(t0);
        }
    }

    fn finish_consumer_block(&mut self, now: SimTime) {
        if let Some(t0) = self.consumer_blocked_since.take() {
            self.consumer_blocked_acc += now.saturating_since(t0);
        }
    }
}

/// Result of a push attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Stored; `filled` is true when this push used the last free slot.
    Pushed {
        /// Did this push fill the buffer?
        filled: bool,
    },
    /// No room; the OSDU is handed back.
    Full(Osdu),
}

/// Handle to a shared circular buffer (clones share the buffer).
#[derive(Clone)]
pub struct BufferHandle {
    inner: Rc<RefCell<Inner>>,
}

impl BufferHandle {
    /// A buffer with room for `capacity` OSDUs (one logical unit per slot;
    /// slot byte size is bounded by the connection's `max_osdu_size`, §5).
    pub fn new(capacity: usize) -> BufferHandle {
        assert!(capacity > 0, "buffer needs at least one slot");
        BufferHandle {
            inner: Rc::new(RefCell::new(Inner {
                capacity,
                slots: VecDeque::with_capacity(capacity),
                gated: false,
                release_limit: None,
                producer_waiter: None,
                consumer_waiter: None,
                producer_blocked_since: None,
                consumer_blocked_since: None,
                producer_blocked_acc: SimDuration::ZERO,
                consumer_blocked_acc: SimDuration::ZERO,
                full_watch: None,
                full_since: None,
                full_acc: SimDuration::ZERO,
                pushed: 0,
                popped: 0,
            })),
        }
    }

    /// Attempt to append an OSDU.
    ///
    /// On success, a parked consumer (if the gate is open) is woken.
    pub fn try_push(&self, now: SimTime, osdu: Osdu) -> PushOutcome {
        let (outcome, wakers) = {
            let mut b = self.inner.borrow_mut();
            if b.is_full() {
                return PushOutcome::Full(osdu);
            }
            b.slots.push_back(osdu);
            b.pushed += 1;
            let filled = b.is_full();
            if filled && b.full_since.is_none() {
                b.full_since = Some(now);
            }
            let mut wakers: Vec<Waker> = Vec::new();
            if !b.gated {
                if let Some(w) = b.consumer_waiter.take() {
                    b.finish_consumer_block(now);
                    wakers.push(w);
                }
            }
            if filled {
                if let Some(f) = b.full_watch.clone() {
                    // Runs after the borrow drops; the callback may freely
                    // re-enter the buffer.
                    wakers.push(Box::new(move || f()));
                }
            }
            (PushOutcome::Pushed { filled }, wakers)
        };
        for w in wakers {
            w();
        }
        outcome
    }

    /// Park the producer until a slot frees; `waker` runs exactly once.
    /// Blocking time is accounted from `now` until the wake.
    ///
    /// Panics if a producer is already parked (buffers are single-producer).
    pub fn park_producer(&self, now: SimTime, waker: impl FnOnce() + 'static) {
        let mut b = self.inner.borrow_mut();
        assert!(b.producer_waiter.is_none(), "producer already parked");
        b.producer_waiter = Some(Box::new(waker));
        if b.producer_blocked_since.is_none() {
            b.producer_blocked_since = Some(now);
        }
    }

    /// Attempt to remove the oldest OSDU. Returns `None` when empty or
    /// gated. On success, a parked producer is woken.
    pub fn try_pop(&self, now: SimTime) -> Option<Osdu> {
        let (osdu, waker) = {
            let mut b = self.inner.borrow_mut();
            if b.gated {
                return None;
            }
            if let Some(limit) = b.release_limit {
                match b.slots.front() {
                    Some(o) if o.seq() >= limit => return None,
                    _ => {}
                }
            }
            let was_full = b.is_full();
            let osdu = b.slots.pop_front()?;
            b.popped += 1;
            if was_full {
                if let Some(t0) = b.full_since.take() {
                    b.full_acc += now.saturating_since(t0);
                }
            }
            let waker = b.producer_waiter.take().inspect(|_w| {
                b.finish_producer_block(now);
            });
            (osdu, waker)
        };
        if let Some(w) = waker {
            w();
        }
        Some(osdu)
    }

    /// Park the consumer until data is available and the gate is open.
    ///
    /// Panics if a consumer is already parked (buffers are single-consumer).
    pub fn park_consumer(&self, now: SimTime, waker: impl FnOnce() + 'static) {
        let mut b = self.inner.borrow_mut();
        assert!(b.consumer_waiter.is_none(), "consumer already parked");
        b.consumer_waiter = Some(Box::new(waker));
        if b.consumer_blocked_since.is_none() {
            b.consumer_blocked_since = Some(now);
        }
    }

    /// Open or close the delivery gate (§6.2: primed buffers fill but do
    /// not deliver). Opening the gate wakes a parked consumer if data is
    /// waiting.
    pub fn set_gated(&self, now: SimTime, gated: bool) {
        let waker = {
            let mut b = self.inner.borrow_mut();
            b.gated = gated;
            if !gated && !b.slots.is_empty() {
                b.consumer_waiter.take().inspect(|_w| {
                    b.finish_consumer_block(now);
                })
            } else {
                None
            }
        };
        if let Some(w) = waker {
            w();
        }
    }

    /// Whether the gate is closed.
    pub fn is_gated(&self) -> bool {
        self.inner.borrow().gated
    }

    /// Set (or clear) the release cap: the total number of OSDUs the
    /// consumer may ever have popped. Raising the cap (or clearing it)
    /// wakes a parked consumer if data is available and the gate is open.
    pub fn set_release_limit(&self, now: SimTime, limit: Option<u64>) {
        let waker = {
            let mut b = self.inner.borrow_mut();
            b.release_limit = limit;
            let releasable = match (limit, b.slots.front()) {
                (Some(l), Some(o)) => o.seq() < l,
                _ => true,
            };
            if releasable && !b.gated && !b.slots.is_empty() {
                b.consumer_waiter.take().inspect(|_w| {
                    b.finish_consumer_block(now);
                })
            } else {
                None
            }
        };
        if let Some(w) = waker {
            w();
        }
    }

    /// The current release cap.
    pub fn release_limit(&self) -> Option<u64> {
        self.inner.borrow().release_limit
    }

    /// Discard all buffered OSDUs (stop + seek must not leave "a short
    /// burst of media buffered from the previous play", §6.2.1). Wakes a
    /// parked producer. Returns how many units were discarded.
    pub fn flush(&self, now: SimTime) -> usize {
        let (n, waker) = {
            let mut b = self.inner.borrow_mut();
            let n = b.slots.len();
            if let Some(t0) = b.full_since.take() {
                b.full_acc += now.saturating_since(t0);
            }
            b.slots.clear();
            let waker = b.producer_waiter.take().inspect(|_w| {
                b.finish_producer_block(now);
            });
            (n, waker)
        };
        if let Some(w) = waker {
            w();
        }
        n
    }

    /// Register the buffer-became-full callback (the sink LLO's priming
    /// notification, §6.2.1).
    pub fn set_full_watch(&self, f: impl Fn() + 'static) {
        self.inner.borrow_mut().full_watch = Some(Rc::new(f));
    }

    /// Remove the full-watch callback.
    pub fn clear_full_watch(&self) {
        self.inner.borrow_mut().full_watch = None;
    }

    /// Take-and-reset the blocking statistics, closing any in-progress
    /// block at `now` (it continues accruing into the next interval).
    pub fn take_stats(&self, now: SimTime) -> BufferStats {
        let mut b = self.inner.borrow_mut();
        if let Some(t0) = b.producer_blocked_since {
            let add = now.saturating_since(t0);
            b.producer_blocked_acc += add;
            b.producer_blocked_since = Some(now);
        }
        if let Some(t0) = b.consumer_blocked_since {
            let add = now.saturating_since(t0);
            b.consumer_blocked_acc += add;
            b.consumer_blocked_since = Some(now);
        }
        if let Some(t0) = b.full_since {
            let add = now.saturating_since(t0);
            b.full_acc += add;
            b.full_since = Some(now);
        }
        let s = BufferStats {
            producer_blocked: b.producer_blocked_acc,
            consumer_blocked: b.consumer_blocked_acc,
            full_time: b.full_acc,
        };
        b.producer_blocked_acc = SimDuration::ZERO;
        b.consumer_blocked_acc = SimDuration::ZERO;
        b.full_acc = SimDuration::ZERO;
        s
    }

    /// OSDUs currently stored.
    pub fn len(&self) -> usize {
        self.inner.borrow().slots.len()
    }

    /// True when no OSDUs are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.inner.borrow().is_full()
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.inner.borrow().capacity
    }

    /// Free slots.
    pub fn free(&self) -> usize {
        let b = self.inner.borrow();
        b.capacity - b.slots.len()
    }

    /// Lifetime counters `(pushed, popped)`.
    pub fn totals(&self) -> (u64, u64) {
        let b = self.inner.borrow();
        (b.pushed, b.popped)
    }

    /// Peek at the sequence number of the oldest stored OSDU without
    /// consuming it (ignores the gate — used by the LLO to observe
    /// progress).
    pub fn peek_seq(&self) -> Option<u64> {
        self.inner.borrow().slots.front().map(|o| o.seq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::osdu::Payload;
    use std::cell::Cell;

    fn osdu(seq: u64) -> Osdu {
        Osdu::new(seq, Payload::synthetic(seq, 100))
    }

    #[test]
    fn fifo_order_and_boundaries() {
        let b = BufferHandle::new(4);
        for i in 0..3 {
            assert!(matches!(
                b.try_push(SimTime::ZERO, osdu(i)),
                PushOutcome::Pushed { .. }
            ));
        }
        assert_eq!(b.len(), 3);
        for i in 0..3 {
            assert_eq!(b.try_pop(SimTime::ZERO).unwrap().seq(), i);
        }
        assert!(b.try_pop(SimTime::ZERO).is_none());
    }

    #[test]
    fn push_to_full_hands_back() {
        let b = BufferHandle::new(1);
        b.try_push(SimTime::ZERO, osdu(0));
        match b.try_push(SimTime::ZERO, osdu(1)) {
            PushOutcome::Full(o) => assert_eq!(o.seq(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn filled_flag_set_on_last_slot() {
        let b = BufferHandle::new(2);
        assert_eq!(
            b.try_push(SimTime::ZERO, osdu(0)),
            PushOutcome::Pushed { filled: false }
        );
        assert_eq!(
            b.try_push(SimTime::ZERO, osdu(1)),
            PushOutcome::Pushed { filled: true }
        );
    }

    #[test]
    fn gate_blocks_pop_but_not_push() {
        let b = BufferHandle::new(4);
        b.set_gated(SimTime::ZERO, true);
        b.try_push(SimTime::ZERO, osdu(0));
        assert!(b.try_pop(SimTime::ZERO).is_none());
        assert_eq!(b.len(), 1);
        b.set_gated(SimTime::ZERO, false);
        assert_eq!(b.try_pop(SimTime::ZERO).unwrap().seq(), 0);
    }

    #[test]
    fn consumer_woken_on_push() {
        let b = BufferHandle::new(2);
        let woken = Rc::new(Cell::new(false));
        let w = woken.clone();
        b.park_consumer(SimTime::ZERO, move || w.set(true));
        b.try_push(SimTime::from_millis(5), osdu(0));
        assert!(woken.get());
        // Blocking time 5 ms accounted to the consumer.
        let stats = b.take_stats(SimTime::from_millis(5));
        assert_eq!(stats.consumer_blocked, SimDuration::from_millis(5));
        assert_eq!(stats.producer_blocked, SimDuration::ZERO);
    }

    #[test]
    fn gated_push_does_not_wake_consumer() {
        let b = BufferHandle::new(2);
        let woken = Rc::new(Cell::new(false));
        let w = woken.clone();
        b.set_gated(SimTime::ZERO, true);
        b.park_consumer(SimTime::ZERO, move || w.set(true));
        b.try_push(SimTime::from_millis(1), osdu(0));
        assert!(!woken.get());
        // Opening the gate delivers the wake.
        b.set_gated(SimTime::from_millis(3), false);
        assert!(woken.get());
        let stats = b.take_stats(SimTime::from_millis(3));
        assert_eq!(stats.consumer_blocked, SimDuration::from_millis(3));
    }

    #[test]
    fn producer_woken_on_pop_with_blocking_time() {
        let b = BufferHandle::new(1);
        b.try_push(SimTime::ZERO, osdu(0));
        let woken = Rc::new(Cell::new(false));
        let w = woken.clone();
        b.park_producer(SimTime::from_millis(10), move || w.set(true));
        b.try_pop(SimTime::from_millis(25));
        assert!(woken.get());
        let stats = b.take_stats(SimTime::from_millis(25));
        assert_eq!(stats.producer_blocked, SimDuration::from_millis(15));
    }

    #[test]
    fn take_stats_resets_and_continues_open_blocks() {
        let b = BufferHandle::new(1);
        b.try_push(SimTime::ZERO, osdu(0));
        b.park_producer(SimTime::ZERO, || {});
        // Interval 1 ends at 10 ms with the producer still blocked.
        let s1 = b.take_stats(SimTime::from_millis(10));
        assert_eq!(s1.producer_blocked, SimDuration::from_millis(10));
        // Interval 2: block continues 10→30 ms.
        let s2 = b.take_stats(SimTime::from_millis(30));
        assert_eq!(s2.producer_blocked, SimDuration::from_millis(20));
    }

    #[test]
    fn flush_empties_and_wakes_producer() {
        let b = BufferHandle::new(2);
        b.try_push(SimTime::ZERO, osdu(0));
        b.try_push(SimTime::ZERO, osdu(1));
        let woken = Rc::new(Cell::new(false));
        let w = woken.clone();
        b.park_producer(SimTime::ZERO, move || w.set(true));
        assert_eq!(b.flush(SimTime::from_millis(2)), 2);
        assert!(b.is_empty());
        assert!(woken.get());
    }

    #[test]
    fn full_watch_fires_on_fill_transition() {
        let b = BufferHandle::new(2);
        let fills = Rc::new(Cell::new(0));
        let f = fills.clone();
        b.set_full_watch(move || f.set(f.get() + 1));
        b.try_push(SimTime::ZERO, osdu(0));
        assert_eq!(fills.get(), 0);
        b.try_push(SimTime::ZERO, osdu(1));
        assert_eq!(fills.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already parked")]
    fn double_park_is_a_bug() {
        let b = BufferHandle::new(1);
        b.park_consumer(SimTime::ZERO, || {});
        b.park_consumer(SimTime::ZERO, || {});
    }

    #[test]
    fn peek_seq_ignores_gate() {
        let b = BufferHandle::new(2);
        b.set_gated(SimTime::ZERO, true);
        b.try_push(SimTime::ZERO, osdu(42));
        assert_eq!(b.peek_seq(), Some(42));
    }

    #[test]
    fn totals_count_lifetime_traffic() {
        let b = BufferHandle::new(2);
        b.try_push(SimTime::ZERO, osdu(0));
        b.try_pop(SimTime::ZERO);
        b.try_push(SimTime::ZERO, osdu(1));
        assert_eq!(b.totals(), (2, 1));
    }
}
