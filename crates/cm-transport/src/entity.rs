//! The per-node transport entity: connection management, data path and
//! demultiplexing.
//!
//! One [`TransportEntity`] runs on every end-system, registered as the
//! node's packet handler. It implements the full service of §4:
//!
//! - three-party connection establishment and release (§3.5, §4.1.1,
//!   figures 2–3), with end-to-end QoS negotiation and ST-II-style
//!   resource reservation;
//! - QoS monitoring with `T-QoS.indication` (§4.1.2) and in-place QoS
//!   renegotiation (§4.1.3);
//! - the rate-based data path (paced transmission, credit backpressure,
//!   per-class error control) and the window-based baseline;
//! - the orchestration-facing hooks (§5–6): per-VC control channel, receive
//!   gating, source-side drops, rate retuning and blocking-time harvest.
//!
//! **Re-entrancy discipline.** The entity's state sits in one `RefCell`.
//! Nothing that can call back into the entity runs while that borrow is
//! held: user/tap callbacks are dispatched as engine events at the current
//! instant, and buffer wakers are engine-scheduling trampolines.

use crate::buffer::{BufferHandle, PushOutcome};
use crate::monitor::QosMonitor;
use crate::rate::RateClock;
use crate::receiver::{SinkAction, SinkEngine};
use crate::service::{EgressTap, EntityConfig, TransportService, TransportUser, VcTap};
use crate::tpdu::{fragment_sizes, ControlMsg, DataTpdu, QosReport, CONTROL_WIRE_SIZE};
use crate::vc::{EndStats, SinkEnd, SourceEnd, Vc, VcPhase, VcRole};
use crate::window::{GoBackNReceiver, GoBackNSender};
use cm_core::address::{AddressTriple, NetAddr, TransportAddr, Tsap, VcId};
use cm_core::error::{DisconnectReason, ServiceError};
use cm_core::osdu::{Osdu, Payload};
use cm_core::qos::{GuaranteeMode, QosParams, QosRequirement, QosTolerance};
use cm_core::service_class::{ProtocolProfile, ServiceClass};
use cm_core::slab::{Slab, SlabHandle};
use cm_core::time::SimTime;
use cm_core::FastMap;
use cm_telemetry::{Layer, Telemetry};
use netsim::{Network, NodeHandler, Packet};
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

/// What travels inside simulated packets between transport entities.
pub(crate) enum WirePdu {
    /// Rate-profile data fragment.
    Data(DataTpdu),
    /// Window-profile data fragment with its window sequence number.
    WindowData { wseq: u64, tpdu: DataTpdu },
    /// Everything else.
    Control(ControlMsg),
}

/// Destination-side record of a connect awaiting the local user's response.
struct PendingDst {
    triple: AddressTriple,
    class: ServiceClass,
    requirement: QosRequirement,
    agreed: QosParams,
    capacity: u32,
    /// Set when the pending connect is a group-VC invitation: the backing
    /// multicast group, answered with `GroupConnectResponse`.
    group: Option<netsim::GroupId>,
    /// Group invitations only: first OSDU sequence this receiver is owed.
    start_seq: u64,
}

/// Source-side record of a connect in progress.
struct PendingSrc {
    triple: AddressTriple,
    class: ServiceClass,
    requirement: QosRequirement,
    /// Awaiting the local source user's T-Connect.response (remote connect
    /// leg 1) rather than the destination's answer.
    awaiting_user: bool,
}

/// Initiator-side record of a remote connect (initiator ∉ {source, dest}).
struct PendingRemote {
    triple: AddressTriple,
}

/// Everything the entity holds for one VC endpoint, in one slab slot:
/// the connection state plus the orchestration tap and self-healing
/// state that used to live in sibling maps keyed by the same id. One
/// slot, one cache line neighbourhood, one lookup.
pub(crate) struct VcEntry {
    pub(crate) vc: Vc,
    /// The orchestration tap, when registered.
    pub(crate) tap: Option<Rc<dyn VcTap>>,
    /// The source-side egress tap, when registered (fires synchronously
    /// inside `write_osdu`).
    pub(crate) egress: Option<Rc<dyn EgressTap>>,
    /// Self-healing state (probe timer + lifetime counters).
    pub(crate) heal: Option<crate::heal::HealState>,
}

/// Slab-indexed VC store. The id→handle map is consulted once per event
/// at the demultiplex point (packet arrival, service call); timers and
/// hot loops then address the slab directly through generation-tagged
/// handles. The map-keyed accessors keep the cold call sites unchanged.
pub(crate) struct VcTable {
    slots: Slab<VcEntry>,
    by_id: FastMap<VcId, SlabHandle>,
}

impl VcTable {
    fn new() -> VcTable {
        VcTable {
            slots: Slab::new(),
            by_id: FastMap::default(),
        }
    }

    /// Resolve an id to its slab handle (the once-per-event lookup).
    pub(crate) fn resolve(&self, vc: VcId) -> Option<SlabHandle> {
        self.by_id.get(&vc).copied()
    }

    /// The full entry behind a handle.
    pub(crate) fn at(&self, h: SlabHandle) -> Option<&VcEntry> {
        self.slots.get(h)
    }

    /// Mutable entry behind a handle.
    pub(crate) fn at_mut(&mut self, h: SlabHandle) -> Option<&mut VcEntry> {
        self.slots.get_mut(h)
    }

    pub(crate) fn get(&self, vc: &VcId) -> Option<&Vc> {
        self.resolve(*vc)
            .and_then(|h| self.slots.get(h))
            .map(|e| &e.vc)
    }

    pub(crate) fn get_mut(&mut self, vc: &VcId) -> Option<&mut Vc> {
        let h = self.resolve(*vc)?;
        self.slots.get_mut(h).map(|e| &mut e.vc)
    }

    /// Insert a fresh VC endpoint (tap and heal start empty). Ids are
    /// wire-global and never reused, so a duplicate insert replaces the
    /// whole entry.
    pub(crate) fn insert(&mut self, vc: VcId, v: Vc) -> SlabHandle {
        if let Some(h) = self.resolve(vc) {
            self.slots.remove(h);
        }
        let h = self.slots.insert(VcEntry {
            vc: v,
            tap: None,
            egress: None,
            heal: None,
        });
        self.by_id.insert(vc, h);
        h
    }

    pub(crate) fn tap(&self, vc: &VcId) -> Option<Rc<dyn VcTap>> {
        self.resolve(*vc)
            .and_then(|h| self.slots.get(h))
            .and_then(|e| e.tap.clone())
    }

    pub(crate) fn set_tap(&mut self, vc: VcId, tap: Rc<dyn VcTap>) -> bool {
        match self.resolve(vc).and_then(|h| self.slots.get_mut(h)) {
            Some(e) => {
                e.tap = Some(tap);
                true
            }
            None => false,
        }
    }

    pub(crate) fn clear_tap(&mut self, vc: &VcId) {
        if let Some(e) = self.resolve(*vc).and_then(|h| self.slots.get_mut(h)) {
            e.tap = None;
        }
    }

    pub(crate) fn set_egress(&mut self, vc: VcId, tap: Rc<dyn EgressTap>) -> bool {
        match self.resolve(vc).and_then(|h| self.slots.get_mut(h)) {
            Some(e) => {
                e.egress = Some(tap);
                true
            }
            None => false,
        }
    }

    pub(crate) fn clear_egress(&mut self, vc: &VcId) {
        if let Some(e) = self.resolve(*vc).and_then(|h| self.slots.get_mut(h)) {
            e.egress = None;
        }
    }

    pub(crate) fn heal(&self, vc: &VcId) -> Option<&crate::heal::HealState> {
        self.resolve(*vc)
            .and_then(|h| self.slots.get(h))
            .and_then(|e| e.heal.as_ref())
    }

    pub(crate) fn heal_mut(&mut self, vc: &VcId) -> Option<&mut crate::heal::HealState> {
        let h = self.resolve(*vc)?;
        self.slots.get_mut(h).and_then(|e| e.heal.as_mut())
    }

    pub(crate) fn has_heal(&self, vc: &VcId) -> bool {
        self.heal(vc).is_some()
    }

    pub(crate) fn set_heal(&mut self, vc: VcId, hs: crate::heal::HealState) {
        if let Some(e) = self.resolve(vc).and_then(|h| self.slots.get_mut(h)) {
            e.heal = Some(hs);
        }
    }

    pub(crate) fn remove_heal(&mut self, vc: &VcId) {
        if let Some(e) = self.resolve(*vc).and_then(|h| self.slots.get_mut(h)) {
            e.heal = None;
        }
    }
}

pub(crate) struct State {
    pub(crate) users: FastMap<Tsap, Rc<dyn TransportUser>>,
    pub(crate) vcs: VcTable,
    pending_dst: FastMap<VcId, PendingDst>,
    pending_src: FastMap<VcId, PendingSrc>,
    pending_remote: FastMap<VcId, PendingRemote>,
    /// Remote-connect triples remembered at the initiator for later
    /// remote release.
    initiated: FastMap<VcId, AddressTriple>,
    next_vc: u64,
}

/// The transport entity of one node.
pub struct TransportEntity {
    pub(crate) node: NetAddr,
    pub(crate) net: Network,
    pub(crate) config: EntityConfig,
    /// Cached clone of the engine-wide flight recorder.
    pub(crate) tel: Telemetry,
    /// Cached clone of the causal-tracing registry (from the config).
    pub(crate) obs: cm_obs::Obs,
    pub(crate) state: RefCell<State>,
}

/// The node handler: an `Rc` wrapper so event closures can hold the entity
/// strongly.
pub(crate) struct EntityRef(pub(crate) Rc<TransportEntity>);

impl NodeHandler for EntityRef {
    fn on_packet(&self, _net: &Network, _at: NetAddr, pkt: Packet) {
        TransportEntity::handle_packet(&self.0, pkt);
    }
}

impl TransportEntity {
    /// Create an entity for `node`, register it as the node's handler, and
    /// return its service interface.
    pub fn install(net: &Network, node: NetAddr, config: EntityConfig) -> TransportService {
        let entity = Rc::new(TransportEntity {
            node,
            net: net.clone(),
            obs: config.obs.clone(),
            config,
            tel: net.engine().telemetry().clone(),
            state: RefCell::new(State {
                users: FastMap::default(),
                vcs: VcTable::new(),
                pending_dst: FastMap::default(),
                pending_src: FastMap::default(),
                pending_remote: FastMap::default(),
                initiated: FastMap::default(),
                next_vc: 0,
            }),
        });
        net.set_handler(node, Rc::new(EntityRef(entity.clone())));
        TransportService::new(entity)
    }

    /// The causal-tracing registry this entity stamps spans into.
    pub(crate) fn obs(&self) -> &cm_obs::Obs {
        &self.obs
    }

    pub(crate) fn now(&self) -> SimTime {
        self.net.engine().now()
    }

    /// This node's local clock reading. The rate-based pacing clock runs
    /// on *local* time: real protocol engines pace off their own crystal,
    /// which is exactly the clock-rate discrepancy the orchestrator exists
    /// to correct (§3.6).
    pub(crate) fn local_now(&self) -> SimTime {
        self.net.local_time(self.node)
    }

    /// Convert a node-local instant to global engine time for scheduling.
    fn local_to_global(&self, local: SimTime) -> SimTime {
        self.net.clock(self.node).global_of(local)
    }

    pub(crate) fn alloc_vc(&self) -> VcId {
        let mut st = self.state.borrow_mut();
        st.next_vc += 1;
        VcId(((self.node.0 as u64 + 1) << 40) | st.next_vc)
    }

    pub(crate) fn send_control(&self, to: NetAddr, msg: ControlMsg) {
        let pkt = Packet::control(
            self.node,
            to,
            CONTROL_WIRE_SIZE,
            self.now(),
            WirePdu::Control(msg),
        );
        self.net.send(self.node, pkt);
    }

    /// Source-side feedback that must reach every receiving end: unicast
    /// to the peer on an ordinary VC, multicast over the group's control
    /// channel on a group VC.
    pub(crate) fn send_source_feedback(&self, vc: VcId, msg: ControlMsg) {
        let target = {
            let st = self.state.borrow();
            st.vcs
                .get(&vc)
                .map(|v| (v.group.as_ref().map(|ge| ge.group), v.peer_node))
        };
        match target {
            Some((Some(g), _)) => {
                let pkt = Packet::group(
                    self.node,
                    g,
                    Some(vc),
                    netsim::PacketClass::Control,
                    CONTROL_WIRE_SIZE,
                    self.now(),
                    WirePdu::Control(msg),
                );
                self.net.send_to_group(g, pkt);
            }
            Some((None, peer)) => self.send_control(peer, msg),
            None => {}
        }
    }

    /// Dispatch a user callback as an event at the current instant.
    pub(crate) fn to_user(
        self: &Rc<Self>,
        tsap: Tsap,
        f: impl FnOnce(&TransportService, &Rc<dyn TransportUser>) + 'static,
    ) {
        let user = self.state.borrow().users.get(&tsap).cloned();
        if let Some(user) = user {
            self.dispatch_user(user, f);
        }
    }

    /// Schedule a callback on an already-resolved user (the fused paths
    /// clone the user while they still hold the state borrow — scheduling
    /// itself never touches entity state).
    fn dispatch_user(
        self: &Rc<Self>,
        user: Rc<dyn TransportUser>,
        f: impl FnOnce(&TransportService, &Rc<dyn TransportUser>) + 'static,
    ) {
        let me = self.clone();
        self.net
            .engine()
            .schedule_in(cm_core::time::SimDuration::ZERO, move |_| {
                let svc = TransportService::new(me.clone());
                f(&svc, &user);
            });
    }

    /// Dispatch a tap callback as an event at the current instant.
    fn to_tap(self: &Rc<Self>, vc: VcId, f: impl FnOnce(&Rc<dyn VcTap>) + 'static) {
        let tap = self.state.borrow().vcs.tap(&vc);
        if let Some(tap) = tap {
            self.dispatch_tap(tap, f);
        }
    }

    /// Schedule an already-resolved tap callback (the fused delivery path
    /// clones the tap while it still holds the state borrow).
    fn dispatch_tap(&self, tap: Rc<dyn VcTap>, f: impl FnOnce(&Rc<dyn VcTap>) + 'static) {
        self.net
            .engine()
            .schedule_in(cm_core::time::SimDuration::ZERO, move |_| f(&tap));
    }

    // ------------------------------------------------------------------
    // Service requests (called through TransportService)
    // ------------------------------------------------------------------

    /// `T-Connect.request` (table 1). Must be called at the initiator node.
    pub(crate) fn t_connect_request(
        self: &Rc<Self>,
        triple: AddressTriple,
        class: ServiceClass,
        requirement: QosRequirement,
    ) -> Result<VcId, ServiceError> {
        if triple.initiator.node != self.node {
            return Err(ServiceError::BadArgument(
                "T-Connect.request must be issued at the initiator node",
            ));
        }
        if !requirement.tolerance.is_well_formed() {
            return Err(ServiceError::BadArgument(
                "preferred QoS weaker than worst-acceptable",
            ));
        }
        let vc = self.alloc_vc();
        if triple.is_conventional() {
            // The initiator is the source: go straight to leg 2.
            self.state.borrow_mut().pending_src.insert(
                vc,
                PendingSrc {
                    triple,
                    class,
                    requirement,
                    awaiting_user: false,
                },
            );
            self.send_control(
                triple.destination.node,
                ControlMsg::ConnectRequest {
                    vc,
                    triple,
                    class,
                    qos: requirement,
                },
            );
        } else {
            // Remote connect (§3.5): ask the source entity to raise the
            // indication at the source user.
            self.state
                .borrow_mut()
                .pending_remote
                .insert(vc, PendingRemote { triple });
            self.state.borrow_mut().initiated.insert(vc, triple);
            self.send_control(
                triple.source.node,
                ControlMsg::RemoteConnectRequest {
                    vc,
                    triple,
                    class,
                    qos: requirement,
                },
            );
        }
        Ok(vc)
    }

    /// `T-Connect.response` / rejection via `T-Disconnect.request` during
    /// connect (table 1, fig. 3).
    pub(crate) fn t_connect_response(
        self: &Rc<Self>,
        vc: VcId,
        accept: bool,
    ) -> Result<(), ServiceError> {
        // Destination answering its indication?
        let dst = self.state.borrow_mut().pending_dst.remove(&vc);
        if let Some(p) = dst {
            // Group invitation: answer the sender with the group handshake
            // (reservations live on the shared tree, keyed by the group).
            if p.group.is_some() {
                let member = TransportAddr {
                    node: self.node,
                    tsap: p.triple.destination.tsap,
                };
                if accept {
                    self.open_sink(vc, &p);
                    self.send_control(
                        p.triple.source.node,
                        ControlMsg::GroupConnectResponse {
                            vc,
                            member,
                            result: Ok((p.agreed, p.capacity)),
                        },
                    );
                } else {
                    self.send_control(
                        p.triple.source.node,
                        ControlMsg::GroupConnectResponse {
                            vc,
                            member,
                            result: Err(DisconnectReason::UserRejected),
                        },
                    );
                }
                return Ok(());
            }
            if accept {
                self.open_sink(vc, &p);
                self.send_control(
                    p.triple.source.node,
                    ControlMsg::ConnectResponse {
                        vc,
                        result: Ok((p.agreed, p.capacity)),
                    },
                );
            } else {
                self.net.release_reservation(vc);
                self.send_control(
                    p.triple.source.node,
                    ControlMsg::ConnectResponse {
                        vc,
                        result: Err(DisconnectReason::UserRejected),
                    },
                );
            }
            return Ok(());
        }
        // Source user answering a remote-connect indication?
        let go = {
            let mut st = self.state.borrow_mut();
            match st.pending_src.get_mut(&vc) {
                Some(p) if p.awaiting_user => {
                    p.awaiting_user = false;
                    Some((p.triple, p.class, p.requirement))
                }
                _ => None,
            }
        };
        if let Some((triple, class, requirement)) = go {
            if accept {
                self.send_control(
                    triple.destination.node,
                    ControlMsg::ConnectRequest {
                        vc,
                        triple,
                        class,
                        qos: requirement,
                    },
                );
            } else {
                self.state.borrow_mut().pending_src.remove(&vc);
                self.send_control(
                    triple.initiator.node,
                    ControlMsg::RemoteConnectReply {
                        vc,
                        result: Err(DisconnectReason::UserRejected),
                    },
                );
            }
            return Ok(());
        }
        Err(ServiceError::UnknownVc)
    }

    /// `T-Disconnect.request` (table 1). Valid at either endpoint or at the
    /// remote initiator.
    pub(crate) fn t_disconnect_request(
        self: &Rc<Self>,
        vc: VcId,
        reason: DisconnectReason,
    ) -> Result<(), ServiceError> {
        // Endpoint with live state: tear down and tell the peer (and the
        // remote initiator, if any — §3.5: responses go to both).
        let info = {
            let st = self.state.borrow();
            st.vcs
                .get(&vc)
                .filter(|v| v.phase != VcPhase::Closed)
                .map(|v| (v.peer_node, v.triple))
        };
        if let Some((peer, triple)) = info {
            self.teardown_local(vc, reason.clone(), false);
            self.send_control(
                peer,
                ControlMsg::Disconnect {
                    vc,
                    reason: reason.clone(),
                    notify: None,
                },
            );
            if triple.initiator.node != self.node
                && triple.initiator != triple.source
                && triple.initiator != triple.destination
            {
                self.send_control(
                    triple.initiator.node,
                    ControlMsg::Disconnect {
                        vc,
                        reason,
                        notify: None,
                    },
                );
            }
            return Ok(());
        }
        // Remote initiator: relay the release request to the source, whose
        // user receives the indication and performs the actual release
        // (§4.1.1 "remotely released").
        let triple = self.state.borrow().initiated.get(&vc).copied();
        if let Some(triple) = triple {
            self.send_control(
                triple.source.node,
                ControlMsg::Disconnect {
                    vc,
                    reason,
                    notify: Some(triple.initiator),
                },
            );
            return Ok(());
        }
        Err(ServiceError::UnknownVc)
    }

    /// `T-Renegotiate.request` (table 3), issued at either endpoint.
    pub(crate) fn t_renegotiate_request(
        self: &Rc<Self>,
        vc: VcId,
        new_tolerance: QosTolerance,
    ) -> Result<(), ServiceError> {
        if !new_tolerance.is_well_formed() {
            return Err(ServiceError::BadArgument(
                "preferred QoS weaker than worst-acceptable",
            ));
        }
        let peer = {
            let st = self.state.borrow();
            let v = st.vcs.get(&vc).ok_or(ServiceError::UnknownVc)?;
            if v.phase != VcPhase::Open {
                return Err(ServiceError::WrongState("renegotiate on non-open VC"));
            }
            v.peer_node
        };
        self.send_control(peer, ControlMsg::RenegotiateRequest { vc, new_tolerance });
        Ok(())
    }

    /// `T-Renegotiate.response` (table 3): the peer user's verdict. On
    /// acceptance the entity renegotiates resources and, if that succeeds,
    /// applies the new contract at both ends.
    pub(crate) fn t_renegotiate_response(
        self: &Rc<Self>,
        vc: VcId,
        accept: bool,
    ) -> Result<(), ServiceError> {
        let (peer, triple) = {
            let st = self.state.borrow();
            let v = st.vcs.get(&vc).ok_or(ServiceError::UnknownVc)?;
            (v.peer_node, v.triple)
        };
        if !accept {
            self.send_control(
                peer,
                ControlMsg::RenegotiateResponse {
                    vc,
                    result: Err(DisconnectReason::RenegotiationRefused),
                },
            );
            return Ok(());
        }
        let pending = {
            let mut st = self.state.borrow_mut();
            let v = st.vcs.get_mut(&vc).ok_or(ServiceError::UnknownVc)?;
            v.pending_renegotiation().take()
        };
        let new_tolerance = match pending {
            Some(t) => t,
            None => return Err(ServiceError::WrongState("no renegotiation pending")),
        };
        let result = self.apply_renegotiation(vc, triple, new_tolerance);
        match &result {
            Ok(qos) => {
                self.send_control(
                    peer,
                    ControlMsg::RenegotiateResponse {
                        vc,
                        result: Ok(*qos),
                    },
                );
            }
            Err(reason) => {
                self.send_control(
                    peer,
                    ControlMsg::RenegotiateResponse {
                        vc,
                        result: Err(reason.clone()),
                    },
                );
            }
        }
        Ok(())
    }

    /// Negotiate the new tolerance against the path and the reservation
    /// ledger; on success the local contract is replaced in place —
    /// protocol state, buffers and sequence numbers survive (§4.1.3).
    fn apply_renegotiation(
        self: &Rc<Self>,
        vc: VcId,
        triple: AddressTriple,
        new_tolerance: QosTolerance,
    ) -> Result<QosParams, DisconnectReason> {
        let src = triple.source.node;
        let dst = triple.destination.node;
        let mut achievable = self
            .net
            .path_qos(src, dst, self.config.mtu)
            .ok_or(DisconnectReason::Unreachable)?;
        // Capacity available = unreserved + what this VC already holds.
        let held = {
            let st = self.state.borrow();
            st.vcs.get(&vc).map(|v| v.contract.throughput)
        }
        .unwrap_or(cm_core::time::Bandwidth::ZERO);
        if let Some(avail) = self.net.available_bandwidth(src, dst) {
            achievable.throughput = (avail + held).min(achievable.throughput);
        }
        let agreed = new_tolerance
            .negotiate(&achievable)
            .map_err(|_| DisconnectReason::RenegotiationRefused)?;
        self.net
            .renegotiate_reservation(vc, agreed.throughput)
            .map_err(|_| DisconnectReason::RenegotiationRefused)?;
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.vcs.get_mut(&vc) {
            v.contract = agreed;
            v.requirement.tolerance = new_tolerance;
        }
        Ok(agreed)
    }

    // ------------------------------------------------------------------
    // VC endpoint construction
    // ------------------------------------------------------------------

    pub(crate) fn buffer_slots(&self, requirement: &QosRequirement) -> usize {
        if let Some(n) = self.config.buffer_slots_override {
            return n;
        }
        // Half a second of media, clamped to [4, 64] slots.
        let per_half_s = requirement
            .osdu_rate
            .units_in(cm_core::time::SimDuration::from_millis(500));
        (per_half_s as usize).clamp(4, 64)
    }

    /// Attach the pacing-tick and RTO timers to the source end behind
    /// `h`. One engine slot and one boxed closure each for the life of
    /// the VC; the closures capture the generation-tagged slab handle,
    /// so every fire addresses the entry directly (no id lookup) and a
    /// fire after teardown or slot reuse is a silent no-op. Called after
    /// the entry is inserted — creating a timer consumes no event
    /// sequence number, so the attach order never shifts the schedule.
    pub(crate) fn attach_source_timers(self: &Rc<Self>, h: SlabHandle) {
        let weak = Rc::downgrade(self);
        let tick = netsim::PeriodicTimer::new(self.net.engine(), move |_| {
            if let Some(me) = weak.upgrade() {
                me.source_tick_h(h);
            }
        });
        let weak = Rc::downgrade(self);
        let rto = netsim::PeriodicTimer::new(self.net.engine(), move |_| {
            if let Some(me) = weak.upgrade() {
                me.rto_fire_h(h);
            }
        });
        let mut st = self.state.borrow_mut();
        if let Some(s) = st.vcs.at_mut(h).and_then(|e| e.vc.source.as_mut()) {
            s.tick_timer = Some(tick);
            s.rto_timer = Some(rto);
        }
    }

    fn open_sink(self: &Rc<Self>, vc: VcId, p: &PendingDst) {
        let slots = p.capacity as usize;
        let monitor = (p.requirement.guarantee != GuaranteeMode::BestEffort)
            .then(|| QosMonitor::new(self.config.monitor_period, self.now()));
        let mut sink = SinkEnd {
            recv_buf: BufferHandle::new(slots),
            engine: SinkEngine::new(p.class.error_control),
            gbn_recv: (p.class.profile == ProtocolProfile::WindowBased).then(GoBackNReceiver::new),
            app_popped: 0,
            last_freed_sent: 0,
            monitor,
            monitor_timer: None,
            pending_delivery: std::collections::VecDeque::new(),
            producer_parked: false,
            lost_snap: 0,
            delivered_snap: 0,
        };
        // Mid-stream group join: the stream position starts at the
        // invitation point, not zero.
        if p.start_seq > 0 {
            sink.engine.start_at(p.start_seq);
        }
        let v = Vc {
            id: vc,
            triple: p.triple,
            class: p.class,
            requirement: p.requirement,
            contract: p.agreed,
            role: VcRole::Sink,
            peer_node: p.triple.source.node,
            local_tsap: p.triple.destination.tsap,
            phase: VcPhase::Open,
            source: None,
            sink: Some(sink),
            group: None,
            pending_reneg: None,
        };
        let monitored = v.sink.as_ref().is_some_and(|k| k.monitor.is_some());
        let h = self.state.borrow_mut().vcs.insert(vc, v);
        if monitored {
            let weak = Rc::downgrade(self);
            let timer = netsim::PeriodicTimer::new(self.net.engine(), move |_| {
                if let Some(me) = weak.upgrade() {
                    me.monitor_fire_h(h);
                }
            });
            {
                let mut st = self.state.borrow_mut();
                if let Some(k) = st.vcs.at_mut(h).and_then(|e| e.vc.sink.as_mut()) {
                    k.monitor_timer = Some(timer);
                }
            }
            self.schedule_monitor_h(h);
        }
    }

    fn open_source(
        self: &Rc<Self>,
        vc: VcId,
        p: &PendingSrc,
        agreed: QosParams,
        recv_capacity: u32,
    ) {
        let slots = self.buffer_slots(&p.requirement);
        let mut clock = RateClock::new(p.requirement.osdu_rate);
        clock.start(self.local_now());
        let source = SourceEnd {
            send_buf: BufferHandle::new(slots),
            clock,
            gbn: (p.class.profile == ProtocolProfile::WindowBased)
                .then(|| GoBackNSender::new(self.config.window_size, self.config.rto)),
            pending_frags: std::collections::VecDeque::new(),
            next_write_seq: 0,
            charged: 0,
            freed_remote: 0,
            recv_capacity: recv_capacity as u64,
            dropped: 0,
            sent: 0,
            retrans_cache: std::collections::VecDeque::new(),
            retrans_cache_cap: (recv_capacity as usize) * 4,
            tick_timer: None,
            rto_timer: None,
            waiting_buffer: false,
            stalled_credit: false,
            stalled_at: None,
            rto_strikes: 0,
            dropped_snap: 0,
        };
        let v = Vc {
            id: vc,
            triple: p.triple,
            class: p.class,
            requirement: p.requirement,
            contract: agreed,
            role: VcRole::Source,
            peer_node: p.triple.destination.node,
            local_tsap: p.triple.source.tsap,
            phase: VcPhase::Open,
            source: Some(source),
            sink: None,
            group: None,
            pending_reneg: None,
        };
        // Register the negotiated contract with the auditor: the delay
        // bound is the end-to-end deadline, and the loss budget doubles as
        // the deadline-miss budget (a late CM OSDU is as lost as a dropped
        // one).
        if self.obs.enabled() {
            self.obs.set_contract(
                vc.0,
                agreed.delay.as_micros(),
                agreed.packet_error_rate.as_ppb() / 1_000,
            );
        }
        let h = self.state.borrow_mut().vcs.insert(vc, v);
        self.attach_source_timers(h);
        // Arm the pacing/pump machinery; it will park on the empty buffer.
        match p.class.profile {
            ProtocolProfile::RateBasedCm => self.ensure_tick_h(h, self.now()),
            ProtocolProfile::WindowBased => self.pump_window(vc),
            ProtocolProfile::Datagram => {}
        }
    }

    pub(crate) fn teardown_local(
        self: &Rc<Self>,
        vc: VcId,
        reason: DisconnectReason,
        indicate: bool,
    ) {
        let tsap = {
            let mut st = self.state.borrow_mut();
            let entry = st.vcs.resolve(vc).and_then(|h| st.vcs.at_mut(h));
            match entry {
                Some(e) => {
                    e.tap = None;
                    e.egress = None;
                    e.heal = None;
                    let v = &mut e.vc;
                    if v.phase == VcPhase::Closed {
                        None
                    } else {
                        v.phase = VcPhase::Closed;
                        // Closed entries stay in the table so late control
                        // messages resolve (and are ignored by phase
                        // checks), but they shed everything heavy: timers
                        // give their engine slots and boxed closures back,
                        // and the caches that scale with traffic are
                        // dropped. At city scale this is the difference
                        // between memory tracking *live* VCs and memory
                        // tracking *every VC that ever existed*.
                        if let Some(s) = &mut v.source {
                            s.tick_timer = None;
                            s.rto_timer = None;
                            s.gbn = None;
                            s.pending_frags = std::collections::VecDeque::new();
                            s.retrans_cache = std::collections::VecDeque::new();
                        }
                        if let Some(k) = &mut v.sink {
                            k.monitor_timer = None;
                            k.monitor = None;
                            k.pending_delivery = std::collections::VecDeque::new();
                        }
                        Some(v.local_tsap)
                    }
                }
                None => None,
            }
        };
        self.net.release_reservation(vc);
        if indicate {
            if let Some(tsap) = tsap {
                self.to_user(tsap, move |svc, u| {
                    u.t_disconnect_indication(svc, vc, reason)
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Packet handling
    // ------------------------------------------------------------------

    fn handle_packet(self: &Rc<Self>, pkt: Packet) {
        // Take the payload out (avoid double-Rc clones of big TPDUs).
        let corrupted = pkt.corrupted;
        let from = pkt.src;
        // Link-queue wait the packet accumulated along its path (zero
        // unless tracing stamped it at the source).
        let queued_us = pkt.trace.map_or(0, |t| t.queued_us);
        if let Some(pdu) = pkt.payload_as::<WirePdu>() {
            match pdu {
                WirePdu::Data(tpdu) => self.on_data(tpdu.clone(), corrupted, queued_us),
                WirePdu::WindowData { wseq, tpdu } => {
                    self.on_window_data(*wseq, tpdu.clone(), corrupted, queued_us)
                }
                WirePdu::Control(msg) => self.on_control(from, msg.clone()),
            }
        }
    }

    /// `from` is the originating node — group VCs demultiplex per-receiver
    /// feedback (credit, nacks, QoS reports, releases) on it.
    pub(crate) fn on_control(self: &Rc<Self>, from: NetAddr, msg: ControlMsg) {
        match msg {
            ControlMsg::RemoteConnectRequest {
                vc,
                triple,
                class,
                qos,
            } => {
                // Leg 1 arrival at the source entity: indication to the
                // source user (fig. 3).
                let bound = self.state.borrow().users.contains_key(&triple.source.tsap);
                if !bound {
                    self.send_control(
                        triple.initiator.node,
                        ControlMsg::RemoteConnectReply {
                            vc,
                            result: Err(DisconnectReason::NoSuchTsap),
                        },
                    );
                    return;
                }
                self.state.borrow_mut().pending_src.insert(
                    vc,
                    PendingSrc {
                        triple,
                        class,
                        requirement: qos,
                        awaiting_user: true,
                    },
                );
                self.to_user(triple.source.tsap, move |svc, u| {
                    u.t_connect_indication(svc, vc, triple, class, qos)
                });
            }
            ControlMsg::ConnectRequest {
                vc,
                triple,
                class,
                qos,
            } => self.on_connect_request(vc, triple, class, qos),
            ControlMsg::ConnectResponse { vc, result } => self.on_connect_response(vc, result),
            ControlMsg::RemoteConnectReply { vc, result } => {
                let p = self.state.borrow_mut().pending_remote.remove(&vc);
                if let Some(p) = p {
                    let tsap = p.triple.initiator.tsap;
                    match result {
                        Ok(qos) => {
                            self.to_user(tsap, move |svc, u| u.t_connect_confirm(svc, vc, Ok(qos)))
                        }
                        Err(reason) => {
                            self.state.borrow_mut().initiated.remove(&vc);
                            self.to_user(tsap, move |svc, u| {
                                u.t_connect_confirm(svc, vc, Err(reason))
                            })
                        }
                    }
                }
            }
            ControlMsg::GroupConnectRequest {
                vc,
                group,
                triple,
                class,
                requirement,
                agreed,
                start_seq,
            } => self.on_group_connect_request(
                vc,
                group,
                triple,
                class,
                requirement,
                agreed,
                start_seq,
            ),
            ControlMsg::GroupConnectResponse { vc, member, result } => {
                self.on_group_connect_response(vc, member, result)
            }
            ControlMsg::Disconnect { vc, reason, notify } => {
                // At a group sender a release from a member means that
                // member leaves — the group VC itself stays up.
                let group_sender = {
                    let st = self.state.borrow();
                    st.vcs.get(&vc).is_some_and(|v| v.group.is_some())
                };
                if group_sender {
                    self.group_member_left(vc, from, reason);
                    return;
                }
                if let Some(to_notify) = notify {
                    // Remote release request: indication only; the user
                    // decides whether to actually release (§4.1.1).
                    let tsap = {
                        let st = self.state.borrow();
                        st.vcs.get(&vc).map(|v| v.local_tsap)
                    };
                    if let Some(tsap) = tsap {
                        let r = reason.clone();
                        self.to_user(tsap, move |svc, u| u.t_disconnect_indication(svc, vc, r));
                    } else {
                        // VC unknown: report back to the requester.
                        let _ = to_notify;
                    }
                } else {
                    self.teardown_local(vc, reason, true);
                }
            }
            ControlMsg::RenegotiateRequest { vc, new_tolerance } => {
                let tsap = {
                    let mut st = self.state.borrow_mut();
                    match st.vcs.get_mut(&vc) {
                        Some(v) if v.phase == VcPhase::Open => {
                            *v.pending_renegotiation() = Some(new_tolerance);
                            Some(v.local_tsap)
                        }
                        _ => None,
                    }
                };
                if let Some(tsap) = tsap {
                    self.to_user(tsap, move |svc, u| {
                        u.t_renegotiate_indication(svc, vc, new_tolerance)
                    });
                }
            }
            ControlMsg::RenegotiateResponse { vc, result } => {
                let tsap = {
                    let st = self.state.borrow();
                    st.vcs.get(&vc).map(|v| v.local_tsap)
                };
                let Some(tsap) = tsap else { return };
                match result {
                    Ok(qos) => {
                        {
                            let mut st = self.state.borrow_mut();
                            if let Some(v) = st.vcs.get_mut(&vc) {
                                v.contract = qos;
                            }
                        }
                        self.to_user(tsap, move |svc, u| u.t_renegotiate_confirm(svc, vc, qos));
                    }
                    Err(reason) => {
                        // §4.1.3: refusal arrives as T-Disconnect.indication
                        // but the existing VC is *not* torn down.
                        self.to_user(tsap, move |svc, u| {
                            u.t_disconnect_indication(svc, vc, reason)
                        });
                    }
                }
            }
            ControlMsg::Credit { vc, freed_total } => self.on_credit(from, vc, freed_total),
            ControlMsg::CreditProbe { vc } => self.force_send_credit(vc),
            ControlMsg::Dropped { vc, seqs } => {
                let now = self.now();
                let actions = {
                    let mut st = self.state.borrow_mut();
                    match st.vcs.get_mut(&vc).and_then(|v| v.sink.as_mut()) {
                        Some(k) => k.engine.on_drop_notice(&seqs, now),
                        None => return,
                    }
                };
                self.apply_sink_actions(vc, actions, None);
            }
            ControlMsg::Nack { vc, seqs } => self.on_nack(from, vc, seqs),
            ControlMsg::Ack { vc, upto } => self.on_ack(vc, upto),
            ControlMsg::QosReportMsg(report) => {
                // A whole monitoring period at zero throughput with the
                // contract violated is starvation — the path under this VC
                // is suspect (self-healing, DESIGN.md §9).
                if report.measured.throughput.as_bps() == 0 && !report.violations.is_empty() {
                    self.heal_kick(report.vc, crate::heal::HealReason::Starved);
                }
                let info = {
                    let st = self.state.borrow();
                    st.vcs
                        .get(&report.vc)
                        .map(|v| (v.local_tsap, v.group.is_some()))
                };
                if let Some((tsap, is_group)) = info {
                    if is_group {
                        // Per-receiver monitoring: attribute the report to
                        // the member that measured it.
                        let vc = report.vc;
                        self.to_user(tsap, move |svc, u| {
                            u.t_group_qos_indication(svc, vc, from, report)
                        });
                    } else {
                        self.to_user(tsap, move |svc, u| u.t_qos_indication(svc, report));
                    }
                }
            }
            ControlMsg::UserControl { vc, payload } => {
                self.to_tap(vc, move |tap| tap.on_control(vc, payload));
            }
            ControlMsg::Datagram {
                to_tsap,
                from,
                payload,
                wire_size: _,
            } => {
                self.to_user(to_tsap, move |svc, u| {
                    u.t_datagram_indication(svc, from, payload)
                });
            }
        }
    }

    /// Connectionless send to a TSAP (control-class priority).
    pub(crate) fn send_datagram(
        self: &Rc<Self>,
        from_tsap: Tsap,
        to: cm_core::address::TransportAddr,
        payload: Rc<dyn Any>,
        wire_size: usize,
    ) {
        let msg = ControlMsg::Datagram {
            to_tsap: to.tsap,
            from: cm_core::address::TransportAddr {
                node: self.node,
                tsap: from_tsap,
            },
            payload,
            wire_size,
        };
        let pkt = Packet::control(
            self.node,
            to.node,
            CONTROL_WIRE_SIZE + wire_size,
            self.now(),
            WirePdu::Control(msg),
        );
        self.net.send(self.node, pkt);
    }

    fn on_connect_request(
        self: &Rc<Self>,
        vc: VcId,
        triple: AddressTriple,
        class: ServiceClass,
        qos: QosRequirement,
    ) {
        let reply_to = triple.source.node;
        let reject = |reason: DisconnectReason| {
            if self.tel.enabled() {
                self.tel.count("vc.connect.reject", 1);
                self.tel
                    .instant(self.now(), Layer::Transport, "vc.connect.reject", |e| {
                        e.u64("vc", vc.0).str("reason", reason.kind());
                    });
            }
            self.send_control(
                reply_to,
                ControlMsg::ConnectResponse {
                    vc,
                    result: Err(reason),
                },
            );
        };
        if !self
            .state
            .borrow()
            .users
            .contains_key(&triple.destination.tsap)
        {
            reject(DisconnectReason::NoSuchTsap);
            return;
        }
        // End-to-end QoS negotiation against what the path can offer
        // (§3.2: full option negotiation at connect time).
        let src = triple.source.node;
        let dst = triple.destination.node;
        let Some(mut achievable) = self.net.path_qos(src, dst, self.config.mtu) else {
            reject(DisconnectReason::Unreachable);
            return;
        };
        if qos.guarantee != GuaranteeMode::BestEffort {
            if let Some(avail) = self.net.available_bandwidth(src, dst) {
                achievable.throughput = achievable.throughput.min(avail);
            }
        }
        let agreed = match qos.tolerance.negotiate(&achievable) {
            Ok(a) => a,
            Err(violations) => {
                reject(DisconnectReason::from_violations(&violations));
                return;
            }
        };
        if qos.guarantee != GuaranteeMode::BestEffort {
            match self.net.reserve_path(vc, src, dst, agreed.throughput) {
                Some(Ok(())) => {}
                Some(Err(_)) => {
                    reject(DisconnectReason::AdmissionDenied);
                    return;
                }
                None => {
                    reject(DisconnectReason::Unreachable);
                    return;
                }
            }
        }
        let capacity = self.buffer_slots(&qos) as u32;
        if self.tel.enabled() {
            self.tel.count("vc.connect.admit", 1);
            self.tel
                .instant(self.now(), Layer::Transport, "vc.connect.admit", |e| {
                    e.u64("vc", vc.0)
                        .u64("agreed_bps", agreed.throughput.as_bps())
                        .u64("agreed_delay_us", agreed.delay.as_micros());
                });
        }
        self.state.borrow_mut().pending_dst.insert(
            vc,
            PendingDst {
                triple,
                class,
                requirement: qos,
                agreed,
                capacity,
                group: None,
                start_seq: 0,
            },
        );
        self.to_user(triple.destination.tsap, move |svc, u| {
            u.t_connect_indication(svc, vc, triple, class, qos)
        });
    }

    /// A group-VC invitation arrived at a prospective receiver. QoS and
    /// reservation were settled at the sender against this member's
    /// branch; here only the local user's consent and buffer capacity are
    /// needed (answered through the ordinary `t_connect_response`).
    #[allow(clippy::too_many_arguments)]
    fn on_group_connect_request(
        self: &Rc<Self>,
        vc: VcId,
        group: netsim::GroupId,
        triple: AddressTriple,
        class: ServiceClass,
        requirement: QosRequirement,
        agreed: QosParams,
        start_seq: u64,
    ) {
        if !self
            .state
            .borrow()
            .users
            .contains_key(&triple.destination.tsap)
        {
            self.send_control(
                triple.source.node,
                ControlMsg::GroupConnectResponse {
                    vc,
                    member: triple.destination,
                    result: Err(DisconnectReason::NoSuchTsap),
                },
            );
            return;
        }
        let capacity = self.buffer_slots(&requirement) as u32;
        self.state.borrow_mut().pending_dst.insert(
            vc,
            PendingDst {
                triple,
                class,
                requirement,
                agreed,
                capacity,
                group: Some(group),
                start_seq,
            },
        );
        self.to_user(triple.destination.tsap, move |svc, u| {
            u.t_connect_indication(svc, vc, triple, class, requirement)
        });
    }

    fn on_connect_response(
        self: &Rc<Self>,
        vc: VcId,
        result: Result<(QosParams, u32), DisconnectReason>,
    ) {
        let p = self.state.borrow_mut().pending_src.remove(&vc);
        let Some(p) = p else { return };
        let remote = !p.triple.is_conventional();
        match result {
            Ok((agreed, capacity)) => {
                self.open_source(vc, &p, agreed, capacity);
                // Confirm to the source user...
                let src_tsap = p.triple.source.tsap;
                self.to_user(src_tsap, move |svc, u| {
                    u.t_connect_confirm(svc, vc, Ok(agreed))
                });
                // ...and to the remote initiator (§3.5: responses to both).
                if remote {
                    self.send_control(
                        p.triple.initiator.node,
                        ControlMsg::RemoteConnectReply {
                            vc,
                            result: Ok(agreed),
                        },
                    );
                }
            }
            Err(reason) => {
                let src_tsap = p.triple.source.tsap;
                if remote {
                    let r = reason.clone();
                    self.to_user(src_tsap, move |svc, u| {
                        u.t_disconnect_indication(svc, vc, r)
                    });
                    self.send_control(
                        p.triple.initiator.node,
                        ControlMsg::RemoteConnectReply {
                            vc,
                            result: Err(reason),
                        },
                    );
                } else {
                    self.to_user(src_tsap, move |svc, u| {
                        u.t_connect_confirm(svc, vc, Err(reason))
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Rate-based data path
    // ------------------------------------------------------------------

    /// (Re)schedule the pacing tick for `vc` at its next due instant.
    pub(crate) fn ensure_tick_now(self: &Rc<Self>, vc: VcId) {
        let Some(h) = self.state.borrow().vcs.resolve(vc) else {
            return;
        };
        self.ensure_tick_h(h, self.now());
    }

    /// As [`Self::ensure_tick_now`], by slab handle, with an explicit
    /// earliest firing time. The early-wake re-arm passes `now + 1 µs`:
    /// the local↔global clock conversions truncate to whole microseconds,
    /// so a "due" instant can map back onto the current instant and a
    /// same-time re-arm would spin forever without advancing virtual time.
    fn ensure_tick_h(self: &Rc<Self>, h: SlabHandle, floor: SimTime) {
        let st = self.state.borrow();
        let Some(s) = st.vcs.at(h).and_then(|e| e.vc.source.as_ref()) else {
            return;
        };
        let Some(at_local) = s.clock.next_due() else {
            return;
        };
        let at = self.local_to_global(at_local).max(floor);
        if let Some(t) = &s.tick_timer {
            t.arm_at(at);
        }
    }

    /// Id-keyed wrapper for the cold callers (group recompute, resume).
    pub(crate) fn source_tick(self: &Rc<Self>, vc: VcId) {
        let Some(h) = self.state.borrow().vcs.resolve(vc) else {
            return;
        };
        self.source_tick_h(h);
    }

    /// One pacing-tick of the rate-based source behind `h` — the hottest
    /// periodic path in the stack. The timer closure hands us the slab
    /// handle, so the whole tick runs without a single id lookup.
    pub(crate) fn source_tick_h(self: &Rc<Self>, h: SlabHandle) {
        let now = self.now();
        let local = self.local_now();
        enum Next {
            Idle,
            ParkOnBuffer,
            Send(Osdu),
        }
        let mut stalled_vc = None;
        let next = {
            let mut st = self.state.borrow_mut();
            let Some(e) = st.vcs.at_mut(h) else { return };
            if e.vc.phase != VcPhase::Open {
                return;
            }
            let vc = e.vc.id;
            let s = e.vc.source.as_mut().expect("source end on tick");
            match s.clock.next_due() {
                None => Next::Idle, // paused
                // 1 us tolerance: local->global->local conversion truncates,
                // so an exactly-due tick can read as infinitesimally early —
                // without the slack it would re-arm at the same instant
                // forever.
                Some(due) if due > local + cm_core::time::SimDuration::from_micros(1) => {
                    // Early wake (stale event survived a reschedule):
                    // fall through to re-arm below.
                    Next::Idle
                }
                Some(_) => {
                    if !s.has_credit() {
                        if !s.stalled_credit {
                            s.stalled_at = Some(now);
                            self.trace_stall(vc, now);
                            stalled_vc = Some(vc);
                        }
                        s.stalled_credit = true;
                        Next::Idle
                    } else {
                        match s.send_buf.try_pop(now) {
                            Some(osdu) => Next::Send(osdu),
                            None => Next::ParkOnBuffer,
                        }
                    }
                }
            }
        };
        if let Some(vc) = stalled_vc {
            // Arm the self-healing probe: a stall that outlives the
            // patience window gets its infrastructure checked.
            self.heal_on_stall(vc);
        }
        match next {
            Next::Idle => {
                // Re-arm if running and due in the future.
                let due = {
                    let st = self.state.borrow();
                    st.vcs
                        .at(h)
                        .and_then(|e| e.vc.source.as_ref())
                        .and_then(|s| s.clock.next_due())
                };
                if let Some(due) = due {
                    if due > local + cm_core::time::SimDuration::from_micros(1) {
                        // Strictly future: see ensure_tick_h.
                        self.ensure_tick_h(h, now + cm_core::time::SimDuration::from_micros(1));
                    }
                }
            }
            Next::ParkOnBuffer => {
                // Protocol blocked: application slow producing (§6.3.1.2).
                let (buf, already) = {
                    let mut st = self.state.borrow_mut();
                    let s = st
                        .vcs
                        .at_mut(h)
                        .and_then(|e| e.vc.source.as_mut())
                        .expect("source end");
                    let already = s.waiting_buffer;
                    s.waiting_buffer = true;
                    (s.send_buf.clone(), already)
                };
                if !already {
                    let me = self.clone();
                    buf.park_consumer(now, move || {
                        // Trampoline: never re-enter synchronously.
                        let me2 = me.clone();
                        me.net
                            .engine()
                            .schedule_in(cm_core::time::SimDuration::ZERO, move |_| {
                                {
                                    let mut st = me2.state.borrow_mut();
                                    if let Some(s) =
                                        st.vcs.at_mut(h).and_then(|e| e.vc.source.as_mut())
                                    {
                                        s.waiting_buffer = false;
                                    }
                                }
                                me2.source_tick_h(h);
                            });
                    });
                }
            }
            Next::Send(osdu) => {
                self.transmit_osdu_h(h, osdu, false, None);
                // Consume the pacing slot and re-arm in the same borrow —
                // the old per-call path re-borrowed (and re-looked-up the
                // id) three times for this one step.
                let mut st = self.state.borrow_mut();
                if let Some(s) = st.vcs.at_mut(h).and_then(|e| e.vc.source.as_mut()) {
                    s.clock.consume_slot();
                    // Never burst more than a couple of units of
                    // backlog after a stall — rate-based senders pace.
                    s.clock.limit_backlog(local, 2);
                    if let Some(at_local) = s.clock.next_due() {
                        let at = self.local_to_global(at_local).max(now);
                        if let Some(t) = &s.tick_timer {
                            t.arm_at(at);
                        }
                    }
                }
            }
        }
    }

    /// Id-keyed wrapper for the cold callers (nack resends, heal unstick).
    pub(crate) fn transmit_osdu(
        self: &Rc<Self>,
        vc: VcId,
        osdu: Osdu,
        is_retrans: bool,
        explicit_to: Option<NetAddr>,
    ) {
        let Some(h) = self.state.borrow().vcs.resolve(vc) else {
            return;
        };
        self.transmit_osdu_h(h, osdu, is_retrans, explicit_to);
    }

    /// Fragment and transmit one OSDU (fresh or retransmission). Fresh
    /// sends on a group VC fan out over the shared tree; `explicit_to`
    /// overrides the destination for per-receiver unicast retransmission.
    pub(crate) fn transmit_osdu_h(
        self: &Rc<Self>,
        h: SlabHandle,
        osdu: Osdu,
        is_retrans: bool,
        explicit_to: Option<NetAddr>,
    ) {
        enum Dest {
            Unicast(NetAddr),
            Group(netsim::GroupId),
        }
        let now = self.now();
        let (vc, dest, seq, sizes) = {
            let mut st = self.state.borrow_mut();
            let Some(e) = st.vcs.at_mut(h) else { return };
            let v = &mut e.vc;
            let vc = v.id;
            let dest = match explicit_to {
                Some(node) => Dest::Unicast(node),
                None => match &v.group {
                    Some(ge) => Dest::Group(ge.group),
                    None => Dest::Unicast(v.peer_node),
                },
            };
            let seq = osdu.seq();
            let sizes = fragment_sizes(osdu.wire_size(), self.config.mtu);
            let corrects = v.class.error_control.corrects();
            let s = v.source.as_mut().expect("source end");
            if !is_retrans {
                s.charged += 1;
                s.sent += 1;
                if corrects {
                    s.retrans_cache.push_back(osdu.clone());
                    while s.retrans_cache.len() > s.retrans_cache_cap {
                        s.retrans_cache.pop_front();
                    }
                }
            }
            (vc, dest, seq, sizes)
        };
        // First fresh transmission closes the send-buffer wait; every
        // fragment (fresh or retransmitted) carries the trace tag so the
        // completing copy's queue wait reaches the sink attribution.
        let tracing = self.obs.enabled();
        if tracing && !is_retrans {
            self.obs.transmitted(vc.0, seq, now.as_micros());
        }
        // Branch on the destination once, not per fragment: the fragment
        // loop below is the hottest transport send path, feeding netsim's
        // zero-allocation flight events.
        let count = sizes.len() as u32;
        let make_tpdu = |i: usize, bytes: usize| {
            let last = i as u32 + 1 == count;
            DataTpdu {
                vc,
                osdu_seq: seq,
                frag_index: i as u32,
                frag_count: count,
                frag_bytes: bytes,
                opdu: osdu.opdu,
                payload: last.then(|| osdu.payload.clone()),
                osdu_sent_at: now,
            }
        };
        match dest {
            Dest::Unicast(node) => {
                for (i, &bytes) in sizes.iter().enumerate() {
                    let tpdu = make_tpdu(i, bytes);
                    let wire = tpdu.wire_size();
                    let mut pkt = Packet::data(self.node, node, vc, wire, now, WirePdu::Data(tpdu));
                    if tracing {
                        pkt.trace = Some(netsim::PacketTrace {
                            stream: vc.0,
                            seq,
                            queued_us: 0,
                        });
                    }
                    self.net.send(self.node, pkt);
                }
            }
            Dest::Group(g) => {
                for (i, &bytes) in sizes.iter().enumerate() {
                    let tpdu = make_tpdu(i, bytes);
                    let wire = tpdu.wire_size();
                    let mut pkt = Packet::group(
                        self.node,
                        g,
                        Some(vc),
                        netsim::PacketClass::Data,
                        wire,
                        now,
                        WirePdu::Data(tpdu),
                    );
                    if tracing {
                        pkt.trace = Some(netsim::PacketTrace {
                            stream: vc.0,
                            seq,
                            queued_us: 0,
                        });
                    }
                    self.net.send_to_group(g, pkt);
                }
            }
        }
    }

    fn on_credit(self: &Rc<Self>, from: NetAddr, vc: VcId, freed_total: u64) {
        let Some(h) = self.state.borrow().vcs.resolve(vc) else {
            return;
        };
        enum Act {
            Group,
            Nothing,
            Resume(ProtocolProfile),
        }
        let act = {
            let mut st = self.state.borrow_mut();
            let Some(e) = st.vcs.at_mut(h) else { return };
            if e.vc.group.is_some() {
                Act::Group
            } else {
                let profile = e.vc.class.profile;
                match e.vc.source.as_mut() {
                    None => Act::Nothing,
                    Some(s) => {
                        s.freed_remote = s.freed_remote.max(freed_total);
                        if s.stalled_credit && s.has_credit() {
                            s.stalled_credit = false;
                            if let Some(since) = s.stalled_at.take() {
                                self.trace_resume(vc, since);
                            }
                            Act::Resume(profile)
                        } else {
                            Act::Nothing
                        }
                    }
                }
            }
        };
        match act {
            Act::Group => self.on_group_credit(vc, from, freed_total),
            Act::Nothing => {}
            Act::Resume(ProtocolProfile::RateBasedCm) => self.source_tick_h(h),
            Act::Resume(ProtocolProfile::WindowBased) => self.pump_window(vc),
            Act::Resume(ProtocolProfile::Datagram) => {}
        }
    }

    /// Per-receiver error control: retransmissions (and give-up notices
    /// for cache-evicted sequences) go *unicast* to the requesting node,
    /// so one lossy receiver never triggers a resend to the whole group.
    fn on_nack(self: &Rc<Self>, from: NetAddr, vc: VcId, seqs: Vec<u64>) {
        let mut to_resend = Vec::new();
        let mut gone = Vec::new();
        {
            let st = self.state.borrow();
            let Some(s) = st.vcs.get(&vc).and_then(|v| v.source.as_ref()) else {
                return;
            };
            for seq in seqs {
                match s.retrans_cache.iter().find(|o| o.seq() == seq) {
                    Some(o) => to_resend.push(o.clone()),
                    None => gone.push(seq),
                }
            }
        }
        // Each nacked sequence is a traced unit the network lost (or
        // corrupted) on the way to `from`.
        if self.obs.enabled() {
            for _ in 0..to_resend.len() + gone.len() {
                self.obs.net_drop(vc.0);
            }
        }
        for osdu in to_resend {
            self.transmit_osdu(vc, osdu, true, Some(from));
        }
        if !gone.is_empty() {
            // Evicted from the cache: give up so the receiver can move on.
            self.send_control(from, ControlMsg::Dropped { vc, seqs: gone });
        }
    }

    // ------------------------------------------------------------------
    // Window-based data path
    // ------------------------------------------------------------------

    /// Transmit as much as window + credit allow (window profile).
    pub(crate) fn pump_window(self: &Rc<Self>, vc: VcId) {
        let now = self.now();
        loop {
            enum Step {
                SendFrag(u64, DataTpdu),
                NeedOsdu,
                Done,
            }
            let step = {
                let mut st = self.state.borrow_mut();
                let Some(v) = st.vcs.get_mut(&vc) else { return };
                if v.phase != VcPhase::Open {
                    return;
                }
                let peer = v.peer_node;
                let _ = peer;
                let s = v.source.as_mut().expect("source end");
                let gbn = s.gbn.as_mut().expect("window sender");
                if !gbn.can_send() {
                    Step::Done
                } else if let Some(tpdu) = s.pending_frags.pop_front() {
                    let wseq = gbn.on_send(tpdu.clone(), now);
                    Step::SendFrag(wseq, tpdu)
                } else {
                    Step::NeedOsdu
                }
            };
            match step {
                Step::Done => break,
                Step::SendFrag(wseq, tpdu) => {
                    self.send_window_frag(vc, wseq, tpdu);
                }
                Step::NeedOsdu => {
                    // Pull the next OSDU, fragment it into pending_frags.
                    enum Pull {
                        Got,
                        Park,
                        Stall,
                    }
                    let mut newly_stalled = false;
                    let pull = {
                        let mut st = self.state.borrow_mut();
                        let Some(v) = st.vcs.get_mut(&vc) else { return };
                        let mtu = self.config.mtu;
                        let s = v.source.as_mut().expect("source end");
                        if !s.has_credit() {
                            if !s.stalled_credit {
                                s.stalled_at = Some(now);
                                self.trace_stall(vc, now);
                                newly_stalled = true;
                            }
                            s.stalled_credit = true;
                            Pull::Stall
                        } else {
                            match s.send_buf.try_pop(now) {
                                None => Pull::Park,
                                Some(osdu) => {
                                    let seq = osdu.seq();
                                    let sizes = fragment_sizes(osdu.wire_size(), mtu);
                                    let count = sizes.len() as u32;
                                    for (i, bytes) in sizes.iter().enumerate() {
                                        let last = i as u32 + 1 == count;
                                        s.pending_frags.push_back(DataTpdu {
                                            vc,
                                            osdu_seq: seq,
                                            frag_index: i as u32,
                                            frag_count: count,
                                            frag_bytes: *bytes,
                                            opdu: osdu.opdu,
                                            payload: last.then(|| osdu.payload.clone()),
                                            osdu_sent_at: now,
                                        });
                                    }
                                    s.charged += 1;
                                    s.sent += 1;
                                    // The OSDU left the send buffer: close
                                    // its pacing/credit wait.
                                    self.obs.transmitted(vc.0, seq, now.as_micros());
                                    Pull::Got
                                }
                            }
                        }
                    };
                    match pull {
                        Pull::Got => continue,
                        Pull::Stall => {
                            if newly_stalled {
                                self.heal_on_stall(vc);
                            }
                            break;
                        }
                        Pull::Park => {
                            let (buf, already) = {
                                let mut st = self.state.borrow_mut();
                                let s = st
                                    .vcs
                                    .get_mut(&vc)
                                    .and_then(|v| v.source.as_mut())
                                    .expect("source end");
                                let already = s.waiting_buffer;
                                s.waiting_buffer = true;
                                (s.send_buf.clone(), already)
                            };
                            if !already {
                                let me = self.clone();
                                buf.park_consumer(now, move || {
                                    let me2 = me.clone();
                                    me.net.engine().schedule_in(
                                        cm_core::time::SimDuration::ZERO,
                                        move |_| {
                                            {
                                                let mut st = me2.state.borrow_mut();
                                                if let Some(s) = st
                                                    .vcs
                                                    .get_mut(&vc)
                                                    .and_then(|v| v.source.as_mut())
                                                {
                                                    s.waiting_buffer = false;
                                                }
                                            }
                                            me2.pump_window(vc);
                                        },
                                    );
                                });
                            }
                            break;
                        }
                    }
                }
            }
        }
        self.arm_rto(vc);
    }

    fn send_window_frag(self: &Rc<Self>, vc: VcId, wseq: u64, tpdu: DataTpdu) {
        let peer = {
            let st = self.state.borrow();
            match st.vcs.get(&vc) {
                Some(v) => v.peer_node,
                None => return,
            }
        };
        let wire = tpdu.wire_size();
        let now = self.now();
        let seq = tpdu.osdu_seq;
        let mut pkt = Packet::data(
            self.node,
            peer,
            vc,
            wire,
            now,
            WirePdu::WindowData { wseq, tpdu },
        );
        if self.obs.enabled() {
            pkt.trace = Some(netsim::PacketTrace {
                stream: vc.0,
                seq,
                queued_us: 0,
            });
        }
        self.net.send(self.node, pkt);
    }

    fn arm_rto(self: &Rc<Self>, vc: VcId) {
        let at = {
            let st = self.state.borrow();
            st.vcs
                .get(&vc)
                .and_then(|v| v.source.as_ref())
                .and_then(|s| s.gbn.as_ref())
                .and_then(|g| g.timeout_at())
        };
        let st = self.state.borrow();
        if let Some(t) = st
            .vcs
            .get(&vc)
            .and_then(|v| v.source.as_ref())
            .and_then(|s| s.rto_timer.as_ref())
        {
            match at {
                Some(at) => t.arm_at(at.max(self.now())),
                None => t.disarm(),
            }
        }
    }

    /// A source newly stalled on exhausted receiver credit.
    fn trace_stall(&self, vc: VcId, now: SimTime) {
        if !self.tel.enabled() {
            return;
        }
        self.tel.count("vc.credit.stall", 1);
        self.tel
            .instant(now, Layer::Transport, "vc.credit.stall", |e| {
                e.u64("vc", vc.0);
            });
    }

    /// Credit returned; the stall that began at `since` is over.
    fn trace_resume(&self, vc: VcId, since: SimTime) {
        if self.obs.enabled() {
            let dur = self.now().saturating_since(since);
            self.obs.stalled(vc.0, dur.as_micros());
        }
        if !self.tel.enabled() {
            return;
        }
        let now = self.now();
        let dur = now.saturating_since(since);
        self.tel.record_duration("vc.credit.stall_us", dur);
        self.tel
            .span(since, dur, Layer::Transport, "vc.credit.stalled", |e| {
                e.u64("vc", vc.0);
            });
    }

    pub(crate) fn rto_fire_h(self: &Rc<Self>, h: SlabHandle) {
        let now = self.now();
        let (vc, resend, strikes) = {
            let mut st = self.state.borrow_mut();
            let Some(e) = st.vcs.at_mut(h) else { return };
            let v = &mut e.vc;
            if v.phase != VcPhase::Open {
                return;
            }
            let vc = v.id;
            let s = v.source.as_mut().expect("source end");
            let gbn = s.gbn.as_mut().expect("window sender");
            // wseqs of cached entries are base..next, in order.
            let resend = gbn.check_timeout(now).map(|tpdus| (tpdus, gbn.base()));
            // A timeout that actually retransmitted is a strike; enough of
            // them in a row and the path itself is suspect (DESIGN.md §9).
            let strikes = match &resend {
                Some((tpdus, _)) if !tpdus.is_empty() => {
                    s.rto_strikes += 1;
                    s.rto_strikes
                }
                _ => 0,
            };
            (vc, resend, strikes)
        };
        if strikes == self.config.heal_rto_patience {
            self.heal_kick(vc, crate::heal::HealReason::Rto);
        }
        if let Some((tpdus, base)) = resend {
            if self.tel.enabled() && !tpdus.is_empty() {
                self.tel.count("vc.rto", 1);
                self.tel.instant(now, Layer::Transport, "vc.rto", |e| {
                    e.u64("vc", vc.0)
                        .u64("base", base)
                        .u64("resent", tpdus.len() as u64);
                });
            }
            for (i, tpdu) in tpdus.into_iter().enumerate() {
                self.send_window_frag(vc, base + i as u64, tpdu);
            }
        }
        self.arm_rto(vc);
    }

    fn on_ack(self: &Rc<Self>, vc: VcId, upto: u64) {
        let now = self.now();
        let slid = {
            let mut st = self.state.borrow_mut();
            let Some(s) = st.vcs.get_mut(&vc).and_then(|v| v.source.as_mut()) else {
                return;
            };
            let slid = match s.gbn.as_mut() {
                Some(g) => g.on_ack(upto, now),
                None => false,
            };
            if slid {
                // Window progress: the path works, clear the strikes.
                s.rto_strikes = 0;
            }
            slid
        };
        if slid {
            self.pump_window(vc);
        } else {
            self.arm_rto(vc);
        }
    }

    fn on_window_data(self: &Rc<Self>, wseq: u64, tpdu: DataTpdu, corrupted: bool, queued_us: u64) {
        let vc = tpdu.vc;
        let Some(h) = self.state.borrow().vcs.resolve(vc) else {
            return;
        };
        let now = self.now();
        let (accept, ack, peer) = {
            let mut st = self.state.borrow_mut();
            let Some(e) = st.vcs.at_mut(h) else { return };
            let peer = e.vc.peer_node;
            let Some(k) = e.vc.sink.as_mut() else { return };
            let g = k.gbn_recv.as_mut().expect("window receiver");
            if corrupted {
                // A damaged TPDU is treated as lost: dup-ack.
                g.discarded += 1;
                (false, g.expected(), peer)
            } else {
                let (a, ack) = g.on_tpdu_seq(wseq);
                (a, ack, peer)
            }
        };
        self.send_control(peer, ControlMsg::Ack { vc, upto: ack });
        if accept {
            self.feed_sink_h(h, tpdu, false, now, queued_us);
        }
    }

    // ------------------------------------------------------------------
    // Sink-side common path
    // ------------------------------------------------------------------

    pub(crate) fn on_data(self: &Rc<Self>, tpdu: DataTpdu, corrupted: bool, queued_us: u64) {
        // The one id→handle lookup of the receive path; everything below
        // addresses the slab entry directly.
        let Some(h) = self.state.borrow().vcs.resolve(tpdu.vc) else {
            return;
        };
        let now = self.now();
        self.feed_sink_h(h, tpdu, corrupted, now, queued_us);
    }

    /// Receive-path core: reassembly, monitor accounting, and the whole
    /// same-tick delivery batch (buffer pushes, tap dispatches, NACKs,
    /// loss indications, credit) under ONE state borrow. The per-action
    /// path used to re-borrow and re-look-up the id 3–4 times per OSDU.
    fn feed_sink_h(
        self: &Rc<Self>,
        h: SlabHandle,
        tpdu: DataTpdu,
        corrupted: bool,
        now: SimTime,
        queued_us: u64,
    ) {
        let final_frag = tpdu.frag_index + 1 == tpdu.frag_count;
        let delay = now.saturating_since(tpdu.osdu_sent_at);
        let wire_total = tpdu.frag_bytes; // summed via monitor per fragment
        let mut guard = self.state.borrow_mut();
        let st = &mut *guard;
        let Some(e) = st.vcs.at_mut(h) else { return };
        if e.vc.phase != VcPhase::Open {
            return;
        }
        let Some(k) = e.vc.sink.as_mut() else { return };
        let lost_before = k.engine.lost;
        let corrupted_before = k.engine.corrupted;
        let delivered_before = k.engine.delivered;
        let actions = k.engine.on_tpdu(&tpdu, corrupted, now);
        if let Some(m) = &mut k.monitor {
            m.on_lost(k.engine.lost - lost_before);
            for _ in 0..(k.engine.corrupted - corrupted_before) {
                m.on_corrupted();
            }
            // Count a completed OSDU's delay once, at its final frag.
            if final_frag && k.engine.delivered > delivered_before {
                m.on_delivered(wire_total, delay);
            } else if final_frag {
                // Completed into the stash (reliable reorder) still
                // counts as received for throughput purposes.
                let stashed = k.engine.delivered == delivered_before
                    && k.engine.lost == lost_before
                    && k.engine.corrupted == corrupted_before;
                if stashed {
                    m.on_delivered(wire_total, delay);
                }
            }
        }
        if self.obs.enabled() && final_frag {
            // A final fragment that completed reassembly — straight into
            // delivery, or stashed behind a hole under repair. (A frag
            // counted lost/corrupted completed nothing.)
            let completed = k.engine.delivered > delivered_before
                || (k.engine.delivered == delivered_before
                    && k.engine.lost == lost_before
                    && k.engine.corrupted == corrupted_before);
            if completed {
                self.obs.arrived(
                    tpdu.vc.0,
                    tpdu.osdu_seq,
                    self.node.0 as u64,
                    now.as_micros(),
                    queued_us,
                    tpdu.osdu_sent_at.as_micros(),
                );
            }
        }
        self.sink_actions_locked(st, h, actions, now);
    }

    /// Id-keyed wrapper: run sink-engine actions + credit refresh (the
    /// `Dropped` control path resolves here).
    fn apply_sink_actions(
        self: &Rc<Self>,
        vc: VcId,
        actions: Vec<SinkAction>,
        now: Option<SimTime>,
    ) {
        let Some(h) = self.state.borrow().vcs.resolve(vc) else {
            return;
        };
        let now = now.unwrap_or_else(|| self.now());
        let mut guard = self.state.borrow_mut();
        self.sink_actions_locked(&mut guard, h, actions, now);
    }

    /// Process a batch of sink-engine actions and the follow-on credit
    /// refresh against the entry behind `h`, under the caller's state
    /// borrow. Every externally visible effect — tap/user callbacks
    /// (zero-delay engine events), NACK and credit control sends, the
    /// producer park — is issued inline in exactly the order the old
    /// per-action path produced it; none of them touch entity state
    /// synchronously, so issuing them under the borrow is safe and the
    /// event schedule (and with it the telemetry byte stream) is
    /// unchanged.
    fn sink_actions_locked(
        self: &Rc<Self>,
        st: &mut State,
        h: SlabHandle,
        actions: Vec<SinkAction>,
        now: SimTime,
    ) {
        let Some(e) = st.vcs.at_mut(h) else { return };
        let vc = e.vc.id;
        let peer = e.vc.peer_node;
        let tsap = e.vc.local_tsap;
        let tap = e.tap.clone();
        let Some(k) = e.vc.sink.as_mut() else { return };
        let mut park: Option<BufferHandle> = None;
        for action in actions {
            match action {
                SinkAction::Deliver(osdu) => {
                    let opdu = osdu.opdu;
                    // The engine released the OSDU (ending any stash-behind-
                    // a-hole wait): stamp it delivered for attribution.
                    self.obs
                        .sink_delivered(vc.0, osdu.seq(), self.node.0 as u64, now.as_micros());
                    let pushed = if !k.pending_delivery.is_empty() {
                        k.pending_delivery.push_back(osdu);
                        false
                    } else {
                        match k.recv_buf.try_push(now, osdu) {
                            PushOutcome::Pushed { .. } => true,
                            PushOutcome::Full(osdu) => {
                                k.pending_delivery.push_back(osdu);
                                false
                            }
                        }
                    };
                    if pushed {
                        if let Some(tap) = tap.clone() {
                            self.dispatch_tap(tap, move |tap| tap.on_osdu_arrived(vc, opdu));
                        }
                    } else if !k.producer_parked {
                        k.producer_parked = true;
                        park = Some(k.recv_buf.clone());
                    }
                }
                SinkAction::SendNack(seqs) => {
                    self.send_control(peer, ControlMsg::Nack { vc, seqs });
                }
                SinkAction::IndicateLoss(seq) => {
                    if let Some(user) = st.users.get(&tsap).cloned() {
                        self.dispatch_user(user, move |svc, u| u.t_error_indication(svc, vc, seq));
                    }
                    if let Some(tap) = tap.clone() {
                        self.dispatch_tap(tap, move |tap| tap.on_loss_indicated(vc, seq));
                    }
                }
            }
        }
        let freed = k.freed_total();
        if freed > k.last_freed_sent {
            k.last_freed_sent = freed;
            self.send_control(
                peer,
                ControlMsg::Credit {
                    vc,
                    freed_total: freed,
                },
            );
        }
        if let Some(buf) = park {
            self.park_sink_producer_h(h, buf, now);
        }
    }

    /// Park the protocol producer on a full receive buffer; the wake
    /// trampolines through the engine into a pending-delivery drain.
    /// Registration consumes no event sequence, so parking at the end of
    /// a batch instead of mid-loop leaves the schedule untouched.
    fn park_sink_producer_h(self: &Rc<Self>, h: SlabHandle, buf: BufferHandle, now: SimTime) {
        let me = self.clone();
        buf.park_producer(now, move || {
            let me2 = me.clone();
            me.net
                .engine()
                .schedule_in(cm_core::time::SimDuration::ZERO, move |_| {
                    me2.drain_pending_delivery_h(h)
                });
        });
    }

    fn drain_pending_delivery_h(self: &Rc<Self>, h: SlabHandle) {
        let now = self.now();
        let mut guard = self.state.borrow_mut();
        let st = &mut *guard;
        self.drain_pending_locked(st, h, now);
    }

    /// Move stalled pending deliveries into freed receive-buffer slots,
    /// dispatch their taps, and send any credit delta — one borrow for
    /// the whole drain (the loop used to take three per OSDU).
    fn drain_pending_locked(self: &Rc<Self>, st: &mut State, h: SlabHandle, now: SimTime) {
        let Some(e) = st.vcs.at_mut(h) else { return };
        let vc = e.vc.id;
        let peer = e.vc.peer_node;
        let tap = e.tap.clone();
        let Some(k) = e.vc.sink.as_mut() else { return };
        let mut park: Option<BufferHandle> = None;
        k.producer_parked = false;
        while let Some(osdu) = k.pending_delivery.pop_front() {
            let opdu = osdu.opdu;
            match k.recv_buf.try_push(now, osdu) {
                PushOutcome::Pushed { .. } => {
                    if let Some(tap) = tap.clone() {
                        self.dispatch_tap(tap, move |tap| tap.on_osdu_arrived(vc, opdu));
                    }
                }
                PushOutcome::Full(osdu) => {
                    k.pending_delivery.push_front(osdu);
                    k.producer_parked = true;
                    park = Some(k.recv_buf.clone());
                    break;
                }
            }
        }
        let freed = k.freed_total();
        if freed > k.last_freed_sent {
            k.last_freed_sent = freed;
            self.send_control(
                peer,
                ControlMsg::Credit {
                    vc,
                    freed_total: freed,
                },
            );
        }
        if let Some(buf) = park {
            self.park_sink_producer_h(h, buf, now);
        }
    }

    /// Advertise newly freed receive slots to the sender.
    pub(crate) fn maybe_send_credit(self: &Rc<Self>, vc: VcId) {
        let msg = {
            let mut st = self.state.borrow_mut();
            let Some(v) = st.vcs.get_mut(&vc) else { return };
            let peer = v.peer_node;
            let Some(k) = v.sink.as_mut() else { return };
            let freed = k.freed_total();
            if freed > k.last_freed_sent {
                k.last_freed_sent = freed;
                Some((peer, freed))
            } else {
                None
            }
        };
        if let Some((peer, freed)) = msg {
            self.send_control(
                peer,
                ControlMsg::Credit {
                    vc,
                    freed_total: freed,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // QoS monitoring
    // ------------------------------------------------------------------

    fn schedule_monitor_h(self: &Rc<Self>, h: SlabHandle) {
        let st = self.state.borrow();
        let Some(k) = st.vcs.at(h).and_then(|e| e.vc.sink.as_ref()) else {
            return;
        };
        let Some(at) = k.monitor.as_ref().map(|m| m.period_end()) else {
            return;
        };
        if let Some(t) = &k.monitor_timer {
            t.arm_at(at);
        }
    }

    fn monitor_fire_h(self: &Rc<Self>, h: SlabHandle) {
        let now = self.now();
        let report = {
            let mut st = self.state.borrow_mut();
            let Some(e) = st.vcs.at_mut(h) else { return };
            let v = &mut e.vc;
            if v.phase != VcPhase::Open {
                return;
            }
            let vc = v.id;
            let contract = v.contract;
            let peer = v.peer_node;
            let tsap = v.local_tsap;
            let Some(k) = v.sink.as_mut() else { return };
            let Some(m) = &mut k.monitor else { return };
            let period = m.period();
            let measured = m.end_period(now);
            let violations = measured.violations_of(&contract);
            if self.tel.enabled() {
                // Every monitor period leaves one sample event (§4.1.2 QoS
                // maintenance observes continuously, not only on violation).
                self.tel.record("vc.jitter_us", measured.jitter.as_micros());
                self.tel
                    .record("vc.throughput_bps", measured.throughput.as_bps());
                self.tel
                    .instant(now, Layer::Transport, "vc.qos.sample", |e| {
                        e.u64("vc", vc.0)
                            .u64("throughput_bps", measured.throughput.as_bps())
                            .u64("contract_bps", contract.throughput.as_bps())
                            .u64("delay_us", measured.delay.as_micros())
                            .u64("jitter_us", measured.jitter.as_micros())
                            .f64("loss", measured.packet_error_rate.as_prob())
                            .u64("violations", violations.len() as u64);
                    });
                if !violations.is_empty() {
                    self.tel.count("vc.qos.violation", violations.len() as u64);
                }
            }
            if violations.is_empty() {
                None
            } else {
                Some((
                    QosReport {
                        vc,
                        contracted: contract,
                        measured,
                        sample_period: period,
                        violations,
                    },
                    peer,
                    tsap,
                ))
            }
        };
        if let Some((report, peer, tsap)) = report {
            // Indicate locally (sink user)...
            let r2 = report.clone();
            self.to_user(tsap, move |svc, u| u.t_qos_indication(svc, r2));
            // ...and report to the source end (§4.1.2's initiator/source
            // notification).
            self.send_control(peer, ControlMsg::QosReportMsg(report));
        }
        self.schedule_monitor_h(h);
    }

    // ------------------------------------------------------------------
    // Application data interface + orchestration hooks (via service)
    // ------------------------------------------------------------------

    /// Application-side OSDU write: assigns the next sequence number
    /// (OPDU numbering starts at zero from first use of the connection,
    /// §5) and pushes into the send buffer.
    pub(crate) fn write_osdu(
        self: &Rc<Self>,
        vc: VcId,
        payload: Payload,
        event: Option<u64>,
    ) -> Result<bool, ServiceError> {
        let now = self.now();
        let mut st = self.state.borrow_mut();
        let h = st.vcs.resolve(vc).ok_or(ServiceError::UnknownVc)?;
        let e = st.vcs.at_mut(h).ok_or(ServiceError::UnknownVc)?;
        let egress = e.egress.clone();
        let v = &mut e.vc;
        if v.role != VcRole::Source {
            return Err(ServiceError::WrongState("write on sink end"));
        }
        if v.phase != VcPhase::Open {
            return Err(ServiceError::WrongState("write on non-open VC"));
        }
        if payload.len() > v.requirement.max_osdu_size {
            return Err(ServiceError::BadArgument("OSDU exceeds max_osdu_size"));
        }
        let s = v.source.as_mut().expect("source end");
        // Assign the sequence number only if there is room (a refused
        // write must not burn a seq).
        if s.send_buf.is_full() {
            return Ok(false);
        }
        let seq = s.next_write_seq;
        let mut osdu = Osdu::new(seq, payload);
        osdu.opdu.event = event;
        // Clone for the egress tap only when one is registered (payloads
        // are tag+len synthetics or refcounted bytes — cheap either way).
        let echo = egress.is_some().then(|| osdu.clone());
        match s.send_buf.try_push(now, osdu) {
            PushOutcome::Pushed { .. } => {
                s.next_write_seq += 1;
                // Mint the causal span: the budget clock starts when the
                // OSDU enters the send buffer.
                self.obs.mint(vc.0, seq, now.as_micros());
                // Egress tap fires after the state borrow is released so
                // it may call back into the service.
                drop(st);
                if let (Some(tap), Some(osdu)) = (egress, echo) {
                    tap.on_osdu_written(vc, &osdu, now.as_micros());
                }
                Ok(true)
            }
            PushOutcome::Full(_) => Ok(false),
        }
    }

    /// Application-side OSDU read from the receive buffer (respects the
    /// orchestration gate). Sends credit for the freed slot.
    pub(crate) fn read_osdu(self: &Rc<Self>, vc: VcId) -> Result<Option<Osdu>, ServiceError> {
        let Some(h) = self.state.borrow().vcs.resolve(vc) else {
            return Err(ServiceError::UnknownVc);
        };
        let now = self.now();
        let mut guard = self.state.borrow_mut();
        let st = &mut *guard;
        let Some(e) = st.vcs.at_mut(h) else {
            return Err(ServiceError::UnknownVc);
        };
        if e.vc.role != VcRole::Sink {
            return Err(ServiceError::WrongState("read on source end"));
        }
        let peer = e.vc.peer_node;
        let k = e.vc.sink.as_mut().expect("sink end");
        let osdu = match k.recv_buf.try_pop(now) {
            Some(o) => {
                k.app_popped += 1;
                // The span ends where the paper's service does: at the
                // sink application's read.
                self.obs
                    .closed(vc.0, o.seq(), self.node.0 as u64, now.as_micros());
                Some(o)
            }
            None => None,
        };
        if osdu.is_some() {
            // Credit for the freed slot, then resume any stalled pending
            // deliveries — one borrow for the pop + credit + drain batch.
            let freed = k.freed_total();
            if freed > k.last_freed_sent {
                k.last_freed_sent = freed;
                self.send_control(
                    peer,
                    ControlMsg::Credit {
                        vc,
                        freed_total: freed,
                    },
                );
            }
            self.drain_pending_locked(st, h, now);
        }
        Ok(osdu)
    }

    /// Harvest this end's interval statistics (blocking times mapped to
    /// application/protocol according to the end's role, §6.3.1.2).
    pub(crate) fn take_end_stats(self: &Rc<Self>, vc: VcId) -> Result<EndStats, ServiceError> {
        let now = self.now();
        let mut st = self.state.borrow_mut();
        let v = st.vcs.get_mut(&vc).ok_or(ServiceError::UnknownVc)?;
        match v.role {
            VcRole::Source => {
                let s = v.source.as_mut().expect("source end");
                let b = s.send_buf.take_stats(now);
                let dropped = s.dropped - s.dropped_snap;
                s.dropped_snap = s.dropped;
                Ok(EndStats {
                    // At the source the application *produces* (blocked on
                    // full buffer) and the protocol *consumes* (blocked on
                    // empty buffer).
                    app_blocked: b.producer_blocked,
                    proto_blocked: b.consumer_blocked,
                    seq_progress: s.charged,
                    dropped,
                    lost: 0,
                    app_popped: 0,
                })
            }
            VcRole::Sink => {
                let k = v.sink.as_mut().expect("sink end");
                let b = k.recv_buf.take_stats(now);
                let lost = k.engine.lost - k.lost_snap;
                k.lost_snap = k.engine.lost;
                Ok(EndStats {
                    // At the sink the protocol produces, the app consumes.
                    // Flow control stalls the *sender* before the local
                    // producer ever parks, so the honest "protocol blocked"
                    // figure is the time the receive buffer sat full.
                    app_blocked: b.consumer_blocked,
                    proto_blocked: b.full_time.max(b.producer_blocked),
                    // Table 6's OSDU# is what was *delivered to the sink
                    // application thread* — buffered-but-unread units do
                    // not count.
                    seq_progress: k.app_popped + k.engine.internal_freed,
                    dropped: 0,
                    lost,
                    app_popped: k.app_popped,
                })
            }
        }
    }
}

impl TransportEntity {
    // ------------------------------------------------------------------
    // TSAP binding and orchestration hooks
    // ------------------------------------------------------------------

    /// Attach a user to a TSAP.
    pub(crate) fn bind(&self, tsap: Tsap, user: Rc<dyn TransportUser>) -> Result<(), ServiceError> {
        let mut st = self.state.borrow_mut();
        if st.users.contains_key(&tsap) {
            return Err(ServiceError::TsapBusy);
        }
        st.users.insert(tsap, user);
        Ok(())
    }

    /// Detach the user from a TSAP.
    pub(crate) fn unbind(&self, tsap: Tsap) -> Result<(), ServiceError> {
        self.state
            .borrow_mut()
            .users
            .remove(&tsap)
            .map(|_| ())
            .ok_or(ServiceError::TsapUnbound)
    }

    /// Register the orchestration tap for a VC.
    pub(crate) fn register_tap(&self, vc: VcId, tap: Rc<dyn VcTap>) -> Result<(), ServiceError> {
        let mut st = self.state.borrow_mut();
        if !st.vcs.set_tap(vc, tap) {
            return Err(ServiceError::UnknownVc);
        }
        Ok(())
    }

    /// Remove the orchestration tap for a VC.
    pub(crate) fn clear_tap(&self, vc: VcId) {
        self.state.borrow_mut().vcs.clear_tap(&vc);
    }

    /// Register the source-side egress tap for a VC.
    pub(crate) fn set_egress_tap(
        &self,
        vc: VcId,
        tap: Rc<dyn EgressTap>,
    ) -> Result<(), ServiceError> {
        let mut st = self.state.borrow_mut();
        if !st.vcs.set_egress(vc, tap) {
            return Err(ServiceError::UnknownVc);
        }
        Ok(())
    }

    /// Remove the egress tap for a VC.
    pub(crate) fn clear_egress_tap(&self, vc: VcId) {
        self.state.borrow_mut().vcs.clear_egress(&vc);
    }

    /// Send an opaque control payload to the VC's peer LLO (§5's OPDU
    /// channel).
    pub(crate) fn send_vc_control(
        self: &Rc<Self>,
        vc: VcId,
        payload: Rc<dyn Any>,
    ) -> Result<(), ServiceError> {
        {
            let st = self.state.borrow();
            st.vcs
                .get(&vc)
                .filter(|v| v.phase == VcPhase::Open)
                .ok_or(ServiceError::UnknownVc)?;
        }
        // On a group VC this fans the OPDU out to every member over the
        // shared tree — the session layer's room-wide control channel.
        self.send_source_feedback(vc, ControlMsg::UserControl { vc, payload });
        Ok(())
    }

    /// Freeze the source's transmission instantly (Orch.Stop, §6.2.3).
    pub(crate) fn pause_source(self: &Rc<Self>, vc: VcId) -> Result<(), ServiceError> {
        let mut st = self.state.borrow_mut();
        let s = st
            .vcs
            .get_mut(&vc)
            .and_then(|v| v.source.as_mut())
            .ok_or(ServiceError::UnknownVc)?;
        s.clock.pause();
        if let Some(t) = &s.tick_timer {
            t.disarm();
        }
        Ok(())
    }

    /// Resume a paused source (Orch.Start, §6.2.2).
    pub(crate) fn resume_source(self: &Rc<Self>, vc: VcId) -> Result<(), ServiceError> {
        let now = self.local_now();
        {
            let mut st = self.state.borrow_mut();
            let s = st
                .vcs
                .get_mut(&vc)
                .and_then(|v| v.source.as_mut())
                .ok_or(ServiceError::UnknownVc)?;
            s.clock.resume(now);
        }
        self.ensure_tick_now(vc);
        Ok(())
    }

    /// Retune the source's pacing rate to `base × num/den` (the LLO's
    /// fine-grained regulation, §6.3.1).
    pub(crate) fn set_rate_factor(
        self: &Rc<Self>,
        vc: VcId,
        num: u64,
        den: u64,
    ) -> Result<(), ServiceError> {
        if num == 0 || den == 0 {
            return Err(ServiceError::BadArgument("zero rate factor"));
        }
        let now = self.local_now();
        {
            let mut st = self.state.borrow_mut();
            let s = st
                .vcs
                .get_mut(&vc)
                .and_then(|v| v.source.as_mut())
                .ok_or(ServiceError::UnknownVc)?;
            s.clock.set_factor(num, den, now);
        }
        self.ensure_tick_now(vc);
        Ok(())
    }

    /// Discard the oldest unsent OSDU at the source "by incrementing the
    /// source shared buffer pointer" (§6.3.1.1). The receiver is notified
    /// so the gap is not treated as loss. Returns whether anything was
    /// dropped.
    pub(crate) fn source_drop_one(self: &Rc<Self>, vc: VcId) -> Result<bool, ServiceError> {
        let now = self.now();
        let dropped = {
            let mut st = self.state.borrow_mut();
            let v = st.vcs.get_mut(&vc).ok_or(ServiceError::UnknownVc)?;
            let s = v
                .source
                .as_mut()
                .ok_or(ServiceError::WrongState("drop on sink end"))?;
            match s.send_buf.try_pop(now) {
                Some(osdu) => {
                    s.charged += 1;
                    s.dropped += 1;
                    Some(osdu.seq())
                }
                None => None,
            }
        };
        match dropped {
            Some(seq) => {
                self.send_source_feedback(
                    vc,
                    ControlMsg::Dropped {
                        vc,
                        seqs: vec![seq],
                    },
                );
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Open or close the receive-delivery gate (Orch.Prime holds data in
    /// the buffers without releasing it, §6.2.1).
    pub(crate) fn set_recv_gate(
        self: &Rc<Self>,
        vc: VcId,
        gated: bool,
    ) -> Result<(), ServiceError> {
        let now = self.now();
        let st = self.state.borrow();
        let k = st
            .vcs
            .get(&vc)
            .and_then(|v| v.sink.as_ref())
            .ok_or(ServiceError::UnknownVc)?;
        k.recv_buf.set_gated(now, gated);
        Ok(())
    }

    /// Flush this end's buffer (stop + seek, §6.2.1). At the source the
    /// flushed OSDUs are declared dropped so the receiver does not count
    /// them lost; at the sink the freed slots are credited back.
    pub(crate) fn flush_local(self: &Rc<Self>, vc: VcId) -> Result<usize, ServiceError> {
        let now = self.now();
        enum Which {
            Src { first: u64, n: usize },
            Snk { n: usize },
        }
        let which = {
            let mut st = self.state.borrow_mut();
            let v = st.vcs.get_mut(&vc).ok_or(ServiceError::UnknownVc)?;
            match v.role {
                VcRole::Source => {
                    let s = v.source.as_mut().expect("source end");
                    let n = s.send_buf.flush(now);
                    // FIFO + sequential assignment ⇒ the flushed units were
                    // exactly seqs charged..charged+n.
                    let first = s.charged;
                    s.charged += n as u64;
                    s.dropped += n as u64;
                    Which::Src { first, n }
                }
                VcRole::Sink => {
                    let k = v.sink.as_mut().expect("sink end");
                    let n = k.recv_buf.flush(now) + k.pending_delivery.len();
                    k.pending_delivery.clear();
                    // Freed without application delivery.
                    k.app_popped += n as u64;
                    Which::Snk { n }
                }
            }
        };
        match which {
            Which::Src { first, n } => {
                if n > 0 {
                    let seqs: Vec<u64> = (first..first + n as u64).collect();
                    self.send_source_feedback(vc, ControlMsg::Dropped { vc, seqs });
                }
                Ok(n)
            }
            Which::Snk { n } => {
                self.maybe_send_credit(vc);
                Ok(n)
            }
        }
    }
}

impl Vc {
    /// Slot for a tolerance received in a `RenegotiateRequest`, awaiting
    /// the local user's response.
    pub(crate) fn pending_renegotiation(&mut self) -> &mut Option<QosTolerance> {
        &mut self.pending_reneg
    }
}
