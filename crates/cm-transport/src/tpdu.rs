//! Transport PDUs: the data TPDUs carried on media VCs and the control
//! messages carried on the per-connection control channel.
//!
//! OSDUs larger than the network MTU are segmented into fragments; OSDU
//! boundaries are preserved end-to-end (§3.7). All connection-management
//! exchanges (tables 1–3) and per-VC protocol feedback (credits, acks,
//! retransmission requests, QoS reports) travel as [`ControlMsg`]s on the
//! control channel, which links serve with strict priority — the simulated
//! form of the "special internal control VC associated with each transport
//! connection" (§5).

use cm_core::address::{AddressTriple, TransportAddr, VcId};
use cm_core::error::DisconnectReason;
use cm_core::osdu::{Opdu, Payload};
use cm_core::qos::{QosParams, QosRequirement, QosTolerance, QosViolation};
use cm_core::service_class::ServiceClass;
use cm_core::time::{SimDuration, SimTime};
use std::rc::Rc;

/// Default network MTU in bytes (payload + TPDU header must fit).
pub const DEFAULT_MTU: usize = 4096;

/// Bytes of header on every data TPDU.
pub const TPDU_HEADER: usize = 32;

/// Bytes charged for a control message on the wire.
pub const CONTROL_WIRE_SIZE: usize = 64;

/// One fragment of an OSDU travelling on a data VC.
#[derive(Debug, Clone)]
pub struct DataTpdu {
    /// The VC this fragment belongs to.
    pub vc: VcId,
    /// OSDU sequence number (from the OPDU).
    pub osdu_seq: u64,
    /// Fragment index within the OSDU, 0-based.
    pub frag_index: u32,
    /// Total fragments in the OSDU.
    pub frag_count: u32,
    /// Payload bytes carried by this fragment (excludes header).
    pub frag_bytes: usize,
    /// The OPDU, carried on every fragment so the receiver can account for
    /// partially-received OSDUs.
    pub opdu: Opdu,
    /// The complete payload, carried on the final fragment only (typed
    /// simulation stand-in for reassembly).
    pub payload: Option<Payload>,
    /// When the *first* fragment of this OSDU left the source protocol —
    /// the receiver measures end-to-end OSDU delay against this.
    pub osdu_sent_at: SimTime,
}

impl DataTpdu {
    /// Wire size of this fragment.
    pub fn wire_size(&self) -> usize {
        self.frag_bytes + TPDU_HEADER
    }
}

/// Split an OSDU of `wire_bytes` total bytes into fragment payload sizes
/// under `mtu` (each fragment then gains [`TPDU_HEADER`]).
pub fn fragment_sizes(wire_bytes: usize, mtu: usize) -> Vec<usize> {
    let room = mtu
        .checked_sub(TPDU_HEADER)
        .expect("MTU smaller than TPDU header");
    assert!(room > 0, "MTU leaves no payload room");
    if wire_bytes == 0 {
        return vec![0];
    }
    let full = wire_bytes / room;
    let rem = wire_bytes % room;
    let mut v = vec![room; full];
    if rem > 0 {
        v.push(rem);
    }
    v
}

/// A QoS degradation report (table 2) — carried in `T-QoS.indication` and
/// in the control-channel report from sink to source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QosReport {
    /// The VC measured.
    pub vc: VcId,
    /// The contracted settings at the time of measurement.
    pub contracted: QosParams,
    /// What the monitor measured over the sample period.
    pub measured: QosParams,
    /// The sample period the measurement covers.
    pub sample_period: SimDuration,
    /// Which tolerances degraded (the table-2 "error number"s, via
    /// [`QosViolation::error_number`]).
    pub violations: Vec<QosViolation>,
}

/// Control messages exchanged between transport entities.
#[derive(Debug, Clone)]
pub enum ControlMsg {
    /// Leg 1 of a remote connect (§3.5): initiator → source entity, asking
    /// the source to raise `T-Connect.indication` at its local user.
    RemoteConnectRequest {
        /// The VC id allocated by the initiator.
        vc: VcId,
        /// Full address triple.
        triple: AddressTriple,
        /// Selected protocol/class.
        class: ServiceClass,
        /// Proposed QoS.
        qos: QosRequirement,
    },
    /// Leg 2 / conventional connect: source entity → destination entity.
    ConnectRequest {
        /// VC id (carried end-to-end).
        vc: VcId,
        /// Full address triple.
        triple: AddressTriple,
        /// Selected protocol/class.
        class: ServiceClass,
        /// Proposed QoS.
        qos: QosRequirement,
    },
    /// Destination → source: accept (with the fully negotiated QoS and the
    /// receiver's initial buffer credit) or reject.
    ConnectResponse {
        /// VC id.
        vc: VcId,
        /// Agreed QoS and initial credit, or the rejection reason.
        result: Result<(QosParams, u32), DisconnectReason>,
    },
    /// Source entity → initiator entity (remote connect only): final
    /// outcome, relayed so the initiator gets its `T-Connect.confirm`.
    RemoteConnectReply {
        /// VC id.
        vc: VcId,
        /// Agreed QoS or rejection reason.
        result: Result<QosParams, DisconnectReason>,
    },
    /// Group-VC invitation: sender entity → prospective receiver entity.
    /// The per-receiver QoS was already negotiated against the member's
    /// branch of the shared tree and the branch admitted to the
    /// reservation ledger before this is sent.
    GroupConnectRequest {
        /// VC id (shared by the sender end and every receiver end).
        vc: VcId,
        /// The network-layer multicast group backing the VC.
        group: netsim::GroupId,
        /// Address triple: initiator = source = the sending end.
        triple: AddressTriple,
        /// Protocol/error-control class (rate-based only for groups).
        class: ServiceClass,
        /// The sender's original requirement (buffer sizing, monitoring).
        requirement: QosRequirement,
        /// The per-receiver contract negotiated against this member's
        /// branch.
        agreed: QosParams,
        /// First OSDU sequence number this receiver is owed — the group
        /// stream position at invitation time.
        start_seq: u64,
    },
    /// Prospective receiver → sender: accept (echoing the contract plus
    /// the receiver's initial buffer credit) or reject.
    GroupConnectResponse {
        /// VC id.
        vc: VcId,
        /// The answering member.
        member: TransportAddr,
        /// Contract and initial credit, or the rejection reason.
        result: Result<(QosParams, u32), DisconnectReason>,
    },
    /// Release request travelling to a VC endpoint (§4.1.1): on arrival the
    /// entity raises `T-Disconnect.indication` and tears down.
    Disconnect {
        /// VC id.
        vc: VcId,
        /// Why.
        reason: DisconnectReason,
        /// Initiator to notify of completion (remote release, §3.5).
        notify: Option<TransportAddr>,
    },
    /// QoS renegotiation request (table 3), initiator side → peer.
    RenegotiateRequest {
        /// VC id.
        vc: VcId,
        /// The new tolerance levels sought.
        new_tolerance: QosTolerance,
    },
    /// Peer's answer: the new agreed QoS, or refusal (the VC stays up).
    RenegotiateResponse {
        /// VC id.
        vc: VcId,
        /// New agreed QoS or the refusal reason.
        result: Result<QosParams, DisconnectReason>,
    },
    /// Receiver → sender: cumulative count of receive-buffer slots freed
    /// since the connection opened (application pops + unrepairable holes +
    /// declared drops). Credit-based backpressure gives the rate-based flow
    /// control the "rapid adaptation" that Orch.Stop and Orch.Prime rely on
    /// (§6.2.3/§6.3.1); carrying the *cumulative* total makes the scheme
    /// robust to lost credit messages.
    Credit {
        /// VC id.
        vc: VcId,
        /// Total slots freed since the connection opened.
        freed_total: u64,
    },
    /// Sender → receiver: the source intentionally discarded these OSDUs
    /// (orchestration catch-up, §6.3.1.1). The receiver skips them without
    /// counting loss or requesting retransmission, and frees their credit.
    Dropped {
        /// VC id.
        vc: VcId,
        /// The discarded sequence numbers.
        seqs: Vec<u64>,
    },
    /// Sender → receiver: re-advertise your cumulative freed total
    /// unconditionally. Sent only by the self-healing path after a
    /// suspected outage — if the last `Credit` message died on a downed
    /// element, the sender's credit view is stale and the ordinary
    /// delta-gated advertisement would never repeat it (DESIGN.md §9).
    CreditProbe {
        /// VC id.
        vc: VcId,
    },
    /// Receiver → sender: selective retransmission request for the listed
    /// OSDU sequence numbers (error-control classes with correction).
    Nack {
        /// VC id.
        vc: VcId,
        /// Damaged or missing OSDUs to resend.
        seqs: Vec<u64>,
    },
    /// Window protocol only — cumulative acknowledgement: all TPDU
    /// sequence numbers `< upto` received.
    Ack {
        /// VC id.
        vc: VcId,
        /// One past the highest in-order TPDU received.
        upto: u64,
    },
    /// Sink monitor → source: periodic QoS measurement (degradations raise
    /// `T-QoS.indication` at both ends, §4.1.2).
    QosReportMsg(QosReport),
    /// Opaque user control payload — the orchestration service's OPDUs ride
    /// the control channel through this (§5).
    UserControl {
        /// VC the control data is associated with.
        vc: VcId,
        /// Typed payload for the peer's control-channel tap.
        payload: Rc<dyn std::any::Any>,
    },
    /// Connectionless datagram to a TSAP (the "datagram services" of the
    /// standard protocol matrix, §4) — used by the platform's RPC and by
    /// orchestration sessions without a per-VC channel.
    Datagram {
        /// Destination TSAP on the receiving node.
        to_tsap: cm_core::address::Tsap,
        /// Reply address of the sender.
        from: TransportAddr,
        /// Typed payload.
        payload: Rc<dyn std::any::Any>,
        /// Wire size charged for the payload.
        wire_size: usize,
    },
}

impl ControlMsg {
    /// The VC a message belongs to, if any.
    pub fn vc(&self) -> Option<VcId> {
        match self {
            ControlMsg::RemoteConnectRequest { vc, .. }
            | ControlMsg::ConnectRequest { vc, .. }
            | ControlMsg::ConnectResponse { vc, .. }
            | ControlMsg::GroupConnectRequest { vc, .. }
            | ControlMsg::GroupConnectResponse { vc, .. }
            | ControlMsg::RemoteConnectReply { vc, .. }
            | ControlMsg::Disconnect { vc, .. }
            | ControlMsg::RenegotiateRequest { vc, .. }
            | ControlMsg::RenegotiateResponse { vc, .. }
            | ControlMsg::Credit { vc, .. }
            | ControlMsg::CreditProbe { vc }
            | ControlMsg::Dropped { vc, .. }
            | ControlMsg::Nack { vc, .. }
            | ControlMsg::Ack { vc, .. }
            | ControlMsg::UserControl { vc, .. } => Some(*vc),
            ControlMsg::QosReportMsg(r) => Some(r.vc),
            ControlMsg::Datagram { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_sizes_cover_exactly() {
        let room = DEFAULT_MTU - TPDU_HEADER;
        assert_eq!(fragment_sizes(0, DEFAULT_MTU), vec![0]);
        assert_eq!(fragment_sizes(1, DEFAULT_MTU), vec![1]);
        assert_eq!(fragment_sizes(room, DEFAULT_MTU), vec![room]);
        assert_eq!(fragment_sizes(room + 1, DEFAULT_MTU), vec![room, 1]);
        let sizes = fragment_sizes(100_000, DEFAULT_MTU);
        assert_eq!(sizes.iter().sum::<usize>(), 100_000);
        assert!(sizes.iter().all(|&s| s <= room));
        // Only the last fragment may be short.
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == room));
    }

    #[test]
    #[should_panic(expected = "MTU")]
    fn mtu_must_exceed_header() {
        fragment_sizes(10, TPDU_HEADER);
    }

    #[test]
    fn control_msg_vc_extraction() {
        let m = ControlMsg::Credit {
            vc: VcId(7),
            freed_total: 3,
        };
        assert_eq!(m.vc(), Some(VcId(7)));
        let m = ControlMsg::QosReportMsg(QosReport {
            vc: VcId(9),
            contracted: QosParams::weakest(),
            measured: QosParams::weakest(),
            sample_period: SimDuration::from_secs(1),
            violations: vec![],
        });
        assert_eq!(m.vc(), Some(VcId(9)));
    }

    #[test]
    fn tpdu_wire_size_includes_header() {
        let t = DataTpdu {
            vc: VcId(1),
            osdu_seq: 0,
            frag_index: 0,
            frag_count: 1,
            frag_bytes: 100,
            opdu: Opdu::default(),
            payload: None,
            osdu_sent_at: SimTime::ZERO,
        };
        assert_eq!(t.wire_size(), 132);
    }
}
