//! Window-based flow control — the baseline the paper argues against for
//! continuous media (§7: rate-based flow control was chosen over "a
//! traditional window based technique \[Postel,81\], \[Stallings,87\]").
//!
//! A classic go-back-N sender over TPDU sequence numbers: transmit as fast
//! as the window allows (no pacing — hence bursts), cumulative ACKs,
//! timeout-driven retransmission of everything unacknowledged. The E3
//! experiment runs the same media workload over this engine and the
//! rate-based engine and compares delay/jitter/loss.

use crate::tpdu::DataTpdu;
use cm_core::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Go-back-N sender state for one VC.
#[derive(Debug)]
pub struct GoBackNSender {
    window: usize,
    next_seq: u64,
    base: u64,
    /// Unacknowledged TPDUs, `base..next_seq` in order.
    cache: VecDeque<DataTpdu>,
    rto: SimDuration,
    /// When the oldest unacked TPDU was (re)sent.
    oldest_sent_at: Option<SimTime>,
    /// TPDUs retransmitted over the connection's lifetime.
    pub retransmissions: u64,
    /// Retransmission-timer expiries over the connection's lifetime.
    pub timeouts: u64,
}

impl GoBackNSender {
    /// A sender with the given window (in TPDUs) and retransmission
    /// timeout.
    pub fn new(window: usize, rto: SimDuration) -> GoBackNSender {
        assert!(window > 0, "window must be positive");
        GoBackNSender {
            window,
            next_seq: 0,
            base: 0,
            cache: VecDeque::new(),
            rto,
            oldest_sent_at: None,
            retransmissions: 0,
            timeouts: 0,
        }
    }

    /// TPDUs in flight.
    pub fn in_flight(&self) -> usize {
        (self.next_seq - self.base) as usize
    }

    /// Whether a new TPDU may be transmitted now.
    pub fn can_send(&self) -> bool {
        self.in_flight() < self.window
    }

    /// Register a fresh TPDU as transmitted; returns the window (TPDU)
    /// sequence number it was assigned.
    pub fn on_send(&mut self, tpdu: DataTpdu, now: SimTime) -> u64 {
        debug_assert!(self.can_send());
        let seq = self.next_seq;
        self.next_seq += 1;
        self.cache.push_back(tpdu);
        if self.oldest_sent_at.is_none() {
            self.oldest_sent_at = Some(now);
        }
        seq
    }

    /// Process a cumulative ACK (`upto` = one past highest in-order
    /// received). Returns true if the window slid (new sends possible).
    pub fn on_ack(&mut self, upto: u64, now: SimTime) -> bool {
        if upto <= self.base {
            return false;
        }
        let advance = (upto - self.base) as usize;
        for _ in 0..advance.min(self.cache.len()) {
            self.cache.pop_front();
        }
        self.base = upto;
        self.oldest_sent_at = if self.cache.is_empty() {
            None
        } else {
            Some(now)
        };
        true
    }

    /// If the retransmission timer has expired, return the TPDUs to resend
    /// (the whole unacked window, go-back-N) and restart the timer.
    pub fn check_timeout(&mut self, now: SimTime) -> Option<Vec<DataTpdu>> {
        let sent_at = self.oldest_sent_at?;
        if now.saturating_since(sent_at) < self.rto {
            return None;
        }
        self.timeouts += 1;
        self.retransmissions += self.cache.len() as u64;
        self.oldest_sent_at = Some(now);
        Some(self.cache.iter().cloned().collect())
    }

    /// When the retransmission timer will next expire (for scheduling).
    pub fn timeout_at(&self) -> Option<SimTime> {
        self.oldest_sent_at.map(|t| t + self.rto)
    }

    /// The configured RTO.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// The lowest unacknowledged window sequence number.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The next window sequence number to assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// Go-back-N receiver state: accepts only the exactly-next TPDU sequence
/// number; everything else is discarded and re-ACKed.
#[derive(Debug, Default)]
pub struct GoBackNReceiver {
    expected: u64,
    /// TPDUs discarded as out-of-order.
    pub discarded: u64,
}

impl GoBackNReceiver {
    /// A fresh receiver expecting TPDU 0.
    pub fn new() -> GoBackNReceiver {
        GoBackNReceiver::default()
    }

    /// Feed a TPDU-level sequence number; returns `(accept, ack_upto)`:
    /// whether the TPDU should be processed, and the cumulative ACK to
    /// send back.
    pub fn on_tpdu_seq(&mut self, seq: u64) -> (bool, u64) {
        if seq == self.expected {
            self.expected += 1;
            (true, self.expected)
        } else {
            self.discarded += 1;
            (false, self.expected)
        }
    }

    /// The next TPDU sequence number expected.
    pub fn expected(&self) -> u64 {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::address::VcId;
    use cm_core::osdu::Opdu;

    fn tpdu(osdu_seq: u64) -> DataTpdu {
        DataTpdu {
            vc: VcId(1),
            osdu_seq,
            frag_index: 0,
            frag_count: 1,
            frag_bytes: 10,
            opdu: Opdu {
                seq: osdu_seq,
                event: None,
            },
            payload: None,
            osdu_sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn window_limits_in_flight() {
        let mut s = GoBackNSender::new(3, SimDuration::from_millis(100));
        for i in 0..3 {
            assert!(s.can_send());
            assert_eq!(s.on_send(tpdu(i), SimTime::ZERO), i);
        }
        assert!(!s.can_send());
        assert_eq!(s.in_flight(), 3);
    }

    #[test]
    fn ack_slides_window() {
        let mut s = GoBackNSender::new(2, SimDuration::from_millis(100));
        s.on_send(tpdu(0), SimTime::ZERO);
        s.on_send(tpdu(1), SimTime::ZERO);
        assert!(s.on_ack(1, SimTime::from_millis(10)));
        assert!(s.can_send());
        assert_eq!(s.in_flight(), 1);
        // Duplicate/old ACK is a no-op.
        assert!(!s.on_ack(1, SimTime::from_millis(11)));
    }

    #[test]
    fn timeout_resends_whole_window() {
        let mut s = GoBackNSender::new(4, SimDuration::from_millis(100));
        for i in 0..3 {
            s.on_send(tpdu(i), SimTime::ZERO);
        }
        assert!(s.check_timeout(SimTime::from_millis(50)).is_none());
        let resend = s.check_timeout(SimTime::from_millis(100)).unwrap();
        assert_eq!(resend.len(), 3);
        assert_eq!(s.retransmissions, 3);
        assert_eq!(s.timeouts, 1);
        // Timer restarted.
        assert_eq!(s.timeout_at(), Some(SimTime::from_millis(200)));
    }

    #[test]
    fn ack_clears_timer_when_all_acked() {
        let mut s = GoBackNSender::new(4, SimDuration::from_millis(100));
        s.on_send(tpdu(0), SimTime::ZERO);
        s.on_ack(1, SimTime::from_millis(5));
        assert_eq!(s.timeout_at(), None);
    }

    #[test]
    fn receiver_accepts_in_order_only() {
        let mut r = GoBackNReceiver::new();
        assert_eq!(r.on_tpdu_seq(0), (true, 1));
        // A gap: 2 arrives while 1 expected → discard, dup-ack 1.
        assert_eq!(r.on_tpdu_seq(2), (false, 1));
        assert_eq!(r.discarded, 1);
        assert_eq!(r.on_tpdu_seq(1), (true, 2));
        assert_eq!(r.on_tpdu_seq(2), (true, 3));
    }
}
