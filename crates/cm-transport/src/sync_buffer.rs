//! Threaded shared circular buffer — the real-time twin of
//! [`crate::buffer`] (§3.7).
//!
//! Where [`crate::buffer::BufferHandle`] runs under virtual time inside the
//! simulation, this implementation runs under real threads and backs the E8
//! benchmark (shared-buffer vs copy-based interface). It keeps the paper's
//! key properties: a ring of *preallocated* slots sized to
//! `max_osdu_size + OPDU` so producers and consumers work **in place** (data
//! location is implicit in the ring pointers, "no data copying is
//! involved"), semaphore-style blocking, and blocking-time accounting on
//! both sides.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Ring {
    /// Preallocated slot storage.
    slots: Vec<Box<[u8]>>,
    /// Valid byte length of each occupied slot.
    lens: Vec<usize>,
    head: usize,
    count: usize,
    closed: bool,
    producer_blocked: Duration,
    consumer_blocked: Duration,
}

struct Shared {
    ring: Mutex<Ring>,
    not_full: Condvar,
    not_empty: Condvar,
}

/// A fixed-capacity, fixed-slot-size shared circular buffer usable from two
/// threads (one producer, one consumer).
#[derive(Clone)]
pub struct SyncCircularBuffer {
    shared: Arc<Shared>,
    slot_size: usize,
    capacity: usize,
}

impl SyncCircularBuffer {
    /// A ring of `capacity` slots, each of `slot_size` bytes.
    pub fn new(capacity: usize, slot_size: usize) -> SyncCircularBuffer {
        assert!(capacity > 0 && slot_size > 0);
        SyncCircularBuffer {
            shared: Arc::new(Shared {
                ring: Mutex::new(Ring {
                    slots: (0..capacity)
                        .map(|_| vec![0u8; slot_size].into_boxed_slice())
                        .collect(),
                    lens: vec![0; capacity],
                    head: 0,
                    count: 0,
                    closed: false,
                    producer_blocked: Duration::ZERO,
                    consumer_blocked: Duration::ZERO,
                }),
                not_full: Condvar::new(),
                not_empty: Condvar::new(),
            }),
            slot_size,
            capacity,
        }
    }

    /// Slot byte size.
    pub fn slot_size(&self) -> usize {
        self.slot_size
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Produce one logical unit *in place*: `fill` writes into the slot and
    /// returns the number of valid bytes (≤ slot size — boundaries are
    /// preserved whatever the byte count, §3.7). Blocks while the ring is
    /// full. Returns `false` if the buffer was closed.
    pub fn produce_with(&self, fill: impl FnOnce(&mut [u8]) -> usize) -> bool {
        let mut ring = self.shared.ring.lock();
        while ring.count == self.capacity && !ring.closed {
            let t0 = Instant::now();
            self.shared.not_full.wait(&mut ring);
            ring.producer_blocked += t0.elapsed();
        }
        if ring.closed {
            return false;
        }
        let idx = (ring.head + ring.count) % self.capacity;
        // Split borrows: take the slot out momentarily to satisfy the
        // borrow checker without copying.
        let mut slot = std::mem::replace(&mut ring.slots[idx], Box::new([]));
        let len = fill(&mut slot);
        assert!(len <= self.slot_size, "unit exceeds slot size");
        ring.slots[idx] = slot;
        ring.lens[idx] = len;
        ring.count += 1;
        drop(ring);
        self.shared.not_empty.notify_one();
        true
    }

    /// Consume one logical unit *in place*: `read` sees the valid bytes of
    /// the oldest slot. Blocks while the ring is empty. Returns `false` if
    /// the buffer was closed and drained.
    pub fn consume_with(&self, read: impl FnOnce(&[u8])) -> bool {
        let mut ring = self.shared.ring.lock();
        while ring.count == 0 && !ring.closed {
            let t0 = Instant::now();
            self.shared.not_empty.wait(&mut ring);
            ring.consumer_blocked += t0.elapsed();
        }
        if ring.count == 0 {
            return false; // closed and drained
        }
        let idx = ring.head;
        let len = ring.lens[idx];
        let slot = std::mem::replace(&mut ring.slots[idx], Box::new([]));
        read(&slot[..len]);
        ring.slots[idx] = slot;
        ring.head = (ring.head + 1) % self.capacity;
        ring.count -= 1;
        drop(ring);
        self.shared.not_full.notify_one();
        true
    }

    /// Close the buffer: producers return `false`, consumers drain then
    /// return `false`.
    pub fn close(&self) {
        let mut ring = self.shared.ring.lock();
        ring.closed = true;
        drop(ring);
        self.shared.not_full.notify_one();
        self.shared.not_empty.notify_one();
    }

    /// Blocking time spent so far by `(producer, consumer)`.
    pub fn blocking_times(&self) -> (Duration, Duration) {
        let ring = self.shared.ring.lock();
        (ring.producer_blocked, ring.consumer_blocked)
    }

    /// Units currently stored.
    pub fn len(&self) -> usize {
        self.shared.ring.lock().count
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn single_thread_roundtrip() {
        let b = SyncCircularBuffer::new(4, 64);
        assert!(b.produce_with(|slot| {
            slot[..5].copy_from_slice(b"hello");
            5
        }));
        let mut got = Vec::new();
        assert!(b.consume_with(|bytes| got.extend_from_slice(bytes)));
        assert_eq!(got, b"hello");
        assert!(b.is_empty());
    }

    #[test]
    fn boundaries_preserved_across_sizes() {
        let b = SyncCircularBuffer::new(3, 128);
        for len in [0usize, 1, 128] {
            assert!(b.produce_with(|_| len));
        }
        for want in [0usize, 1, 128] {
            assert!(b.consume_with(|bytes| assert_eq!(bytes.len(), want)));
        }
    }

    #[test]
    fn cross_thread_transfer_in_order() {
        let b = SyncCircularBuffer::new(8, 16);
        let tx = b.clone();
        let producer = thread::spawn(move || {
            for i in 0..1000u32 {
                tx.produce_with(|slot| {
                    slot[..4].copy_from_slice(&i.to_le_bytes());
                    4
                });
            }
            tx.close();
        });
        let mut seen = Vec::new();
        while b.consume_with(|bytes| {
            let mut a = [0u8; 4];
            a.copy_from_slice(bytes);
            seen.push(u32::from_le_bytes(a));
        }) {}
        producer.join().unwrap();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn close_unblocks_consumer() {
        let b = SyncCircularBuffer::new(2, 8);
        let c = b.clone();
        let consumer = thread::spawn(move || c.consume_with(|_| {}));
        thread::sleep(Duration::from_millis(20));
        b.close();
        assert!(!consumer.join().unwrap());
        // The consumer accrued measurable blocking time (§3.7's semaphore
        // statistics).
        assert!(b.blocking_times().1 > Duration::ZERO);
    }

    #[test]
    fn producer_blocks_when_full_until_consume() {
        let b = SyncCircularBuffer::new(1, 8);
        assert!(b.produce_with(|_| 1));
        let p = b.clone();
        let producer = thread::spawn(move || p.produce_with(|_| 2));
        thread::sleep(Duration::from_millis(20));
        assert!(b.consume_with(|_| {}));
        assert!(producer.join().unwrap());
        assert!(b.blocking_times().0 > Duration::ZERO);
        assert_eq!(b.len(), 1);
    }

    #[test]
    #[should_panic(expected = "slot size")]
    fn oversized_unit_panics() {
        let b = SyncCircularBuffer::new(1, 8);
        b.produce_with(|_| 9);
    }
}
