//! Byte-level wire format of the data-TPDU header.
//!
//! The simulator moves [`DataTpdu`]s as typed objects, but the header
//! they are charged for ([`TPDU_HEADER`] bytes on every fragment) has a
//! concrete layout, and this module is its codec. [`TpduHeader::decode`]
//! is total over arbitrary byte strings: every malformed input maps to a
//! typed [`TpduParseError`] — it never panics — so a receiving entity
//! can drop garbage with a reason instead of dying on it (the property
//! the `wire_proptest` suite drives with random, truncated and corrupted
//! inputs).
//!
//! Layout, little-endian, 32 bytes:
//!
//! | offset | size | field                                        |
//! |-------:|-----:|----------------------------------------------|
//! |      0 |    2 | magic `0x434D` (`"CM"`)                      |
//! |      2 |    1 | version (currently [`WIRE_VERSION`])         |
//! |      3 |    1 | flags (bit 0: final fragment of its OSDU)    |
//! |      4 |    8 | VC id                                        |
//! |     12 |    8 | OSDU sequence number                         |
//! |     20 |    4 | fragment index (0-based)                     |
//! |     24 |    4 | fragment count                               |
//! |     28 |    2 | fragment payload bytes                       |
//! |     30 |    2 | FNV-1a checksum of bytes 0..30, XOR-folded   |

use crate::tpdu::{DataTpdu, DEFAULT_MTU, TPDU_HEADER};
use cm_core::address::VcId;
use std::fmt;

/// Wire-format version emitted by [`TpduHeader::encode`].
pub const WIRE_VERSION: u8 = 1;

/// Header magic: `"CM"` in ASCII, little-endian `0x4D43`.
pub const WIRE_MAGIC: u16 = u16::from_le_bytes(*b"CM");

/// Largest fragment payload a header may declare — a fragment plus its
/// header must fit the default MTU.
pub const MAX_FRAG_PAYLOAD: usize = DEFAULT_MTU - TPDU_HEADER;

const FLAG_FINAL: u8 = 0b0000_0001;

/// Why a byte string is not a valid data-TPDU header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpduParseError {
    /// Fewer bytes than a header needs.
    Truncated {
        /// Bytes available.
        got: usize,
        /// Bytes a header occupies.
        needed: usize,
    },
    /// The leading magic is not [`WIRE_MAGIC`].
    BadMagic(u16),
    /// A version this implementation does not speak.
    UnsupportedVersion(u8),
    /// Flag bits outside the defined set.
    UnknownFlags(u8),
    /// The checksum does not cover the bytes presented.
    BadChecksum {
        /// Checksum the bytes actually hash to.
        expected: u16,
        /// Checksum carried in the header.
        found: u16,
    },
    /// A fragment count of zero (every OSDU has at least one fragment).
    ZeroFragCount,
    /// Fragment index at or past the fragment count.
    FragIndexOutOfRange {
        /// The 0-based index carried.
        index: u32,
        /// The count carried.
        count: u32,
    },
    /// The final-fragment flag disagrees with index/count.
    InconsistentFinalFlag,
    /// Declared payload larger than any MTU-sized fragment can carry.
    Oversize {
        /// Declared fragment payload bytes.
        frag_bytes: usize,
        /// The largest legal value, [`MAX_FRAG_PAYLOAD`].
        max: usize,
    },
    /// Datagram body length disagrees with the declared payload size.
    LengthMismatch {
        /// Payload bytes the header declares.
        declared: usize,
        /// Payload bytes actually present after the header.
        actual: usize,
    },
}

impl fmt::Display for TpduParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TpduParseError::Truncated { got, needed } => {
                write!(f, "truncated header: {got} of {needed} bytes")
            }
            TpduParseError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            TpduParseError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            TpduParseError::UnknownFlags(b) => write!(f, "unknown flag bits {b:#010b}"),
            TpduParseError::BadChecksum { expected, found } => {
                write!(f, "checksum {found:#06x}, bytes hash to {expected:#06x}")
            }
            TpduParseError::ZeroFragCount => write!(f, "zero fragment count"),
            TpduParseError::FragIndexOutOfRange { index, count } => {
                write!(f, "fragment index {index} out of range for count {count}")
            }
            TpduParseError::InconsistentFinalFlag => {
                write!(f, "final-fragment flag disagrees with index/count")
            }
            TpduParseError::Oversize { frag_bytes, max } => {
                write!(f, "fragment payload {frag_bytes} exceeds maximum {max}")
            }
            TpduParseError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "header declares {declared} payload bytes, {actual} present"
                )
            }
        }
    }
}

impl std::error::Error for TpduParseError {}

/// The decoded fields of a data-TPDU header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpduHeader {
    /// The VC the fragment belongs to.
    pub vc: VcId,
    /// OSDU sequence number.
    pub osdu_seq: u64,
    /// Fragment index within the OSDU, 0-based.
    pub frag_index: u32,
    /// Total fragments in the OSDU.
    pub frag_count: u32,
    /// Payload bytes this fragment carries.
    pub frag_bytes: u16,
    /// Whether this is the OSDU's final fragment.
    pub last: bool,
}

fn fold_checksum(bytes: &[u8]) -> u16 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) as u16
}

impl TpduHeader {
    /// The header of an in-simulation fragment.
    pub fn of(t: &DataTpdu) -> TpduHeader {
        TpduHeader {
            vc: t.vc,
            osdu_seq: t.osdu_seq,
            frag_index: t.frag_index,
            frag_count: t.frag_count,
            frag_bytes: t.frag_bytes as u16,
            last: t.frag_index + 1 == t.frag_count,
        }
    }

    /// Serialise to the 32-byte wire layout.
    pub fn encode(&self) -> [u8; TPDU_HEADER] {
        let mut b = [0u8; TPDU_HEADER];
        b[0..2].copy_from_slice(&WIRE_MAGIC.to_le_bytes());
        b[2] = WIRE_VERSION;
        b[3] = if self.last { FLAG_FINAL } else { 0 };
        b[4..12].copy_from_slice(&self.vc.0.to_le_bytes());
        b[12..20].copy_from_slice(&self.osdu_seq.to_le_bytes());
        b[20..24].copy_from_slice(&self.frag_index.to_le_bytes());
        b[24..28].copy_from_slice(&self.frag_count.to_le_bytes());
        b[28..30].copy_from_slice(&self.frag_bytes.to_le_bytes());
        let sum = fold_checksum(&b[..30]);
        b[30..32].copy_from_slice(&sum.to_le_bytes());
        b
    }

    /// Parse a header from the front of `buf`. Total over arbitrary
    /// input: any malformed prefix yields a typed error, never a panic.
    pub fn decode(buf: &[u8]) -> Result<TpduHeader, TpduParseError> {
        if buf.len() < TPDU_HEADER {
            return Err(TpduParseError::Truncated {
                got: buf.len(),
                needed: TPDU_HEADER,
            });
        }
        let b = &buf[..TPDU_HEADER];
        let le16 = |at: usize| u16::from_le_bytes([b[at], b[at + 1]]);
        let le32 = |at: usize| u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]]);
        let le64 = |at: usize| {
            u64::from_le_bytes([
                b[at],
                b[at + 1],
                b[at + 2],
                b[at + 3],
                b[at + 4],
                b[at + 5],
                b[at + 6],
                b[at + 7],
            ])
        };
        let magic = le16(0);
        if magic != WIRE_MAGIC {
            return Err(TpduParseError::BadMagic(magic));
        }
        if b[2] != WIRE_VERSION {
            return Err(TpduParseError::UnsupportedVersion(b[2]));
        }
        if b[3] & !FLAG_FINAL != 0 {
            return Err(TpduParseError::UnknownFlags(b[3]));
        }
        let expected = fold_checksum(&b[..30]);
        let found = le16(30);
        if expected != found {
            return Err(TpduParseError::BadChecksum { expected, found });
        }
        let frag_index = le32(20);
        let frag_count = le32(24);
        if frag_count == 0 {
            return Err(TpduParseError::ZeroFragCount);
        }
        if frag_index >= frag_count {
            return Err(TpduParseError::FragIndexOutOfRange {
                index: frag_index,
                count: frag_count,
            });
        }
        let last = b[3] & FLAG_FINAL != 0;
        if last != (frag_index + 1 == frag_count) {
            return Err(TpduParseError::InconsistentFinalFlag);
        }
        let frag_bytes = le16(28);
        if frag_bytes as usize > MAX_FRAG_PAYLOAD {
            return Err(TpduParseError::Oversize {
                frag_bytes: frag_bytes as usize,
                max: MAX_FRAG_PAYLOAD,
            });
        }
        Ok(TpduHeader {
            vc: VcId(le64(4)),
            osdu_seq: le64(12),
            frag_index,
            frag_count,
            frag_bytes,
            last,
        })
    }

    /// Parse a complete wire datagram: a header followed by exactly the
    /// payload bytes it declares.
    pub fn decode_datagram(buf: &[u8]) -> Result<TpduHeader, TpduParseError> {
        let h = TpduHeader::decode(buf)?;
        let actual = buf.len() - TPDU_HEADER;
        if actual != h.frag_bytes as usize {
            return Err(TpduParseError::LengthMismatch {
                declared: h.frag_bytes as usize,
                actual,
            });
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TpduHeader {
        TpduHeader {
            vc: VcId(0xdead_beef_cafe),
            osdu_seq: 42,
            frag_index: 2,
            frag_count: 4,
            frag_bytes: 1500,
            last: false,
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        assert_eq!(TpduHeader::decode(&h.encode()), Ok(h));
    }

    #[test]
    fn truncation_is_typed() {
        let b = sample().encode();
        assert_eq!(
            TpduHeader::decode(&b[..31]),
            Err(TpduParseError::Truncated {
                got: 31,
                needed: 32
            })
        );
        assert_eq!(
            TpduHeader::decode(&[]),
            Err(TpduParseError::Truncated { got: 0, needed: 32 })
        );
    }

    #[test]
    fn corruption_is_typed() {
        let mut b = sample().encode();
        b[13] ^= 0x40; // osdu_seq byte
        assert!(matches!(
            TpduHeader::decode(&b),
            Err(TpduParseError::BadChecksum { .. })
        ));
        let mut b = sample().encode();
        b[0] = 0x00;
        assert!(matches!(
            TpduHeader::decode(&b),
            Err(TpduParseError::BadMagic(_))
        ));
    }

    #[test]
    fn datagram_length_must_match() {
        let mut h = sample();
        h.frag_bytes = 3;
        h.frag_index = 3;
        h.last = true;
        let mut buf = h.encode().to_vec();
        buf.extend_from_slice(&[1, 2, 3]);
        assert_eq!(TpduHeader::decode_datagram(&buf), Ok(h));
        buf.push(4);
        assert_eq!(
            TpduHeader::decode_datagram(&buf),
            Err(TpduParseError::LengthMismatch {
                declared: 3,
                actual: 4
            })
        );
    }
}
