//! Sender-side state and operations for 1:N group VCs.
//!
//! The paper's CM multicast "is a simple 1:N topology" (§3.1): one source
//! end drives a set of receivers over a network-layer multicast group. The
//! sending entity holds a single [`crate::vc::Vc`] in the `Source` role
//! whose [`GroupEnd`] carries the per-receiver book-keeping; each receiver
//! holds an ordinary sink end under the *same* `VcId`, so the whole data
//! path, buffering, monitoring and orchestration machinery is reused
//! unchanged.
//!
//! Heterogeneous receivers (§3.2): each joining member negotiates the
//! sender's tolerance against *its own branch* of the shared tree. A member
//! whose branch cannot meet the worst-acceptable level is denied with a
//! typed reason — without disturbing admitted receivers. Admitted members
//! may hold weaker contracts than the preferred level; the sender degrades
//! its pacing to the slowest acceptable contract in force and restores it
//! when the constraining member leaves.
//!
//! Per-receiver error control (§3.4): retransmission requests are answered
//! with a *unicast* resend to the requesting member only, so one lossy
//! branch never re-multicasts to the whole group. Credit is likewise
//! tracked per receiver; the sender paces against the slowest member.

use crate::entity::TransportEntity;
use crate::tpdu::ControlMsg;
use crate::vc::{SourceEnd, Vc, VcPhase, VcRole};
use cm_core::address::{AddressTriple, NetAddr, TransportAddr, Tsap, VcId};
use cm_core::error::{DisconnectReason, ServiceError};
use cm_core::qos::{GuaranteeMode, QosParams, QosRequirement};
use cm_core::service_class::{ProtocolProfile, ServiceClass};
use cm_core::time::Bandwidth;
use netsim::GroupId;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One admitted receiver of a group VC, as seen by the sender.
pub struct GroupReceiver {
    /// The member's transport address.
    pub addr: TransportAddr,
    /// The per-receiver contract negotiated against this member's branch.
    pub contract: QosParams,
    /// The member's receive-buffer capacity (its initial credit).
    pub capacity: u64,
    /// Cumulative freed count last reported by this member.
    pub freed: u64,
    /// The sender's charged count when this member joined — its stream
    /// origin; credit is measured relative to it.
    pub base_charged: u64,
}

impl GroupReceiver {
    /// OSDUs charged against this member's buffer and not yet freed.
    pub fn in_flight(&self, charged: u64) -> u64 {
        charged.saturating_sub(self.base_charged + self.freed)
    }
}

/// A member invited but not yet confirmed.
pub(crate) struct PendingReceiver {
    pub(crate) addr: TransportAddr,
    pub(crate) base_charged: u64,
}

/// Sender-side group state attached to the source [`Vc`].
pub struct GroupEnd {
    /// The network-layer multicast group carrying the data path.
    pub group: GroupId,
    /// Admitted receivers, in deterministic (node) order.
    pub receivers: BTreeMap<NetAddr, GroupReceiver>,
    /// Invited members awaiting their `GroupConnectResponse`.
    pub(crate) pending: BTreeMap<NetAddr, PendingReceiver>,
}

impl TransportEntity {
    /// Open the sending end of a group VC at `tsap`: creates the
    /// network-layer group (reserving the worst-acceptable throughput per
    /// tree branch as members join) and arms the source machinery. The VC
    /// starts with no receivers; data written before any member joins is
    /// paced out normally and simply fans out to nobody.
    pub(crate) fn t_group_open(
        self: &Rc<Self>,
        tsap: Tsap,
        class: ServiceClass,
        requirement: QosRequirement,
    ) -> Result<VcId, ServiceError> {
        if !requirement.tolerance.is_well_formed() {
            return Err(ServiceError::BadArgument(
                "preferred QoS weaker than worst-acceptable",
            ));
        }
        if class.profile != ProtocolProfile::RateBasedCm {
            return Err(ServiceError::BadArgument(
                "group VCs support the rate-based CM profile only",
            ));
        }
        if !self.state.borrow().users.contains_key(&tsap) {
            return Err(ServiceError::TsapUnbound);
        }
        let vc = self.alloc_vc();
        let reserve = if requirement.guarantee == GuaranteeMode::BestEffort {
            Bandwidth::ZERO
        } else {
            requirement.tolerance.worst.throughput
        };
        let group = self.net.create_group(self.node, reserve);
        let me = TransportAddr {
            node: self.node,
            tsap,
        };
        let slots = self.buffer_slots(&requirement);
        let mut clock = crate::rate::RateClock::new(requirement.osdu_rate);
        clock.start(self.local_now());
        let source = SourceEnd {
            send_buf: crate::buffer::BufferHandle::new(slots),
            clock,
            gbn: None,
            pending_frags: std::collections::VecDeque::new(),
            next_write_seq: 0,
            charged: 0,
            freed_remote: 0,
            // No receivers yet: credit never gates; recomputed per join.
            recv_capacity: u64::MAX,
            dropped: 0,
            sent: 0,
            retrans_cache: std::collections::VecDeque::new(),
            retrans_cache_cap: slots * 4,
            tick_timer: None,
            rto_timer: None,
            waiting_buffer: false,
            stalled_credit: false,
            stalled_at: None,
            rto_strikes: 0,
            dropped_snap: 0,
        };
        let v = Vc {
            id: vc,
            triple: AddressTriple {
                initiator: me,
                source: me,
                destination: me,
            },
            class,
            requirement,
            contract: requirement.tolerance.preferred,
            role: VcRole::Source,
            peer_node: self.node,
            local_tsap: tsap,
            phase: VcPhase::Open,
            source: Some(source),
            sink: None,
            group: Some(GroupEnd {
                group,
                receivers: BTreeMap::new(),
                pending: BTreeMap::new(),
            }),
            pending_reneg: None,
        };
        // Register the preferred contract with the auditor; joins that
        // weaken the group contract re-register through
        // `recompute_group`.
        if self.obs.enabled() {
            let preferred = requirement.tolerance.preferred;
            self.obs.set_contract(
                vc.0,
                preferred.delay.as_micros(),
                preferred.packet_error_rate.as_ppb() / 1_000,
            );
        }
        let h = self.state.borrow_mut().vcs.insert(vc, v);
        self.attach_source_timers(h);
        self.ensure_tick_now(vc);
        Ok(vc)
    }

    /// Invite `to` into group VC `vc`. Synchronous errors cover only
    /// misuse; admission outcomes — branch QoS below the acceptable floor,
    /// reservation denial, unreachable member, the member's own refusal —
    /// arrive through `t_group_join_confirm` with a typed reason, leaving
    /// admitted receivers untouched.
    pub(crate) fn t_group_add_receiver(
        self: &Rc<Self>,
        vc: VcId,
        to: TransportAddr,
    ) -> Result<(), ServiceError> {
        let (group, class, requirement, local_tsap, start_seq) = {
            let st = self.state.borrow();
            let v = st.vcs.get(&vc).ok_or(ServiceError::UnknownVc)?;
            if v.phase != VcPhase::Open {
                return Err(ServiceError::WrongState("group VC not open"));
            }
            let ge = v
                .group
                .as_ref()
                .ok_or(ServiceError::WrongState("not a group VC"))?;
            if to.node == self.node {
                return Err(ServiceError::BadArgument(
                    "the sending node cannot be a group receiver",
                ));
            }
            if ge.receivers.contains_key(&to.node) || ge.pending.contains_key(&to.node) {
                return Err(ServiceError::WrongState("node already in the group"));
            }
            let s = v.source.as_ref().expect("group source end");
            (ge.group, v.class, v.requirement, v.local_tsap, s.charged)
        };
        let deny = |reason: DisconnectReason| {
            self.to_user(local_tsap, move |svc, u| {
                u.t_group_join_confirm(svc, vc, to, Err(reason))
            });
        };
        // Per-receiver negotiation against this member's branch of the
        // shared tree (§3.2 heterogeneous tolerance levels).
        let Some(achievable) = self.net.group_path_qos(group, to.node, self.config.mtu) else {
            deny(DisconnectReason::Unreachable);
            return Ok(());
        };
        let agreed = match requirement.tolerance.negotiate(&achievable) {
            Ok(a) => a,
            Err(violations) => {
                deny(DisconnectReason::from_violations(&violations));
                return Ok(());
            }
        };
        // Graft the branch: reserves only the links the new member adds.
        match self.net.group_join(group, to.node) {
            None => {
                deny(DisconnectReason::Unreachable);
                return Ok(());
            }
            Some(Err(_)) => {
                deny(DisconnectReason::AdmissionDenied);
                return Ok(());
            }
            Some(Ok(())) => {}
        }
        {
            let mut st = self.state.borrow_mut();
            if let Some(ge) = st.vcs.get_mut(&vc).and_then(|v| v.group.as_mut()) {
                ge.pending.insert(
                    to.node,
                    PendingReceiver {
                        addr: to,
                        base_charged: start_seq,
                    },
                );
            }
        }
        let me = TransportAddr {
            node: self.node,
            tsap: local_tsap,
        };
        self.send_control(
            to.node,
            ControlMsg::GroupConnectRequest {
                vc,
                group,
                triple: AddressTriple {
                    initiator: me,
                    source: me,
                    destination: to,
                },
                class,
                requirement,
                agreed,
                start_seq,
            },
        );
        Ok(())
    }

    /// The invited member's answer arrived at the sender.
    pub(crate) fn on_group_connect_response(
        self: &Rc<Self>,
        vc: VcId,
        member: TransportAddr,
        result: Result<(QosParams, u32), DisconnectReason>,
    ) {
        let (pending, group, local_tsap) = {
            let mut st = self.state.borrow_mut();
            let Some(v) = st.vcs.get_mut(&vc) else { return };
            let tsap = v.local_tsap;
            let Some(ge) = v.group.as_mut() else { return };
            let g = ge.group;
            (ge.pending.remove(&member.node), g, tsap)
        };
        let Some(pending) = pending else { return };
        match result {
            Ok((agreed, capacity)) => {
                {
                    let mut st = self.state.borrow_mut();
                    if let Some(ge) = st.vcs.get_mut(&vc).and_then(|v| v.group.as_mut()) {
                        ge.receivers.insert(
                            member.node,
                            GroupReceiver {
                                addr: member,
                                contract: agreed,
                                capacity: capacity as u64,
                                freed: 0,
                                base_charged: pending.base_charged,
                            },
                        );
                    }
                }
                self.recompute_group(vc);
                self.to_user(local_tsap, move |svc, u| {
                    u.t_group_join_confirm(svc, vc, member, Ok(agreed))
                });
            }
            Err(reason) => {
                // Roll the branch reservation back.
                self.net.group_leave(group, member.node);
                self.to_user(local_tsap, move |svc, u| {
                    u.t_group_join_confirm(svc, vc, member, Err(reason))
                });
            }
        }
    }

    /// A member released its end (receiver-initiated leave): prune its
    /// branch, restore the group contract, tell the sending user.
    pub(crate) fn group_member_left(
        self: &Rc<Self>,
        vc: VcId,
        member: NetAddr,
        reason: DisconnectReason,
    ) {
        let (gone, group, local_tsap) = {
            let mut st = self.state.borrow_mut();
            let Some(v) = st.vcs.get_mut(&vc) else { return };
            let tsap = v.local_tsap;
            let Some(ge) = v.group.as_mut() else { return };
            let gone = ge
                .receivers
                .remove(&member)
                .map(|r| r.addr)
                .or_else(|| ge.pending.remove(&member).map(|p| p.addr));
            (gone, ge.group, tsap)
        };
        let Some(addr) = gone else { return };
        self.net.group_leave(group, member);
        self.recompute_group(vc);
        self.to_user(local_tsap, move |svc, u| {
            u.t_group_leave_indication(svc, vc, addr, reason)
        });
    }

    /// Sender-initiated removal of a member.
    pub(crate) fn t_group_remove_receiver(
        self: &Rc<Self>,
        vc: VcId,
        member: NetAddr,
    ) -> Result<(), ServiceError> {
        let group = {
            let mut st = self.state.borrow_mut();
            let v = st.vcs.get_mut(&vc).ok_or(ServiceError::UnknownVc)?;
            let ge = v
                .group
                .as_mut()
                .ok_or(ServiceError::WrongState("not a group VC"))?;
            if ge.receivers.remove(&member).is_none() && ge.pending.remove(&member).is_none() {
                return Err(ServiceError::BadArgument("node is not a group member"));
            }
            ge.group
        };
        self.send_control(
            member,
            ControlMsg::Disconnect {
                vc,
                reason: DisconnectReason::UserRelease,
                notify: None,
            },
        );
        self.net.group_leave(group, member);
        self.recompute_group(vc);
        Ok(())
    }

    /// Close the whole group VC: release every member, the shared-tree
    /// reservations and the local source end.
    pub(crate) fn t_group_close(self: &Rc<Self>, vc: VcId) -> Result<(), ServiceError> {
        let (group, members) = {
            let st = self.state.borrow();
            let v = st.vcs.get(&vc).ok_or(ServiceError::UnknownVc)?;
            let ge = v
                .group
                .as_ref()
                .ok_or(ServiceError::WrongState("not a group VC"))?;
            let members: Vec<NetAddr> = ge
                .receivers
                .keys()
                .chain(ge.pending.keys())
                .copied()
                .collect();
            (ge.group, members)
        };
        for m in members {
            self.send_control(
                m,
                ControlMsg::Disconnect {
                    vc,
                    reason: DisconnectReason::UserRelease,
                    notify: None,
                },
            );
        }
        self.net.group_release(group);
        self.teardown_local(vc, DisconnectReason::UserRelease, false);
        Ok(())
    }

    /// A per-receiver credit report arrived: update the member, then
    /// re-derive the slowest-member pacing floor.
    pub(crate) fn on_group_credit(self: &Rc<Self>, vc: VcId, from: NetAddr, freed_total: u64) {
        {
            let mut st = self.state.borrow_mut();
            let Some(r) = st
                .vcs
                .get_mut(&vc)
                .and_then(|v| v.group.as_mut())
                .and_then(|ge| ge.receivers.get_mut(&from))
            else {
                return;
            };
            r.freed = r.freed.max(freed_total);
        }
        self.recompute_group(vc);
    }

    /// Re-derive the group-wide contract, credit line and pacing factor
    /// from the current receiver set:
    ///
    /// - contract = the preferred level weakened to every member's
    ///   contract (the slowest acceptable level in force, §3.2);
    /// - credit = the slowest member's window (conservative: smallest
    ///   capacity, smallest cumulative freed);
    /// - pacing = base rate × contracted/preferred throughput.
    pub(crate) fn recompute_group(self: &Rc<Self>, vc: VcId) {
        let local = self.local_now();
        let resume = {
            let mut st = self.state.borrow_mut();
            let Some(v) = st.vcs.get_mut(&vc) else { return };
            if v.phase != VcPhase::Open {
                return;
            }
            let preferred = v.requirement.tolerance.preferred;
            let Some(ge) = v.group.as_ref() else { return };
            let contract = ge
                .receivers
                .values()
                .fold(preferred, |acc, r| acc.weaken_to(&r.contract));
            let credit = if ge.receivers.is_empty() {
                None
            } else {
                Some((
                    ge.receivers
                        .values()
                        .map(|r| r.base_charged + r.freed)
                        .min()
                        .expect("non-empty"),
                    ge.receivers
                        .values()
                        .map(|r| r.capacity)
                        .min()
                        .expect("non-empty"),
                ))
            };
            v.contract = contract;
            // The audited deadline follows the contract in force: joins
            // may weaken it, leaves restore it.
            if self.obs.enabled() {
                self.obs.set_contract(
                    vc.0,
                    contract.delay.as_micros(),
                    contract.packet_error_rate.as_ppb() / 1_000,
                );
            }
            let s = v.source.as_mut().expect("group source end");
            match credit {
                Some((freed, cap)) => {
                    s.freed_remote = freed;
                    s.recv_capacity = cap;
                }
                None => {
                    s.freed_remote = s.charged;
                    s.recv_capacity = u64::MAX;
                }
            }
            let num = contract.throughput.as_bps();
            let den = preferred.throughput.as_bps();
            if num > 0 && den > 0 {
                s.clock.set_factor(num.min(den), den, local);
            } else {
                s.clock.set_factor(1, 1, local);
            }
            if s.stalled_credit && s.has_credit() {
                s.stalled_credit = false;
                true
            } else {
                false
            }
        };
        if resume {
            self.source_tick(vc);
        } else {
            self.ensure_tick_now(vc);
        }
    }
}
