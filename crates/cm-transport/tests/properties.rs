//! Property-based tests on the transport's core data structures: the
//! shared circular buffer (conservation, FIFO, blocking accounting), the
//! sink reassembly engine (no duplicates, no losses under the correcting
//! class, exact credit conservation), the rate clock (monotone, drift
//! free under factor changes) and fragmentation (exact coverage).

use cm_core::osdu::{Opdu, Osdu, Payload};
use cm_core::service_class::ErrorControlClass;
use cm_core::time::{Rate, SimDuration, SimTime};
use cm_transport::buffer::{BufferHandle, PushOutcome};
use cm_transport::rate::RateClock;
use cm_transport::receiver::{SinkAction, SinkEngine};
use cm_transport::tpdu::{fragment_sizes, DataTpdu, TPDU_HEADER};
use proptest::prelude::*;

fn osdu(seq: u64) -> Osdu {
    Osdu::new(seq, Payload::synthetic(seq, 64))
}

fn tpdu(seq: u64) -> DataTpdu {
    DataTpdu {
        vc: cm_core::address::VcId(1),
        osdu_seq: seq,
        frag_index: 0,
        frag_count: 1,
        frag_bytes: 64,
        opdu: Opdu { seq, event: None },
        payload: Some(Payload::synthetic(seq, 64)),
        osdu_sent_at: SimTime::ZERO,
    }
}

proptest! {
    // ---------- circular buffer ----------

    /// Under any interleaving of pushes and pops, the buffer conserves
    /// units (pushed = popped + stored), never exceeds capacity, and pops
    /// in FIFO order.
    #[test]
    fn buffer_conservation_and_fifo(
        capacity in 1usize..16,
        ops in proptest::collection::vec(0u8..4, 1..200),
    ) {
        let b = BufferHandle::new(capacity);
        let mut next_seq = 0u64;
        let mut expected_pop = 0u64;
        let mut accepted = 0u64;
        let now = SimTime::ZERO;
        for op in ops {
            match op {
                // push
                0..=2 => {
                    match b.try_push(now, osdu(next_seq)) {
                        PushOutcome::Pushed { .. } => {
                            next_seq += 1;
                            accepted += 1;
                            prop_assert!(b.len() <= capacity);
                        }
                        PushOutcome::Full(o) => {
                            prop_assert_eq!(o.seq(), next_seq);
                            prop_assert!(b.is_full());
                        }
                    }
                }
                // pop
                _ => {
                    if let Some(o) = b.try_pop(now) {
                        prop_assert_eq!(o.seq(), expected_pop);
                        expected_pop += 1;
                    }
                }
            }
        }
        let (pushed, popped) = b.totals();
        prop_assert_eq!(pushed, accepted);
        prop_assert_eq!(popped, expected_pop);
        prop_assert_eq!(pushed - popped, b.len() as u64);
    }

    /// The gate and the release limit never corrupt order: whatever subset
    /// of pops they allow, the sequence popped is a prefix-ordered run.
    #[test]
    fn buffer_gate_and_limit_preserve_order(
        limit in 0u64..20,
        toggle_at in 0usize..20,
        n in 1u64..20,
    ) {
        let b = BufferHandle::new(32);
        let now = SimTime::ZERO;
        for seq in 0..n {
            b.try_push(now, osdu(seq));
        }
        b.set_release_limit(now, Some(limit));
        let mut got = Vec::new();
        for i in 0..(n as usize + 4) {
            if i == toggle_at {
                b.set_gated(now, true);
                b.set_gated(now, false);
            }
            if let Some(o) = b.try_pop(now) {
                got.push(o.seq());
            }
        }
        // Popped exactly min(limit, n) units, in order from zero.
        let want: Vec<u64> = (0..n.min(limit)).collect();
        prop_assert_eq!(got, want);
    }

    /// Blocking-time accounting: a consumer parked for d microseconds is
    /// accounted exactly d.
    #[test]
    fn buffer_blocking_time_exact(d in 1u64..1_000_000) {
        let b = BufferHandle::new(4);
        b.park_consumer(SimTime::ZERO, || {});
        b.try_push(SimTime::from_micros(d), osdu(0));
        let stats = b.take_stats(SimTime::from_micros(d));
        prop_assert_eq!(stats.consumer_blocked, SimDuration::from_micros(d));
    }

    // ---------- sink engine ----------

    /// Detect-only: whatever subset of OSDUs the network delivers, the
    /// engine delivers exactly that subset, in order, counts the rest
    /// lost, and the credit ledger (delivered + internal_freed) covers
    /// every sequence number below the in-order point.
    #[test]
    fn sink_unreliable_accounts_every_seq(present in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mut e = SinkEngine::new(ErrorControlClass::DetectIndicate);
        let mut delivered = Vec::new();
        for (seq, &ok) in present.iter().enumerate() {
            if !ok {
                continue;
            }
            for a in e.on_tpdu(&tpdu(seq as u64), false, SimTime::ZERO) {
                if let SinkAction::Deliver(o) = a {
                    delivered.push(o.seq());
                }
            }
        }
        // Delivered = exactly the present seqs up to the last present one.
        let want: Vec<u64> = present
            .iter()
            .enumerate()
            .filter(|&(_, &ok)| ok)
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(&delivered, &want);
        // Every seq below next_expected is accounted delivered or freed.
        prop_assert_eq!(
            e.delivered + e.internal_freed,
            e.next_expected()
        );
        prop_assert_eq!(e.delivered, delivered.len() as u64);
    }

    /// Detect+correct: losses followed by retransmissions always yield the
    /// complete in-order stream with zero recorded losses.
    #[test]
    fn sink_reliable_repairs_everything(lose in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut e = SinkEngine::new(ErrorControlClass::DetectCorrect);
        let n = lose.len() as u64;
        let mut delivered = Vec::new();
        let collect = |actions: Vec<SinkAction>, delivered: &mut Vec<u64>| {
            for a in actions {
                if let SinkAction::Deliver(o) = a {
                    delivered.push(o.seq());
                }
            }
        };
        for (seq, &lost) in lose.iter().enumerate() {
            if !lost {
                let acts = e.on_tpdu(&tpdu(seq as u64), false, SimTime::from_micros(seq as u64));
                collect(acts, &mut delivered);
            }
        }
        // Retransmission pass for everything that was lost.
        for (seq, &lost) in lose.iter().enumerate() {
            if lost {
                let acts = e.on_tpdu(
                    &tpdu(seq as u64),
                    false,
                    SimTime::from_millis(1_000 + seq as u64),
                );
                collect(acts, &mut delivered);
            }
        }
        prop_assert_eq!(delivered, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(e.lost, 0);
        prop_assert_eq!(e.hole_count(), 0);
    }

    // ---------- rate clock ----------

    /// Due times are non-decreasing across arbitrary sequences of factor
    /// changes, pauses and resumes.
    #[test]
    fn rate_clock_monotone_under_retuning(
        ops in proptest::collection::vec((0u8..4, 1u64..20, 1u64..20), 1..100),
    ) {
        let mut c = RateClock::new(Rate::per_second(50));
        c.start(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut last_due = SimTime::ZERO;
        for (op, a, b) in ops {
            now += SimDuration::from_millis(a);
            match op {
                0 => {
                    if let Some(due) = c.next_due() {
                        // Sends may only happen at/after their due time.
                        if due <= now {
                            prop_assert!(due >= last_due);
                            last_due = due;
                            c.consume_slot();
                        }
                    }
                }
                1 => c.set_factor(a, b, now),
                2 => c.pause(),
                _ => c.resume(now),
            }
        }
    }

    /// `limit_backlog` never moves the next due time backwards.
    #[test]
    fn rate_clock_backlog_limit_safe(gap_ms in 0u64..10_000, max_slots in 0u64..8) {
        let mut c = RateClock::new(Rate::per_second(25));
        c.start(SimTime::ZERO);
        let now = SimTime::from_millis(gap_ms);
        let before = c.next_due().expect("running");
        c.limit_backlog(now, max_slots);
        let after = c.next_due().expect("still running");
        prop_assert!(after >= before || after >= now);
    }

    // ---------- fragmentation ----------

    /// Fragment sizes always cover the OSDU exactly, each fits the MTU,
    /// and only the final fragment may be short.
    #[test]
    fn fragmentation_exact_cover(bytes in 0usize..200_000, mtu in (TPDU_HEADER + 1)..9_000) {
        let sizes = fragment_sizes(bytes, mtu);
        prop_assert!(!sizes.is_empty());
        prop_assert_eq!(sizes.iter().sum::<usize>(), bytes);
        let room = mtu - TPDU_HEADER;
        prop_assert!(sizes.iter().all(|&s| s <= room));
        prop_assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == room));
    }
}
