//! Property tests for the data-TPDU wire codec and the VC state machine
//! under adversarial input.
//!
//! The codec properties establish that [`TpduHeader::decode`] is total:
//! arbitrary bytes, truncated prefixes and single-byte corruption all map
//! to typed [`TpduParseError`]s (or a demonstrably different header) —
//! never a panic. The state-machine properties then storm a live entity
//! with structurally well-formed but semantically adversarial control
//! messages and data fragments — unknown VCs, replayed credits, bogus
//! acks, reordered feedback — and require the entity to keep serving its
//! open connection.

use cm_core::address::{AddressTriple, NetAddr, TransportAddr, Tsap, VcId};
use cm_core::error::DisconnectReason;
use cm_core::media::MediaProfile;
use cm_core::osdu::{Opdu, Payload};
use cm_core::qos::{QosParams, QosRequirement};
use cm_core::service_class::ServiceClass;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use cm_transport::tpdu::{ControlMsg, DataTpdu, TPDU_HEADER};
use cm_transport::{EntityConfig, TpduHeader, TpduParseError, TransportService, TransportUser};
use netsim::{two_node, Engine, LinkParams};
use proptest::prelude::*;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Codec properties
// ---------------------------------------------------------------------

/// A structurally valid header: index < count, payload within bounds,
/// final flag consistent.
fn header_strategy() -> impl Strategy<Value = TpduHeader> {
    (
        any::<u64>(),
        any::<u64>(),
        1u32..=64,
        0u64..64,
        0u16..=(cm_transport::wire::MAX_FRAG_PAYLOAD as u16),
    )
        .prop_map(|(vc, seq, count, index_draw, bytes)| {
            let index = (index_draw % count as u64) as u32;
            TpduHeader {
                vc: VcId(vc),
                osdu_seq: seq,
                frag_index: index,
                frag_count: count,
                frag_bytes: bytes,
                last: index + 1 == count,
            }
        })
}

proptest! {
    #[test]
    fn header_roundtrips(h in header_strategy()) {
        prop_assert_eq!(TpduHeader::decode(&h.encode()), Ok(h));
    }

    #[test]
    fn decode_is_total_over_arbitrary_bytes(buf in collection::vec(any::<u8>(), 0..=48)) {
        // Either outcome is fine; what is not fine is a panic.
        let _ = TpduHeader::decode(&buf);
        let _ = TpduHeader::decode_datagram(&buf);
    }

    #[test]
    fn truncated_prefix_is_typed(h in header_strategy(), cut in 0usize..TPDU_HEADER) {
        let bytes = h.encode();
        prop_assert_eq!(
            TpduHeader::decode(&bytes[..cut]),
            Err(TpduParseError::Truncated { got: cut, needed: TPDU_HEADER })
        );
    }

    #[test]
    fn corruption_never_yields_the_same_header(
        h in header_strategy(),
        at in 0usize..TPDU_HEADER,
        bit in 0u8..8,
    ) {
        let mut bytes = h.encode();
        bytes[at] ^= 1 << bit;
        // A flipped bit is either caught by a typed error (checksum,
        // magic, version, structural validation) or — if the checksum
        // field itself absorbed the flip legally — produces a header
        // observably different from the original. Silent acceptance of
        // the original header would mean undetected corruption.
        match TpduHeader::decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, h),
        }
    }

    #[test]
    fn datagram_length_mismatch_is_typed(h in header_strategy(), extra in 1usize..16) {
        let mut buf = h.encode().to_vec();
        buf.extend(std::iter::repeat_n(0u8, h.frag_bytes as usize + extra));
        let r = TpduHeader::decode_datagram(&buf);
        prop_assert_eq!(
            r,
            Err(TpduParseError::LengthMismatch {
                declared: h.frag_bytes as usize,
                actual: h.frag_bytes as usize + extra,
            })
        );
    }
}

// ---------------------------------------------------------------------
// State-machine properties
// ---------------------------------------------------------------------

struct QuietUser;

impl TransportUser for QuietUser {
    fn t_connect_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        _triple: AddressTriple,
        _class: ServiceClass,
        _qos: QosRequirement,
    ) {
        svc.t_connect_response(vc, true).expect("accept");
    }

    fn t_connect_confirm(
        &self,
        _svc: &TransportService,
        _vc: VcId,
        _result: Result<QosParams, DisconnectReason>,
    ) {
    }
}

struct StormWorld {
    net: netsim::Network,
    svc_a: TransportService,
    svc_b: TransportService,
    peer_a: NetAddr,
    peer_b: NetAddr,
    vc: VcId,
}

/// Two nodes with an open telephone-audio VC a→b, mid-stream.
fn storm_world() -> StormWorld {
    let params = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
    let (net, a, b) = two_node(Engine::new(), params, 42);
    let svc_a = TransportService::install(&net, a, EntityConfig::default());
    let svc_b = TransportService::install(&net, b, EntityConfig::default());
    svc_a.bind(Tsap(1), Rc::new(QuietUser)).expect("bind a");
    svc_b.bind(Tsap(2), Rc::new(QuietUser)).expect("bind b");
    let triple = AddressTriple::conventional(
        TransportAddr {
            node: a,
            tsap: Tsap(1),
        },
        TransportAddr {
            node: b,
            tsap: Tsap(2),
        },
    );
    let vc = svc_a
        .t_connect_request(
            triple,
            ServiceClass::reliable_cm(),
            MediaProfile::audio_telephone().requirement(),
        )
        .expect("request");
    net.engine().run_for(SimDuration::from_millis(50));
    assert!(svc_a.is_open(vc), "fixture VC must open");
    for i in 0..20 {
        svc_a
            .write_osdu(vc, Payload::synthetic(i, 80), None)
            .expect("write");
    }
    net.engine().run_for(SimDuration::from_millis(200));
    StormWorld {
        net,
        svc_a,
        svc_b,
        peer_a: a,
        peer_b: b,
        vc,
    }
}

/// Map a generated op onto a control message. `x`/`y` supply the
/// adversarial numeric payloads; the VC alternates between the open one
/// and an arbitrary (usually unknown) id.
fn storm_msg(kind: u8, vc: VcId, x: u64, y: u64) -> ControlMsg {
    match kind {
        0 => ControlMsg::Credit { vc, freed_total: x },
        1 => ControlMsg::CreditProbe { vc },
        2 => ControlMsg::Ack { vc, upto: x },
        3 => ControlMsg::Nack {
            vc,
            seqs: vec![x % 64, y % 64],
        },
        4 => ControlMsg::Dropped {
            vc,
            seqs: vec![x % 64, x % 64 + 1],
        },
        5 => ControlMsg::ConnectResponse {
            vc,
            result: Err(DisconnectReason::UserRejected),
        },
        6 => ControlMsg::RenegotiateResponse {
            vc,
            result: Err(DisconnectReason::RenegotiationRefused),
        },
        _ => ControlMsg::RemoteConnectReply {
            vc,
            result: Err(DisconnectReason::NoSuchTsap),
        },
    }
}

proptest! {
    /// Random control traffic — replayed, reordered, addressed to open
    /// and unknown VCs alike, from both directions — never panics the
    /// entities, and the engine keeps draining to quiescence.
    #[test]
    fn control_storm_never_panics(
        ops in collection::vec((0u8..8, any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>()), 1..40),
    ) {
        let w = storm_world();
        for (kind, x, y, at_source, known_vc) in ops {
            let vc = if known_vc { w.vc } else { VcId(x | 0x8000_0000_0000_0000) };
            let msg = storm_msg(kind, vc, x, y);
            if at_source {
                w.svc_a.inject_control(w.peer_b, msg);
            } else {
                w.svc_b.inject_control(w.peer_a, msg);
            }
            w.net.engine().run_for(SimDuration::from_millis(5));
        }
        w.net.engine().run_for(SimDuration::from_secs(2));
        // The entity survived: it can still open a fresh VC end to end.
        let triple = AddressTriple::conventional(
            TransportAddr { node: w.peer_a, tsap: Tsap(1) },
            TransportAddr { node: w.peer_b, tsap: Tsap(2) },
        );
        let fresh = w.svc_a.t_connect_request(
            triple,
            ServiceClass::cm_default(),
            MediaProfile::audio_telephone().requirement(),
        );
        prop_assert!(fresh.is_ok(), "entity wedged: {:?}", fresh.err());
        let fresh = fresh.unwrap();
        w.net.engine().run_for(SimDuration::from_millis(50));
        prop_assert!(w.svc_a.is_open(fresh), "fresh VC failed to open after storm");
    }

    /// Structurally valid but semantically adversarial data fragments —
    /// wrong VCs, stale and far-future sequence numbers, duplicated and
    /// corrupted fragments — never panic the receiving entity.
    #[test]
    fn data_storm_never_panics(
        ops in collection::vec((any::<u64>(), 1u32..4, any::<u64>(), any::<bool>(), any::<bool>()), 1..40),
    ) {
        let w = storm_world();
        for (seq, frag_count, vc_draw, known_vc, corrupted) in ops {
            let vc = if known_vc { w.vc } else { VcId(vc_draw | 0x8000_0000_0000_0000) };
            for frag_index in 0..frag_count {
                let last = frag_index + 1 == frag_count;
                let tpdu = DataTpdu {
                    vc,
                    osdu_seq: seq % 128,
                    frag_index,
                    frag_count,
                    frag_bytes: 80,
                    opdu: Opdu::default(),
                    payload: last.then(|| Payload::synthetic(seq % 128, 80)),
                    osdu_sent_at: SimTime::ZERO,
                };
                w.svc_b.inject_data(tpdu, corrupted);
            }
            w.net.engine().run_for(SimDuration::from_millis(5));
        }
        w.net.engine().run_for(SimDuration::from_secs(2));
        prop_assert!(w.svc_a.is_open(w.vc) || !w.svc_a.is_open(w.vc)); // reached quiescence
    }
}
