//! End-to-end tests of 1:N group VCs: shared-tree delivery (each OSDU on
//! the source's first-hop link exactly once), heterogeneous-receiver
//! admission and degradation (§3.2), per-receiver error control (§3.4),
//! branch-scoped reservation release, mid-stream joins and group teardown.

use cm_core::address::{AddressTriple, NetAddr, TransportAddr, Tsap, VcId};
use cm_core::error::{DisconnectReason, ServiceError};
use cm_core::media::MediaProfile;
use cm_core::osdu::Payload;
use cm_core::qos::{ErrorRate, QosParams, QosRequirement, QosTolerance};
use cm_core::rng::DetRng;
use cm_core::service_class::{ErrorControlClass, ProtocolProfile, ServiceClass};
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use cm_transport::{EntityConfig, TransportService, TransportUser};
use netsim::{Engine, LinkParams, Network, NodeClock};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

#[derive(Debug)]
#[allow(dead_code)] // payloads read through Debug in failure messages
enum Ev {
    ConnectInd(VcId),
    Disconnect(VcId, DisconnectReason),
    JoinConfirm(VcId, NetAddr, Result<QosParams, DisconnectReason>),
    LeaveInd(VcId, NetAddr, DisconnectReason),
    GroupQos(VcId, NetAddr),
    ErrorInd(VcId, u64),
}

struct GroupUser {
    events: RefCell<Vec<Ev>>,
    accept_connect: Cell<bool>,
}

impl GroupUser {
    fn new() -> Rc<GroupUser> {
        Rc::new(GroupUser {
            events: RefCell::new(Vec::new()),
            accept_connect: Cell::new(true),
        })
    }

    fn join_confirms(&self) -> Vec<(NetAddr, Result<QosParams, DisconnectReason>)> {
        self.events
            .borrow()
            .iter()
            .filter_map(|e| match e {
                Ev::JoinConfirm(_, m, r) => Some((*m, r.clone())),
                _ => None,
            })
            .collect()
    }

    fn error_inds(&self) -> usize {
        self.events
            .borrow()
            .iter()
            .filter(|e| matches!(e, Ev::ErrorInd(..)))
            .count()
    }
}

impl TransportUser for GroupUser {
    fn t_connect_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        _triple: AddressTriple,
        _class: ServiceClass,
        _qos: QosRequirement,
    ) {
        self.events.borrow_mut().push(Ev::ConnectInd(vc));
        svc.t_connect_response(vc, self.accept_connect.get())
            .expect("respond");
    }

    fn t_disconnect_indication(&self, _svc: &TransportService, vc: VcId, reason: DisconnectReason) {
        self.events.borrow_mut().push(Ev::Disconnect(vc, reason));
    }

    fn t_error_indication(&self, _svc: &TransportService, vc: VcId, seq: u64) {
        self.events.borrow_mut().push(Ev::ErrorInd(vc, seq));
    }

    fn t_group_join_confirm(
        &self,
        _svc: &TransportService,
        vc: VcId,
        member: TransportAddr,
        result: Result<QosParams, DisconnectReason>,
    ) {
        self.events
            .borrow_mut()
            .push(Ev::JoinConfirm(vc, member.node, result));
    }

    fn t_group_leave_indication(
        &self,
        _svc: &TransportService,
        vc: VcId,
        member: TransportAddr,
        reason: DisconnectReason,
    ) {
        self.events
            .borrow_mut()
            .push(Ev::LeaveInd(vc, member.node, reason));
    }

    fn t_group_qos_indication(
        &self,
        _svc: &TransportService,
        vc: VcId,
        member: NetAddr,
        _report: cm_transport::QosReport,
    ) {
        self.events.borrow_mut().push(Ev::GroupQos(vc, member));
    }
}

struct GroupWorld {
    net: Network,
    svcs: Vec<TransportService>,
    users: Vec<Rc<GroupUser>>,
    nodes: Vec<NetAddr>,
}

impl GroupWorld {
    fn addr(&self, i: usize) -> TransportAddr {
        TransportAddr {
            node: self.nodes[i],
            tsap: Tsap(if i == 0 { 1 } else { 2 }),
        }
    }

    fn run_ms(&self, ms: u64) {
        self.net.engine().run_for(SimDuration::from_millis(ms));
    }
}

fn clean() -> LinkParams {
    LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1))
}

/// Star: node 0 (sender) — node 1 (hub) — nodes 2.. (receivers), one
/// receiver per entry in `branches` giving that branch's hub→receiver
/// params (the reverse direction is always clean, so feedback is lossless).
fn star(branches: &[LinkParams]) -> GroupWorld {
    let net = Network::new(Engine::new());
    let mut rng = DetRng::from_seed(11);
    let n = branches.len() + 2;
    let nodes: Vec<NetAddr> = (0..n).map(|_| net.add_node(NodeClock::perfect())).collect();
    net.add_duplex(nodes[0], nodes[1], clean(), &mut rng);
    for (i, p) in branches.iter().enumerate() {
        let r = nodes[2 + i];
        net.add_link(nodes[1], r, p.clone(), rng.fork(&format!("fwd{i}")));
        net.add_link(r, nodes[1], clean(), rng.fork(&format!("rev{i}")));
    }
    finish(net, nodes)
}

/// Chain: node 0 (sender) — node 1 — node 2 — …, clean links throughout.
fn chain(n: usize) -> GroupWorld {
    let net = Network::new(Engine::new());
    let mut rng = DetRng::from_seed(11);
    let nodes: Vec<NetAddr> = (0..n).map(|_| net.add_node(NodeClock::perfect())).collect();
    for w in nodes.windows(2) {
        net.add_duplex(w[0], w[1], clean(), &mut rng);
    }
    finish(net, nodes)
}

fn finish(net: Network, nodes: Vec<NetAddr>) -> GroupWorld {
    let mut svcs = Vec::new();
    let mut users = Vec::new();
    for (i, &node) in nodes.iter().enumerate() {
        let svc = TransportService::install(&net, node, EntityConfig::default());
        let user = GroupUser::new();
        svc.bind(Tsap(if i == 0 { 1 } else { 2 }), user.clone())
            .expect("bind");
        svcs.push(svc);
        users.push(user);
    }
    GroupWorld {
        net,
        svcs,
        users,
        nodes,
    }
}

fn telephone_req() -> QosRequirement {
    MediaProfile::audio_telephone().requirement()
}

/// Telephone audio that tolerates a lossy path (negotiation would
/// correctly refuse the 5%-loss branch otherwise).
fn lossy_telephone_req() -> QosRequirement {
    let mut req = telephone_req();
    req.tolerance.preferred.packet_error_rate = ErrorRate::from_prob(0.10);
    req.tolerance.worst.packet_error_rate = ErrorRate::from_prob(0.20);
    req
}

/// A requirement whose throughput tolerance spans 2 Mb/s (preferred) down
/// to 1 Mb/s (worst-acceptable), with slack everywhere else — so link
/// capacity alone decides admission and degradation.
fn spanning_req() -> QosRequirement {
    let mut req = telephone_req();
    req.tolerance.preferred.throughput = Bandwidth::kbps(2_000);
    req.tolerance.preferred.delay = SimDuration::from_millis(500);
    req.tolerance.preferred.jitter = SimDuration::from_millis(50);
    req.tolerance.worst.throughput = Bandwidth::kbps(1_000);
    req.tolerance.worst.delay = SimDuration::from_secs(1);
    req.tolerance.worst.jitter = SimDuration::from_millis(100);
    req
}

/// Writes `total` OSDUs of `size` bytes as fast as the send buffer allows.
fn drive_writer(svc: TransportService, vc: VcId, total: u64, size: usize) {
    let written = Rc::new(Cell::new(0u64));
    fn step(svc: TransportService, vc: VcId, total: u64, size: usize, written: Rc<Cell<u64>>) {
        loop {
            if written.get() >= total {
                return;
            }
            match svc.write_osdu(vc, Payload::synthetic(written.get(), size), None) {
                Ok(true) => written.set(written.get() + 1),
                Ok(false) => {
                    let buf = svc.send_handle(vc).expect("send handle");
                    let now = svc.now();
                    let svc2 = svc.clone();
                    let engine = svc.network().engine().clone();
                    buf.park_producer(now, move || {
                        let svc3 = svc2.clone();
                        let w = written.clone();
                        engine.schedule_in(SimDuration::ZERO, move |_| {
                            step(svc3, vc, total, size, w)
                        });
                    });
                    return;
                }
                Err(_) => return,
            }
        }
    }
    step(svc, vc, total, size, written);
}

/// Eagerly reads OSDUs, recording `(time, seq)`.
fn drive_reader(svc: TransportService, vc: VcId) -> Rc<RefCell<Vec<(SimTime, u64)>>> {
    let got = Rc::new(RefCell::new(Vec::new()));
    fn step(svc: TransportService, vc: VcId, got: Rc<RefCell<Vec<(SimTime, u64)>>>) {
        loop {
            match svc.read_osdu(vc) {
                Ok(Some(osdu)) => got.borrow_mut().push((svc.now(), osdu.seq())),
                Ok(None) => {
                    let buf = match svc.recv_handle(vc) {
                        Ok(b) => b,
                        Err(_) => return,
                    };
                    let now = svc.now();
                    let svc2 = svc.clone();
                    let engine = svc.network().engine().clone();
                    let g = got.clone();
                    buf.park_consumer(now, move || {
                        let svc3 = svc2.clone();
                        let engine2 = engine.clone();
                        engine2.schedule_in(SimDuration::ZERO, move |_| step(svc3, vc, g));
                    });
                    return;
                }
                Err(_) => return,
            }
        }
    }
    let g = got.clone();
    step(svc, vc, g);
    got
}

fn seqs_of(got: &Rc<RefCell<Vec<(SimTime, u64)>>>) -> Vec<u64> {
    got.borrow().iter().map(|&(_, s)| s).collect()
}

/// Open a group VC at the sender and admit receivers `2..2+n`.
fn open_group(w: &GroupWorld, class: ServiceClass, req: QosRequirement, n: usize) -> VcId {
    let vc = w.svcs[0].t_group_open(Tsap(1), class, req).expect("open");
    for i in 0..n {
        w.svcs[0]
            .t_group_add_receiver(vc, w.addr(2 + i))
            .expect("invite");
        w.run_ms(20);
    }
    assert_eq!(
        w.svcs[0].group_receivers(vc).expect("receivers").len(),
        n,
        "not all receivers admitted: {:?}",
        w.users[0].join_confirms()
    );
    vc
}

// ---------------------------------------------------------------------
// Delivery over the shared tree
// ---------------------------------------------------------------------

#[test]
fn group_vc_delivers_to_all_while_first_hop_carries_stream_once() {
    let w = star(&[clean(), clean(), clean()]);
    let vc = open_group(&w, ServiceClass::cm_default(), telephone_req(), 3);
    // All handshake traffic is done: every first-hop packet from here on
    // is the data stream itself.
    let first_hop = w.net.route(w.nodes[0], w.nodes[1]).unwrap()[0];
    let base = w.net.link_counters(first_hop).submitted;
    drive_writer(w.svcs[0].clone(), vc, 100, 80);
    let got: Vec<_> = (0..3)
        .map(|i| drive_reader(w.svcs[2 + i].clone(), vc))
        .collect();
    w.run_ms(4_000);
    for (i, g) in got.iter().enumerate() {
        assert_eq!(
            seqs_of(g),
            (0..100).collect::<Vec<_>>(),
            "receiver {i} stream diverges"
        );
    }
    // 1:N but the source link carried each OSDU exactly once.
    assert_eq!(w.net.link_counters(first_hop).submitted - base, 100);
    // One shared-tree reservation, not one per receiver.
    assert_eq!(w.net.reservation_count(), 1);
}

#[test]
fn midstream_join_starts_at_the_join_point() {
    let w = star(&[clean(), clean()]);
    let vc = open_group(&w, ServiceClass::reliable_cm(), telephone_req(), 1);
    drive_writer(w.svcs[0].clone(), vc, 150, 80);
    let early = drive_reader(w.svcs[2].clone(), vc);
    w.run_ms(1_000); // ~50 OSDUs into the stream
    w.svcs[0]
        .t_group_add_receiver(vc, w.addr(3))
        .expect("late invite");
    w.run_ms(50);
    let late = drive_reader(w.svcs[3].clone(), vc);
    w.run_ms(4_000);
    // The early receiver saw everything.
    assert_eq!(seqs_of(&early), (0..150).collect::<Vec<_>>());
    // The late receiver saw a contiguous suffix starting near its join
    // point — and none of the pre-join stream counted as loss.
    let late_seqs = seqs_of(&late);
    let first = *late_seqs.first().expect("late receiver got data");
    assert!(
        (40..=60).contains(&first),
        "late join should start near seq 50, started at {first}"
    );
    assert_eq!(late_seqs, (first..150).collect::<Vec<_>>());
    assert_eq!(w.users[3].error_inds(), 0, "pre-join stream counted lost");
}

// ---------------------------------------------------------------------
// Heterogeneous receivers (§3.2)
// ---------------------------------------------------------------------

#[test]
fn heterogeneous_receivers_degrade_sender_and_weak_branch_is_denied() {
    // Branch capacities: 10 Mb/s (full), 1.5 Mb/s (below the 2 Mb/s
    // preference, above the 1 Mb/s floor), 0.5 Mb/s (below the floor).
    let fast = clean();
    let medium = LinkParams::clean(Bandwidth::kbps(1_500), SimDuration::from_millis(1));
    let skinny = LinkParams::clean(Bandwidth::kbps(500), SimDuration::from_millis(1));
    let w = star(&[fast, medium, skinny]);
    let vc = open_group(&w, ServiceClass::cm_default(), spanning_req(), 1);
    // The full-capacity member holds the preferred contract.
    assert_eq!(
        w.svcs[0].contract(vc).unwrap().throughput,
        Bandwidth::kbps(2_000)
    );
    // The medium member is admitted at its branch's level and the group
    // contract degrades to the slowest acceptable level in force.
    w.svcs[0]
        .t_group_add_receiver(vc, w.addr(3))
        .expect("medium");
    w.run_ms(20);
    assert_eq!(w.svcs[0].group_receivers(vc).unwrap().len(), 2);
    assert_eq!(
        w.svcs[0].contract(vc).unwrap().throughput,
        Bandwidth::kbps(1_500)
    );
    // The skinny member is denied with a typed reason…
    w.svcs[0]
        .t_group_add_receiver(vc, w.addr(4))
        .expect("skinny");
    w.run_ms(20);
    let confirms = w.users[0].join_confirms();
    let denied = confirms.iter().find(|(m, _)| *m == w.nodes[4]).unwrap();
    assert!(
        matches!(denied.1, Err(DisconnectReason::QosUnattainable(_))),
        "expected QosUnattainable, got {:?}",
        denied.1
    );
    // …without disturbing the admitted receivers: membership is intact
    // and the stream still reaches them.
    assert_eq!(w.svcs[0].group_receivers(vc).unwrap().len(), 2);
    drive_writer(w.svcs[0].clone(), vc, 50, 80);
    let got_fast = drive_reader(w.svcs[2].clone(), vc);
    let got_medium = drive_reader(w.svcs[3].clone(), vc);
    w.run_ms(3_000);
    assert_eq!(seqs_of(&got_fast), (0..50).collect::<Vec<_>>());
    assert_eq!(seqs_of(&got_medium), (0..50).collect::<Vec<_>>());
    // Removing the constraining member restores the preferred level.
    w.svcs[0]
        .t_group_remove_receiver(vc, w.nodes[3])
        .expect("remove");
    w.run_ms(20);
    assert_eq!(
        w.svcs[0].contract(vc).unwrap().throughput,
        Bandwidth::kbps(2_000)
    );
}

// ---------------------------------------------------------------------
// Per-receiver error control (§3.4)
// ---------------------------------------------------------------------

#[test]
fn lossy_branch_is_repaired_unicast_without_touching_clean_branch() {
    let mut lossy = clean();
    lossy.loss = ErrorRate::from_prob(0.05);
    let w = star(&[clean(), lossy]);
    let vc = open_group(&w, ServiceClass::reliable_cm(), lossy_telephone_req(), 2);
    let clean_branch = w.net.route(w.nodes[1], w.nodes[2]).unwrap()[0];
    let base = w.net.link_counters(clean_branch).submitted;
    drive_writer(w.svcs[0].clone(), vc, 200, 80);
    let got_clean = drive_reader(w.svcs[2].clone(), vc);
    let got_lossy = drive_reader(w.svcs[3].clone(), vc);
    w.run_ms(8_000);
    // The lossy member was fully repaired (selective, per-receiver)…
    assert_eq!(seqs_of(&got_lossy), (0..200).collect::<Vec<_>>());
    assert_eq!(seqs_of(&got_clean), (0..200).collect::<Vec<_>>());
    // …and not one retransmission crossed the clean member's branch.
    assert_eq!(
        w.net.link_counters(clean_branch).submitted - base,
        200,
        "retransmissions leaked onto the clean branch"
    );
    // The repairs really happened: the lossy branch carried extra copies.
    let lossy_branch = w.net.route(w.nodes[1], w.nodes[3]).unwrap()[0];
    assert!(w.net.link_counters(lossy_branch).submitted > 200 + base);
}

// ---------------------------------------------------------------------
// Branch-scoped reservations
// ---------------------------------------------------------------------

#[test]
fn leave_releases_only_that_branch() {
    // Chain 0 — 1 — 2 with receivers at both 1 and 2: node 2's branch is
    // the extra hop 1→2.
    let w = chain(3);
    let vc = w.svcs[0]
        .t_group_open(Tsap(1), ServiceClass::cm_default(), spanning_req())
        .expect("open");
    for i in 1..=2 {
        w.svcs[0]
            .t_group_add_receiver(
                vc,
                TransportAddr {
                    node: w.nodes[i],
                    tsap: Tsap(2),
                },
            )
            .expect("invite");
        w.run_ms(20);
    }
    let l01 = w.net.route(w.nodes[0], w.nodes[1]).unwrap()[0];
    let l12 = w.net.route(w.nodes[1], w.nodes[2]).unwrap()[0];
    let worst = Bandwidth::kbps(1_000);
    assert_eq!(w.net.reserved_on(l01), worst);
    assert_eq!(w.net.reserved_on(l12), worst);
    // The far member leaves on its own: only its branch is released.
    w.svcs[2].t_disconnect_request(vc).expect("leave");
    w.run_ms(20);
    assert_eq!(w.net.reserved_on(l12), Bandwidth::ZERO, "branch not freed");
    assert_eq!(w.net.reserved_on(l01), worst, "shared link must stay");
    assert!(w.users[0]
        .events
        .borrow()
        .iter()
        .any(|e| matches!(e, Ev::LeaveInd(v, m, _) if *v == vc && *m == w.nodes[2])));
    // The remaining member still receives.
    drive_writer(w.svcs[0].clone(), vc, 30, 80);
    let got = drive_reader(w.svcs[1].clone(), vc);
    w.run_ms(2_000);
    assert_eq!(seqs_of(&got), (0..30).collect::<Vec<_>>());
}

#[test]
fn group_close_disconnects_members_and_releases_everything() {
    let w = star(&[clean(), clean()]);
    let vc = open_group(&w, ServiceClass::cm_default(), telephone_req(), 2);
    assert_eq!(w.net.reservation_count(), 1);
    w.svcs[0].t_group_close(vc).expect("close");
    w.run_ms(50);
    assert!(!w.svcs[0].is_open(vc));
    assert_eq!(w.net.reservation_count(), 0);
    for i in 2..=3 {
        assert!(
            w.users[i]
                .events
                .borrow()
                .iter()
                .any(|e| matches!(e, Ev::Disconnect(v, _) if *v == vc)),
            "member {i} missed the disconnect"
        );
        assert!(!w.svcs[i].is_open(vc));
    }
}

// ---------------------------------------------------------------------
// Group control channel + misuse
// ---------------------------------------------------------------------

#[test]
fn group_control_channel_fans_out_to_all_members() {
    struct Tap {
        got: RefCell<Vec<String>>,
    }
    impl cm_transport::VcTap for Tap {
        fn on_control(&self, _vc: VcId, payload: Rc<dyn std::any::Any>) {
            if let Some(s) = payload.downcast_ref::<String>() {
                self.got.borrow_mut().push(s.clone());
            }
        }
    }
    let w = star(&[clean(), clean()]);
    let vc = open_group(&w, ServiceClass::cm_default(), telephone_req(), 2);
    let taps: Vec<Rc<Tap>> = (0..2)
        .map(|i| {
            let t = Rc::new(Tap {
                got: RefCell::new(Vec::new()),
            });
            w.svcs[2 + i].register_tap(vc, t.clone()).expect("tap");
            t
        })
        .collect();
    w.svcs[0]
        .send_vc_control(vc, Rc::new("orchestrate!".to_string()))
        .expect("control");
    w.run_ms(50);
    for t in &taps {
        assert_eq!(*t.got.borrow(), vec!["orchestrate!".to_string()]);
    }
}

#[test]
fn group_misuse_is_rejected_synchronously() {
    let w = star(&[clean()]);
    // Group VCs are rate-based only.
    let window = ServiceClass {
        profile: ProtocolProfile::WindowBased,
        error_control: ErrorControlClass::DetectCorrect,
    };
    assert!(matches!(
        w.svcs[0].t_group_open(Tsap(1), window, telephone_req()),
        Err(ServiceError::BadArgument(_))
    ));
    // A malformed tolerance (preferred weaker than worst) is refused.
    let mut bad = telephone_req();
    bad.tolerance = QosTolerance {
        preferred: bad.tolerance.worst,
        worst: bad.tolerance.preferred,
    };
    assert!(matches!(
        w.svcs[0].t_group_open(Tsap(1), ServiceClass::cm_default(), bad),
        Err(ServiceError::BadArgument(_))
    ));
    let vc = open_group(&w, ServiceClass::cm_default(), telephone_req(), 1);
    // The sending node cannot receive its own group.
    assert!(matches!(
        w.svcs[0].t_group_add_receiver(vc, w.addr(0)),
        Err(ServiceError::BadArgument(_))
    ));
    // Double-admission is refused.
    assert!(matches!(
        w.svcs[0].t_group_add_receiver(vc, w.addr(2)),
        Err(ServiceError::WrongState(_))
    ));
    // Removing a non-member is refused.
    assert!(matches!(
        w.svcs[0].t_group_remove_receiver(vc, w.nodes[1]),
        Err(ServiceError::BadArgument(_))
    ));
}
