//! Self-healing end-to-end tests (DESIGN.md §9): reroute of reserved
//! unicast VCs over a surviving path, multicast tree regraft with
//! unreachable-member pruning, revoked-reservation re-admission, and
//! bounded give-up when no path ever returns.

use cm_core::address::{AddressTriple, NetAddr, TransportAddr, Tsap, VcId};
use cm_core::error::DisconnectReason;
use cm_core::media::MediaProfile;
use cm_core::osdu::Payload;
use cm_core::qos::{QosParams, QosRequirement};
use cm_core::rng::DetRng;
use cm_core::service_class::ServiceClass;
use cm_core::time::{Bandwidth, SimDuration, SimTime};
use cm_transport::{EntityConfig, TransportService, TransportUser};
use netsim::{Engine, LinkParams, Network, NodeClock};
use std::cell::RefCell;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

#[derive(Debug)]
#[allow(dead_code)] // payload fields are read through Debug in failures
enum Ev {
    Disconnect(VcId, DisconnectReason),
    GroupLeave(VcId, NetAddr, DisconnectReason),
}

struct HealUser {
    events: RefCell<Vec<Ev>>,
}

impl HealUser {
    fn new() -> Rc<HealUser> {
        Rc::new(HealUser {
            events: RefCell::new(Vec::new()),
        })
    }

    fn disconnects(&self) -> Vec<(VcId, DisconnectReason)> {
        self.events
            .borrow()
            .iter()
            .filter_map(|e| match e {
                Ev::Disconnect(vc, r) => Some((*vc, r.clone())),
                _ => None,
            })
            .collect()
    }

    fn leaves(&self) -> Vec<(NetAddr, DisconnectReason)> {
        self.events
            .borrow()
            .iter()
            .filter_map(|e| match e {
                Ev::GroupLeave(_, m, r) => Some((*m, r.clone())),
                _ => None,
            })
            .collect()
    }
}

impl TransportUser for HealUser {
    fn t_connect_indication(
        &self,
        svc: &TransportService,
        vc: VcId,
        _triple: AddressTriple,
        _class: ServiceClass,
        _qos: QosRequirement,
    ) {
        svc.t_connect_response(vc, true).expect("accept");
    }

    fn t_connect_confirm(
        &self,
        _svc: &TransportService,
        _vc: VcId,
        _result: Result<QosParams, DisconnectReason>,
    ) {
    }

    fn t_disconnect_indication(&self, _svc: &TransportService, vc: VcId, reason: DisconnectReason) {
        self.events.borrow_mut().push(Ev::Disconnect(vc, reason));
    }

    fn t_group_leave_indication(
        &self,
        _svc: &TransportService,
        vc: VcId,
        member: TransportAddr,
        reason: DisconnectReason,
    ) {
        self.events
            .borrow_mut()
            .push(Ev::GroupLeave(vc, member.node, reason));
    }
}

/// Writes `total` OSDUs of `size` bytes as fast as the send buffer allows.
fn drive_writer(svc: TransportService, vc: VcId, total: u64, size: usize) {
    use std::cell::Cell;
    let written = Rc::new(Cell::new(0u64));
    fn step(svc: TransportService, vc: VcId, total: u64, size: usize, written: Rc<Cell<u64>>) {
        loop {
            if written.get() >= total {
                return;
            }
            match svc.write_osdu(vc, Payload::synthetic(written.get(), size), None) {
                Ok(true) => written.set(written.get() + 1),
                Ok(false) => {
                    let buf = svc.send_handle(vc).expect("send handle");
                    let now = svc.now();
                    let svc2 = svc.clone();
                    let engine = svc.network().engine().clone();
                    buf.park_producer(now, move || {
                        let svc3 = svc2.clone();
                        let w = written.clone();
                        engine.schedule_in(SimDuration::ZERO, move |_| {
                            step(svc3, vc, total, size, w)
                        });
                    });
                    return;
                }
                Err(_) => return,
            }
        }
    }
    step(svc, vc, total, size, written);
}

/// Eagerly reads OSDUs, recording `(time, seq)`.
fn drive_reader(svc: TransportService, vc: VcId) -> Rc<RefCell<Vec<(SimTime, u64)>>> {
    let got = Rc::new(RefCell::new(Vec::new()));
    fn step(svc: TransportService, vc: VcId, got: Rc<RefCell<Vec<(SimTime, u64)>>>) {
        loop {
            match svc.read_osdu(vc) {
                Ok(Some(osdu)) => got.borrow_mut().push((svc.now(), osdu.seq())),
                Ok(None) => {
                    let buf = match svc.recv_handle(vc) {
                        Ok(b) => b,
                        Err(_) => return,
                    };
                    let now = svc.now();
                    let svc2 = svc.clone();
                    let engine = svc.network().engine().clone();
                    let g = got.clone();
                    buf.park_consumer(now, move || {
                        let svc3 = svc2.clone();
                        let engine2 = engine.clone();
                        engine2.schedule_in(SimDuration::ZERO, move |_| step(svc3, vc, g));
                    });
                    return;
                }
                Err(_) => return,
            }
        }
    }
    let g = got.clone();
    step(svc, vc, g);
    got
}

/// Square topology with two disjoint 2-hop paths a→c (via b, via d) and
/// transport entities on every node. Primary route a→b→c (first-added
/// links win BFS ties).
struct Square {
    net: Network,
    nodes: [NetAddr; 4],
    svc: [TransportService; 4],
    user: [Rc<HealUser>; 4],
}

fn square() -> Square {
    let net = Network::new(Engine::new());
    let mut rng = DetRng::from_seed(7);
    let p = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
    let a = net.add_node(NodeClock::perfect());
    let b = net.add_node(NodeClock::perfect());
    let c = net.add_node(NodeClock::perfect());
    let d = net.add_node(NodeClock::perfect());
    net.add_duplex(a, b, p.clone(), &mut rng);
    net.add_duplex(b, c, p.clone(), &mut rng);
    net.add_duplex(a, d, p.clone(), &mut rng);
    net.add_duplex(d, c, p, &mut rng);
    let nodes = [a, b, c, d];
    let user = [
        HealUser::new(),
        HealUser::new(),
        HealUser::new(),
        HealUser::new(),
    ];
    let svc = [
        TransportService::install(&net, a, EntityConfig::default()),
        TransportService::install(&net, b, EntityConfig::default()),
        TransportService::install(&net, c, EntityConfig::default()),
        TransportService::install(&net, d, EntityConfig::default()),
    ];
    for i in 0..4 {
        svc[i]
            .bind(Tsap(i as u16 + 1), user[i].clone())
            .expect("bind");
    }
    Square {
        net,
        nodes,
        svc,
        user,
    }
}

fn addr(s: &Square, i: usize) -> TransportAddr {
    TransportAddr {
        node: s.nodes[i],
        tsap: Tsap(i as u16 + 1),
    }
}

fn telephone_req() -> QosRequirement {
    MediaProfile::audio_telephone().requirement()
}

fn open_a_to_c(s: &Square) -> VcId {
    let triple = AddressTriple::conventional(addr(s, 0), addr(s, 2));
    let vc = s.svc[0]
        .t_connect_request(triple, ServiceClass::cm_default(), telephone_req())
        .expect("request");
    s.net.engine().run_for(SimDuration::from_millis(50));
    assert!(s.svc[0].is_open(vc), "VC should open");
    vc
}

// ---------------------------------------------------------------------
// Unicast reroute
// ---------------------------------------------------------------------

#[test]
fn reroute_moves_reservation_and_stream_to_surviving_path() {
    let s = square();
    let [a, b, _c, d] = s.nodes;
    let vc = open_a_to_c(&s);
    assert_eq!(s.net.reservation_intact(vc), Some(true));
    drive_writer(s.svc[0].clone(), vc, 300, 80);
    let got = drive_reader(s.svc[2].clone(), vc);
    // Let part of the stream flow over the primary path, then cut it.
    s.net.engine().run_for(SimDuration::from_secs(1));
    let before = got.borrow().len();
    assert!(before > 0, "stream should be flowing before the cut");
    for lid in s.net.links_between(a, b) {
        s.net.set_link_up(lid, false);
    }
    assert_eq!(
        s.net.reservation_intact(vc),
        Some(false),
        "reservation now charges a dead link"
    );
    // The healing probe detects the stall, moves the reservation to the
    // detour through d, and unsticks the stream.
    s.net.engine().run_for(SimDuration::from_secs(20));
    assert_eq!(
        s.net.reservation_intact(vc),
        Some(true),
        "reservation re-admitted on live links"
    );
    assert_eq!(s.net.route(a, s.nodes[2]).unwrap()[0], {
        s.net.links_between(a, d)[0]
    });
    let (attempts, repairs) = s.svc[0].heal_stats(vc);
    assert!(repairs >= 1, "expected a successful repair, got {attempts}");
    // The stream finished: every OSDU was delivered or declared dropped,
    // in order, with no duplicates.
    let got = got.borrow();
    let seqs: Vec<u64> = got.iter().map(|&(_, s)| s).collect();
    let mut sorted = seqs.clone();
    sorted.dedup();
    assert_eq!(seqs, sorted, "no duplicate deliveries");
    assert!(
        got.len() > before,
        "stream resumed after the cut ({before} before, {} total)",
        got.len()
    );
    let last = *seqs.last().expect("nonempty") as usize;
    assert_eq!(last, 299, "stream ran to completion after the repair");
}

#[test]
fn revoked_reservation_is_readmitted_on_indication() {
    let s = square();
    let vc = open_a_to_c(&s);
    let held = s.net.revoke_reservation(vc);
    assert!(held.is_some(), "revocation should find the reservation");
    assert_eq!(s.net.reservation_intact(vc), None);
    // Out-of-band indication (the chaos controller's job) arms the probe.
    s.svc[0].on_reservation_revoked(vc);
    s.net.engine().run_for(SimDuration::from_secs(2));
    assert_eq!(
        s.net.reservation_intact(vc),
        Some(true),
        "reservation re-admitted"
    );
    let (_, repairs) = s.svc[0].heal_stats(vc);
    assert!(repairs >= 1);
    assert!(s.svc[0].is_open(vc), "VC stayed up through the revocation");
}

#[test]
fn unreachable_peer_gives_up_with_typed_disconnect() {
    let s = square();
    let [a, b, _c, d] = s.nodes;
    let vc = open_a_to_c(&s);
    drive_writer(s.svc[0].clone(), vc, 300, 80);
    let _got = drive_reader(s.svc[2].clone(), vc);
    s.net.engine().run_for(SimDuration::from_secs(1));
    // Cut both paths: c is unreachable for good.
    for lid in s.net.links_between(a, b) {
        s.net.set_link_up(lid, false);
    }
    for lid in s.net.links_between(a, d) {
        s.net.set_link_up(lid, false);
    }
    s.net.engine().run_for(SimDuration::from_secs(30));
    let disc = s.user[0].disconnects();
    assert_eq!(
        disc,
        vec![(vc, DisconnectReason::Unreachable)],
        "bounded give-up surfaces a typed disconnect"
    );
    assert!(!s.svc[0].is_open(vc));
    assert_eq!(
        s.net.reservation_intact(vc),
        None,
        "give-up released the reservation"
    );
}

#[test]
fn fault_free_run_never_heals() {
    let s = square();
    let vc = open_a_to_c(&s);
    drive_writer(s.svc[0].clone(), vc, 300, 80);
    let got = drive_reader(s.svc[2].clone(), vc);
    s.net.engine().run_for(SimDuration::from_secs(20));
    assert_eq!(got.borrow().len(), 300);
    let (attempts, repairs) = s.svc[0].heal_stats(vc);
    assert_eq!(
        (attempts, repairs),
        (0, 0),
        "no repair actions on a healthy path"
    );
}

// ---------------------------------------------------------------------
// Window profile
// ---------------------------------------------------------------------

#[test]
fn window_profile_reroutes_on_rto_strikes() {
    use cm_core::service_class::{ErrorControlClass, ProtocolProfile};
    let s = square();
    let [a, b, _c, _d] = s.nodes;
    let class = ServiceClass {
        profile: ProtocolProfile::WindowBased,
        error_control: ErrorControlClass::DetectCorrect,
    };
    let triple = AddressTriple::conventional(addr(&s, 0), addr(&s, 2));
    let vc = s.svc[0]
        .t_connect_request(triple, class, telephone_req())
        .expect("request");
    s.net.engine().run_for(SimDuration::from_millis(50));
    assert!(s.svc[0].is_open(vc));
    drive_writer(s.svc[0].clone(), vc, 300, 80);
    let got = drive_reader(s.svc[2].clone(), vc);
    s.net.engine().run_for(SimDuration::from_secs(1));
    for lid in s.net.links_between(a, b) {
        s.net.set_link_up(lid, false);
    }
    // RTO strikes accumulate, the probe repairs the reservation, and
    // go-back-N retransmission drains the stream over the detour via d.
    s.net.engine().run_for(SimDuration::from_secs(30));
    assert_eq!(s.net.reservation_intact(vc), Some(true));
    let got = got.borrow();
    assert_eq!(got.len(), 300, "windowed stream survives the reroute");
    let seqs: Vec<u64> = got.iter().map(|&(_, s)| s).collect();
    assert_eq!(seqs, (0..300).collect::<Vec<_>>());
}

// ---------------------------------------------------------------------
// Multicast regraft
// ---------------------------------------------------------------------

/// Root with two disjoint paths to a relay that fans out to two
/// receivers, plus one receiver hanging off the primary path only:
///
/// ```text
///          root ── h1 ── relay ── r1
///            │            │
///            └──── h2 ────┘
///            h1 ── r2   (r2 reachable only through h1)
/// ```
struct McastWorld {
    net: Network,
    root: NetAddr,
    h1: NetAddr,
    r1: NetAddr,
    r2: NetAddr,
    svc_root: TransportService,
    svc_r1: TransportService,
    svc_r2: TransportService,
    user_root: Rc<HealUser>,
}

fn mcast_world() -> McastWorld {
    let net = Network::new(Engine::new());
    let mut rng = DetRng::from_seed(9);
    let p = LinkParams::clean(Bandwidth::mbps(10), SimDuration::from_millis(1));
    let root = net.add_node(NodeClock::perfect());
    let h1 = net.add_node(NodeClock::perfect());
    let h2 = net.add_node(NodeClock::perfect());
    let relay = net.add_node(NodeClock::perfect());
    let r1 = net.add_node(NodeClock::perfect());
    let r2 = net.add_node(NodeClock::perfect());
    net.add_duplex(root, h1, p.clone(), &mut rng);
    net.add_duplex(h1, relay, p.clone(), &mut rng);
    net.add_duplex(root, h2, p.clone(), &mut rng);
    net.add_duplex(h2, relay, p.clone(), &mut rng);
    net.add_duplex(relay, r1, p.clone(), &mut rng);
    net.add_duplex(h1, r2, p, &mut rng);
    let user_root = HealUser::new();
    let svc_root = TransportService::install(&net, root, EntityConfig::default());
    let svc_r1 = TransportService::install(&net, r1, EntityConfig::default());
    let svc_r2 = TransportService::install(&net, r2, EntityConfig::default());
    svc_root.bind(Tsap(1), user_root.clone()).expect("bind");
    svc_r1.bind(Tsap(2), HealUser::new()).expect("bind");
    svc_r2.bind(Tsap(3), HealUser::new()).expect("bind");
    McastWorld {
        net,
        root,
        h1,
        r1,
        r2,
        svc_root,
        svc_r1,
        svc_r2,
        user_root,
    }
}

/// Timestamped delivery log of one receiver.
type DeliveryLog = Rc<RefCell<Vec<(SimTime, u64)>>>;

/// Open the group at the root and admit r1 and r2, then start the stream
/// and let it run for a second before the caller injects a fault.
fn mcast_streaming(w: &McastWorld) -> (VcId, DeliveryLog, DeliveryLog) {
    let vc = w
        .svc_root
        .t_group_open(Tsap(1), ServiceClass::cm_default(), telephone_req())
        .expect("group open");
    w.svc_root
        .t_group_add_receiver(
            vc,
            TransportAddr {
                node: w.r1,
                tsap: Tsap(2),
            },
        )
        .expect("invite r1");
    w.svc_root
        .t_group_add_receiver(
            vc,
            TransportAddr {
                node: w.r2,
                tsap: Tsap(3),
            },
        )
        .expect("invite r2");
    w.net.engine().run_for(SimDuration::from_millis(100));
    drive_writer(w.svc_root.clone(), vc, 300, 80);
    let got1 = drive_reader(w.svc_r1.clone(), vc);
    let got2 = drive_reader(w.svc_r2.clone(), vc);
    w.net.engine().run_for(SimDuration::from_secs(1));
    assert!(!got1.borrow().is_empty());
    assert!(!got2.borrow().is_empty());
    (vc, got1, got2)
}

#[test]
fn regraft_detours_tree_after_link_cut() {
    let w = mcast_world();
    let (vc, got1, got2) = mcast_streaming(&w);
    // Cut root—h1: the whole subtree (relay, r1, r2) detours via h2.
    for lid in w.net.links_between(w.root, w.h1) {
        w.net.set_link_up(lid, false);
    }
    w.net.engine().run_for(SimDuration::from_secs(20));
    for (who, got) in [("r1", &got1), ("r2", &got2)] {
        let got = got.borrow();
        let last = *got.last().map(|(_, s)| s).expect("nonempty") as usize;
        assert_eq!(last, 299, "{who} reached the end over the regrafted tree");
    }
    assert!(w.user_root.leaves().is_empty(), "no member was lost");
    let (_, repairs) = w.svc_root.heal_stats(vc);
    assert!(repairs >= 1, "regraft counted as a repair");
}

#[test]
fn unreachable_member_is_pruned_with_typed_leave() {
    let w = mcast_world();
    let (_vc, got1, got2) = mcast_streaming(&w);
    let r2_before = got2.borrow().len();
    // Cut h1—r2, r2's only attachment: it can never rejoin the tree.
    for lid in w.net.links_between(w.h1, w.r2) {
        w.net.set_link_up(lid, false);
    }
    w.net.engine().run_for(SimDuration::from_secs(20));
    // The surviving member kept receiving to the end of the stream…
    let got1 = got1.borrow();
    let last1 = *got1.last().map(|(_, s)| s).expect("r1 nonempty") as usize;
    assert_eq!(last1, 299, "surviving member reached the end of stream");
    // …r2 was pruned with a typed leave, and stopped receiving.
    let leaves = w.user_root.leaves();
    assert_eq!(leaves, vec![(w.r2, DisconnectReason::Unreachable)]);
    let r2_after = got2.borrow().len();
    assert!(
        r2_after < 300,
        "pruned member cannot have seen the full stream"
    );
    assert!(r2_after >= r2_before);
}
